# Empty compiler generated dependencies file for safe_rollout.
# This may be replaced when dependencies are built.
