file(REMOVE_RECURSE
  "CMakeFiles/safe_rollout.dir/safe_rollout.cpp.o"
  "CMakeFiles/safe_rollout.dir/safe_rollout.cpp.o.d"
  "safe_rollout"
  "safe_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
