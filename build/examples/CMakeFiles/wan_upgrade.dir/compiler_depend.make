# Empty compiler generated dependencies file for wan_upgrade.
# This may be replaced when dependencies are built.
