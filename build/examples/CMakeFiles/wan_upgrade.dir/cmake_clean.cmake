file(REMOVE_RECURSE
  "CMakeFiles/wan_upgrade.dir/wan_upgrade.cpp.o"
  "CMakeFiles/wan_upgrade.dir/wan_upgrade.cpp.o.d"
  "wan_upgrade"
  "wan_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
