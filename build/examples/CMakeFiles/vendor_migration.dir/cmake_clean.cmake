file(REMOVE_RECURSE
  "CMakeFiles/vendor_migration.dir/vendor_migration.cpp.o"
  "CMakeFiles/vendor_migration.dir/vendor_migration.cpp.o.d"
  "vendor_migration"
  "vendor_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
