# Empty compiler generated dependencies file for vendor_migration.
# This may be replaced when dependencies are built.
