# Empty dependencies file for isolate_service.
# This may be replaced when dependencies are built.
