file(REMOVE_RECURSE
  "CMakeFiles/isolate_service.dir/isolate_service.cpp.o"
  "CMakeFiles/isolate_service.dir/isolate_service.cpp.o.d"
  "isolate_service"
  "isolate_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolate_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
