# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_migration "/root/repo/build/examples/migration")
set_tests_properties(example_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isolate_service "/root/repo/build/examples/isolate_service")
set_tests_properties(example_isolate_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wan_upgrade "/root/repo/build/examples/wan_upgrade")
set_tests_properties(example_wan_upgrade PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_safe_rollout "/root/repo/build/examples/safe_rollout")
set_tests_properties(example_safe_rollout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vendor_migration "/root/repo/build/examples/vendor_migration")
set_tests_properties(example_vendor_migration PROPERTIES  PASS_REGULAR_EXPRESSION "DRIFT" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
