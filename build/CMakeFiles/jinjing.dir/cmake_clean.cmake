file(REMOVE_RECURSE
  "CMakeFiles/jinjing.dir/tools/jinjing_main.cpp.o"
  "CMakeFiles/jinjing.dir/tools/jinjing_main.cpp.o.d"
  "jinjing"
  "jinjing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
