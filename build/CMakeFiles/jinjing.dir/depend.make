# Empty dependencies file for jinjing.
# This may be replaced when dependencies are built.
