file(REMOVE_RECURSE
  "CMakeFiles/bench_fix.dir/bench_fix.cpp.o"
  "CMakeFiles/bench_fix.dir/bench_fix.cpp.o.d"
  "bench_fix"
  "bench_fix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
