# Empty dependencies file for bench_fix.
# This may be replaced when dependencies are built.
