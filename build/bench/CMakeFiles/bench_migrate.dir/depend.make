# Empty dependencies file for bench_migrate.
# This may be replaced when dependencies are built.
