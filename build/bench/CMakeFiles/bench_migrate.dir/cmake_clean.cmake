file(REMOVE_RECURSE
  "CMakeFiles/bench_migrate.dir/bench_migrate.cpp.o"
  "CMakeFiles/bench_migrate.dir/bench_migrate.cpp.o.d"
  "bench_migrate"
  "bench_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
