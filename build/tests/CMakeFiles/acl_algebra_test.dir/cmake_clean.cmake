file(REMOVE_RECURSE
  "CMakeFiles/acl_algebra_test.dir/acl_algebra_test.cpp.o"
  "CMakeFiles/acl_algebra_test.dir/acl_algebra_test.cpp.o.d"
  "acl_algebra_test"
  "acl_algebra_test.pdb"
  "acl_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
