# Empty dependencies file for acl_algebra_test.
# This may be replaced when dependencies are built.
