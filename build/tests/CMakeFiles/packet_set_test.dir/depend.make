# Empty dependencies file for packet_set_test.
# This may be replaced when dependencies are built.
