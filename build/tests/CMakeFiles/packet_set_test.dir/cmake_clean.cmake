file(REMOVE_RECURSE
  "CMakeFiles/packet_set_test.dir/packet_set_test.cpp.o"
  "CMakeFiles/packet_set_test.dir/packet_set_test.cpp.o.d"
  "packet_set_test"
  "packet_set_test.pdb"
  "packet_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
