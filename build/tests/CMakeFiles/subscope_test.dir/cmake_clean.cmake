file(REMOVE_RECURSE
  "CMakeFiles/subscope_test.dir/subscope_test.cpp.o"
  "CMakeFiles/subscope_test.dir/subscope_test.cpp.o.d"
  "subscope_test"
  "subscope_test.pdb"
  "subscope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
