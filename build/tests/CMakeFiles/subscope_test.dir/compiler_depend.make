# Empty compiler generated dependencies file for subscope_test.
# This may be replaced when dependencies are built.
