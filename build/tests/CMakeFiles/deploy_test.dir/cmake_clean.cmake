file(REMOVE_RECURSE
  "CMakeFiles/deploy_test.dir/deploy_test.cpp.o"
  "CMakeFiles/deploy_test.dir/deploy_test.cpp.o.d"
  "deploy_test"
  "deploy_test.pdb"
  "deploy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
