# Empty dependencies file for wan_test.
# This may be replaced when dependencies are built.
