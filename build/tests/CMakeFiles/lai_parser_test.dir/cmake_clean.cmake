file(REMOVE_RECURSE
  "CMakeFiles/lai_parser_test.dir/lai_parser_test.cpp.o"
  "CMakeFiles/lai_parser_test.dir/lai_parser_test.cpp.o.d"
  "lai_parser_test"
  "lai_parser_test.pdb"
  "lai_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lai_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
