# Empty dependencies file for lai_parser_test.
# This may be replaced when dependencies are built.
