# Empty dependencies file for lai_lexer_test.
# This may be replaced when dependencies are built.
