file(REMOVE_RECURSE
  "CMakeFiles/lai_lexer_test.dir/lai_lexer_test.cpp.o"
  "CMakeFiles/lai_lexer_test.dir/lai_lexer_test.cpp.o.d"
  "lai_lexer_test"
  "lai_lexer_test.pdb"
  "lai_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lai_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
