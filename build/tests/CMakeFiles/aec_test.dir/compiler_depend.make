# Empty compiler generated dependencies file for aec_test.
# This may be replaced when dependencies are built.
