file(REMOVE_RECURSE
  "CMakeFiles/aec_test.dir/aec_test.cpp.o"
  "CMakeFiles/aec_test.dir/aec_test.cpp.o.d"
  "aec_test"
  "aec_test.pdb"
  "aec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
