
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/cli_test.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/cli_test.dir/cli_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/jinjing_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/jinjing_config.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/jinjing_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jinjing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/jinjing_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lai/CMakeFiles/jinjing_lai.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/jinjing_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
