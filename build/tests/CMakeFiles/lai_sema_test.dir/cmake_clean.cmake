file(REMOVE_RECURSE
  "CMakeFiles/lai_sema_test.dir/lai_sema_test.cpp.o"
  "CMakeFiles/lai_sema_test.dir/lai_sema_test.cpp.o.d"
  "lai_sema_test"
  "lai_sema_test.pdb"
  "lai_sema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lai_sema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
