# Empty compiler generated dependencies file for lai_sema_test.
# This may be replaced when dependencies are built.
