# Empty compiler generated dependencies file for acl_test.
# This may be replaced when dependencies are built.
