# Empty dependencies file for jinjing_config.
# This may be replaced when dependencies are built.
