file(REMOVE_RECURSE
  "CMakeFiles/jinjing_config.dir/acl_format.cpp.o"
  "CMakeFiles/jinjing_config.dir/acl_format.cpp.o.d"
  "CMakeFiles/jinjing_config.dir/audit.cpp.o"
  "CMakeFiles/jinjing_config.dir/audit.cpp.o.d"
  "CMakeFiles/jinjing_config.dir/topology_format.cpp.o"
  "CMakeFiles/jinjing_config.dir/topology_format.cpp.o.d"
  "libjinjing_config.a"
  "libjinjing_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
