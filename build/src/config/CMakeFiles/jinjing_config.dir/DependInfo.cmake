
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/acl_format.cpp" "src/config/CMakeFiles/jinjing_config.dir/acl_format.cpp.o" "gcc" "src/config/CMakeFiles/jinjing_config.dir/acl_format.cpp.o.d"
  "/root/repo/src/config/audit.cpp" "src/config/CMakeFiles/jinjing_config.dir/audit.cpp.o" "gcc" "src/config/CMakeFiles/jinjing_config.dir/audit.cpp.o.d"
  "/root/repo/src/config/topology_format.cpp" "src/config/CMakeFiles/jinjing_config.dir/topology_format.cpp.o" "gcc" "src/config/CMakeFiles/jinjing_config.dir/topology_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/jinjing_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
