file(REMOVE_RECURSE
  "libjinjing_config.a"
)
