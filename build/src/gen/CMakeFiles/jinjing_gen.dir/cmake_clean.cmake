file(REMOVE_RECURSE
  "CMakeFiles/jinjing_gen.dir/fixtures.cpp.o"
  "CMakeFiles/jinjing_gen.dir/fixtures.cpp.o.d"
  "CMakeFiles/jinjing_gen.dir/scenario.cpp.o"
  "CMakeFiles/jinjing_gen.dir/scenario.cpp.o.d"
  "CMakeFiles/jinjing_gen.dir/wan.cpp.o"
  "CMakeFiles/jinjing_gen.dir/wan.cpp.o.d"
  "libjinjing_gen.a"
  "libjinjing_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
