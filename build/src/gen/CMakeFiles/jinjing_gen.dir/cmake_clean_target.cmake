file(REMOVE_RECURSE
  "libjinjing_gen.a"
)
