# Empty dependencies file for jinjing_gen.
# This may be replaced when dependencies are built.
