file(REMOVE_RECURSE
  "libjinjing_lai.a"
)
