# Empty dependencies file for jinjing_lai.
# This may be replaced when dependencies are built.
