file(REMOVE_RECURSE
  "CMakeFiles/jinjing_lai.dir/lexer.cpp.o"
  "CMakeFiles/jinjing_lai.dir/lexer.cpp.o.d"
  "CMakeFiles/jinjing_lai.dir/parser.cpp.o"
  "CMakeFiles/jinjing_lai.dir/parser.cpp.o.d"
  "CMakeFiles/jinjing_lai.dir/printer.cpp.o"
  "CMakeFiles/jinjing_lai.dir/printer.cpp.o.d"
  "CMakeFiles/jinjing_lai.dir/sema.cpp.o"
  "CMakeFiles/jinjing_lai.dir/sema.cpp.o.d"
  "libjinjing_lai.a"
  "libjinjing_lai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_lai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
