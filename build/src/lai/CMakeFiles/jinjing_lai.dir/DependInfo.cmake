
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lai/lexer.cpp" "src/lai/CMakeFiles/jinjing_lai.dir/lexer.cpp.o" "gcc" "src/lai/CMakeFiles/jinjing_lai.dir/lexer.cpp.o.d"
  "/root/repo/src/lai/parser.cpp" "src/lai/CMakeFiles/jinjing_lai.dir/parser.cpp.o" "gcc" "src/lai/CMakeFiles/jinjing_lai.dir/parser.cpp.o.d"
  "/root/repo/src/lai/printer.cpp" "src/lai/CMakeFiles/jinjing_lai.dir/printer.cpp.o" "gcc" "src/lai/CMakeFiles/jinjing_lai.dir/printer.cpp.o.d"
  "/root/repo/src/lai/sema.cpp" "src/lai/CMakeFiles/jinjing_lai.dir/sema.cpp.o" "gcc" "src/lai/CMakeFiles/jinjing_lai.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/jinjing_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
