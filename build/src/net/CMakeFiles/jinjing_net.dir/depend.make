# Empty dependencies file for jinjing_net.
# This may be replaced when dependencies are built.
