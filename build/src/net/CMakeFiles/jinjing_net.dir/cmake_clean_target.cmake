file(REMOVE_RECURSE
  "libjinjing_net.a"
)
