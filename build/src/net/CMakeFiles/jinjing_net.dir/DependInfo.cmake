
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/acl.cpp" "src/net/CMakeFiles/jinjing_net.dir/acl.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/acl.cpp.o.d"
  "/root/repo/src/net/acl_algebra.cpp" "src/net/CMakeFiles/jinjing_net.dir/acl_algebra.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/acl_algebra.cpp.o.d"
  "/root/repo/src/net/bdd.cpp" "src/net/CMakeFiles/jinjing_net.dir/bdd.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/bdd.cpp.o.d"
  "/root/repo/src/net/hypercube.cpp" "src/net/CMakeFiles/jinjing_net.dir/hypercube.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/hypercube.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/jinjing_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/packet_set.cpp" "src/net/CMakeFiles/jinjing_net.dir/packet_set.cpp.o" "gcc" "src/net/CMakeFiles/jinjing_net.dir/packet_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
