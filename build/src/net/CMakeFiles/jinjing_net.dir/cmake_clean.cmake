file(REMOVE_RECURSE
  "CMakeFiles/jinjing_net.dir/acl.cpp.o"
  "CMakeFiles/jinjing_net.dir/acl.cpp.o.d"
  "CMakeFiles/jinjing_net.dir/acl_algebra.cpp.o"
  "CMakeFiles/jinjing_net.dir/acl_algebra.cpp.o.d"
  "CMakeFiles/jinjing_net.dir/bdd.cpp.o"
  "CMakeFiles/jinjing_net.dir/bdd.cpp.o.d"
  "CMakeFiles/jinjing_net.dir/hypercube.cpp.o"
  "CMakeFiles/jinjing_net.dir/hypercube.cpp.o.d"
  "CMakeFiles/jinjing_net.dir/ip.cpp.o"
  "CMakeFiles/jinjing_net.dir/ip.cpp.o.d"
  "CMakeFiles/jinjing_net.dir/packet_set.cpp.o"
  "CMakeFiles/jinjing_net.dir/packet_set.cpp.o.d"
  "libjinjing_net.a"
  "libjinjing_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
