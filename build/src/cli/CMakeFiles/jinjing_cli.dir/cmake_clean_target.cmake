file(REMOVE_RECURSE
  "libjinjing_cli.a"
)
