# Empty compiler generated dependencies file for jinjing_cli.
# This may be replaced when dependencies are built.
