file(REMOVE_RECURSE
  "CMakeFiles/jinjing_cli.dir/cli.cpp.o"
  "CMakeFiles/jinjing_cli.dir/cli.cpp.o.d"
  "libjinjing_cli.a"
  "libjinjing_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
