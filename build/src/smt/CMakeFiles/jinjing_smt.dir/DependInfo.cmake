
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/acl_encoder.cpp" "src/smt/CMakeFiles/jinjing_smt.dir/acl_encoder.cpp.o" "gcc" "src/smt/CMakeFiles/jinjing_smt.dir/acl_encoder.cpp.o.d"
  "/root/repo/src/smt/context.cpp" "src/smt/CMakeFiles/jinjing_smt.dir/context.cpp.o" "gcc" "src/smt/CMakeFiles/jinjing_smt.dir/context.cpp.o.d"
  "/root/repo/src/smt/encode.cpp" "src/smt/CMakeFiles/jinjing_smt.dir/encode.cpp.o" "gcc" "src/smt/CMakeFiles/jinjing_smt.dir/encode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
