file(REMOVE_RECURSE
  "CMakeFiles/jinjing_smt.dir/acl_encoder.cpp.o"
  "CMakeFiles/jinjing_smt.dir/acl_encoder.cpp.o.d"
  "CMakeFiles/jinjing_smt.dir/context.cpp.o"
  "CMakeFiles/jinjing_smt.dir/context.cpp.o.d"
  "CMakeFiles/jinjing_smt.dir/encode.cpp.o"
  "CMakeFiles/jinjing_smt.dir/encode.cpp.o.d"
  "libjinjing_smt.a"
  "libjinjing_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
