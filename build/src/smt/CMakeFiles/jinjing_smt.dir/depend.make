# Empty dependencies file for jinjing_smt.
# This may be replaced when dependencies are built.
