file(REMOVE_RECURSE
  "libjinjing_smt.a"
)
