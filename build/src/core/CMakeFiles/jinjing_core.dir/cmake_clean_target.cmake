file(REMOVE_RECURSE
  "libjinjing_core.a"
)
