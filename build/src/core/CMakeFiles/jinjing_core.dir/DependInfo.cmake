
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aec.cpp" "src/core/CMakeFiles/jinjing_core.dir/aec.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/aec.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/core/CMakeFiles/jinjing_core.dir/checker.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/checker.cpp.o.d"
  "/root/repo/src/core/deploy.cpp" "src/core/CMakeFiles/jinjing_core.dir/deploy.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/deploy.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/jinjing_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/jinjing_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/fixer.cpp" "src/core/CMakeFiles/jinjing_core.dir/fixer.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/fixer.cpp.o.d"
  "/root/repo/src/core/generator.cpp" "src/core/CMakeFiles/jinjing_core.dir/generator.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/generator.cpp.o.d"
  "/root/repo/src/core/neighborhood.cpp" "src/core/CMakeFiles/jinjing_core.dir/neighborhood.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/neighborhood.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/jinjing_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/simplify.cpp" "src/core/CMakeFiles/jinjing_core.dir/simplify.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/simplify.cpp.o.d"
  "/root/repo/src/core/synth_opt.cpp" "src/core/CMakeFiles/jinjing_core.dir/synth_opt.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/synth_opt.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/core/CMakeFiles/jinjing_core.dir/synthesizer.cpp.o" "gcc" "src/core/CMakeFiles/jinjing_core.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/jinjing_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/jinjing_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/lai/CMakeFiles/jinjing_lai.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
