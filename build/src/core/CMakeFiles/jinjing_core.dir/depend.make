# Empty dependencies file for jinjing_core.
# This may be replaced when dependencies are built.
