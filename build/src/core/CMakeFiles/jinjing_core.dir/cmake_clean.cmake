file(REMOVE_RECURSE
  "CMakeFiles/jinjing_core.dir/aec.cpp.o"
  "CMakeFiles/jinjing_core.dir/aec.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/checker.cpp.o"
  "CMakeFiles/jinjing_core.dir/checker.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/deploy.cpp.o"
  "CMakeFiles/jinjing_core.dir/deploy.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/diff.cpp.o"
  "CMakeFiles/jinjing_core.dir/diff.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/engine.cpp.o"
  "CMakeFiles/jinjing_core.dir/engine.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/fixer.cpp.o"
  "CMakeFiles/jinjing_core.dir/fixer.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/generator.cpp.o"
  "CMakeFiles/jinjing_core.dir/generator.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/neighborhood.cpp.o"
  "CMakeFiles/jinjing_core.dir/neighborhood.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/placement.cpp.o"
  "CMakeFiles/jinjing_core.dir/placement.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/simplify.cpp.o"
  "CMakeFiles/jinjing_core.dir/simplify.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/synth_opt.cpp.o"
  "CMakeFiles/jinjing_core.dir/synth_opt.cpp.o.d"
  "CMakeFiles/jinjing_core.dir/synthesizer.cpp.o"
  "CMakeFiles/jinjing_core.dir/synthesizer.cpp.o.d"
  "libjinjing_core.a"
  "libjinjing_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
