file(REMOVE_RECURSE
  "CMakeFiles/jinjing_topo.dir/fec.cpp.o"
  "CMakeFiles/jinjing_topo.dir/fec.cpp.o.d"
  "CMakeFiles/jinjing_topo.dir/paths.cpp.o"
  "CMakeFiles/jinjing_topo.dir/paths.cpp.o.d"
  "CMakeFiles/jinjing_topo.dir/rib.cpp.o"
  "CMakeFiles/jinjing_topo.dir/rib.cpp.o.d"
  "CMakeFiles/jinjing_topo.dir/topology.cpp.o"
  "CMakeFiles/jinjing_topo.dir/topology.cpp.o.d"
  "libjinjing_topo.a"
  "libjinjing_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinjing_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
