
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fec.cpp" "src/topo/CMakeFiles/jinjing_topo.dir/fec.cpp.o" "gcc" "src/topo/CMakeFiles/jinjing_topo.dir/fec.cpp.o.d"
  "/root/repo/src/topo/paths.cpp" "src/topo/CMakeFiles/jinjing_topo.dir/paths.cpp.o" "gcc" "src/topo/CMakeFiles/jinjing_topo.dir/paths.cpp.o.d"
  "/root/repo/src/topo/rib.cpp" "src/topo/CMakeFiles/jinjing_topo.dir/rib.cpp.o" "gcc" "src/topo/CMakeFiles/jinjing_topo.dir/rib.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/jinjing_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/jinjing_topo.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/jinjing_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
