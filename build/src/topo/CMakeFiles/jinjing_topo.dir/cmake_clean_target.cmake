file(REMOVE_RECURSE
  "libjinjing_topo.a"
)
