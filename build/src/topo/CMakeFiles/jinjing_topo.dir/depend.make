# Empty dependencies file for jinjing_topo.
# This may be replaced when dependencies are built.
