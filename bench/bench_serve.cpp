// Service throughput and latency: drives a live svc::Server over its Unix
// socket with the medium WAN and writes BENCH_serve.json.
//
// Two experiments:
//
//  * Queue-depth sweep: D concurrent client sessions (D = 1, 8, 64), each
//    submitting perturbed check jobs back-to-back so ~D jobs stay
//    outstanding. Reports jobs/sec plus client-observed p50/p99 latency
//    (submit to result) per depth — the knee shows where the worker pool
//    saturates and queue wait starts to dominate.
//
//  * Warm vs cold: the same job stream run through the resident server
//    (shared FecCache, network already loaded) versus a fresh engine and
//    cache per job, which is what a cold CLI invocation pays. Expected
//    shape: warm is measurably faster because every job after the first
//    reuses the cached equivalence classes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "config/acl_format.h"
#include "core/engine.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "svc/client.h"
#include "svc/server.h"

namespace jinjing {
namespace {

/// A check program for one rule perturbation plus the ACL bodies a client
/// ships with it (the same wire shape `jinjing client submit` uses).
struct Workload {
  std::string program;
  std::map<std::string, std::string> acl_bodies;
};

Workload make_workload(const gen::Wan& wan, unsigned seed) {
  const topo::AclUpdate update = gen::perturb_rules(wan, 0.03, seed);
  Workload workload;
  std::string modifies;
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    const std::string name = "acl_" + std::to_string(i++);
    modifies += "modify " + wan.topo.qualified_name(slot.iface) +
                (slot.dir == topo::Dir::In ? "-in" : "-out") + " to " + name + "\n";
    workload.acl_bodies.emplace(name, config::print_acl(acl));
  }
  std::string scope = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) scope += ", ";
    scope += wan.topo.device_name(d);
  }
  workload.program = scope + "\n" + modifies + "check\n";
  return workload;
}

svc::Json submit_params(const Workload& workload) {
  svc::Json::Object params;
  params.emplace("program", workload.program);
  svc::Json::Object acls;
  for (const auto& [name, body] : workload.acl_bodies) acls.emplace(name, body);
  params.emplace("acls", svc::Json{std::move(acls)});
  return svc::Json{std::move(params)};
}

/// Submit one job and block until its result; returns the latency.
double run_job(svc::Client& client, const Workload& workload) {
  const auto start = std::chrono::steady_clock::now();
  const svc::Json submitted = client.call("submit", submit_params(workload));
  svc::Json::Object wait;
  wait.emplace("job", submitted.at("job").as_u64());
  wait.emplace("timeout_ms", std::uint64_t{600000});
  const svc::Json result = client.call("result", svc::Json{std::move(wait)});
  if (!result.at("done").as_bool() ||
      result.at("status").at("state").as_string() != "done") {
    std::fprintf(stderr, "WARNING: job did not complete: %s\n", result.dump().c_str());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct DepthResult {
  std::size_t depth = 0;
  std::size_t jobs = 0;
  double wall_seconds = 0;
  double jobs_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// D concurrent sessions, each draining its share of `workloads`.
DepthResult run_depth(const std::string& socket_path, std::size_t depth,
                      const std::vector<Workload>& workloads) {
  DepthResult result;
  result.depth = depth;
  result.jobs = workloads.size();
  std::mutex latencies_mutex;
  std::vector<double> latencies;
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  for (std::size_t s = 0; s < depth; ++s) {
    sessions.emplace_back([&] {
      svc::Client client{socket_path};
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= workloads.size()) break;
        const double seconds = run_job(client, workloads[i]);
        const std::lock_guard<std::mutex> lock{latencies_mutex};
        latencies.push_back(seconds);
      }
    });
  }
  for (auto& session : sessions) session.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::sort(latencies.begin(), latencies.end());
  result.jobs_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.jobs) / result.wall_seconds : 0;
  result.p50_ms = percentile(latencies, 0.50) * 1000.0;
  result.p99_ms = percentile(latencies, 0.99) * 1000.0;
  return result;
}

/// The cold path: what a one-shot CLI run pays per job — fresh engine,
/// fresh FEC cache, nothing resident.
double run_cold(const gen::Wan& wan, const std::vector<Workload>& workloads) {
  lai::AclLibrary library;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& workload : workloads) {
    library.clear();
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, body] : workload.acl_bodies) {
      library.insert_or_assign(name, config::parse_acl_auto(body));
    }
    core::Engine engine{wan.topo};
    const auto report = engine.run_program(workload.program, library, wan.traffic);
    if (!report.outcomes.empty() && !report.outcomes.front().check) {
      std::fprintf(stderr, "WARNING: cold job produced no check outcome\n");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace
}  // namespace jinjing

int main(int argc, char** argv) {
  using namespace jinjing;
  const char* json_path = "BENCH_serve.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }

  const gen::Wan wan = gen::make_wan(gen::medium_wan());
  std::fprintf(stderr, "serve workload: medium WAN, %zu total rules\n", gen::total_rules(wan));

  config::NetworkFile network;
  network.topo = wan.topo;
  network.traffic = wan.traffic;
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("jinjing_bench_serve_" + std::to_string(::getpid()) + ".sock"))
          .string();
  svc::ServerOptions options;
  options.socket_path = socket_path;
  options.queue_depth = 256;
  options.workers = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  svc::Server server{std::move(network), options};
  server.start();

  // One warmup job populates the shared FEC cache so the sweep measures the
  // steady state a long-running service actually serves from.
  {
    svc::Client warmup{socket_path};
    (void)run_job(warmup, make_workload(wan, 9999));
  }

  const std::size_t depths[] = {1, 8, 64};
  std::vector<DepthResult> sweep;
  for (const std::size_t depth : depths) {
    // Enough jobs that every session stays busy past startup effects.
    const std::size_t job_count = std::max<std::size_t>(24, depth * 2);
    std::vector<Workload> workloads;
    for (std::size_t j = 0; j < job_count; ++j) {
      workloads.push_back(make_workload(wan, static_cast<unsigned>(depth * 1000 + j + 1)));
    }
    sweep.push_back(run_depth(socket_path, depth, workloads));
    const auto& r = sweep.back();
    std::fprintf(stderr, "  depth %-3zu %5.2f jobs/s  p50 %7.1fms  p99 %7.1fms  (%zu jobs)\n",
                 r.depth, r.jobs_per_sec, r.p50_ms, r.p99_ms, r.jobs);
  }

  // Warm vs cold on one identical stream.
  constexpr std::size_t kWarmColdJobs = 8;
  std::vector<Workload> stream;
  for (std::size_t j = 0; j < kWarmColdJobs; ++j) {
    stream.push_back(make_workload(wan, static_cast<unsigned>(7000 + j)));
  }
  double warm_seconds = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    svc::Client client{socket_path};
    for (const auto& workload : stream) (void)run_job(client, workload);
    warm_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  const double cold_seconds = run_cold(wan, stream);
  const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  std::fprintf(stderr, "  warm %.3fs vs cold %.3fs over %zu jobs: %.2fx\n", warm_seconds,
               cold_seconds, kWarmColdJobs, speedup);

  server.request_shutdown();
  server.wait();
  std::filesystem::remove(socket_path);

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"workload\": \"serve\",\n  \"network\": \"medium\",\n");
  std::fprintf(out, "  \"workers\": %u,\n  \"queue_depths\": [\n", options.workers);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    std::fprintf(out,
                 "    {\"depth\": %zu, \"jobs\": %zu, \"wall_seconds\": %.6f, "
                 "\"jobs_per_sec\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 r.depth, r.jobs, r.wall_seconds, r.jobs_per_sec, r.p50_ms, r.p99_ms,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"warm_vs_cold\": {\"jobs\": %zu, \"warm_seconds\": %.6f, "
               "\"cold_seconds\": %.6f, \"speedup\": %.2f}\n}\n",
               kWarmColdJobs, warm_seconds, cold_seconds, speedup);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path);
  return 0;
}
