// Service throughput and latency: drives a live svc::Server over its Unix
// socket with the medium WAN and writes BENCH_serve.json.
//
// Five experiments:
//
//  * Workers x depth matrix: for each worker count W (1, 2, 4) a fresh
//    server serves D concurrent client sessions (D = 1, 8, 64), each
//    submitting perturbed check jobs back-to-back so ~D jobs stay
//    outstanding. Reports jobs/sec plus client-observed p50/p99 latency
//    (submit to result) per cell. With batch coalescing, throughput must
//    grow with depth: everything queued behind the job in flight shares
//    one plan scan, so deeper queues amortize better.
//
//  * Coalesce sweep: the same deep-queue workload at fixed workers with
//    --coalesce 1 (batching off) up to 64 — isolates how much of the
//    depth scaling is the batch path itself.
//
//  * Warm vs cold: the same job stream run through the resident server
//    (shared FecCache, network already loaded) versus a fresh engine and
//    cache per job, which is what a cold CLI invocation pays. Expected
//    shape: warm is measurably faster because every job after the first
//    reuses the cached equivalence classes.
//
//  * Churn, warm over versions: R rounds of (apply a delta, re-check a
//    fixed pending batch), run once on an incremental server and once with
//    --max-delta-chain 0. Only check wall time counts. The speedup is the
//    headline number for the delta cache: verdict reuse plus rebase versus
//    a full plan rebuild on every new version.
//
//  * Churn depth sweep: the same interleaved apply+check loop at client
//    depths 1/8/64 on the incremental server — added concurrency must not
//    cost throughput, since sessions share the rebased plan.
//
//  * Transport: the same deep-queue workload through the Unix socket and
//    through loopback TCP (auth handshake included), fresh server per
//    transport. The interesting number is how little TCP costs: jobs are
//    engine-bound, so the deltas show up in p99, not jobs/sec.
//
//  * Replication: one writer plus two read-only replicas over loopback
//    TCP, replicas caught up before the clock starts. The same check
//    burst is drained once by the writer alone and once spread across
//    the two replicas — the aggregate row quantifies what the fan-out
//    buys for pure verification load.
//
// --smoke shrinks everything (small WAN, fewer rounds) for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "config/acl_format.h"
#include "core/engine.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "replica/replica.h"
#include "svc/client.h"
#include "svc/server.h"

namespace jinjing {
namespace {

/// A check program for one rule perturbation plus the ACL bodies a client
/// ships with it (the same wire shape `jinjing client submit` uses).
struct Workload {
  std::string program;
  std::map<std::string, std::string> acl_bodies;
};

Workload make_workload(const gen::Wan& wan, unsigned seed) {
  const topo::AclUpdate update = gen::perturb_rules(wan, 0.03, seed);
  Workload workload;
  std::string modifies;
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    const std::string name = "acl_" + std::to_string(i++);
    modifies += "modify " + wan.topo.qualified_name(slot.iface) +
                (slot.dir == topo::Dir::In ? "-in" : "-out") + " to " + name + "\n";
    workload.acl_bodies.emplace(name, config::print_acl(acl));
  }
  std::string scope = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) scope += ", ";
    scope += wan.topo.device_name(d);
  }
  workload.program = scope + "\n" + modifies + "check\n";
  return workload;
}

std::string scope_line(const gen::Wan& wan) {
  std::string scope = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) scope += ", ";
    scope += wan.topo.device_name(d);
  }
  return scope;
}

/// The slot's ACL with its first rule duplicated: a semantically no-op
/// rebind under first-match semantics. As a pending check it always
/// verifies consistent; as an applied delta it is a real version bump whose
/// Definition 4.1 differential is the duplicated rule.
net::Acl duplicate_first_rule(const topo::Topology& topo, topo::AclSlot slot) {
  const net::Acl& acl = topo.acl(slot);
  std::vector<net::AclRule> rules{acl.rules().begin(), acl.rules().end()};
  rules.insert(rules.begin(), rules.front());
  return net::Acl{std::move(rules), acl.default_action()};
}

/// A pending check against a gateway slot the churn applies never touch —
/// its canonical text is stable across versions, so the delta cache can
/// carry its proven verdicts from version to version.
Workload dup_check_workload(const gen::Wan& wan, topo::AclSlot slot) {
  Workload workload;
  workload.acl_bodies.emplace("dup", config::print_acl(duplicate_first_rule(wan.topo, slot)));
  workload.program = scope_line(wan) + "\nmodify " + wan.topo.qualified_name(slot.iface) +
                     (slot.dir == topo::Dir::In ? "-in" : "-out") + " to dup\ncheck\n";
  return workload;
}

/// The churn delta for one round: duplicate the first rule of a rotating
/// aggregation slot on the current head. Deterministic, so the incremental
/// and the disabled server walk identical version chains.
topo::AclUpdate churn_update(const gen::Wan& wan, const topo::Topology& head,
                             std::size_t round) {
  const topo::AclSlot slot = wan.agg_slots[round % wan.agg_slots.size()];
  topo::AclUpdate update;
  update.emplace(slot, duplicate_first_rule(head, slot));
  return update;
}

svc::Json submit_params(const Workload& workload) {
  svc::Json::Object params;
  params.emplace("program", workload.program);
  svc::Json::Object acls;
  for (const auto& [name, body] : workload.acl_bodies) acls.emplace(name, body);
  params.emplace("acls", svc::Json{std::move(acls)});
  return svc::Json{std::move(params)};
}

/// Submit one job and block until its result; returns the latency. The
/// result wait is an event wait re-armed until the job is terminal — a job
/// outliving one 10-minute window must not silently contaminate the sample
/// with a truncated latency (the old behaviour: warn and move on, leaving
/// the job still running under the next measurement).
double run_job(svc::Client& client, const Workload& workload) {
  const auto start = std::chrono::steady_clock::now();
  const svc::Json submitted = client.call("submit", submit_params(workload));
  const std::uint64_t id = submitted.at("job").as_u64();
  while (true) {
    svc::Json::Object wait;
    wait.emplace("job", id);
    wait.emplace("timeout_ms", std::uint64_t{600000});
    const svc::Json result = client.call("result", svc::Json{std::move(wait)});
    if (result.at("done").as_bool()) {
      if (result.at("status").at("state").as_string() != "done") {
        std::fprintf(stderr, "WARNING: job did not complete: %s\n", result.dump().c_str());
      }
      break;
    }
    std::fprintf(stderr, "note: job %llu still running after 600s, continuing to wait\n",
                 static_cast<unsigned long long>(id));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct DepthResult {
  std::size_t depth = 0;
  std::size_t jobs = 0;
  double wall_seconds = 0;
  double jobs_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// D concurrent sessions spread round-robin over `endpoints` (one entry
/// for a single server; writer-plus-replicas pass several), each draining
/// its share of `workloads`.
DepthResult run_depth(const std::vector<std::string>& endpoints, std::size_t depth,
                      const std::vector<Workload>& workloads,
                      const svc::ClientOptions& client_options = {}) {
  DepthResult result;
  result.depth = depth;
  result.jobs = workloads.size();
  std::mutex latencies_mutex;
  std::vector<double> latencies;
  std::atomic<std::size_t> next{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  for (std::size_t s = 0; s < depth; ++s) {
    sessions.emplace_back([&, s] {
      svc::Client client{endpoints[s % endpoints.size()], client_options};
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= workloads.size()) break;
        const double seconds = run_job(client, workloads[i]);
        const std::lock_guard<std::mutex> lock{latencies_mutex};
        latencies.push_back(seconds);
      }
    });
  }
  for (auto& session : sessions) session.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::sort(latencies.begin(), latencies.end());
  result.jobs_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.jobs) / result.wall_seconds : 0;
  result.p50_ms = percentile(latencies, 0.50) * 1000.0;
  result.p99_ms = percentile(latencies, 0.99) * 1000.0;
  return result;
}

/// One churn run: `rounds` iterations of (apply a delta, drain the pending
/// check batch at `depth` concurrent sessions). Only the check batches are
/// timed; the applies advance the version chain between them.
struct ChurnTiming {
  std::size_t rounds = 0;
  std::size_t jobs = 0;
  double check_seconds = 0;
};

ChurnTiming run_churn(svc::Server& server, const std::string& socket_path,
                      const gen::Wan& wan, std::size_t depth, std::size_t rounds,
                      const std::vector<Workload>& pending) {
  ChurnTiming timing;
  timing.rounds = rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    (void)server.store().apply_update(
        churn_update(wan, *server.store().head()->topo, round));
    const DepthResult batch = run_depth({socket_path}, depth, pending);
    timing.check_seconds += batch.wall_seconds;
    timing.jobs += batch.jobs;
  }
  return timing;
}

/// The cold path: what a one-shot CLI run pays per job — fresh engine,
/// fresh FEC cache, nothing resident.
double run_cold(const gen::Wan& wan, const std::vector<Workload>& workloads) {
  lai::AclLibrary library;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& workload : workloads) {
    library.clear();
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, body] : workload.acl_bodies) {
      library.insert_or_assign(name, config::parse_acl_auto(body));
    }
    core::Engine engine{wan.topo};
    const auto report = engine.run_program(workload.program, library, wan.traffic);
    if (!report.outcomes.empty() && !report.outcomes.front().check) {
      std::fprintf(stderr, "WARNING: cold job produced no check outcome\n");
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace
}  // namespace jinjing

int main(int argc, char** argv) {
  using namespace jinjing;
  const char* json_path = "BENCH_serve.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  // --smoke (CI): the small WAN and reduced rounds/depths — same shape,
  // seconds instead of minutes.
  const gen::Wan wan = gen::make_wan(smoke ? gen::small_wan() : gen::medium_wan());
  std::fprintf(stderr, "serve workload: %s WAN, %zu total rules\n",
               smoke ? "small" : "medium", gen::total_rules(wan));
  std::vector<std::size_t> depths{1, 8, 64};
  std::vector<unsigned> worker_counts{1, 2, 4};
  std::vector<std::size_t> coalesce_values{1, 8, 32, 64};
  unsigned sweep_workers = 4;
  std::size_t sweep_depth = 64;
  std::size_t min_jobs = 24;
  std::size_t warm_rounds = 6, warm_jobs = 16, warm_depth = 8;
  std::size_t churn_rounds = 3;
  std::size_t warm_cold_jobs = 8;
  if (smoke) {
    // Depth 64 stays: the CI gate asserts that throughput does not fall
    // off as the queue deepens, which is exactly what coalescing buys.
    worker_counts = {1, 2};
    coalesce_values = {1, 8, 32};
    sweep_workers = 2;
    sweep_depth = 32;
    min_jobs = 8;
    warm_rounds = 4;
    warm_jobs = 8;
    warm_depth = 4;
    churn_rounds = 2;
    warm_cold_jobs = 4;
  }

  const auto make_server = [&](const std::string& socket_path, unsigned workers,
                               std::size_t coalesce, std::size_t max_delta_chain) {
    config::NetworkFile network;
    network.topo = wan.topo;
    network.traffic = wan.traffic;
    svc::ServerOptions options;
    options.socket_path = socket_path;
    options.queue_depth = 256;
    options.workers = workers;
    options.coalesce = coalesce;
    options.keep_versions = 4;
    options.max_delta_chain = max_delta_chain;
    return std::make_unique<svc::Server>(std::move(network), options);
  };
  const std::string socket_path =
      (std::filesystem::temp_directory_path() /
       ("jinjing_bench_serve_" + std::to_string(::getpid()) + ".sock"))
          .string();

  /// One measured cell against a short-lived server: warmup job, then the
  /// depth run. A fresh server per cell keeps the FEC/delta caches from
  /// leaking one configuration's state into the next.
  struct MatrixCell {
    unsigned workers = 0;
    std::size_t coalesce = 0;
    DepthResult result;
  };
  const auto run_cell = [&](unsigned workers, std::size_t coalesce, std::size_t depth,
                            unsigned seed_base) {
    auto cell_server = make_server(socket_path, workers, coalesce, 16);
    cell_server->start();
    {
      svc::Client warmup{socket_path};
      (void)run_job(warmup, make_workload(wan, 9999));
    }
    const std::size_t job_count = std::max<std::size_t>(min_jobs, depth * 2);
    std::vector<Workload> workloads;
    for (std::size_t j = 0; j < job_count; ++j) {
      workloads.push_back(make_workload(wan, seed_base + static_cast<unsigned>(j) + 1));
    }
    MatrixCell cell;
    cell.workers = workers;
    cell.coalesce = coalesce;
    cell.result = run_depth({socket_path}, depth, workloads);
    cell_server->request_shutdown();
    cell_server->wait();
    cell_server.reset();
    std::filesystem::remove(socket_path);
    return cell;
  };

  // ---- Workers x depth matrix (perturbed pending checks, default
  // coalescing). The acceptance shape: at workers >= 2, jobs/sec must not
  // decrease as the queue deepens — deep queues coalesce into larger
  // batches that amortize the per-version plan scan.
  std::vector<MatrixCell> matrix;
  for (const unsigned workers : worker_counts) {
    for (const std::size_t depth : depths) {
      matrix.push_back(run_cell(workers, 32, depth,
                                workers * 100000 + static_cast<unsigned>(depth) * 1000));
      const auto& r = matrix.back().result;
      std::fprintf(stderr,
                   "  workers %u depth %-3zu %6.2f jobs/s  p50 %7.1fms  p99 %7.1fms  (%zu jobs)\n",
                   workers, r.depth, r.jobs_per_sec, r.p50_ms, r.p99_ms, r.jobs);
    }
  }

  // ---- Coalesce sweep at a fixed deep queue: batching off (1) up to 64.
  std::vector<MatrixCell> coalesce_sweep;
  for (const std::size_t coalesce : coalesce_values) {
    coalesce_sweep.push_back(run_cell(sweep_workers, coalesce, sweep_depth,
                                      900000 + static_cast<unsigned>(coalesce) * 1000));
    const auto& r = coalesce_sweep.back().result;
    std::fprintf(stderr, "  coalesce %-3zu (workers %u, depth %zu) %6.2f jobs/s\n",
                 coalesce, sweep_workers, sweep_depth, r.jobs_per_sec);
  }

  // ---- Transport: the same deep-queue burst through the Unix socket and
  // through loopback TCP (auth handshake included). Fresh server per
  // transport, identical workloads, warmup job first so both measure the
  // steady state. Jobs are engine-bound, so the transport shows up in the
  // latency tail rather than in jobs/sec.
  const std::string bench_token = "bench-serve-token";
  const auto make_network = [&] {
    config::NetworkFile network;
    network.topo = wan.topo;
    network.traffic = wan.traffic;
    return network;
  };
  std::vector<Workload> transport_workloads;
  for (std::size_t j = 0; j < std::max<std::size_t>(min_jobs, sweep_depth * 2); ++j) {
    transport_workloads.push_back(make_workload(wan, 800000 + static_cast<unsigned>(j)));
  }
  struct TransportCell {
    std::string transport;
    DepthResult result;
  };
  std::vector<TransportCell> transports;
  for (const bool tcp : {false, true}) {
    svc::ServerOptions options;
    if (tcp) {
      options.listen_address = "127.0.0.1:0";
      options.auth_token = bench_token;
    } else {
      options.socket_path = socket_path;
    }
    options.queue_depth = 256;
    options.workers = sweep_workers;
    options.coalesce = 32;
    options.keep_versions = 4;
    options.max_delta_chain = 16;
    auto transport_server = std::make_unique<svc::Server>(make_network(), options);
    transport_server->start();
    const std::string endpoint = tcp ? transport_server->listen_endpoint() : socket_path;
    svc::ClientOptions client_options;
    client_options.token = bench_token;
    {
      svc::Client warmup{endpoint, client_options};
      (void)run_job(warmup, make_workload(wan, 9999));
    }
    TransportCell cell;
    cell.transport = tcp ? "tcp" : "unix";
    cell.result = run_depth({endpoint}, sweep_depth, transport_workloads, client_options);
    transport_server->request_shutdown();
    transport_server->wait();
    transport_server.reset();
    if (!tcp) std::filesystem::remove(socket_path);
    std::fprintf(stderr, "  transport %-4s (workers %u, depth %zu) %6.2f jobs/s  p99 %7.1fms\n",
                 cell.transport.c_str(), sweep_workers, sweep_depth, cell.result.jobs_per_sec,
                 cell.result.p99_ms);
    transports.push_back(std::move(cell));
  }

  // ---- Replication: one writer plus two read-only replicas, all on
  // loopback TCP, replicas fully caught up before the clock starts. The
  // same check burst is drained once by the writer alone and once spread
  // across the two replicas — the ratio is what the fan-out buys for
  // pure verification load (the modify-check jobs here never leave a
  // deployable plan behind, so replicas may serve them).
  DepthResult writer_only_result;
  DepthResult replica_pair_result;
  {
    svc::ServerOptions writer_options;
    writer_options.listen_address = "127.0.0.1:0";
    writer_options.auth_token = bench_token;
    writer_options.queue_depth = 256;
    writer_options.workers = sweep_workers;
    writer_options.coalesce = 32;
    writer_options.keep_versions = 4;
    writer_options.max_delta_chain = 16;
    auto writer = std::make_unique<svc::Server>(make_network(), writer_options);
    writer->start();

    std::vector<std::unique_ptr<replica::Replica>> replicas;
    for (int i = 0; i < 2; ++i) {
      replica::ReplicaOptions options;
      options.writer = writer->listen_endpoint();
      options.token = bench_token;
      options.serve = writer_options;
      options.serve.listen_address = "127.0.0.1:0";
      replicas.push_back(std::make_unique<replica::Replica>(make_network(), options));
      replicas.back()->start();
    }
    const auto caught_up = [&] {
      return std::all_of(replicas.begin(), replicas.end(), [](const auto& replica) {
        return replica->connected() && replica->lag() == 0;
      });
    };
    while (!caught_up()) std::this_thread::sleep_for(std::chrono::milliseconds(10));

    svc::ClientOptions client_options;
    client_options.token = bench_token;
    std::vector<std::string> replica_endpoints;
    for (const auto& replica : replicas) {
      replica_endpoints.push_back(replica->server().listen_endpoint());
      svc::Client warmup{replica_endpoints.back(), client_options};
      (void)run_job(warmup, make_workload(wan, 9999));
    }
    {
      svc::Client warmup{writer->listen_endpoint(), client_options};
      (void)run_job(warmup, make_workload(wan, 9999));
    }
    writer_only_result =
        run_depth({writer->listen_endpoint()}, sweep_depth, transport_workloads, client_options);
    replica_pair_result =
        run_depth(replica_endpoints, sweep_depth, transport_workloads, client_options);
    std::fprintf(stderr,
                 "  replication (workers %u, depth %zu): writer %6.2f jobs/s, "
                 "2 replicas %6.2f jobs/s aggregate\n",
                 sweep_workers, sweep_depth, writer_only_result.jobs_per_sec,
                 replica_pair_result.jobs_per_sec);
    for (auto& replica : replicas) replica->request_shutdown();
    for (auto& replica : replicas) replica->wait();
    replicas.clear();
    writer->request_shutdown();
    writer->wait();
  }

  // The warm/churn experiments run with coalescing off (--coalesce 1):
  // they isolate the resident caches and the delta cache, and a coalesced
  // batch on the "disabled" baseline would amortize the very rebuild cost
  // the comparison is measuring. The matrix above owns the batching story.
  const unsigned churn_workers = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  auto server = make_server(socket_path, churn_workers, 1, 16);
  server->start();

  // One warmup job populates the shared FEC cache so the warm/churn
  // experiments measure the steady state a long-running service serves from.
  {
    svc::Client warmup{socket_path};
    (void)run_job(warmup, make_workload(wan, 9999));
  }

  // ---- Warm vs cold on one identical stream (still at the head version
  // the sweep warmed).
  std::vector<Workload> stream;
  for (std::size_t j = 0; j < warm_cold_jobs; ++j) {
    stream.push_back(make_workload(wan, static_cast<unsigned>(7000 + j)));
  }
  double warm_seconds = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    svc::Client client{socket_path};
    for (const auto& workload : stream) (void)run_job(client, workload);
    warm_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  const double cold_seconds = run_cold(wan, stream);
  const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  std::fprintf(stderr, "  warm %.3fs vs cold %.3fs over %zu jobs: %.2fx\n", warm_seconds,
               cold_seconds, warm_cold_jobs, speedup);

  // ---- Fix warm vs cold: the same perturbation stream issued as `fix`
  // jobs. On the warm server the fix's initial check adopts the rebased
  // plan bundle from the delta cache and the synthesizer's AEC derivation
  // hits the shared overlay memo; the cold runs rebuild both per job.
  std::vector<Workload> fix_stream = stream;
  for (auto& workload : fix_stream) {
    workload.program.replace(workload.program.rfind("check\n"), 6, "fix\n");
  }
  double fix_warm_seconds = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    svc::Client client{socket_path};
    for (const auto& workload : fix_stream) (void)run_job(client, workload);
    fix_warm_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  double fix_cold_seconds = 0;
  {
    lai::AclLibrary library;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& workload : fix_stream) {
      library.clear();
      library.emplace("permit_all", net::Acl::permit_all());
      for (const auto& [name, body] : workload.acl_bodies) {
        library.insert_or_assign(name, config::parse_acl_auto(body));
      }
      core::Engine engine{wan.topo};
      const auto report = engine.run_program(workload.program, library, wan.traffic);
      if (report.outcomes.empty() || !report.outcomes.front().fix) {
        std::fprintf(stderr, "WARNING: cold job produced no fix outcome\n");
      }
    }
    fix_cold_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  const double fix_speedup = fix_warm_seconds > 0 ? fix_cold_seconds / fix_warm_seconds : 0;
  std::fprintf(stderr, "  fix warm %.3fs vs cold %.3fs over %zu jobs: %.2fx\n",
               fix_warm_seconds, fix_cold_seconds, fix_stream.size(), fix_speedup);

  // ---- Churn, warm over versions: R rounds of (apply delta, re-check a
  // fixed pending batch). The pending updates target gateway slots the
  // churn never rewrites, so the delta cache can rebase its plan and carry
  // their verdicts across every version; the disabled server below pays a
  // full rebuild per job instead.
  std::vector<Workload> pending;
  for (std::size_t j = 0; j < warm_jobs; ++j) {
    pending.push_back(dup_check_workload(wan, wan.gateway_slots[j % wan.gateway_slots.size()]));
  }
  const ChurnTiming incremental_churn =
      run_churn(*server, socket_path, wan, warm_depth, warm_rounds, pending);
  std::fprintf(stderr, "  churn warm (incremental): %zu checks over %zu versions in %.3fs\n",
               incremental_churn.jobs, incremental_churn.rounds, incremental_churn.check_seconds);

  // ---- Churn depth sweep: interleaved apply+check at each depth, on the
  // incremental server. The shared rebased plan means added concurrency
  // must not cost throughput.
  struct ChurnDepth {
    std::size_t depth = 0;
    ChurnTiming timing;
    double jobs_per_sec = 0;
  };
  std::vector<ChurnDepth> churn_sweep;
  for (const std::size_t depth : depths) {
    std::vector<Workload> batch;
    const std::size_t job_count = std::max<std::size_t>(smoke ? 8 : 12, depth);
    for (std::size_t j = 0; j < job_count; ++j) {
      batch.push_back(dup_check_workload(wan, wan.gateway_slots[j % wan.gateway_slots.size()]));
    }
    ChurnDepth entry;
    entry.depth = depth;
    entry.timing = run_churn(*server, socket_path, wan, depth, churn_rounds, batch);
    entry.jobs_per_sec = entry.timing.check_seconds > 0
                             ? static_cast<double>(entry.timing.jobs) / entry.timing.check_seconds
                             : 0;
    std::fprintf(stderr, "  churn depth %-3zu %5.2f jobs/s (%zu jobs, %zu applies)\n",
                 entry.depth, entry.jobs_per_sec, entry.timing.jobs, entry.timing.rounds);
    churn_sweep.push_back(std::move(entry));
  }

  const core::IncrementalStats delta_stats =
      server->incremental() ? server->incremental()->stats() : core::IncrementalStats{};
  server->request_shutdown();
  server->wait();
  server.reset();
  std::filesystem::remove(socket_path);

  // ---- The same churn stream with the delta cache disabled
  // (--max-delta-chain 0, the seed behaviour): every check pays path
  // enumeration, plan build and the full obligation batch again.
  double full_churn_seconds = 0;
  {
    auto baseline = make_server(socket_path, churn_workers, 1, 0);
    baseline->start();
    {
      svc::Client warmup{socket_path};
      (void)run_job(warmup, make_workload(wan, 9999));
    }
    const ChurnTiming full_churn =
        run_churn(*baseline, socket_path, wan, warm_depth, warm_rounds, pending);
    full_churn_seconds = full_churn.check_seconds;
    std::fprintf(stderr, "  churn warm (disabled):    %zu checks over %zu versions in %.3fs\n",
                 full_churn.jobs, full_churn.rounds, full_churn.check_seconds);
    baseline->request_shutdown();
    baseline->wait();
    std::filesystem::remove(socket_path);
  }
  const double warm_over_versions =
      incremental_churn.check_seconds > 0 ? full_churn_seconds / incremental_churn.check_seconds
                                          : 0;
  std::fprintf(stderr, "  warm-over-versions speedup: %.2fx\n", warm_over_versions);

  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"workload\": \"serve\",\n  \"network\": \"%s\",\n",
               smoke ? "small" : "medium");
  std::fprintf(out, "  \"matrix\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const auto& cell = matrix[i];
    const auto& r = cell.result;
    std::fprintf(out,
                 "    {\"workers\": %u, \"depth\": %zu, \"jobs\": %zu, "
                 "\"wall_seconds\": %.6f, \"jobs_per_sec\": %.3f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 cell.workers, r.depth, r.jobs, r.wall_seconds, r.jobs_per_sec, r.p50_ms,
                 r.p99_ms, i + 1 < matrix.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"coalesce_sweep\": {\"workers\": %u, \"depth\": %zu, \"entries\": [\n",
               sweep_workers, sweep_depth);
  for (std::size_t i = 0; i < coalesce_sweep.size(); ++i) {
    const auto& cell = coalesce_sweep[i];
    std::fprintf(out,
                 "    {\"coalesce\": %zu, \"jobs\": %zu, \"jobs_per_sec\": %.3f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 cell.coalesce, cell.result.jobs, cell.result.jobs_per_sec,
                 cell.result.p50_ms, cell.result.p99_ms,
                 i + 1 < coalesce_sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out, "  \"transport\": {\"workers\": %u, \"depth\": %zu, \"entries\": [\n",
               sweep_workers, sweep_depth);
  for (std::size_t i = 0; i < transports.size(); ++i) {
    const auto& cell = transports[i];
    std::fprintf(out,
                 "    {\"transport\": \"%s\", \"jobs\": %zu, \"jobs_per_sec\": %.3f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 cell.transport.c_str(), cell.result.jobs, cell.result.jobs_per_sec,
                 cell.result.p50_ms, cell.result.p99_ms,
                 i + 1 < transports.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out,
               "  \"replication\": {\"workers\": %u, \"depth\": %zu, \"replicas\": 2,\n"
               "    \"writer_only\": {\"jobs\": %zu, \"jobs_per_sec\": %.3f, \"p50_ms\": %.3f, "
               "\"p99_ms\": %.3f},\n"
               "    \"writer_plus_replicas\": {\"jobs\": %zu, \"jobs_per_sec\": %.3f, "
               "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n"
               "    \"aggregate_speedup\": %.2f},\n",
               sweep_workers, sweep_depth, writer_only_result.jobs,
               writer_only_result.jobs_per_sec, writer_only_result.p50_ms,
               writer_only_result.p99_ms, replica_pair_result.jobs,
               replica_pair_result.jobs_per_sec, replica_pair_result.p50_ms,
               replica_pair_result.p99_ms,
               writer_only_result.jobs_per_sec > 0
                   ? replica_pair_result.jobs_per_sec / writer_only_result.jobs_per_sec
                   : 0);
  std::fprintf(out,
               "  \"warm_vs_cold\": {\"jobs\": %zu, \"warm_seconds\": %.6f, "
               "\"cold_seconds\": %.6f, \"speedup\": %.2f},\n",
               warm_cold_jobs, warm_seconds, cold_seconds, speedup);
  std::fprintf(out,
               "  \"fix_warm_vs_cold\": {\"jobs\": %zu, \"warm_seconds\": %.6f, "
               "\"cold_seconds\": %.6f, \"speedup\": %.2f},\n",
               fix_stream.size(), fix_warm_seconds, fix_cold_seconds, fix_speedup);
  std::fprintf(out, "  \"churn\": {\n    \"depths\": [\n");
  for (std::size_t i = 0; i < churn_sweep.size(); ++i) {
    const auto& entry = churn_sweep[i];
    std::fprintf(out,
                 "      {\"depth\": %zu, \"applies\": %zu, \"jobs\": %zu, "
                 "\"check_seconds\": %.6f, \"jobs_per_sec\": %.3f}%s\n",
                 entry.depth, entry.timing.rounds, entry.timing.jobs,
                 entry.timing.check_seconds, entry.jobs_per_sec,
                 i + 1 < churn_sweep.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"warm_over_versions\": {\"rounds\": %zu, \"jobs\": %zu, "
               "\"incremental_seconds\": %.6f, \"full_seconds\": %.6f, \"speedup\": %.2f},\n",
               incremental_churn.rounds, incremental_churn.jobs,
               incremental_churn.check_seconds, full_churn_seconds, warm_over_versions);
  std::fprintf(out,
               "    \"delta_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"invalidations\": %llu, \"rebases\": %llu, \"fallbacks\": %llu}\n  }\n}\n",
               static_cast<unsigned long long>(delta_stats.hits),
               static_cast<unsigned long long>(delta_stats.misses),
               static_cast<unsigned long long>(delta_stats.invalidations),
               static_cast<unsigned long long>(delta_stats.rebases),
               static_cast<unsigned long long>(delta_stats.fallbacks));
  std::fclose(out);
  std::fprintf(stderr, "wrote %s\n", json_path);
  return 0;
}
