// §9 ablations: where Jinjing's speed comes from.
//
//  * Decision-model encoding — sequential (O(n) DPLL depth) vs the
//    tournament tree (O(log n)); the "decisions" counter is the paper's
//    recursive-call proxy.
//  * Rule grouping — the §5.5 claim of a ~98.6% drop in sequence-encoding
//    items per interface.
//  * ACL search tree — overlap tests with and without the interval index.
//  * Simplification — cost and yield of the §4.2 redundant-rule removal.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "core/checker.h"
#include "core/simplify.h"
#include "net/bdd.h"
#include "core/synth_opt.h"
#include "net/acl_algebra.h"
#include "smt/acl_encoder.h"

namespace jinjing {
namespace {

/// A long ACL with prefix-structured rules (the §9 "largest ACL" shape).
net::Acl long_acl(std::size_t rules, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> octet2(0, 255);
  std::uniform_int_distribution<int> octet3(0, 255);
  std::uniform_int_distribution<int> action(0, 1);
  std::vector<net::AclRule> out;
  for (std::size_t i = 0; i + 1 < rules; ++i) {
    net::Match m = net::Match::dst_prefix(
        net::Prefix{net::Ipv4{10, static_cast<std::uint8_t>(octet2(rng)),
                              static_cast<std::uint8_t>(octet3(rng)), 0},
                    24});
    out.push_back({action(rng) ? net::Action::Permit : net::Action::Deny, m});
  }
  out.push_back(net::AclRule::permit_all());
  return net::Acl{out};
}

void BM_EncoderStrategy(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  const bool tree = state.range(1) != 0;
  const auto acl = long_acl(rules, 5);
  const auto other = long_acl(rules, 6);

  std::uint64_t decisions = 0;
  for (auto _ : state) {
    // Equivalence query between two long ACLs — the hardest single-ACL
    // query check issues.
    smt::SmtContext smt;
    const auto h = smt.packet_vars();
    auto solver = smt.make_solver();
    const auto strategy = tree ? smt::EncoderStrategy::Tree : smt::EncoderStrategy::Sequential;
    solver.add(smt::acl_permits(h, acl, strategy) != smt::acl_permits(h, other, strategy));
    benchmark::DoNotOptimize(smt.solve_for_packet(solver, h));
    decisions = smt.statistic("decisions");
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["z3_decisions"] = static_cast<double>(decisions);
  state.SetLabel(tree ? "tree" : "sequential");
}

BENCHMARK(BM_EncoderStrategy)
    ->ArgNames({"rules", "tree"})
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// §1 / §9: one monolithic Minesweeper-style formula vs Algorithm 1's
// per-class delta queries (both with whole-ACL encodings, to isolate the
// effect of the classification itself).
void BM_MonolithicVsClassified(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const bool monolithic = state.range(1) != 0;
  const auto update = gen::perturb_rules(wan, 0.03, 91);

  std::uint64_t queries = 0;
  bool consistent = true;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::CheckOptions options;
    options.use_differential = false;  // isolate classification, not Thm 4.1
    core::Checker checker{smt, wan.topo, wan.scope, options};
    const auto result = monolithic ? checker.check_monolithic(update, wan.traffic)
                                   : checker.check(update, wan.traffic);
    benchmark::DoNotOptimize(result);
    queries = result.smt_queries;
    consistent = result.consistent;
  }
  state.counters["smt_queries"] = static_cast<double>(queries);
  state.counters["consistent"] = consistent ? 1 : 0;
  state.SetLabel(std::string(bench::size_name(state.range(0))) +
                 (monolithic ? "/monolithic" : "/per-class"));
}

BENCHMARK(BM_MonolithicVsClassified)
    ->ArgNames({"net", "monolithic"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_Grouping(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const bool grouped = state.range(1) != 0;

  std::size_t items = 0;
  for (auto _ : state) {
    items = 0;
    for (const auto slot : wan.topo.bound_slots()) {
      const auto groups = grouped ? core::group_rules(wan.topo.acl(slot), true)
                                  : core::singleton_groups(wan.topo.acl(slot));
      items += groups.size();
      benchmark::DoNotOptimize(groups);
    }
  }
  state.counters["items_per_interface"] =
      static_cast<double>(items) / static_cast<double>(wan.topo.bound_slots().size());
  state.SetLabel(std::string(bench::size_name(state.range(0))) +
                 (grouped ? "/grouped" : "/per-rule"));
}

BENCHMARK(BM_Grouping)
    ->ArgNames({"net", "grouped"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(5);

void BM_SearchTree(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  const bool use_tree = state.range(1) != 0;
  const auto big = net::permitted_set(long_acl(rules, 11));
  // Probes: one /24 slice per rule-ish region.
  std::vector<net::PacketSet> probes;
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> octet(0, 255);
  for (int i = 0; i < 64; ++i) {
    net::HyperCube cube;
    cube.set_interval(net::Field::DstIp,
                      net::Prefix{net::Ipv4{10, static_cast<std::uint8_t>(octet(rng)),
                                            static_cast<std::uint8_t>(octet(rng)), 0},
                                  24}
                          .interval());
    probes.emplace_back(cube);
  }

  for (auto _ : state) {
    std::size_t hits = 0;
    if (use_tree) {
      const core::DstIntervalIndex index{big};
      for (const auto& probe : probes) hits += index.intersects(probe);
    } else {
      for (const auto& probe : probes) hits += big.intersects(probe);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["set_cubes"] = static_cast<double>(big.cube_count());
  state.SetLabel(use_tree ? "interval-tree" : "linear");
}

BENCHMARK(BM_SearchTree)
    ->ArgNames({"rules", "tree"})
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(5);

// Parallel per-class checking (one Z3 context per worker) vs sequential —
// the paper's testbed was a 4-core server. NOTE: on a single-core host
// (like the CI container this repo was developed in) wall time stays flat;
// the interesting series needs >= 2 cores.
void BM_ParallelCheck(benchmark::State& state) {
  const auto& wan = bench::wan_for(2);  // large network only
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto update = gen::perturb_rules(wan, 0.03, 77);

  for (auto _ : state) {
    smt::SmtContext smt;
    core::CheckOptions options;
    options.stop_at_first = false;  // full scan: the parallelizable case
    options.threads = threads;
    core::Checker checker{smt, wan.topo, wan.scope, options};
    benchmark::DoNotOptimize(checker.check(update, wan.traffic));
  }
  state.SetLabel(std::to_string(threads) + (threads == 1 ? " thread" : " threads"));
}

BENCHMARK(BM_ParallelCheck)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Header-space representation ablation: unions of hypercubes (our
// PacketSet) vs reduced ordered BDDs, on the set algebra the classifiers
// run (union of k ACL permitted sets, pairwise intersections, equality).
void BM_SetRepresentation(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const bool use_bdd = state.range(1) != 0;

  std::vector<net::PacketSet> sets;
  for (std::size_t i = 0; i < k; ++i) {
    sets.push_back(net::permitted_set(long_acl(64, static_cast<unsigned>(31 + i))));
  }

  std::size_t nodes_or_cubes = 0;
  for (auto _ : state) {
    if (use_bdd) {
      net::BddManager bdd;
      std::vector<net::BddManager::Node> handles;
      net::BddManager::Node all = net::BddManager::kFalse;
      for (const auto& s : sets) {
        handles.push_back(bdd.from_set(s));
        all = bdd.lor(all, handles.back());
      }
      std::size_t equal_pairs = 0;
      for (std::size_t i = 0; i < handles.size(); ++i) {
        for (std::size_t j = i + 1; j < handles.size(); ++j) {
          equal_pairs += net::BddManager::equal(bdd.land(handles[i], handles[j]), handles[i]);
        }
      }
      benchmark::DoNotOptimize(equal_pairs);
      nodes_or_cubes = bdd.node_count();
    } else {
      net::PacketSet all;
      for (const auto& s : sets) all = all | s;
      std::size_t equal_pairs = 0;
      for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
          equal_pairs += (sets[i] & sets[j]).equals(sets[i]);
        }
      }
      benchmark::DoNotOptimize(equal_pairs);
      nodes_or_cubes = all.cube_count();
    }
  }
  state.counters[use_bdd ? "bdd_nodes" : "union_cubes"] =
      static_cast<double>(nodes_or_cubes);
  state.SetLabel(use_bdd ? "bdd" : "hypercubes");
}

BENCHMARK(BM_SetRepresentation)
    ->ArgNames({"sets", "bdd"})
    ->ArgsProduct({{4, 8, 16}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_Simplify(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  const auto acl = long_acl(rules, 21);
  std::size_t removed = 0;
  for (auto _ : state) {
    const auto simplified = core::simplify(acl);
    benchmark::DoNotOptimize(simplified);
    removed = acl.size() - simplified.size();
  }
  state.counters["rules_removed"] = static_cast<double>(removed);
  state.counters["rules_in"] = static_cast<double>(rules);
}

BENCHMARK(BM_Simplify)
    ->ArgNames({"rules"})
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace jinjing

BENCHMARK_MAIN();
