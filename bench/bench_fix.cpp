// Figure 4b: turnaround time of the fix primitive.
//
// Grid: {small, medium, large} x {1%, 3%, 5% perturbed rules} x
// {unoptimized (basic check, sequential encoding), optimized
// (differential rules + tree decision model)}.
//
// Expected shape (paper): fixing time grows with the perturbation rate
// (more violations to repair); the optimizations win by a large factor on
// the medium/large networks; check + fix stays within interactive budgets.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/fixer.h"

namespace jinjing {
namespace {

void BM_Fix(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  const bool optimized = state.range(2) != 0;

  const auto update =
      gen::perturb_rules(wan, fraction, static_cast<unsigned>(29 * state.range(1) + 3));
  const auto allowed = wan.topo.bound_slots();

  std::size_t neighborhoods = 0;
  std::size_t actions = 0;
  std::uint64_t queries = 0;
  core::FixResult last;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::FixOptions options;
    options.check.use_differential = optimized;
    options.check.encoder =
        optimized ? smt::EncoderStrategy::Tree : smt::EncoderStrategy::Sequential;
    core::Fixer fixer{smt, wan.topo, wan.scope, options};
    last = fixer.fix(update, wan.traffic, allowed);
    benchmark::DoNotOptimize(last);
    neighborhoods = last.neighborhoods.size();
    actions = last.actions.size();
    queries = last.smt_queries;
  }
  state.counters["neighborhoods"] = static_cast<double>(neighborhoods);
  state.counters["touched_slots"] = static_cast<double>(actions);
  state.counters["smt_queries"] = static_cast<double>(queries);
  state.counters["search_ms"] = last.search_seconds * 1e3;
  state.counters["enlarge_ms"] = last.enlarge_seconds * 1e3;
  state.counters["place_ms"] = last.place_seconds * 1e3;
  state.counters["assemble_ms"] = last.assemble_seconds * 1e3;
  state.SetLabel(std::string(bench::size_name(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "pct/" +
                 (optimized ? "optimized" : "basic"));
}

BENCHMARK(BM_Fix)
    ->ArgNames({"net", "perturb_pct", "optimized"})
    ->ArgsProduct({{0, 1, 2}, {1, 3, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace jinjing

BENCHMARK_MAIN();
