// Shared helpers for the figure-reproduction benchmarks: cached WAN
// instances (building a WAN is workload setup, not measured work) and
// size naming consistent with §8.
#pragma once

#include <benchmark/benchmark.h>

#include "gen/scenario.h"
#include "gen/wan.h"

namespace jinjing::bench {

inline const gen::Wan& wan_for(std::int64_t size_index) {
  static const gen::Wan small = gen::make_wan(gen::small_wan());
  static const gen::Wan medium = gen::make_wan(gen::medium_wan());
  static const gen::Wan large = gen::make_wan(gen::large_wan());
  switch (size_index) {
    case 0: return small;
    case 1: return medium;
    default: return large;
  }
}

inline const char* size_name(std::int64_t size_index) {
  switch (size_index) {
    case 0: return "small";
    case 1: return "medium";
    default: return "large";
  }
}

}  // namespace jinjing::bench
