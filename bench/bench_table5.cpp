// Table 5: LAI program line counts for the §8 experiments.
//
// Prints, for each network size, the number of LAI statements an operator
// writes for check&fix, migration, and control-open with 1/10/100 prefixes
// per device. Even the largest tasks stay within tens-to-hundreds of lines
// — the paper's point that "using LAI is simple".
#include <cstdio>

#include "gen/scenario.h"
#include "lai/parser.h"
#include "lai/printer.h"

namespace {

using namespace jinjing;

std::size_t lines(const std::string& program) {
  return lai::line_count(lai::parse(program));
}

}  // namespace

int main() {
  std::printf("Table 5: LAI program line count in experiments\n");
  std::printf("%-8s %12s %10s %8s %8s %9s\n", "Network", "check&fix", "migration", "open 1",
              "open 10", "open 100");

  const gen::WanParams sizes[] = {gen::small_wan(), gen::medium_wan(), gen::large_wan()};
  const char* names[] = {"Small", "Medium", "Large"};
  for (int i = 0; i < 3; ++i) {
    const auto wan = gen::make_wan(sizes[i]);
    const auto perturbed = gen::perturb_rules(wan, 0.03, 7);
    const auto check_fix = lines(gen::check_fix_program(wan, perturbed));
    const auto migration = lines(gen::migration_program(wan));
    const auto open1 = lines(gen::control_open_program(wan, gen::control_open(wan, 1, 9)));
    const auto open10 = lines(gen::control_open_program(wan, gen::control_open(wan, 10, 9)));
    const auto open100 = lines(gen::control_open_program(wan, gen::control_open(wan, 100, 9)));
    std::printf("%-8s %12zu %10zu %8zu %8zu %9zu\n", names[i], check_fix, migration, open1,
                open10, open100);
  }
  return 0;
}
