// Figure 4c: generate for the common ACL migration — move all ACLs from
// the middle (aggregation) layer to the lower (gateway) layer.
//
// Grid: {small, medium, large} x {unoptimized, optimized (§5.5)}.
// Counters expose the paper's phase breakdown (derive AECs / solve /
// generate) and the synthesized ACL length the optimizations shrink.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/generator.h"

namespace jinjing {
namespace {

void BM_Migrate(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const bool optimized = state.range(1) != 0;
  const auto spec = gen::migration_spec(wan);

  core::GenerateResult last;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::GenerateOptions options;
    options.universe = wan.traffic;
    options.synthesis.group_rules = optimized;
    options.synthesis.minimize_rules = optimized;
    options.synthesis.use_search_tree = optimized;
    core::Generator generator{smt, wan.topo, wan.scope, options};
    last = generator.generate(spec);
    benchmark::DoNotOptimize(last);
  }
  state.counters["aecs"] = static_cast<double>(last.aec_count);
  state.counters["decs"] = static_cast<double>(last.dec_count);
  state.counters["emitted_rules"] = static_cast<double>(last.synthesis.emitted_rules);
  state.counters["derive_ms"] = last.derive_seconds * 1e3;
  state.counters["solve_ms"] = last.solve_seconds * 1e3;
  state.counters["synthesize_ms"] = last.synth_seconds * 1e3;
  state.counters["success"] = last.success ? 1 : 0;
  state.SetLabel(std::string(bench::size_name(state.range(0))) + "/" +
                 (optimized ? "optimized" : "basic"));
}

BENCHMARK(BM_Migrate)
    ->ArgNames({"net", "optimized"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace jinjing

BENCHMARK_MAIN();
