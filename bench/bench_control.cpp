// Figure 4d: generate under control open intents.
//
// Grid: {small, medium, large} x {1, 10, 100 opened prefixes per gateway
// device} (clamped to the gateway's protected-prefix budget; the "opened"
// counter reports the actual total).
//
// Expected shape (paper): AEC derivation costs slightly more than the
// migration case (the r models refine the classes); ACL generation costs
// much less (the optimizations compress the opened holes into few rules).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/generator.h"

namespace jinjing {
namespace {

void BM_ControlOpen(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto scenario = gen::control_open(wan, k, static_cast<unsigned>(41 + k));

  core::GenerateResult last;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::GenerateOptions options;
    options.universe = wan.traffic;
    core::Generator generator{smt, wan.topo, wan.scope, options};
    last = generator.generate(scenario.spec, scenario.intents);
    benchmark::DoNotOptimize(last);
  }
  state.counters["opened_prefixes"] = static_cast<double>(scenario.opened);
  state.counters["aecs"] = static_cast<double>(last.aec_count);
  state.counters["emitted_rules"] = static_cast<double>(last.synthesis.emitted_rules);
  state.counters["derive_ms"] = last.derive_seconds * 1e3;
  state.counters["solve_ms"] = last.solve_seconds * 1e3;
  state.counters["synthesize_ms"] = last.synth_seconds * 1e3;
  state.counters["success"] = last.success ? 1 : 0;
  state.SetLabel(std::string(bench::size_name(state.range(0))) + "/open" +
                 std::to_string(state.range(1)));
}

BENCHMARK(BM_ControlOpen)
    ->ArgNames({"net", "prefixes_per_device"})
    ->ArgsProduct({{0, 1, 2}, {1, 10, 100}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace jinjing

BENCHMARK_MAIN();
