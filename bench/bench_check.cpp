// Figure 4a: turnaround time of the check primitive — plus the
// backend/cache comparison for the repeated-check workload.
//
// Two modes:
//
//  * With any --benchmark* flag: the google-benchmark grid
//    {small, medium, large} x {1%, 3%, 5% perturbed rules} x
//    {basic version, differential rules (Theorem 4.1)}. Expected shape
//    (paper): differential is about an order of magnitude faster than
//    basic; turnaround is insensitive to the perturbation rate because
//    check returns at the first violation.
//
//  * Without flags (the default): a fixer-style repeated-check workload
//    on the medium WAN — one update proposal plus a stream of perturbed
//    candidate repairs, all checked against the same scope/traffic — run
//    once per pipeline configuration and written to BENCH_check.json:
//
//      - hypercube_seed:  the seed pipeline (hypercube refinement re-derived
//                         per check, fresh Z3 solver per query)
//      - hypercube_cached: hypercube refinement + FecCache + incremental SMT
//      - bdd_cached:       BDD refinement + FecCache + incremental SMT
//
//    Per configuration: wall seconds, FEC count, SMT queries, solver
//    seconds, and the cache hit rate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/checker.h"
#include "core/diff.h"
#include "core/engine.h"
#include "obs/stats.h"
#include "topo/fec_delta.h"

namespace jinjing {
namespace {

void BM_Check(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  const bool differential = state.range(2) != 0;

  const auto update =
      gen::perturb_rules(wan, fraction, static_cast<unsigned>(17 * state.range(1) + 1));

  std::size_t fecs = 0;
  std::uint64_t queries = 0;
  bool consistent = true;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::CheckOptions options;
    options.use_differential = differential;
    core::Checker checker{smt, wan.topo, wan.scope, options};
    const auto result = checker.check(update, wan.traffic);
    benchmark::DoNotOptimize(result);
    fecs = result.fec_count;
    queries = result.smt_queries;
    consistent = result.consistent;
  }
  state.counters["fecs"] = static_cast<double>(fecs);
  state.counters["smt_queries"] = static_cast<double>(queries);
  state.counters["consistent"] = consistent ? 1 : 0;
  state.SetLabel(std::string(bench::size_name(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "pct/" +
                 (differential ? "differential" : "basic"));
}

BENCHMARK(BM_Check)
    ->ArgNames({"net", "perturb_pct", "differential"})
    ->ArgsProduct({{0, 1, 2}, {1, 3, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

struct PipelineConfig {
  const char* name;
  topo::SetBackend backend;
  bool incremental_smt;
  bool reuse_checker;  // false = seed behaviour: fresh checker (and cache) per check
};

struct PipelineResult {
  std::string name;
  double wall_seconds = 0;
  std::size_t fec_count = 0;
  std::uint64_t smt_queries = 0;
  double solve_seconds = 0;
  // Pipeline-stage breakdown, summed over the candidate stream.
  double plan_seconds = 0;
  double compile_seconds = 0;
  double execute_seconds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0;
  std::size_t checks = 0;
  std::size_t inconsistent = 0;
};

/// The fixer/synthesizer shape: one proposed update plus a stream of
/// perturbed candidate repairs, every candidate re-checked against the
/// same scope and entering traffic.
PipelineResult run_pipeline(const gen::Wan& wan, const std::vector<topo::AclUpdate>& candidates,
                            const PipelineConfig& config) {
  PipelineResult result;
  result.name = config.name;

  core::CheckOptions options;
  options.set_backend = config.backend;
  options.incremental_smt = config.incremental_smt;

  smt::SmtContext smt;
  core::Checker reused{smt, wan.topo, wan.scope, options};

  const auto start = std::chrono::steady_clock::now();
  for (const auto& update : candidates) {
    core::CheckResult check;
    if (config.reuse_checker) {
      check = reused.check(update, wan.traffic);
    } else {
      smt::SmtContext fresh_smt;
      core::Checker fresh{fresh_smt, wan.topo, wan.scope, options};
      check = fresh.check(update, wan.traffic);
      result.smt_queries += check.smt_queries;
      result.solve_seconds += fresh_smt.solve_seconds();
    }
    result.fec_count = check.fec_count;
    result.plan_seconds += check.plan_seconds;
    result.compile_seconds += check.compile_seconds;
    result.execute_seconds += check.execute_seconds;
    ++result.checks;
    if (!check.consistent) ++result.inconsistent;
  }
  result.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                            .count();
  if (config.reuse_checker) {
    result.smt_queries = smt.query_count();
    result.solve_seconds = smt.solve_seconds();
    result.cache_hits = reused.fec_cache().hits();
    result.cache_misses = reused.fec_cache().misses();
    result.cache_hit_rate = reused.fec_cache().hit_rate();
  }
  return result;
}

/// The multi-intent batch workload: N independent update tasks pushed
/// through one Engine — serially on a single-threaded engine, then via
/// run_batch on the shared executor. The acceptance bar for the executor
/// refactor is >= 1.5x throughput at N = 8.
struct BatchResult {
  std::size_t tasks = 0;
  unsigned threads = 0;
  double serial_seconds = 0;
  double batch_seconds = 0;
  double speedup = 0;
  std::size_t inconsistent = 0;
};

BatchResult run_batch_workload(const gen::Wan& wan) {
  BatchResult result;
  std::vector<lai::UpdateTask> tasks;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    lai::UpdateTask task;
    task.scope = wan.scope;
    task.modify = gen::perturb_rules(wan, 0.03, 100 + seed);
    task.commands = {lai::Command::Check};
    tasks.push_back(std::move(task));
  }
  result.tasks = tasks.size();
  // Fan out over the real cores (capped at the task count). On a single-core
  // host run_batch degenerates to the sequential loop, so the reported
  // speedup stays honest instead of measuring oversubscription.
  result.threads = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));

  {
    core::EngineOptions options;
    options.check.threads = 1;
    core::Engine serial{wan.topo, options};
    const auto start = std::chrono::steady_clock::now();
    for (const auto& task : tasks) {
      const auto report = serial.run(task, wan.traffic);
      if (!report.success()) ++result.inconsistent;
    }
    result.serial_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  {
    core::EngineOptions options;
    options.check.threads = result.threads;
    core::Engine batch{wan.topo, options};
    const auto start = std::chrono::steady_clock::now();
    const auto reports = batch.run_batch(tasks, wan.traffic);
    result.batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::size_t inconsistent = 0;
    for (const auto& report : reports) {
      if (!report.success()) ++inconsistent;
    }
    if (inconsistent != result.inconsistent) {
      std::fprintf(stderr, "WARNING: batch verdicts diverge from serial (%zu vs %zu)\n",
                   inconsistent, result.inconsistent);
    }
  }
  result.speedup = result.batch_seconds > 0 ? result.serial_seconds / result.batch_seconds : 0;
  return result;
}

/// The versioned-churn workload: N small applies land one after another,
/// and after each the serving partition must cover the new version. The
/// delta path re-splits only atoms meeting the apply's pooled differential
/// (topo::refine_delta chained across versions); the seed path re-derives
/// the whole partition from the growing predicate list. Both are exact, so
/// the partitions are asserted identical before timing is trusted.
struct ChurnResult {
  std::size_t versions = 0;
  std::size_t base_predicates = 0;
  std::size_t final_atoms = 0;
  double delta_seconds = 0;
  double scratch_seconds = 0;
  double speedup = 0;
  std::uint64_t reused_atoms = 0;
  std::uint64_t split_atoms = 0;
  bool identical = true;
};

ChurnResult run_churn_refinement(const gen::Wan& wan, std::size_t versions) {
  ChurnResult result;
  result.versions = versions;

  // The base partition: the scope's forwarding predicates, as the checker's
  // from-scratch refinement sees them at version 1.
  std::vector<net::PacketSet> base_preds;
  for (const auto& edge : wan.topo.edges()) {
    if (wan.scope.contains_interface(wan.topo, edge.from) &&
        wan.scope.contains_interface(wan.topo, edge.to)) {
      base_preds.push_back(edge.predicate);
    }
  }
  result.base_predicates = base_preds.size();

  // Each version's changed predicates: the pooled Definition 4.1
  // differential of a small perturbation, one packet-set per diff rule —
  // the same shape IncrementalPlanner::record_apply pools per apply.
  const topo::ConfigView before_view{wan.topo};
  std::vector<std::vector<net::PacketSet>> per_version;
  for (std::size_t v = 0; v < versions; ++v) {
    const auto update = gen::perturb_rules(wan, 0.01, static_cast<unsigned>(300 + v));
    topo::Topology applied = wan.topo;
    std::vector<topo::AclSlot> slots;
    for (const auto& [slot, acl] : update) {
      applied.bind_acl(slot, acl);
      slots.push_back(slot);
    }
    const topo::ConfigView after_view{applied};
    std::vector<net::PacketSet> changed;
    for (const auto& rule : core::scope_differential(before_view, after_view, slots)) {
      changed.push_back(net::PacketSet{rule.match.cube()});
    }
    if (changed.empty()) changed.push_back(net::PacketSet::empty());
    per_version.push_back(std::move(changed));
  }

  const topo::FecOptions fec_options;
  const auto base = topo::refine_into_atoms(wan.traffic, base_preds, fec_options);

  // Delta path: chain refine_delta across the versions.
  std::vector<net::PacketSet> delta_atoms = base;
  {
    const auto start = std::chrono::steady_clock::now();
    for (const auto& changed : per_version) {
      auto step = topo::refine_delta(delta_atoms, changed, fec_options.backend);
      result.reused_atoms += step.reused;
      result.split_atoms += step.split;
      delta_atoms = std::move(step.atoms);
    }
    result.delta_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  // Seed path: every version re-refines from scratch over the full list.
  std::vector<net::PacketSet> scratch_atoms;
  {
    auto predicates = base_preds;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& changed : per_version) {
      predicates.insert(predicates.end(), changed.begin(), changed.end());
      scratch_atoms = topo::refine_into_atoms(wan.traffic, predicates, fec_options);
    }
    result.scratch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }

  result.final_atoms = delta_atoms.size();
  result.identical = delta_atoms.size() == scratch_atoms.size();
  for (std::size_t i = 0; result.identical && i < delta_atoms.size(); ++i) {
    result.identical = delta_atoms[i].cubes() == scratch_atoms[i].cubes();
  }
  result.speedup =
      result.delta_seconds > 0 ? result.scratch_seconds / result.delta_seconds : 0;
  return result;
}

/// All counter totals of `registry`, indexed by obs::Counter.
std::vector<std::uint64_t> snapshot_counters(const obs::StatsRegistry& registry) {
  std::vector<std::uint64_t> totals(obs::kCounterCount);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    totals[i] = registry.total(static_cast<obs::Counter>(i));
  }
  return totals;
}

/// `{"name": delta, ...}` for the counters that moved between snapshots.
std::string counters_delta_json(const std::vector<std::uint64_t>& before,
                                const std::vector<std::uint64_t>& after) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const std::uint64_t delta = after[i] - before[i];
    if (delta == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += std::string(obs::to_string(static_cast<obs::Counter>(i)));
    out += "\": ";
    out += std::to_string(delta);
  }
  out += "}";
  return out;
}

int run_repeated_check_comparison(const char* json_path, const char* trace_path) {
  const auto& wan = bench::wan_for(1);  // medium
  std::fprintf(stderr, "repeated-check workload: medium WAN, %zu total rules\n",
               gen::total_rules(wan));

  // One "proposal" plus perturbed candidate repairs, as a fixer loop sees.
  std::vector<topo::AclUpdate> candidates;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    candidates.push_back(gen::perturb_rules(wan, 0.03, seed));
  }

  const PipelineConfig configs[] = {
      {"hypercube_seed", topo::SetBackend::Hypercube, false, false},
      {"hypercube_cached", topo::SetBackend::Hypercube, true, true},
      {"bdd_cached", topo::SetBackend::Bdd, true, true},
  };

  // Observability overhead: the cached-pipeline workload with no registry
  // installed (the hot loops take the single disabled branch) versus the
  // same workload with every counter, histogram and span live. One warmup
  // run then interleaved min-of-3 keeps scheduler noise out of the delta.
  (void)run_pipeline(wan, candidates, configs[1]);
  double disabled_seconds = 0;
  double enabled_seconds = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const double disabled = run_pipeline(wan, candidates, configs[1]).wall_seconds;
    if (rep == 0 || disabled < disabled_seconds) disabled_seconds = disabled;
    obs::StatsRegistry overhead_registry;
    const obs::ScopedRegistry overhead_installed{overhead_registry};
    const double enabled = run_pipeline(wan, candidates, configs[1]).wall_seconds;
    if (rep == 0 || enabled < enabled_seconds) enabled_seconds = enabled;
  }
  const double overhead_pct =
      disabled_seconds > 0 ? (enabled_seconds - disabled_seconds) / disabled_seconds * 100.0
                           : 0.0;
  std::fprintf(stderr, "  observability overhead: disabled %.3fs, enabled %.3fs (%+.2f%%)\n",
               disabled_seconds, enabled_seconds, overhead_pct);

  obs::StatsRegistry registry;
  const obs::ScopedRegistry installed{registry};

  std::vector<PipelineResult> results;
  std::vector<std::string> config_counters;
  for (const auto& config : configs) {
    const auto before = snapshot_counters(registry);
    results.push_back(run_pipeline(wan, candidates, config));
    config_counters.push_back(counters_delta_json(before, snapshot_counters(registry)));
    const auto& r = results.back();
    std::fprintf(stderr,
                 "  %-17s %7.3fs  fecs=%zu  smt_queries=%llu  solve=%.3fs  hit_rate=%.2f\n",
                 r.name.c_str(), r.wall_seconds, r.fec_count,
                 static_cast<unsigned long long>(r.smt_queries), r.solve_seconds,
                 r.cache_hit_rate);
  }

  const auto batch = run_batch_workload(wan);
  std::fprintf(stderr, "  batch x%zu (%u threads): serial %.3fs, batch %.3fs, speedup %.2fx\n",
               batch.tasks, batch.threads, batch.serial_seconds, batch.batch_seconds,
               batch.speedup);

  const auto churn = run_churn_refinement(wan, 8);
  std::fprintf(stderr,
               "  churn x%zu: delta %.3fs, scratch %.3fs, speedup %.2fx, "
               "reused=%llu split=%llu identical=%d\n",
               churn.versions, churn.delta_seconds, churn.scratch_seconds, churn.speedup,
               static_cast<unsigned long long>(churn.reused_atoms),
               static_cast<unsigned long long>(churn.split_atoms), churn.identical ? 1 : 0);

  const double baseline = results.front().wall_seconds;
  std::FILE* out = std::fopen(json_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"workload\": \"repeated_check\",\n  \"network\": \"medium\",\n");
  std::fprintf(out, "  \"candidates\": %zu,\n  \"perturb_fraction\": 0.03,\n", candidates.size());
  std::fprintf(out, "  \"configurations\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"wall_seconds\": %.6f, \"fec_count\": %zu, "
                 "\"smt_queries\": %llu, \"solve_seconds\": %.6f, \"plan_seconds\": %.6f, "
                 "\"compile_seconds\": %.6f, \"execute_seconds\": %.6f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu, \"cache_hit_rate\": %.4f, \"checks\": %zu, "
                 "\"inconsistent\": %zu, \"speedup_vs_seed\": %.2f, \"counters\": %s}%s\n",
                 r.name.c_str(), r.wall_seconds, r.fec_count,
                 static_cast<unsigned long long>(r.smt_queries), r.solve_seconds, r.plan_seconds,
                 r.compile_seconds, r.execute_seconds,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses), r.cache_hit_rate, r.checks,
                 r.inconsistent, r.wall_seconds > 0 ? baseline / r.wall_seconds : 0.0,
                 config_counters[i].c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"batch\": {\"tasks\": %zu, \"threads\": %u, \"serial_seconds\": %.6f, "
               "\"batch_seconds\": %.6f, \"speedup\": %.2f},\n",
               batch.tasks, batch.threads, batch.serial_seconds, batch.batch_seconds,
               batch.speedup);
  std::fprintf(out,
               "  \"churn_refinement\": {\"versions\": %zu, \"base_predicates\": %zu, "
               "\"final_atoms\": %zu, \"delta_seconds\": %.6f, \"scratch_seconds\": %.6f, "
               "\"speedup\": %.2f, \"reused_atoms\": %llu, \"split_atoms\": %llu, "
               "\"identical\": %s},\n",
               churn.versions, churn.base_predicates, churn.final_atoms, churn.delta_seconds,
               churn.scratch_seconds, churn.speedup,
               static_cast<unsigned long long>(churn.reused_atoms),
               static_cast<unsigned long long>(churn.split_atoms),
               churn.identical ? "true" : "false");
  std::fprintf(out,
               "  \"observability\": {\"disabled_seconds\": %.6f, \"enabled_seconds\": %.6f, "
               "\"overhead_pct\": %.2f}\n}\n",
               disabled_seconds, enabled_seconds, overhead_pct);
  std::fclose(out);
  std::fprintf(stderr, "wrote %s (bdd_cached speedup vs seed: %.2fx)\n", json_path,
               baseline / results.back().wall_seconds);

  if (trace_path != nullptr) {
    std::ofstream trace_file{trace_path};
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s\n", trace_path);
      return 1;
    }
    registry.write_chrome_trace(trace_file);
    trace_file.flush();
    if (!trace_file) {
      std::fprintf(stderr, "error while writing %s\n", trace_path);
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", trace_path);
  }
  return 0;
}

}  // namespace
}  // namespace jinjing

int main(int argc, char** argv) {
  // Any --benchmark* flag selects the google-benchmark grid; the bare
  // invocation runs the backend/cache comparison and writes JSON.
  bool run_gbench = false;
  const char* json_path = "BENCH_check.json";
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) run_gbench = true;
    if (arg.rfind("--json=", 0) == 0) json_path = argv[i] + 7;
    if (arg.rfind("--trace=", 0) == 0) trace_path = argv[i] + 8;
  }
  if (!run_gbench) return jinjing::run_repeated_check_comparison(json_path, trace_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
