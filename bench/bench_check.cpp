// Figure 4a: turnaround time of the check primitive.
//
// Grid: {small, medium, large} x {1%, 3%, 5% perturbed rules} x
// {basic version, differential rules (Theorem 4.1)}.
//
// Expected shape (paper): differential is about an order of magnitude
// faster than basic; turnaround is insensitive to the perturbation rate
// because check returns at the first violation.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/checker.h"

namespace jinjing {
namespace {

void BM_Check(benchmark::State& state) {
  const auto& wan = bench::wan_for(state.range(0));
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  const bool differential = state.range(2) != 0;

  const auto update =
      gen::perturb_rules(wan, fraction, static_cast<unsigned>(17 * state.range(1) + 1));

  std::size_t fecs = 0;
  std::uint64_t queries = 0;
  bool consistent = true;
  for (auto _ : state) {
    smt::SmtContext smt;
    core::CheckOptions options;
    options.use_differential = differential;
    core::Checker checker{smt, wan.topo, wan.scope, options};
    const auto result = checker.check(update, wan.traffic);
    benchmark::DoNotOptimize(result);
    fecs = result.fec_count;
    queries = result.smt_queries;
    consistent = result.consistent;
  }
  state.counters["fecs"] = static_cast<double>(fecs);
  state.counters["smt_queries"] = static_cast<double>(queries);
  state.counters["consistent"] = consistent ? 1 : 0;
  state.SetLabel(std::string(bench::size_name(state.range(0))) + "/" +
                 std::to_string(state.range(1)) + "pct/" +
                 (differential ? "differential" : "basic"));
}

BENCHMARK(BM_Check)
    ->ArgNames({"net", "perturb_pct", "differential"})
    ->ArgsProduct({{0, 1, 2}, {1, 3, 5}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace jinjing

BENCHMARK_MAIN();
