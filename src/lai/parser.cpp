#include "lai/parser.h"

namespace jinjing::lai {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program prog;
    skip_separators();
    while (!at(TokenKind::End)) {
      statement(prog);
      if (!at(TokenKind::End)) expect_separator();
      skip_separators();
    }
    if (prog.scope.empty()) error("LAI program must declare a scope");
    if (prog.commands.empty()) error("LAI program must end with a command (check/fix/generate)");
    return prog;
  }

 private:
  void statement(Program& prog) {
    switch (peek().kind) {
      case TokenKind::KwScope:
        advance();
        prog.scope = iface_list();
        return;
      case TokenKind::KwAllow:
        advance();
        prog.allow = iface_list();
        return;
      case TokenKind::KwModify: {
        advance();
        // "modify A:1-in to acl1, C:1-in to acl2" or repeated statements.
        while (true) {
          ModifyStmt m;
          m.slot = iface_ref();
          expect(TokenKind::KwTo);
          m.acl_name = expect(TokenKind::Ident).text;
          prog.modifies.push_back(std::move(m));
          if (!at(TokenKind::Comma) && !at(TokenKind::KwAnd)) break;
          advance();
        }
        return;
      }
      case TokenKind::KwControl: {
        advance();
        ControlStmt c;
        c.from = iface_list();
        expect(TokenKind::Arrow);
        c.to = iface_list();
        c.verb = control_verb();
        c.header = header_spec();
        prog.controls.push_back(std::move(c));
        return;
      }
      case TokenKind::KwCheck:
        advance();
        prog.commands.push_back(Command::Check);
        return;
      case TokenKind::KwFix:
        advance();
        prog.commands.push_back(Command::Fix);
        return;
      case TokenKind::KwGenerate:
        advance();
        prog.commands.push_back(Command::Generate);
        return;
      default:
        error("expected a statement, got '" + spelling(peek()) + "'");
    }
  }

  ControlVerb control_verb() {
    switch (peek().kind) {
      case TokenKind::KwIsolate: advance(); return ControlVerb::Isolate;
      case TokenKind::KwOpen: advance(); return ControlVerb::Open;
      case TokenKind::KwMaintain: advance(); return ControlVerb::Maintain;
      default: error("expected isolate/open/maintain"); return ControlVerb::Maintain;
    }
  }

  HeaderSpec header_spec() {
    HeaderSpec spec;
    switch (peek().kind) {
      case TokenKind::KwAll:
        advance();
        spec.kind = HeaderSpec::Kind::All;
        return spec;
      case TokenKind::KwSrc:
      case TokenKind::KwFrom:
        advance();
        spec.kind = HeaderSpec::Kind::Src;
        break;
      case TokenKind::KwDst:
      case TokenKind::KwTo:
        advance();
        spec.kind = HeaderSpec::Kind::Dst;
        break;
      default:
        // Header is optional: "isolate" alone means all traffic.
        spec.kind = HeaderSpec::Kind::All;
        return spec;
    }
    if (at(TokenKind::KwAll)) {
      // "isolate dst all" — prefix 0.0.0.0/0.
      advance();
      spec.prefix = net::Prefix::any();
      return spec;
    }
    const auto& tok = expect(TokenKind::Ident);
    try {
      spec.prefix = net::parse_prefix(tok.text);
    } catch (const net::ParseError& e) {
      error(e.what());
    }
    return spec;
  }

  std::vector<IfaceRef> iface_list() {
    std::vector<IfaceRef> list;
    if (at(TokenKind::KwNil)) {
      advance();
      return list;
    }
    list.push_back(iface_ref());
    while (at(TokenKind::Comma) || at(TokenKind::KwAnd)) {
      advance();
      list.push_back(iface_ref());
    }
    return list;
  }

  IfaceRef iface_ref() {
    IfaceRef ref;
    ref.device = expect(TokenKind::Ident).text;
    if (at(TokenKind::Colon)) {
      advance();
      if (at(TokenKind::Star)) {
        advance();
      } else {
        ref.iface = expect(TokenKind::Ident).text;
      }
    }
    if (at(TokenKind::DirIn)) {
      advance();
      ref.dir = topo::Dir::In;
    } else if (at(TokenKind::DirOut)) {
      advance();
      ref.dir = topo::Dir::Out;
    }
    return ref;
  }

  // --- token plumbing ---------------------------------------------------
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  void advance() {
    if (!at(TokenKind::End)) ++pos_;
  }

  const Token& expect(TokenKind k) {
    if (!at(k)) {
      error("expected " + std::string(to_string(k)) + ", got '" + spelling(peek()) + "'");
    }
    const Token& tok = peek();
    advance();
    return tok;
  }

  void expect_separator() {
    if (!at(TokenKind::Newline) && !at(TokenKind::Semicolon)) {
      error("expected end of statement, got '" + spelling(peek()) + "'");
    }
    advance();
  }

  void skip_separators() {
    while (at(TokenKind::Newline) || at(TokenKind::Semicolon)) advance();
  }

  static std::string spelling(const Token& tok) {
    return tok.kind == TokenKind::Ident ? tok.text : std::string(to_string(tok.kind));
  }

  [[noreturn]] void error(const std::string& message) const {
    throw LaiError(message, peek().line, peek().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string_view to_string(ControlVerb v) {
  switch (v) {
    case ControlVerb::Isolate: return "isolate";
    case ControlVerb::Open: return "open";
    case ControlVerb::Maintain: return "maintain";
  }
  return "?";
}

std::string_view to_string(Command c) {
  switch (c) {
    case Command::Check: return "check";
    case Command::Fix: return "fix";
    case Command::Generate: return "generate";
  }
  return "?";
}

Program parse(std::string_view source) { return Parser{tokenize(source)}.run(); }

}  // namespace jinjing::lai
