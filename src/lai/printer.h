// Pretty-printer: AST back to LAI source. parse(print(p)) == p.
#pragma once

#include <string>

#include "lai/ast.h"

namespace jinjing::lai {

[[nodiscard]] std::string print(const IfaceRef& ref);
[[nodiscard]] std::string print(const Program& prog);

/// Number of statements the program spells out — the paper's Table 5
/// "LAI program line count" metric.
[[nodiscard]] std::size_t line_count(const Program& prog);

}  // namespace jinjing::lai
