#include "lai/printer.h"

namespace jinjing::lai {

namespace {

std::string print_list(const std::vector<IfaceRef>& refs) {
  if (refs.empty()) return "nil";
  std::string out;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) out += ", ";
    out += print(refs[i]);
  }
  return out;
}

std::string print_header(const HeaderSpec& spec) {
  switch (spec.kind) {
    case HeaderSpec::Kind::All: return " all";
    case HeaderSpec::Kind::Src: return " src " + to_string(spec.prefix);
    case HeaderSpec::Kind::Dst: return " dst " + to_string(spec.prefix);
  }
  return {};
}

}  // namespace

std::string print(const IfaceRef& ref) {
  std::string out = ref.device + ":" + (ref.iface ? *ref.iface : "*");
  if (ref.dir) out += *ref.dir == topo::Dir::In ? "-in" : "-out";
  return out;
}

std::string print(const Program& prog) {
  std::string out;
  out += "scope " + print_list(prog.scope) + "\n";
  if (!prog.allow.empty()) out += "allow " + print_list(prog.allow) + "\n";
  for (const auto& m : prog.modifies) {
    out += "modify " + print(m.slot) + " to " + m.acl_name + "\n";
  }
  for (const auto& c : prog.controls) {
    out += "control " + print_list(c.from) + " -> " + print_list(c.to) + " " +
           std::string(to_string(c.verb)) + print_header(c.header) + "\n";
  }
  for (const auto cmd : prog.commands) {
    out += std::string(to_string(cmd)) + "\n";
  }
  return out;
}

std::size_t line_count(const Program& prog) {
  std::size_t lines = 1;  // scope
  if (!prog.allow.empty()) ++lines;
  lines += prog.modifies.size();
  lines += prog.controls.size();
  lines += prog.commands.size();
  return lines;
}

}  // namespace jinjing::lai
