// Tokens of the LAI intent language (Figure 2 of the paper, extended with
// the production syntax used in §7: comma-separated interface lists, '*'
// wildcards, '-in'/'-out' direction suffixes and 'from'/'to' header specs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jinjing::lai {

enum class TokenKind : std::uint8_t {
  // keywords
  KwScope, KwAllow, KwModify, KwTo, KwControl, KwIsolate, KwOpen, KwMaintain,
  KwCheck, KwFix, KwGenerate, KwSrc, KwDst, KwFrom, KwAnd, KwAll, KwNil,
  // punctuation
  Colon,      // :
  Comma,      // ,
  Arrow,      // ->
  Semicolon,  // ; (statement separator, interchangeable with newline)
  Star,       // *
  DirIn,      // -in
  DirOut,     // -out
  // literals
  Ident,      // device / interface / ACL names, prefixes like 1.2.0.0/16
  Newline,
  End,
};

[[nodiscard]] std::string_view to_string(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;   // original spelling (for Ident)
  std::size_t line = 1;
  std::size_t column = 1;
};

}  // namespace jinjing::lai
