#include "lai/sema.h"

#include <algorithm>

namespace jinjing::lai {

namespace {

topo::DeviceId resolve_device(const topo::Topology& topo, const std::string& name) {
  const auto device = topo.find_device(name);
  if (!device) throw SemaError("unknown device '" + name + "'");
  return *device;
}

/// All interfaces an IfaceRef denotes.
std::vector<topo::InterfaceId> resolve_interfaces(const topo::Topology& topo,
                                                  const IfaceRef& ref) {
  const auto device = resolve_device(topo, ref.device);
  if (!ref.iface) return topo.interfaces_of(device);
  const auto iface = topo.find_interface(ref.device + ":" + *ref.iface);
  if (!iface) throw SemaError("unknown interface '" + ref.device + ":" + *ref.iface + "'");
  return {*iface};
}

/// All ACL slots an IfaceRef denotes (both directions when unsuffixed).
std::vector<topo::AclSlot> resolve_slots(const topo::Topology& topo, const IfaceRef& ref) {
  std::vector<topo::AclSlot> slots;
  for (const auto iface : resolve_interfaces(topo, ref)) {
    if (!ref.dir || *ref.dir == topo::Dir::In) slots.push_back({iface, topo::Dir::In});
    if (!ref.dir || *ref.dir == topo::Dir::Out) slots.push_back({iface, topo::Dir::Out});
  }
  return slots;
}

}  // namespace

bool UpdateTask::is_allowed(topo::AclSlot slot) const {
  return std::find(allowed.begin(), allowed.end(), slot) != allowed.end();
}

net::PacketSet header_set(const HeaderSpec& spec) {
  net::HyperCube cube;
  switch (spec.kind) {
    case HeaderSpec::Kind::All:
      break;
    case HeaderSpec::Kind::Src:
      cube.set_interval(net::Field::SrcIp, spec.prefix.interval());
      break;
    case HeaderSpec::Kind::Dst:
      cube.set_interval(net::Field::DstIp, spec.prefix.interval());
      break;
  }
  return net::PacketSet{cube};
}

UpdateTask resolve(const Program& prog, const topo::Topology& topo, const AclLibrary& acls) {
  UpdateTask task;

  for (const auto& ref : prog.scope) {
    task.scope.add(resolve_device(topo, ref.device));
  }

  for (const auto& ref : prog.allow) {
    for (const auto slot : resolve_slots(topo, ref)) {
      if (!task.scope.contains_interface(topo, slot.iface)) {
        throw SemaError("allowed interface " + topo.qualified_name(slot.iface) +
                        " is outside the scope");
      }
      if (!task.is_allowed(slot)) task.allowed.push_back(slot);
    }
  }

  for (const auto& m : prog.modifies) {
    if (!m.slot.iface) {
      throw SemaError("modify requires a concrete interface, got '" + m.slot.device + ":*'");
    }
    const auto ifaces = resolve_interfaces(topo, m.slot);
    // Unsuffixed modify slots default to the ingress ACL.
    const topo::AclSlot slot{ifaces.front(), m.slot.dir.value_or(topo::Dir::In)};
    const auto it = acls.find(m.acl_name);
    if (it == acls.end()) throw SemaError("unknown ACL name '" + m.acl_name + "'");
    if (task.modify.contains(slot)) {
      throw SemaError("duplicate modify for " + topo.qualified_name(slot.iface) + "-" +
                      std::string(to_string(slot.dir)));
    }
    if (!task.scope.contains_interface(topo, slot.iface)) {
      throw SemaError("modified interface " + topo.qualified_name(slot.iface) +
                      " is outside the scope");
    }
    task.modify.emplace(slot, it->second);
  }

  for (const auto& c : prog.controls) {
    ControlIntent intent;
    for (const auto& ref : c.from) {
      const auto ifaces = resolve_interfaces(topo, ref);
      intent.from.insert(intent.from.end(), ifaces.begin(), ifaces.end());
    }
    for (const auto& ref : c.to) {
      const auto ifaces = resolve_interfaces(topo, ref);
      intent.to.insert(intent.to.end(), ifaces.begin(), ifaces.end());
    }
    intent.verb = c.verb;
    intent.header = header_set(c.header);
    task.controls.push_back(std::move(intent));
  }

  task.commands = prog.commands;
  return task;
}

}  // namespace jinjing::lai
