#include "lai/lexer.h"

#include <array>
#include <cctype>
#include <utility>

namespace jinjing::lai {

namespace {

constexpr std::array<std::pair<std::string_view, TokenKind>, 17> kKeywords = {{
    {"scope", TokenKind::KwScope},
    {"allow", TokenKind::KwAllow},
    {"modify", TokenKind::KwModify},
    {"to", TokenKind::KwTo},
    {"control", TokenKind::KwControl},
    {"isolate", TokenKind::KwIsolate},
    {"open", TokenKind::KwOpen},
    {"maintain", TokenKind::KwMaintain},
    {"check", TokenKind::KwCheck},
    {"fix", TokenKind::KwFix},
    {"generate", TokenKind::KwGenerate},
    {"src", TokenKind::KwSrc},
    {"dst", TokenKind::KwDst},
    {"from", TokenKind::KwFrom},
    {"and", TokenKind::KwAnd},
    {"all", TokenKind::KwAll},
    {"nil", TokenKind::KwNil},
}};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '/' ||
         c == '\'';
}

}  // namespace

std::string_view to_string(TokenKind k) {
  switch (k) {
    case TokenKind::KwScope: return "scope";
    case TokenKind::KwAllow: return "allow";
    case TokenKind::KwModify: return "modify";
    case TokenKind::KwTo: return "to";
    case TokenKind::KwControl: return "control";
    case TokenKind::KwIsolate: return "isolate";
    case TokenKind::KwOpen: return "open";
    case TokenKind::KwMaintain: return "maintain";
    case TokenKind::KwCheck: return "check";
    case TokenKind::KwFix: return "fix";
    case TokenKind::KwGenerate: return "generate";
    case TokenKind::KwSrc: return "src";
    case TokenKind::KwDst: return "dst";
    case TokenKind::KwFrom: return "from";
    case TokenKind::KwAnd: return "and";
    case TokenKind::KwAll: return "all";
    case TokenKind::KwNil: return "nil";
    case TokenKind::Colon: return ":";
    case TokenKind::Comma: return ",";
    case TokenKind::Arrow: return "->";
    case TokenKind::Semicolon: return ";";
    case TokenKind::Star: return "*";
    case TokenKind::DirIn: return "-in";
    case TokenKind::DirOut: return "-out";
    case TokenKind::Ident: return "identifier";
    case TokenKind::Newline: return "newline";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;

  const auto push = [&](TokenKind kind, std::string text = {}) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      // Collapse runs of newlines into one separator token.
      if (!tokens.empty() && tokens.back().kind != TokenKind::Newline) push(TokenKind::Newline);
      ++i;
      ++line;
      column = 1;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      ++column;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == ':') { push(TokenKind::Colon); ++i; ++column; continue; }
    if (c == ',') { push(TokenKind::Comma); ++i; ++column; continue; }
    if (c == ';') { push(TokenKind::Semicolon); ++i; ++column; continue; }
    if (c == '*') { push(TokenKind::Star); ++i; ++column; continue; }
    if (c == '-') {
      const auto rest = source.substr(i);
      if (rest.starts_with("->")) {
        push(TokenKind::Arrow);
        i += 2;
        column += 2;
        continue;
      }
      if (rest.starts_with("-in") && (rest.size() == 3 || !is_ident_char(rest[3]))) {
        push(TokenKind::DirIn);
        i += 3;
        column += 3;
        continue;
      }
      if (rest.starts_with("-out") && (rest.size() == 4 || !is_ident_char(rest[4]))) {
        push(TokenKind::DirOut);
        i += 4;
        column += 4;
        continue;
      }
      throw LaiError("unexpected '-'", line, column);
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < source.size() && is_ident_char(source[j])) ++j;
      const auto word = source.substr(i, j - i);
      TokenKind kind = TokenKind::Ident;
      for (const auto& [kw, k] : kKeywords) {
        if (word == kw) {
          kind = k;
          break;
        }
      }
      push(kind, std::string(word));
      column += j - i;
      i = j;
      continue;
    }
    throw LaiError(std::string("unexpected character '") + c + "'", line, column);
  }
  // Drop a trailing newline separator and terminate.
  if (!tokens.empty() && tokens.back().kind == TokenKind::Newline) tokens.pop_back();
  tokens.push_back(Token{TokenKind::End, {}, line, column});
  return tokens;
}

}  // namespace jinjing::lai
