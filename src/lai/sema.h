// Semantic analysis: resolving a parsed LAI Program against a concrete
// Topology (and a library of named ACLs for modify statements) into a typed
// UpdateTask that the Jinjing engine executes.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "lai/ast.h"
#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::lai {

class SemaError : public std::runtime_error {
 public:
  explicit SemaError(const std::string& what) : std::runtime_error(what) {}
};

/// Named ACL definitions accompanying a program: "modify A:1-in to acl_a1"
/// looks "acl_a1" up here. Supplied by the operator's configuration files.
using AclLibrary = std::map<std::string, net::Acl, std::less<>>;

/// A control statement with all names resolved: which entry/exit interfaces
/// it spans and the exact packet set it talks about.
struct ControlIntent {
  std::vector<topo::InterfaceId> from;
  std::vector<topo::InterfaceId> to;
  ControlVerb verb = ControlVerb::Maintain;
  net::PacketSet header;  // the packets this intent constrains
};

/// The fully-resolved update task.
struct UpdateTask {
  topo::Scope scope;
  std::vector<topo::AclSlot> allowed;  // slots that may be modified
  topo::AclUpdate modify;              // L'_Ω: the proposed ACL rewrites
  std::vector<ControlIntent> controls; // in specification (priority) order
  std::vector<Command> commands;

  [[nodiscard]] bool is_allowed(topo::AclSlot slot) const;
};

/// The packet set a HeaderSpec denotes.
[[nodiscard]] net::PacketSet header_set(const HeaderSpec& spec);

/// Resolves `prog` against the topology. Throws SemaError for unknown
/// devices/interfaces/ACL names or ill-formed combinations.
[[nodiscard]] UpdateTask resolve(const Program& prog, const topo::Topology& topo,
                                 const AclLibrary& acls = {});

}  // namespace jinjing::lai
