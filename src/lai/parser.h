// Recursive-descent parser for LAI.
#pragma once

#include <string_view>

#include "lai/ast.h"
#include "lai/lexer.h"

namespace jinjing::lai {

/// Parses a complete LAI program. Throws LaiError with position info on
/// syntax errors.
[[nodiscard]] Program parse(std::string_view source);

}  // namespace jinjing::lai
