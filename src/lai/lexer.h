// Tokenizer for LAI programs.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lai/token.h"

namespace jinjing::lai {

class LaiError : public std::runtime_error {
 public:
  LaiError(const std::string& what, std::size_t line, std::size_t column)
      : std::runtime_error("LAI:" + std::to_string(line) + ":" + std::to_string(column) + ": " +
                           what),
        line(line),
        column(column) {}

  std::size_t line;
  std::size_t column;
};

/// Tokenizes the whole program. '#' starts a line comment. Throws LaiError
/// on characters outside the language.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace jinjing::lai
