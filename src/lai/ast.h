// Abstract syntax of LAI programs (Figure 2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.h"
#include "topo/topology.h"

namespace jinjing::lai {

/// A (possibly wildcarded) interface reference: "A:1", "R1:*", "R2:*-in".
/// A bare device name "A" is shorthand for "A:*".
struct IfaceRef {
  std::string device;
  std::optional<std::string> iface;  // nullopt = '*'
  std::optional<topo::Dir> dir;      // nullopt = both directions

  friend bool operator==(const IfaceRef&, const IfaceRef&) = default;
};

/// modify <slot> to <acl-name>: replace the ACL in a slot with a named ACL
/// from the configuration library supplied next to the program.
struct ModifyStmt {
  IfaceRef slot;
  std::string acl_name;

  friend bool operator==(const ModifyStmt&, const ModifyStmt&) = default;
};

enum class ControlVerb : std::uint8_t { Isolate, Open, Maintain };

[[nodiscard]] std::string_view to_string(ControlVerb v);

/// Header constraint of a control statement: all traffic, or traffic whose
/// src/dst lies in a prefix ("from p" ≡ "src p", "to p" ≡ "dst p").
struct HeaderSpec {
  enum class Kind : std::uint8_t { All, Src, Dst } kind = Kind::All;
  net::Prefix prefix;

  friend bool operator==(const HeaderSpec&, const HeaderSpec&) = default;
};

/// control <from-list> -> <to-list> (isolate|open|maintain) <header>
struct ControlStmt {
  std::vector<IfaceRef> from;
  std::vector<IfaceRef> to;
  ControlVerb verb = ControlVerb::Maintain;
  HeaderSpec header;

  friend bool operator==(const ControlStmt&, const ControlStmt&) = default;
};

enum class Command : std::uint8_t { Check, Fix, Generate };

[[nodiscard]] std::string_view to_string(Command c);

/// A parsed LAI program: region (scope/allow), requirement (modify/control)
/// and the command list, with control statements kept in specification
/// order (their order defines priority, §6).
struct Program {
  std::vector<IfaceRef> scope;
  std::vector<IfaceRef> allow;
  std::vector<ModifyStmt> modifies;
  std::vector<ControlStmt> controls;
  std::vector<Command> commands;

  friend bool operator==(const Program&, const Program&) = default;
};

}  // namespace jinjing::lai
