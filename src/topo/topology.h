// Network topology substrate: devices, interfaces, directed forwarding edges
// with packet-set predicates, and per-interface-per-direction ACL bindings.
//
// The model follows §3.3 of the paper: an interface ξ may hold an ingress
// and/or egress ACL L_ξ; a directed edge (i → j) carries the forwarding
// predicate g_{i,j} as an exact PacketSet. Intra-device edges connect an
// ingress interface to an egress interface of the same device; inter-device
// edges are physical links.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/acl.h"
#include "net/packet_set.h"

namespace jinjing::topo {

using DeviceId = std::uint32_t;
using InterfaceId = std::uint32_t;

/// Which ACL slot of an interface a binding or update refers to.
enum class Dir : std::uint8_t { In, Out };

[[nodiscard]] constexpr std::string_view to_string(Dir d) { return d == Dir::In ? "in" : "out"; }

/// An interface slot that can hold an ACL: (interface, direction).
struct AclSlot {
  InterfaceId iface = 0;
  Dir dir = Dir::In;

  friend constexpr bool operator==(const AclSlot&, const AclSlot&) = default;
};

struct AclSlotHash {
  std::size_t operator()(const AclSlot& s) const {
    return std::hash<std::uint64_t>{}((std::uint64_t{s.iface} << 1) | (s.dir == Dir::Out));
  }
};

class TopologyError : public std::runtime_error {
 public:
  explicit TopologyError(const std::string& what) : std::runtime_error(what) {}
};

/// A directed forwarding edge with its predicate g_{i,j}.
struct Edge {
  InterfaceId from = 0;
  InterfaceId to = 0;
  net::PacketSet predicate;
};

class Topology {
 public:
  [[nodiscard]] DeviceId add_device(std::string name);

  [[nodiscard]] InterfaceId add_interface(DeviceId device, std::string name);

  /// Marks an interface as attached to the world outside the network
  /// (it can originate/terminate externally-entering traffic).
  void mark_external(InterfaceId iface);

  /// Adds a directed forwarding edge carrying `predicate`.
  void add_edge(InterfaceId from, InterfaceId to, net::PacketSet predicate);

  /// Binds (replaces) the ACL in a slot.
  void bind_acl(AclSlot slot, net::Acl acl);
  void bind_acl(InterfaceId iface, Dir dir, net::Acl acl) { bind_acl(AclSlot{iface, dir}, std::move(acl)); }

  /// The ACL in a slot; an unbound slot behaves as "permit all".
  [[nodiscard]] const net::Acl& acl(AclSlot slot) const;
  [[nodiscard]] const net::Acl& acl(InterfaceId iface, Dir dir) const { return acl(AclSlot{iface, dir}); }
  [[nodiscard]] bool has_acl(AclSlot slot) const { return acls_.contains(slot); }

  /// All slots that currently hold an ACL.
  [[nodiscard]] std::vector<AclSlot> bound_slots() const;

  // --- Introspection ---------------------------------------------------
  [[nodiscard]] std::size_t device_count() const { return device_names_.size(); }
  [[nodiscard]] std::size_t interface_count() const { return iface_device_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::size_t>& out_edges(InterfaceId iface) const;

  [[nodiscard]] DeviceId device_of(InterfaceId iface) const;
  [[nodiscard]] bool is_external(InterfaceId iface) const { return external_.contains(iface); }
  [[nodiscard]] const std::string& device_name(DeviceId d) const;
  [[nodiscard]] const std::string& interface_name(InterfaceId i) const;
  /// "Device:iface" — the LAI notation for an interface.
  [[nodiscard]] std::string qualified_name(InterfaceId i) const;

  [[nodiscard]] std::optional<DeviceId> find_device(std::string_view name) const;
  /// Finds "Device:iface"; returns nullopt when absent.
  [[nodiscard]] std::optional<InterfaceId> find_interface(std::string_view qualified) const;
  /// All interfaces of a device.
  [[nodiscard]] std::vector<InterfaceId> interfaces_of(DeviceId d) const;

 private:
  void check_iface(InterfaceId iface) const;

  std::vector<std::string> device_names_;
  std::vector<DeviceId> iface_device_;
  std::vector<std::string> iface_names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;  // per-interface edge indices
  std::unordered_map<AclSlot, net::Acl, AclSlotHash> acls_;
  std::unordered_set<InterfaceId> external_;
  std::unordered_map<std::string, DeviceId> device_index_;
};

/// A proposed ACL configuration update: the slots being rewritten and their
/// new ACLs. Slots not present keep their current ACL (L'_Ω = L_Ω ⊕ update).
using AclUpdate = std::unordered_map<AclSlot, net::Acl, AclSlotHash>;

/// A read-only view of the network's ACL configuration, optionally overlaid
/// with a proposed update. This lets check/fix reason about L_Ω and L'_Ω
/// against one immutable Topology.
class ConfigView {
 public:
  explicit ConfigView(const Topology& topo, const AclUpdate* update = nullptr)
      : topo_(&topo), update_(update) {}

  [[nodiscard]] const Topology& topology() const { return *topo_; }

  /// The effective ACL for a slot under this view.
  [[nodiscard]] const net::Acl& acl(AclSlot slot) const {
    if (update_ != nullptr) {
      const auto it = update_->find(slot);
      if (it != update_->end()) return it->second;
    }
    return topo_->acl(slot);
  }

  /// Slots holding a (possibly updated) non-trivial ACL, sorted.
  [[nodiscard]] std::vector<AclSlot> bound_slots() const;

 private:
  const Topology* topo_;
  const AclUpdate* update_;
};

/// A management scope Ω: the set of devices whose ACLs are under management.
class Scope {
 public:
  Scope() = default;
  explicit Scope(std::unordered_set<DeviceId> devices) : devices_(std::move(devices)) {}

  /// The scope containing every device of the topology.
  [[nodiscard]] static Scope whole_network(const Topology& topo);

  void add(DeviceId d) { devices_.insert(d); }
  [[nodiscard]] bool contains_device(DeviceId d) const { return devices_.contains(d); }
  [[nodiscard]] bool contains_interface(const Topology& topo, InterfaceId i) const {
    return contains_device(topo.device_of(i));
  }
  [[nodiscard]] const std::unordered_set<DeviceId>& devices() const { return devices_; }
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

 private:
  std::unordered_set<DeviceId> devices_;
};

/// Border interfaces of Ω (§3.3): in-scope interfaces that exchange traffic
/// with the outside — externally attached, or linked across the scope edge.
[[nodiscard]] std::vector<InterfaceId> border_interfaces(const Topology& topo, const Scope& scope);

/// Border interfaces that can receive traffic from outside Ω.
[[nodiscard]] std::vector<InterfaceId> entry_interfaces(const Topology& topo, const Scope& scope);

/// Border interfaces that can send traffic outside Ω.
[[nodiscard]] std::vector<InterfaceId> exit_interfaces(const Topology& topo, const Scope& scope);

}  // namespace jinjing::topo
