// Border-to-border path enumeration and path decision models (§3.3).
//
// A path p is a list of interface hops from an entry border interface to an
// exit border interface of the scope Ω. A hop filters traffic with its
// ingress ACL when the packet enters a device through it and with its egress
// ACL when the packet leaves through it; the path decision model c_p is the
// conjunction of the hop decision models (Equation 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace jinjing::topo {

/// One ACL-relevant position on a path.
struct Hop {
  InterfaceId iface = 0;
  Dir dir = Dir::In;  // In: packet enters the device here; Out: leaves here

  [[nodiscard]] AclSlot slot() const { return AclSlot{iface, dir}; }
  friend constexpr bool operator==(const Hop&, const Hop&) = default;
};

class Path {
 public:
  Path() = default;
  explicit Path(std::vector<Hop> hops) : hops_(std::move(hops)) {}

  [[nodiscard]] const std::vector<Hop>& hops() const { return hops_; }
  [[nodiscard]] bool empty() const { return hops_.empty(); }
  [[nodiscard]] std::size_t size() const { return hops_.size(); }
  [[nodiscard]] InterfaceId entry() const { return hops_.front().iface; }
  [[nodiscard]] InterfaceId exit() const { return hops_.back().iface; }

  /// True when the path visits the interface (in either role).
  [[nodiscard]] bool visits(InterfaceId iface) const;
  [[nodiscard]] bool visits(AclSlot slot) const;

  friend bool operator==(const Path&, const Path&) = default;

 private:
  std::vector<Hop> hops_;
};

/// "⟨A1, A4, D1, D3⟩" — the paper's path notation.
[[nodiscard]] std::string to_string(const Topology& topo, const Path& p);

/// The set of packets routing can carry along the whole path: the
/// intersection of all edge predicates g on the path.
[[nodiscard]] net::PacketSet forwarding_set(const Topology& topo, const Path& p);

/// The path decision model c_p(h): conjunction of every hop ACL's decision.
[[nodiscard]] bool path_permits(const Topology& topo, const Path& p, const net::Packet& h);

/// c_p(h) under a configuration view (original or updated ACLs).
[[nodiscard]] bool path_permits(const ConfigView& view, const Path& p, const net::Packet& h);

/// The exact set of packets a path's ACLs permit (∧ of hop permitted-sets),
/// under a configuration view. This is the header-space dual of c_p.
[[nodiscard]] net::PacketSet path_permitted_set(const ConfigView& view, const Path& p);

/// Options for path enumeration.
struct PathEnumOptions {
  /// Hard cap guarding against path explosion; exceeded => TopologyError.
  std::size_t max_paths = 1u << 20;
  /// Skip paths whose forwarding set is empty (no routable traffic). The
  /// paper's generate primitive wants *all* topological paths (Eq. 10), so
  /// this defaults to false.
  bool prune_unroutable = false;
};

/// Enumerates all simple border-to-border paths inside Ω (footnote 1: cloud
/// topologies are DAG-structured, so this is polynomial in practice).
[[nodiscard]] std::vector<Path> enumerate_paths(const Topology& topo, const Scope& scope,
                                                const PathEnumOptions& options = {});

}  // namespace jinjing::topo
