// Forwarding equivalence classes (§4.1, Equation 2).
//
// Two packets are forwarding-equivalent when every forwarding predicate
// g ∈ G_Ω treats them identically. The FECs of the traffic entering Ω are
// the atoms of {g_{i,j}} restricted to that traffic, computed exactly by
// successive packet-set refinement.
//
// Refinement is backed by one of two exact set representations (FecOptions::
// backend): unions of disjoint hypercubes (PacketSet) or reduced ordered
// BDDs (net::BddManager). The BDD backend refines atoms as BDD nodes —
// intersection/difference with memoized node operations, O(1) emptiness —
// and converts to PacketSet only when handing classes to the SMT boundary.
// Both backends produce the same partition (property-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace jinjing::topo {

/// Which exact set representation backs atom refinement.
enum class SetBackend : std::uint8_t { Hypercube, Bdd };

[[nodiscard]] constexpr std::string_view to_string(SetBackend b) {
  return b == SetBackend::Hypercube ? "hypercube" : "bdd";
}

struct FecOptions {
  SetBackend backend = SetBackend::Hypercube;
  /// Worker threads for refinement (1 = sequential). Within one refinement
  /// the predicate list is split into groups refined concurrently and the
  /// group partitions merged by pairwise intersection (an exact identity:
  /// the atoms of a predicate union are the nonempty intersections of the
  /// per-group atoms). Per-entry classification additionally fans whole
  /// entries over the workers. The resulting partition is identical to the
  /// sequential one as a set of classes; only the order may differ.
  unsigned threads = 1;
};

/// Splits `entering` (the traffic X_Ω from the IP management system) into
/// forwarding equivalence classes w.r.t. all in-scope edge predicates.
/// The result is a disjoint partition of `entering`; empty classes are
/// dropped. Order is deterministic for a fixed FecOptions.
[[nodiscard]] std::vector<net::PacketSet> forwarding_equivalence_classes(
    const Topology& topo, const Scope& scope, const net::PacketSet& entering,
    const FecOptions& options = {});

/// Generic atom refinement: partitions `universe` so every predicate in
/// `predicates` is constant on each part. Shared by FEC (forwarding
/// predicates), AEC (ACL permitted-sets) and DEC derivation.
[[nodiscard]] std::vector<net::PacketSet> refine_into_atoms(
    const net::PacketSet& universe, const std::vector<net::PacketSet>& predicates,
    const FecOptions& options = {});

/// Per-entry forwarding classes: for each entry border interface of Ω, the
/// entering traffic is split only by the predicates of edges *reachable
/// from that entry*. Traffic entering at s never meets the other entries'
/// edges, so this avoids the spurious global refinement (e.g. intra-cell
/// source predicates fragmenting backbone classes) while checking exactly
/// the same (class, feasible-path) combinations.
struct EntryClasses {
  InterfaceId entry = 0;
  std::vector<net::PacketSet> classes;
};

[[nodiscard]] std::vector<EntryClasses> per_entry_equivalence_classes(
    const Topology& topo, const Scope& scope, const net::PacketSet& entering,
    const FecOptions& options = {});

/// The part of `seed` forwarded exactly like `h` by every in-scope edge —
/// seed ∩ [h]_FEC, computed lazily by folding the edge predicates around h
/// instead of materializing the global FEC partition.
[[nodiscard]] net::PacketSet fec_region_of(const Topology& topo, const Scope& scope,
                                           const net::PacketSet& seed, const net::Packet& h);

}  // namespace jinjing::topo
