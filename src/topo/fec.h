// Forwarding equivalence classes (§4.1, Equation 2).
//
// Two packets are forwarding-equivalent when every forwarding predicate
// g ∈ G_Ω treats them identically. The FECs of the traffic entering Ω are
// the atoms of {g_{i,j}} restricted to that traffic, computed exactly by
// successive packet-set refinement.
#pragma once

#include <vector>

#include "topo/topology.h"

namespace jinjing::topo {

/// Splits `entering` (the traffic X_Ω from the IP management system) into
/// forwarding equivalence classes w.r.t. all in-scope edge predicates.
/// The result is a disjoint partition of `entering`; empty classes are
/// dropped. Order is deterministic.
[[nodiscard]] std::vector<net::PacketSet> forwarding_equivalence_classes(
    const Topology& topo, const Scope& scope, const net::PacketSet& entering);

/// Generic atom refinement: partitions `universe` so every predicate in
/// `predicates` is constant on each part. Shared by FEC (forwarding
/// predicates), AEC (ACL permitted-sets) and DEC derivation.
[[nodiscard]] std::vector<net::PacketSet> refine_into_atoms(
    const net::PacketSet& universe, const std::vector<net::PacketSet>& predicates);

/// Per-entry forwarding classes: for each entry border interface of Ω, the
/// entering traffic is split only by the predicates of edges *reachable
/// from that entry*. Traffic entering at s never meets the other entries'
/// edges, so this avoids the spurious global refinement (e.g. intra-cell
/// source predicates fragmenting backbone classes) while checking exactly
/// the same (class, feasible-path) combinations.
struct EntryClasses {
  InterfaceId entry = 0;
  std::vector<net::PacketSet> classes;
};

[[nodiscard]] std::vector<EntryClasses> per_entry_equivalence_classes(
    const Topology& topo, const Scope& scope, const net::PacketSet& entering);

/// The part of `seed` forwarded exactly like `h` by every in-scope edge —
/// seed ∩ [h]_FEC, computed lazily by folding the edge predicates around h
/// instead of materializing the global FEC partition.
[[nodiscard]] net::PacketSet fec_region_of(const Topology& topo, const Scope& scope,
                                           const net::PacketSet& seed, const net::Packet& h);

}  // namespace jinjing::topo
