#include "topo/topology.h"

#include <algorithm>

namespace jinjing::topo {

DeviceId Topology::add_device(std::string name) {
  if (device_index_.contains(name)) throw TopologyError("duplicate device name: " + name);
  const auto id = static_cast<DeviceId>(device_names_.size());
  device_index_.emplace(name, id);
  device_names_.push_back(std::move(name));
  return id;
}

InterfaceId Topology::add_interface(DeviceId device, std::string name) {
  if (device >= device_names_.size()) throw TopologyError("unknown device id");
  const auto id = static_cast<InterfaceId>(iface_device_.size());
  iface_device_.push_back(device);
  iface_names_.push_back(std::move(name));
  out_edges_.emplace_back();
  return id;
}

void Topology::mark_external(InterfaceId iface) {
  check_iface(iface);
  external_.insert(iface);
}

void Topology::add_edge(InterfaceId from, InterfaceId to, net::PacketSet predicate) {
  check_iface(from);
  check_iface(to);
  const std::size_t index = edges_.size();
  edges_.push_back(Edge{from, to, std::move(predicate)});
  out_edges_[from].push_back(index);
}

void Topology::bind_acl(AclSlot slot, net::Acl acl) {
  check_iface(slot.iface);
  acls_[slot] = std::move(acl);
}

const net::Acl& Topology::acl(AclSlot slot) const {
  static const net::Acl kPermitAll = net::Acl::permit_all();
  const auto it = acls_.find(slot);
  return it == acls_.end() ? kPermitAll : it->second;
}

std::vector<AclSlot> Topology::bound_slots() const {
  std::vector<AclSlot> slots;
  slots.reserve(acls_.size());
  for (const auto& [slot, acl] : acls_) slots.push_back(slot);
  std::sort(slots.begin(), slots.end(), [](const AclSlot& a, const AclSlot& b) {
    return a.iface != b.iface ? a.iface < b.iface : a.dir < b.dir;
  });
  return slots;
}

const std::vector<std::size_t>& Topology::out_edges(InterfaceId iface) const {
  check_iface(iface);
  return out_edges_[iface];
}

DeviceId Topology::device_of(InterfaceId iface) const {
  check_iface(iface);
  return iface_device_[iface];
}

const std::string& Topology::device_name(DeviceId d) const {
  if (d >= device_names_.size()) throw TopologyError("unknown device id");
  return device_names_[d];
}

const std::string& Topology::interface_name(InterfaceId i) const {
  check_iface(i);
  return iface_names_[i];
}

std::string Topology::qualified_name(InterfaceId i) const {
  return device_name(device_of(i)) + ":" + interface_name(i);
}

std::optional<DeviceId> Topology::find_device(std::string_view name) const {
  const auto it = device_index_.find(std::string(name));
  if (it == device_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<InterfaceId> Topology::find_interface(std::string_view qualified) const {
  const auto colon = qualified.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto device = find_device(qualified.substr(0, colon));
  if (!device) return std::nullopt;
  const auto iface_name = qualified.substr(colon + 1);
  for (InterfaceId i = 0; i < iface_device_.size(); ++i) {
    if (iface_device_[i] == *device && iface_names_[i] == iface_name) return i;
  }
  return std::nullopt;
}

std::vector<InterfaceId> Topology::interfaces_of(DeviceId d) const {
  std::vector<InterfaceId> out;
  for (InterfaceId i = 0; i < iface_device_.size(); ++i) {
    if (iface_device_[i] == d) out.push_back(i);
  }
  return out;
}

void Topology::check_iface(InterfaceId iface) const {
  if (iface >= iface_device_.size()) throw TopologyError("unknown interface id");
}

std::vector<AclSlot> ConfigView::bound_slots() const {
  std::vector<AclSlot> slots = topo_->bound_slots();
  if (update_ != nullptr) {
    for (const auto& [slot, acl] : *update_) {
      if (std::find(slots.begin(), slots.end(), slot) == slots.end()) slots.push_back(slot);
    }
    std::sort(slots.begin(), slots.end(), [](const AclSlot& a, const AclSlot& b) {
      return a.iface != b.iface ? a.iface < b.iface : a.dir < b.dir;
    });
  }
  return slots;
}

Scope Scope::whole_network(const Topology& topo) {
  std::unordered_set<DeviceId> all;
  for (DeviceId d = 0; d < topo.device_count(); ++d) all.insert(d);
  return Scope{std::move(all)};
}

namespace {

enum class BorderKind { Entry, Exit, Any };

std::vector<InterfaceId> border_impl(const Topology& topo, const Scope& scope, BorderKind kind) {
  std::vector<InterfaceId> out;
  std::vector<bool> seen(topo.interface_count(), false);
  const auto add = [&](InterfaceId i) {
    if (!seen[i]) {
      seen[i] = true;
      out.push_back(i);
    }
  };

  // Cross-scope edges make both flavors of border interface.
  for (const auto& edge : topo.edges()) {
    const bool from_in = scope.contains_interface(topo, edge.from);
    const bool to_in = scope.contains_interface(topo, edge.to);
    if (from_in && !to_in && kind != BorderKind::Entry) add(edge.from);
    if (!from_in && to_in && kind != BorderKind::Exit) add(edge.to);
  }

  // Externally attached interfaces: entry if they inject traffic into the
  // scope (have out-edges), exit if they drain it (appear as edge targets).
  for (InterfaceId i = 0; i < topo.interface_count(); ++i) {
    if (!topo.is_external(i) || !scope.contains_interface(topo, i)) continue;
    const bool has_out = !topo.out_edges(i).empty();
    bool has_in = false;
    for (const auto& edge : topo.edges()) {
      if (edge.to == i) {
        has_in = true;
        break;
      }
    }
    if (kind == BorderKind::Any || (kind == BorderKind::Entry && has_out) ||
        (kind == BorderKind::Exit && has_in)) {
      add(i);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<InterfaceId> border_interfaces(const Topology& topo, const Scope& scope) {
  return border_impl(topo, scope, BorderKind::Any);
}

std::vector<InterfaceId> entry_interfaces(const Topology& topo, const Scope& scope) {
  return border_impl(topo, scope, BorderKind::Entry);
}

std::vector<InterfaceId> exit_interfaces(const Topology& topo, const Scope& scope) {
  return border_impl(topo, scope, BorderKind::Exit);
}

}  // namespace jinjing::topo
