// Memoized equivalence-class derivation.
//
// The classes of the traffic entering a scope depend only on (scope,
// entering set, in-scope forwarding predicates) — NOT on the ACL update
// under test. The fixer and synthesizer candidate loops therefore re-derive
// identical partitions on every check() of a new candidate; this cache
// makes those derivations one lookup. Keys are structural fingerprints of
// the inputs, guarded by an exact comparison of the entering set's cubes
// (and the topology's identity) so a hash collision can never return the
// wrong classes.
//
// Versioned lineage: StateStore applies are ACL-only, so two adjacent
// versions share all edges and forwarding predicates and their partitions
// are identical. record_delta() links the versions in O(1); a lookup that
// misses on the new topology walks the lineage (bounded by the delta-chain
// budget) and stitches the ancestor's partition through unchanged instead
// of re-deriving it. Ancestor pointers are only ever compared, never
// dereferenced, and evict() re-points lineage past retired snapshots, so a
// Topology later allocated at a recycled address can never alias.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "topo/fec.h"

namespace jinjing::topo {

class FecCache {
 public:
  using EntryClassesPtr = std::shared_ptr<const std::vector<EntryClasses>>;
  using ClassesPtr = std::shared_ptr<const std::vector<net::PacketSet>>;

  /// Cached per_entry_equivalence_classes. Thread-safe; on a miss the
  /// derivation runs outside the lock (two racing misses both compute, the
  /// results are interchangeable).
  [[nodiscard]] EntryClassesPtr entry_classes(const Topology& topo, const Scope& scope,
                                              const net::PacketSet& entering,
                                              const FecOptions& options);

  /// Cached forwarding_equivalence_classes.
  [[nodiscard]] ClassesPtr global_classes(const Topology& topo, const Scope& scope,
                                          const net::PacketSet& entering,
                                          const FecOptions& options);

  /// Cached ACL-overlay partitions (core::acl_equivalence_classes inner
  /// loop), keyed by the exact cubes of (universe, overlay regions) — no
  /// topology identity, so versions whose scoped ACLs coincide share the
  /// partition. Exact-match only: nullptr on miss, the caller computes and
  /// store_overlay()s. LRU-bounded independently of snapshot eviction.
  [[nodiscard]] ClassesPtr find_overlay(const net::PacketSet& universe,
                                        const std::vector<net::PacketSet>& regions);
  void store_overlay(const net::PacketSet& universe,
                     const std::vector<net::PacketSet>& regions, ClassesPtr atoms);

  /// Records that `to` was produced from `from` by an ACL-only apply: every
  /// partition memoized for `from` is valid for `to`. O(1) — the stitch
  /// happens lazily on the first lookup that misses on `to`, walking at
  /// most `max_chain` lineage hops before falling back to a from-scratch
  /// derivation (counted as a delta rebuild).
  void record_delta(const Topology* from, const Topology* to, std::size_t max_chain);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// hits / (hits + misses), or 0 when never queried.
  [[nodiscard]] double hit_rate() const;

  /// Memoized partitions currently held. Entries are keyed per live
  /// topology, so in a versioned server this must stay proportional to the
  /// number of live snapshots — the soak harness's eviction watchdog.
  [[nodiscard]] std::size_t live_entries() const;

  /// Live lineage links (one per remembered version edge).
  [[nodiscard]] std::size_t lineage_entries() const;

  void clear();

  /// Drops every memoized partition derived from `topo` — called when a
  /// versioned snapshot is retired so a later Topology allocated at the
  /// same address can never alias a dead entry. Lineage links through
  /// `topo` are path-compressed onto its own ancestor, keeping descendant
  /// chains resolvable.
  void evict(const Topology* topo);

 private:
  struct Slot {
    // Exact-match guard behind the fingerprint: same topology object, same
    // entering cubes. Scope and predicates are covered by the fingerprint
    // (they are derived from the topology, which is identity-compared).
    const Topology* topo = nullptr;
    std::vector<net::HyperCube> entering_cubes;
    EntryClassesPtr entry;
    ClassesPtr global;
  };

  struct OverlaySlot {
    std::vector<net::HyperCube> universe_cubes;
    std::vector<std::vector<net::HyperCube>> region_cubes;
    ClassesPtr atoms;
    std::uint64_t stamp = 0;
  };

  static constexpr std::size_t kMaxOverlaySlots = 64;

  [[nodiscard]] Slot* find_slot(std::uint64_t key, const Topology& topo,
                                const net::PacketSet& entering);
  /// Walks the lineage of `topo` (bounded by the recorded chain budget)
  /// looking for an ancestor slot with the wanted payload; on success
  /// stitches a copy under `topo` and returns it. Ancestors are compared by
  /// pointer only. Returns nullptr when no ancestor resolves in budget
  /// (counting a rebuild if the chain was merely too long).
  [[nodiscard]] Slot* stitch_from_lineage_locked(std::uint64_t key, const Topology& topo,
                                                 const net::PacketSet& entering,
                                                 bool want_entry);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Slot>> slots_;
  std::unordered_map<const Topology*, const Topology*> lineage_;
  std::vector<OverlaySlot> overlays_;
  std::uint64_t overlay_stamp_ = 0;
  std::size_t max_chain_ = 16;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace jinjing::topo
