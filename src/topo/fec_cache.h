// Memoized equivalence-class derivation.
//
// The classes of the traffic entering a scope depend only on (scope,
// entering set, in-scope forwarding predicates) — NOT on the ACL update
// under test. The fixer and synthesizer candidate loops therefore re-derive
// identical partitions on every check() of a new candidate; this cache
// makes those derivations one lookup. Keys are structural fingerprints of
// the inputs, guarded by an exact comparison of the entering set's cubes
// (and the topology's identity) so a hash collision can never return the
// wrong classes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "topo/fec.h"

namespace jinjing::topo {

class FecCache {
 public:
  using EntryClassesPtr = std::shared_ptr<const std::vector<EntryClasses>>;
  using ClassesPtr = std::shared_ptr<const std::vector<net::PacketSet>>;

  /// Cached per_entry_equivalence_classes. Thread-safe; on a miss the
  /// derivation runs outside the lock (two racing misses both compute, the
  /// results are interchangeable).
  [[nodiscard]] EntryClassesPtr entry_classes(const Topology& topo, const Scope& scope,
                                              const net::PacketSet& entering,
                                              const FecOptions& options);

  /// Cached forwarding_equivalence_classes.
  [[nodiscard]] ClassesPtr global_classes(const Topology& topo, const Scope& scope,
                                          const net::PacketSet& entering,
                                          const FecOptions& options);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// hits / (hits + misses), or 0 when never queried.
  [[nodiscard]] double hit_rate() const;

  /// Memoized partitions currently held. Entries are keyed per live
  /// topology, so in a versioned server this must stay proportional to the
  /// number of live snapshots — the soak harness's eviction watchdog.
  [[nodiscard]] std::size_t live_entries() const;

  void clear();

  /// Drops every memoized partition derived from `topo` — called when a
  /// versioned snapshot is retired so a later Topology allocated at the
  /// same address can never alias a dead entry.
  void evict(const Topology* topo);

  /// Re-keys every partition memoized for `from` under `to` as well. Only
  /// sound when the two topologies share all edges and forwarding
  /// predicates (an ACL-only StateStore apply): the fingerprint and the
  /// derived classes are then identical, so the payload shared_ptrs are
  /// shared, not recomputed. `to`'s entries are evicted independently when
  /// its own snapshot retires.
  void share(const Topology& from, const Topology& to);

 private:
  struct Slot {
    // Exact-match guard behind the fingerprint: same topology object, same
    // entering cubes. Scope and predicates are covered by the fingerprint
    // (they are derived from the topology, which is identity-compared).
    const Topology* topo = nullptr;
    std::vector<net::HyperCube> entering_cubes;
    EntryClassesPtr entry;
    ClassesPtr global;
  };

  [[nodiscard]] Slot* find_slot(std::uint64_t key, const Topology& topo,
                                const net::PacketSet& entering);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Slot>> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace jinjing::topo
