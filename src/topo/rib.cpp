#include "topo/rib.h"

#include <algorithm>

namespace jinjing::topo {

namespace {

net::PacketSet prefix_set(const net::Prefix& p) {
  net::HyperCube cube;
  cube.set_interval(net::Field::DstIp, p.interval());
  return net::PacketSet{cube};
}

}  // namespace

void Rib::add(const net::Prefix& prefix, InterfaceId next_hop) {
  add(prefix, std::vector<InterfaceId>{next_hop});
}

void Rib::add(const net::Prefix& prefix, std::vector<InterfaceId> next_hops) {
  // Merge into an existing entry for the same prefix (ECMP accretion).
  for (auto& entry : entries_) {
    if (entry.prefix == prefix) {
      for (const auto hop : next_hops) {
        if (std::find(entry.next_hops.begin(), entry.next_hops.end(), hop) ==
            entry.next_hops.end()) {
          entry.next_hops.push_back(hop);
        }
      }
      return;
    }
  }
  entries_.push_back(RibEntry{prefix, std::move(next_hops)});
}

std::vector<InterfaceId> Rib::lookup(net::Ipv4 dst) const {
  const RibEntry* best = nullptr;
  for (const auto& entry : entries_) {
    if (!entry.prefix.contains(dst)) continue;
    if (best == nullptr || entry.prefix.len > best->prefix.len) best = &entry;
  }
  return best == nullptr ? std::vector<InterfaceId>{} : best->next_hops;
}

net::PacketSet Rib::forwarded_to(InterfaceId iface) const {
  net::PacketSet out;
  for (const auto& entry : entries_) {
    if (std::find(entry.next_hops.begin(), entry.next_hops.end(), iface) ==
        entry.next_hops.end()) {
      continue;
    }
    // LPM: this entry is effective where no longer-prefix entry covers.
    net::PacketSet effective = prefix_set(entry.prefix);
    for (const auto& other : entries_) {
      if (other.prefix.len > entry.prefix.len && entry.prefix.contains(other.prefix)) {
        effective = effective - prefix_set(other.prefix);
        if (effective.is_empty()) break;
      }
    }
    out = out | effective;
  }
  return out.compact();
}

net::PacketSet Rib::routable() const {
  net::PacketSet out;
  for (const auto& entry : entries_) out = out | prefix_set(entry.prefix);
  return out.compact();
}

void install_rib(Topology& topo, const std::vector<InterfaceId>& ingress, const Rib& rib) {
  // Collect the egress interfaces the RIB mentions.
  std::vector<InterfaceId> egress;
  for (const auto& entry : rib.entries()) {
    for (const auto hop : entry.next_hops) {
      if (std::find(egress.begin(), egress.end(), hop) == egress.end()) egress.push_back(hop);
    }
  }
  for (const auto out : egress) {
    const auto predicate = rib.forwarded_to(out);
    if (predicate.is_empty()) continue;
    for (const auto in : ingress) {
      if (in == out) continue;
      topo.add_edge(in, out, predicate);
    }
  }
}

}  // namespace jinjing::topo
