// Routing information bases: longest-prefix-match tables that compile into
// the forwarding predicates g_{i,j} the verification algorithms consume.
//
// The paper's pipeline takes "routing tables" from the IP management
// system (§4.1); a device's RIB maps destination prefixes to egress
// interfaces (several for ECMP). LPM semantics compile exactly into packet
// sets: an entry's effective predicate is its prefix minus every
// longer-prefix entry, so the resulting edge predicates partition the
// routable space per device.
#pragma once

#include <optional>
#include <vector>

#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::topo {

/// One RIB entry: destination prefix -> egress interfaces (>1 = ECMP).
struct RibEntry {
  net::Prefix prefix;
  std::vector<InterfaceId> next_hops;
};

/// A device's routing table. Entries may be added in any order; lookups
/// follow longest-prefix-match with an optional default route (0.0.0.0/0
/// is simply an ordinary entry).
class Rib {
 public:
  void add(const net::Prefix& prefix, InterfaceId next_hop);
  void add(const net::Prefix& prefix, std::vector<InterfaceId> next_hops);

  [[nodiscard]] const std::vector<RibEntry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// LPM lookup: the egress interfaces for a destination, empty when no
  /// entry covers it (the packet is dropped).
  [[nodiscard]] std::vector<InterfaceId> lookup(net::Ipv4 dst) const;

  /// The exact set of packets this RIB forwards to `iface`: the union over
  /// its entries of (prefix minus all longer-prefix entries).
  [[nodiscard]] net::PacketSet forwarded_to(InterfaceId iface) const;

  /// The set of destinations with any route at all.
  [[nodiscard]] net::PacketSet routable() const;

 private:
  std::vector<RibEntry> entries_;
};

/// Installs a device's RIB into the topology: for every ingress interface
/// `from` of the device and every egress interface the RIB forwards to, an
/// intra-device edge with the compiled predicate is added. `ingress` lists
/// the device's traffic-receiving interfaces.
void install_rib(Topology& topo, const std::vector<InterfaceId>& ingress, const Rib& rib);

}  // namespace jinjing::topo
