#include "topo/paths.h"

#include <algorithm>

#include "net/acl_algebra.h"

namespace jinjing::topo {

bool Path::visits(InterfaceId iface) const {
  return std::any_of(hops_.begin(), hops_.end(),
                     [iface](const Hop& h) { return h.iface == iface; });
}

bool Path::visits(AclSlot slot) const {
  return std::any_of(hops_.begin(), hops_.end(), [slot](const Hop& h) { return h.slot() == slot; });
}

std::string to_string(const Topology& topo, const Path& p) {
  std::string out = "<";
  for (std::size_t i = 0; i < p.hops().size(); ++i) {
    if (i > 0) out += ", ";
    out += topo.qualified_name(p.hops()[i].iface);
  }
  out += ">";
  return out;
}

net::PacketSet forwarding_set(const Topology& topo, const Path& p) {
  net::PacketSet carried = net::PacketSet::all();
  for (std::size_t i = 0; i + 1 < p.hops().size(); ++i) {
    const InterfaceId from = p.hops()[i].iface;
    const InterfaceId to = p.hops()[i + 1].iface;
    bool found = false;
    for (const std::size_t e : topo.out_edges(from)) {
      if (topo.edges()[e].to == to) {
        carried = carried & topo.edges()[e].predicate;
        found = true;
        break;
      }
    }
    if (!found) throw TopologyError("path hop without a connecting edge");
    if (carried.is_empty()) break;
  }
  return carried;
}

bool path_permits(const Topology& topo, const Path& p, const net::Packet& h) {
  return path_permits(ConfigView{topo}, p, h);
}

bool path_permits(const ConfigView& view, const Path& p, const net::Packet& h) {
  for (const Hop& hop : p.hops()) {
    if (!view.acl(hop.slot()).permits(h)) return false;
  }
  return true;
}

net::PacketSet path_permitted_set(const ConfigView& view, const Path& p) {
  net::PacketSet permitted = net::PacketSet::all();
  for (const Hop& hop : p.hops()) {
    const net::Acl& acl = view.acl(hop.slot());
    if (acl.empty() && acl.default_action() == net::Action::Permit) continue;
    permitted = permitted & net::permitted_set(acl);
    if (permitted.is_empty()) break;
  }
  return permitted;
}

namespace {

class PathEnumerator {
 public:
  PathEnumerator(const Topology& topo, const Scope& scope, const PathEnumOptions& options)
      : topo_(topo), scope_(scope), options_(options), visited_(topo.interface_count(), false) {}

  std::vector<Path> run() {
    for (const InterfaceId entry : entry_interfaces(topo_, scope_)) {
      current_.clear();
      std::fill(visited_.begin(), visited_.end(), false);
      current_.push_back(Hop{entry, Dir::In});
      visited_[entry] = true;
      dfs(entry, Dir::In);
    }
    return std::move(paths_);
  }

 private:
  void record() {
    if (paths_.size() >= options_.max_paths) {
      throw TopologyError("path enumeration exceeded max_paths = " +
                          std::to_string(options_.max_paths));
    }
    Path p{current_};
    if (options_.prune_unroutable && forwarding_set(topo_, p).is_empty()) return;
    paths_.push_back(std::move(p));
  }

  void dfs(InterfaceId iface, Dir role) {
    // This hop completes a path when the packet can leave the scope here:
    // an externally attached egress interface, or an edge out of Ω.
    bool leaves_scope = false;
    if (role == Dir::Out && topo_.is_external(iface)) leaves_scope = true;
    for (const std::size_t e : topo_.out_edges(iface)) {
      if (!scope_.contains_interface(topo_, topo_.edges()[e].to)) leaves_scope = true;
    }
    if (leaves_scope && current_.size() > 1) record();

    for (const std::size_t e : topo_.out_edges(iface)) {
      const Edge& edge = topo_.edges()[e];
      if (!scope_.contains_interface(topo_, edge.to)) continue;
      if (visited_[edge.to]) continue;
      const Dir next_role =
          topo_.device_of(edge.to) == topo_.device_of(iface) ? Dir::Out : Dir::In;
      visited_[edge.to] = true;
      current_.push_back(Hop{edge.to, next_role});
      dfs(edge.to, next_role);
      current_.pop_back();
      visited_[edge.to] = false;
    }
  }

  const Topology& topo_;
  const Scope& scope_;
  const PathEnumOptions& options_;
  std::vector<bool> visited_;
  std::vector<Hop> current_;
  std::vector<Path> paths_;
};

}  // namespace

std::vector<Path> enumerate_paths(const Topology& topo, const Scope& scope,
                                  const PathEnumOptions& options) {
  return PathEnumerator{topo, scope, options}.run();
}

}  // namespace jinjing::topo
