// Delta FEC refinement: carry a partition across a predicate delta.
//
// Refinement is a meet-semilattice: atoms(P ∪ D) is obtainable from
// atoms(P) by refining the base atoms — in base order — by the predicates
// of D, in order. An atom disjoint from every changed predicate keeps its
// class (it passes through every split untouched), so only atoms whose
// packet sets actually meet a changed predicate are re-split; the rest are
// stitched through unchanged. This is the per-version fast path: a typical
// applied update perturbs a handful of predicates, so the delta costs
// |atoms| × |D| emptiness tests plus the few real splits instead of a full
// |P ∪ D| refinement.
//
// Exactness contract (property-tested in fec_delta_test): given
//   base == refine_into_atoms(universe, P, {backend, threads: 1})
// the delta result's atoms are bit-identical — same classes, same order,
// same cube representation — to
//   refine_into_atoms(universe, P ++ D, {backend, threads: 1})
// under both backends. (A base produced by multi-threaded refinement is a
// valid partition in a different order; the delta then reproduces the
// partition exactly but inherits the base's order.) The identity holds
// because sequential refinement processes predicates outermost: the state
// after P is exactly `base`, and continuing with D is what refine_delta
// executes — including the representation details (pass-through atoms are
// never re-compacted; split fragments are compacted inside-before-outside).
#pragma once

#include <vector>

#include "topo/fec.h"

namespace jinjing::topo {

struct FecDeltaResult {
  /// The refined partition: atoms(P ∪ D) in deterministic order.
  std::vector<net::PacketSet> atoms;
  /// touched[i]: atoms[i] lies inside at least one changed predicate — the
  /// delta may have changed behaviour there. Atoms with touched[i] == false
  /// are provably unaffected (disjoint from every changed predicate).
  std::vector<bool> touched;
  /// Base atoms that passed through every changed predicate unchanged.
  std::size_t reused = 0;
  /// Base atoms that met at least one changed predicate and were re-split
  /// (or had their representation replaced by the contained fragment).
  std::size_t split = 0;
};

/// Refines `base` (a disjoint partition) by the `changed` predicates, in
/// order, reproducing sequential from-scratch refinement of the combined
/// predicate list. Always sequential: the changed set is small by
/// construction, and sequential continuation is what the bit-identity
/// contract requires.
[[nodiscard]] FecDeltaResult refine_delta(const std::vector<net::PacketSet>& base,
                                          const std::vector<net::PacketSet>& changed,
                                          SetBackend backend = SetBackend::Hypercube);

}  // namespace jinjing::topo
