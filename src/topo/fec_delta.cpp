#include "topo/fec_delta.h"

#include <unordered_map>
#include <utility>

#include "net/bdd.h"
#include "obs/stats.h"

namespace jinjing::topo {

namespace {

/// One in-flight fragment of a base atom: the packet set (or node) plus
/// whether it has landed inside a changed predicate so far. The flag rides
/// the split: an `inside` fragment is contained in the predicate (touched);
/// an `outside` fragment inherits — it is disjoint from this predicate but
/// may sit inside an earlier one.
struct HypercubeFragment {
  net::PacketSet set;
  bool touched = false;
};

/// Refines one base atom by the changed predicates, hypercube backend.
/// Identical step semantics to refine_hypercube: a fragment disjoint from
/// the predicate passes through verbatim (no re-compaction); otherwise the
/// contained part is pushed first, then the nonempty remainder, both
/// compacted. Returns whether any split happened.
bool refine_atom_hypercube(const net::PacketSet& atom,
                           const std::vector<net::PacketSet>& changed,
                           std::vector<HypercubeFragment>& out) {
  out.clear();
  out.push_back({atom, false});
  bool any_split = false;
  for (const auto& pred : changed) {
    std::vector<HypercubeFragment> next;
    next.reserve(out.size());
    for (auto& frag : out) {
      net::PacketSet inside = frag.set & pred;
      if (inside.is_empty()) {
        next.push_back(std::move(frag));
        continue;
      }
      any_split = true;
      net::PacketSet outside = frag.set - pred;
      next.push_back({std::move(inside.compact()), true});
      if (!outside.is_empty()) next.push_back({std::move(outside.compact()), frag.touched});
    }
    out = std::move(next);
  }
  return any_split;
}

FecDeltaResult refine_delta_hypercube(const std::vector<net::PacketSet>& base,
                                      const std::vector<net::PacketSet>& changed) {
  FecDeltaResult result;
  result.atoms.reserve(base.size());
  result.touched.reserve(base.size());
  std::vector<HypercubeFragment> fragments;
  for (const auto& atom : base) {
    if (!refine_atom_hypercube(atom, changed, fragments)) {
      // Untouched: the atom keeps its class and its exact representation.
      result.atoms.push_back(atom);
      result.touched.push_back(false);
      ++result.reused;
      continue;
    }
    ++result.split;
    for (auto& frag : fragments) {
      result.atoms.push_back(std::move(frag.set));
      result.touched.push_back(frag.touched);
    }
  }
  return result;
}

FecDeltaResult refine_delta_bdd(const std::vector<net::PacketSet>& base,
                                const std::vector<net::PacketSet>& changed) {
  using Node = net::BddManager::Node;
  net::BddManager mgr;
  // Convert each changed predicate once, shared across every base atom.
  std::vector<Node> pred_nodes;
  pred_nodes.reserve(changed.size());
  for (const auto& pred : changed) pred_nodes.push_back(mgr.from_set(pred));

  struct BddFragment {
    Node node;
    bool touched = false;
  };

  FecDeltaResult result;
  result.atoms.reserve(base.size());
  result.touched.reserve(base.size());
  std::vector<BddFragment> fragments;
  for (const auto& atom : base) {
    fragments.clear();
    fragments.push_back({mgr.from_set(atom), false});
    bool any_split = false;
    for (const Node p : pred_nodes) {
      std::vector<BddFragment> next;
      next.reserve(fragments.size());
      for (const BddFragment frag : fragments) {
        const Node inside = mgr.land(frag.node, p);
        if (inside == net::BddManager::kFalse) {
          next.push_back(frag);
          continue;
        }
        any_split = true;
        const Node outside = mgr.ldiff(frag.node, p);
        next.push_back({inside, true});
        if (outside != net::BddManager::kFalse) next.push_back({outside, frag.touched});
      }
      fragments = std::move(next);
    }
    if (!any_split) {
      // The base atom was produced by to_set(node).compact() — emitting it
      // verbatim is exactly what a from-scratch run would output here.
      result.atoms.push_back(atom);
      result.touched.push_back(false);
      ++result.reused;
      continue;
    }
    ++result.split;
    for (const BddFragment& frag : fragments) {
      result.atoms.push_back(mgr.to_set(frag.node).compact());
      result.touched.push_back(frag.touched);
    }
  }
  return result;
}

}  // namespace

FecDeltaResult refine_delta(const std::vector<net::PacketSet>& base,
                            const std::vector<net::PacketSet>& changed, SetBackend backend) {
  if (changed.empty()) {
    FecDeltaResult result;
    result.atoms = base;
    result.touched.assign(base.size(), false);
    result.reused = base.size();
    return result;
  }
  FecDeltaResult result = backend == SetBackend::Bdd ? refine_delta_bdd(base, changed)
                                                     : refine_delta_hypercube(base, changed);
  obs::count(obs::Counter::FecDeltaSplits, result.split);
  obs::count(obs::Counter::FecDeltaReusedAtoms, result.reused);
  return result;
}

}  // namespace jinjing::topo
