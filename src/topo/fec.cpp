#include "topo/fec.h"

namespace jinjing::topo {

std::vector<net::PacketSet> refine_into_atoms(const net::PacketSet& universe,
                                              const std::vector<net::PacketSet>& predicates) {
  std::vector<net::PacketSet> classes;
  if (!universe.is_empty()) classes.push_back(universe);
  for (const auto& pred : predicates) {
    std::vector<net::PacketSet> next;
    next.reserve(classes.size());
    for (const auto& cls : classes) {
      net::PacketSet inside = cls & pred;
      if (inside.is_empty()) {
        next.push_back(cls);
        continue;
      }
      net::PacketSet outside = cls - pred;
      next.push_back(std::move(inside.compact()));
      if (!outside.is_empty()) next.push_back(std::move(outside.compact()));
    }
    classes = std::move(next);
  }
  return classes;
}

std::vector<net::PacketSet> forwarding_equivalence_classes(const Topology& topo,
                                                           const Scope& scope,
                                                           const net::PacketSet& entering) {
  std::vector<net::PacketSet> predicates;
  for (const auto& edge : topo.edges()) {
    if (scope.contains_interface(topo, edge.from) && scope.contains_interface(topo, edge.to)) {
      predicates.push_back(edge.predicate);
    }
  }
  return refine_into_atoms(entering, predicates);
}

net::PacketSet fec_region_of(const Topology& topo, const Scope& scope,
                             const net::PacketSet& seed, const net::Packet& h) {
  net::PacketSet region = seed;
  for (const auto& edge : topo.edges()) {
    if (!scope.contains_interface(topo, edge.from) || !scope.contains_interface(topo, edge.to)) {
      continue;
    }
    region = edge.predicate.contains(h) ? (region & edge.predicate) : (region - edge.predicate);
    if (region.is_empty()) break;  // defensive: h itself remains inside
    region.compact();
  }
  return region;
}

std::vector<EntryClasses> per_entry_equivalence_classes(const Topology& topo, const Scope& scope,
                                                        const net::PacketSet& entering) {
  std::vector<EntryClasses> out;
  for (const InterfaceId entry : entry_interfaces(topo, scope)) {
    // Edges reachable from the entry by BFS over the in-scope graph.
    std::vector<bool> visited(topo.interface_count(), false);
    std::vector<InterfaceId> queue{entry};
    visited[entry] = true;
    std::vector<net::PacketSet> predicates;
    while (!queue.empty()) {
      const InterfaceId at = queue.back();
      queue.pop_back();
      for (const auto ei : topo.out_edges(at)) {
        const Edge& edge = topo.edges()[ei];
        if (!scope.contains_interface(topo, edge.to)) continue;
        predicates.push_back(edge.predicate);
        if (!visited[edge.to]) {
          visited[edge.to] = true;
          queue.push_back(edge.to);
        }
      }
    }
    out.push_back(EntryClasses{entry, refine_into_atoms(entering, predicates)});
  }
  return out;
}

}  // namespace jinjing::topo
