#include "topo/fec.h"

#include <atomic>
#include <thread>
#include <unordered_map>

#include "net/bdd.h"

namespace jinjing::topo {

namespace {

/// Predicates are refined by reference; the pointers stay valid for the
/// duration of one classification call (they point into topo.edges() or a
/// caller-owned vector).
using PredRefs = std::vector<const net::PacketSet*>;

std::vector<net::PacketSet> refine_hypercube(const net::PacketSet& universe,
                                             const PredRefs& predicates) {
  std::vector<net::PacketSet> classes;
  if (!universe.is_empty()) classes.push_back(universe);
  for (const auto* pred : predicates) {
    std::vector<net::PacketSet> next;
    next.reserve(classes.size());
    for (const auto& cls : classes) {
      net::PacketSet inside = cls & *pred;
      if (inside.is_empty()) {
        next.push_back(cls);
        continue;
      }
      net::PacketSet outside = cls - *pred;
      next.push_back(std::move(inside.compact()));
      if (!outside.is_empty()) next.push_back(std::move(outside.compact()));
    }
    classes = std::move(next);
  }
  return classes;
}

/// BDD-backed refinement. Atoms live as BDD nodes until the very end:
/// intersection/difference are memoized node operations and emptiness is
/// O(1), so fragmentation never costs quadratic cube sweeps. Predicate
/// nodes are memoized by pointer so per-entry classification converts each
/// edge predicate once per manager, not once per entry.
class BddRefiner {
 public:
  std::vector<net::PacketSet> refine(const net::PacketSet& universe, const PredRefs& predicates) {
    using Node = net::BddManager::Node;
    std::vector<Node> atoms;
    const Node u = mgr_.from_set(universe);
    if (u != net::BddManager::kFalse) atoms.push_back(u);
    for (const auto* pred : predicates) {
      const Node p = node_for(pred);
      std::vector<Node> next;
      next.reserve(atoms.size());
      for (const Node cls : atoms) {
        const Node inside = mgr_.land(cls, p);
        if (inside == net::BddManager::kFalse) {
          next.push_back(cls);
          continue;
        }
        const Node outside = mgr_.ldiff(cls, p);
        next.push_back(inside);
        if (outside != net::BddManager::kFalse) next.push_back(outside);
      }
      atoms = std::move(next);
    }
    std::vector<net::PacketSet> out;
    out.reserve(atoms.size());
    for (const Node atom : atoms) out.push_back(mgr_.to_set(atom).compact());
    return out;
  }

 private:
  net::BddManager::Node node_for(const net::PacketSet* pred) {
    const auto it = pred_nodes_.find(pred);
    if (it != pred_nodes_.end()) return it->second;
    const auto node = mgr_.from_set(*pred);
    pred_nodes_.emplace(pred, node);
    return node;
  }

  net::BddManager mgr_;
  std::unordered_map<const net::PacketSet*, net::BddManager::Node> pred_nodes_;
};

std::vector<net::PacketSet> refine_sequential(const net::PacketSet& universe,
                                              const PredRefs& predicates, SetBackend backend,
                                              BddRefiner* shared) {
  if (backend == SetBackend::Bdd) {
    if (shared != nullptr) return shared->refine(universe, predicates);
    BddRefiner refiner;
    return refiner.refine(universe, predicates);
  }
  return refine_hypercube(universe, predicates);
}

/// Atoms of (preds(acc) ∪ preds(part)) from the two partitions: every
/// nonempty pairwise intersection. Exact — partition merging is how the
/// parallel groups recombine without losing or splitting classes.
std::vector<net::PacketSet> merge_partitions(std::vector<net::PacketSet> acc,
                                             const std::vector<net::PacketSet>& part) {
  std::vector<net::PacketSet> merged;
  merged.reserve(acc.size() + part.size());
  for (const auto& a : acc) {
    for (const auto& b : part) {
      net::PacketSet both = a & b;
      if (!both.is_empty()) merged.push_back(std::move(both.compact()));
    }
  }
  return merged;
}

std::vector<net::PacketSet> refine_refs(const net::PacketSet& universe, const PredRefs& predicates,
                                        const FecOptions& options, BddRefiner* shared) {
  const auto threads =
      static_cast<unsigned>(std::min<std::size_t>(options.threads, predicates.size()));
  if (threads <= 1) return refine_sequential(universe, predicates, options.backend, shared);

  // Contiguous balanced predicate groups, one per worker; PacketSet and
  // per-worker BddManager state are confined to their thread.
  std::vector<PredRefs> groups(threads);
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    groups[i * threads / predicates.size()].push_back(predicates[i]);
  }
  std::vector<std::vector<net::PacketSet>> parts(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      parts[t] = refine_sequential(universe, groups[t], options.backend, nullptr);
    });
  }
  for (auto& t : pool) t.join();

  auto result = std::move(parts[0]);
  for (unsigned t = 1; t < threads; ++t) result = merge_partitions(std::move(result), parts[t]);
  return result;
}

/// The predicates of edges reachable from `entry` by BFS over the in-scope
/// graph.
PredRefs reachable_predicates(const Topology& topo, const Scope& scope, InterfaceId entry) {
  std::vector<bool> visited(topo.interface_count(), false);
  std::vector<InterfaceId> queue{entry};
  visited[entry] = true;
  PredRefs predicates;
  while (!queue.empty()) {
    const InterfaceId at = queue.back();
    queue.pop_back();
    for (const auto ei : topo.out_edges(at)) {
      const Edge& edge = topo.edges()[ei];
      if (!scope.contains_interface(topo, edge.to)) continue;
      predicates.push_back(&edge.predicate);
      if (!visited[edge.to]) {
        visited[edge.to] = true;
        queue.push_back(edge.to);
      }
    }
  }
  return predicates;
}

}  // namespace

std::vector<net::PacketSet> refine_into_atoms(const net::PacketSet& universe,
                                              const std::vector<net::PacketSet>& predicates,
                                              const FecOptions& options) {
  PredRefs refs;
  refs.reserve(predicates.size());
  for (const auto& pred : predicates) refs.push_back(&pred);
  return refine_refs(universe, refs, options, nullptr);
}

std::vector<net::PacketSet> forwarding_equivalence_classes(const Topology& topo,
                                                           const Scope& scope,
                                                           const net::PacketSet& entering,
                                                           const FecOptions& options) {
  PredRefs predicates;
  for (const auto& edge : topo.edges()) {
    if (scope.contains_interface(topo, edge.from) && scope.contains_interface(topo, edge.to)) {
      predicates.push_back(&edge.predicate);
    }
  }
  return refine_refs(entering, predicates, options, nullptr);
}

net::PacketSet fec_region_of(const Topology& topo, const Scope& scope,
                             const net::PacketSet& seed, const net::Packet& h) {
  net::PacketSet region = seed;
  for (const auto& edge : topo.edges()) {
    if (!scope.contains_interface(topo, edge.from) || !scope.contains_interface(topo, edge.to)) {
      continue;
    }
    region = edge.predicate.contains(h) ? (region & edge.predicate) : (region - edge.predicate);
    if (region.is_empty()) break;  // defensive: h itself remains inside
    region.compact();
  }
  return region;
}

std::vector<EntryClasses> per_entry_equivalence_classes(const Topology& topo, const Scope& scope,
                                                        const net::PacketSet& entering,
                                                        const FecOptions& options) {
  const auto entries = entry_interfaces(topo, scope);
  std::vector<EntryClasses> out(entries.size());

  const auto threads = static_cast<unsigned>(std::min<std::size_t>(options.threads,
                                                                   entries.size()));
  if (threads <= 1) {
    // One shared BDD manager memoizes predicate conversions across entries.
    BddRefiner shared;
    BddRefiner* refiner = options.backend == SetBackend::Bdd ? &shared : nullptr;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out[i] = EntryClasses{
          entries[i],
          refine_refs(entering, reachable_predicates(topo, scope, entries[i]),
                      FecOptions{options.backend, options.threads}, refiner)};
    }
    return out;
  }

  // Entries are independent classification problems: fan them over workers.
  // Each worker owns its BDD manager; inner refinement stays sequential.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&]() {
      BddRefiner shared;
      BddRefiner* refiner = options.backend == SetBackend::Bdd ? &shared : nullptr;
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= entries.size()) break;
        out[i] = EntryClasses{entries[i],
                              refine_sequential(entering,
                                                reachable_predicates(topo, scope, entries[i]),
                                                options.backend, refiner)};
      }
    });
  }
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace jinjing::topo
