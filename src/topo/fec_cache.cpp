#include "topo/fec_cache.h"

#include <algorithm>

#include "obs/stats.h"
#include "obs/trace.h"

namespace jinjing::topo {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

void mix_set(std::uint64_t& h, const net::PacketSet& set) {
  mix(h, set.cube_count());
  for (const auto& cube : set.cubes()) {
    for (const net::Field f : net::kAllFields) {
      const auto& iv = cube.interval(f);
      mix(h, iv.lo);
      mix(h, iv.hi);
    }
  }
}

/// Structural fingerprint of one classification problem. `per_entry`
/// separates the two derivation modes; the backend is included so cold
/// derivations of each backend are observable separately in benchmarks
/// (both backends produce the same partition).
std::uint64_t fingerprint(const Topology& topo, const Scope& scope,
                          const net::PacketSet& entering, const FecOptions& options,
                          bool per_entry) {
  std::uint64_t h = kFnvOffset;
  mix(h, per_entry ? 1 : 2);
  mix(h, static_cast<std::uint64_t>(options.backend));
  std::vector<DeviceId> devices(scope.devices().begin(), scope.devices().end());
  std::sort(devices.begin(), devices.end());
  mix(h, devices.size());
  for (const auto d : devices) mix(h, d);
  for (std::size_t ei = 0; ei < topo.edges().size(); ++ei) {
    const auto& edge = topo.edges()[ei];
    if (!scope.contains_interface(topo, edge.from) ||
        !scope.contains_interface(topo, edge.to)) {
      continue;
    }
    mix(h, (std::uint64_t{edge.from} << 32) | edge.to);
    mix_set(h, edge.predicate);
  }
  mix_set(h, entering);
  return h;
}

std::size_t entry_atom_count(const std::vector<EntryClasses>& entry) {
  std::size_t total = 0;
  for (const auto& e : entry) total += e.classes.size();
  return total;
}

}  // namespace

FecCache::Slot* FecCache::find_slot(std::uint64_t key, const Topology& topo,
                                    const net::PacketSet& entering) {
  for (auto& slot : slots_[key]) {
    if (slot.topo == &topo && slot.entering_cubes == entering.cubes()) return &slot;
  }
  return nullptr;
}

FecCache::Slot* FecCache::stitch_from_lineage_locked(std::uint64_t key, const Topology& topo,
                                                     const net::PacketSet& entering,
                                                     bool want_entry) {
  const Topology* cursor = &topo;
  for (std::size_t hops = 1; hops <= max_chain_; ++hops) {
    const auto link = lineage_.find(cursor);
    if (link == lineage_.end()) return nullptr;
    cursor = link->second;
    // Ancestors may be retired: pointer comparison only, never dereference.
    for (const auto& slot : slots_[key]) {
      if (slot.topo != cursor || slot.entering_cubes != entering.cubes()) continue;
      if (want_entry ? slot.entry == nullptr : slot.global == nullptr) continue;
      // Copy the payload out before pushing: push_back invalidates `slot`.
      Slot stitched{&topo, slot.entering_cubes, slot.entry, slot.global};
      const std::size_t atoms = want_entry ? entry_atom_count(*stitched.entry)
                                           : stitched.global->size();
      auto& bucket = slots_[key];
      bucket.push_back(std::move(stitched));
      obs::count(obs::Counter::FecDeltaReusedAtoms, atoms);
      obs::observe(obs::Histogram::FecDeltaChainLen, hops);
      return &bucket.back();
    }
  }
  // Budget exhausted with the chain still going: a from-scratch rebuild is
  // about to happen in the caller's miss path.
  if (lineage_.find(cursor) != lineage_.end()) {
    obs::count(obs::Counter::FecDeltaRebuilds);
  }
  return nullptr;
}

FecCache::EntryClassesPtr FecCache::entry_classes(const Topology& topo, const Scope& scope,
                                                  const net::PacketSet& entering,
                                                  const FecOptions& options) {
  const std::uint64_t key = fingerprint(topo, scope, entering, options, /*per_entry=*/true);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (Slot* slot = find_slot(key, topo, entering); slot != nullptr && slot->entry) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->entry;
    }
    if (Slot* slot = stitch_from_lineage_locked(key, topo, entering, /*want_entry=*/true)) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->entry;
    }
  }
  EntryClassesPtr computed;
  {
    obs::TraceSpan span{obs::Span::FecDerive};
    computed = std::make_shared<const std::vector<EntryClasses>>(
        per_entry_equivalence_classes(topo, scope, entering, options));
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  obs::count(obs::Counter::FecCacheMisses);
  Slot* slot = find_slot(key, topo, entering);
  if (slot == nullptr) {
    slots_[key].push_back(Slot{&topo, entering.cubes(), nullptr, nullptr});
    slot = &slots_[key].back();
  }
  if (!slot->entry) slot->entry = std::move(computed);
  return slot->entry;
}

FecCache::ClassesPtr FecCache::global_classes(const Topology& topo, const Scope& scope,
                                              const net::PacketSet& entering,
                                              const FecOptions& options) {
  const std::uint64_t key = fingerprint(topo, scope, entering, options, /*per_entry=*/false);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (Slot* slot = find_slot(key, topo, entering); slot != nullptr && slot->global) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->global;
    }
    if (Slot* slot = stitch_from_lineage_locked(key, topo, entering, /*want_entry=*/false)) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->global;
    }
  }
  ClassesPtr computed;
  {
    obs::TraceSpan span{obs::Span::FecDerive};
    computed = std::make_shared<const std::vector<net::PacketSet>>(
        forwarding_equivalence_classes(topo, scope, entering, options));
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  obs::count(obs::Counter::FecCacheMisses);
  Slot* slot = find_slot(key, topo, entering);
  if (slot == nullptr) {
    slots_[key].push_back(Slot{&topo, entering.cubes(), nullptr, nullptr});
    slot = &slots_[key].back();
  }
  if (!slot->global) slot->global = std::move(computed);
  return slot->global;
}

FecCache::ClassesPtr FecCache::find_overlay(const net::PacketSet& universe,
                                            const std::vector<net::PacketSet>& regions) {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& slot : overlays_) {
    if (slot.universe_cubes != universe.cubes()) continue;
    if (slot.region_cubes.size() != regions.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (slot.region_cubes[i] != regions[i].cubes()) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++hits_;
    obs::count(obs::Counter::FecCacheHits);
    obs::count(obs::Counter::FecDeltaReusedAtoms, slot.atoms->size());
    slot.stamp = ++overlay_stamp_;
    return slot.atoms;
  }
  ++misses_;
  obs::count(obs::Counter::FecCacheMisses);
  return nullptr;
}

void FecCache::store_overlay(const net::PacketSet& universe,
                             const std::vector<net::PacketSet>& regions, ClassesPtr atoms) {
  if (!atoms) return;
  OverlaySlot slot;
  slot.universe_cubes = universe.cubes();
  slot.region_cubes.reserve(regions.size());
  for (const auto& region : regions) slot.region_cubes.push_back(region.cubes());
  slot.atoms = std::move(atoms);
  const std::lock_guard<std::mutex> lock{mutex_};
  slot.stamp = ++overlay_stamp_;
  if (overlays_.size() >= kMaxOverlaySlots) {
    const auto oldest = std::min_element(
        overlays_.begin(), overlays_.end(),
        [](const OverlaySlot& a, const OverlaySlot& b) { return a.stamp < b.stamp; });
    *oldest = std::move(slot);
    return;
  }
  overlays_.push_back(std::move(slot));
}

void FecCache::record_delta(const Topology* from, const Topology* to, std::size_t max_chain) {
  if (from == nullptr || to == nullptr || from == to || max_chain == 0) return;
  const std::lock_guard<std::mutex> lock{mutex_};
  max_chain_ = max_chain;
  lineage_[to] = from;
}

std::uint64_t FecCache::hits() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::uint64_t FecCache::misses() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

double FecCache::hit_rate() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

std::size_t FecCache::live_entries() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::size_t total = 0;
  for (const auto& [key, slots] : slots_) total += slots.size();
  return total;
}

std::size_t FecCache::lineage_entries() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return lineage_.size();
}

void FecCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  slots_.clear();
  lineage_.clear();
  overlays_.clear();
  hits_ = 0;
  misses_ = 0;
}

void FecCache::evict(const Topology* topo) {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto it = slots_.begin(); it != slots_.end();) {
    auto& bucket = it->second;
    std::erase_if(bucket, [topo](const Slot& slot) { return slot.topo == topo; });
    it = bucket.empty() ? slots_.erase(it) : std::next(it);
  }
  // Path-compress lineage past the retiring snapshot: descendants re-point
  // to its ancestor (or drop the link), so no entry keeps the dead pointer
  // and a later allocation at the same address cannot alias.
  const Topology* parent = nullptr;
  if (const auto own = lineage_.find(topo); own != lineage_.end()) {
    parent = own->second;
    lineage_.erase(own);
  }
  for (auto it = lineage_.begin(); it != lineage_.end();) {
    if (it->second != topo) {
      ++it;
    } else if (parent != nullptr) {
      it->second = parent;
      ++it;
    } else {
      it = lineage_.erase(it);
    }
  }
}

}  // namespace jinjing::topo
