#include "topo/fec_cache.h"

#include <algorithm>

#include "obs/stats.h"
#include "obs/trace.h"

namespace jinjing::topo {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

void mix_set(std::uint64_t& h, const net::PacketSet& set) {
  mix(h, set.cube_count());
  for (const auto& cube : set.cubes()) {
    for (const net::Field f : net::kAllFields) {
      const auto& iv = cube.interval(f);
      mix(h, iv.lo);
      mix(h, iv.hi);
    }
  }
}

/// Structural fingerprint of one classification problem. `per_entry`
/// separates the two derivation modes; the backend is included so cold
/// derivations of each backend are observable separately in benchmarks
/// (both backends produce the same partition).
std::uint64_t fingerprint(const Topology& topo, const Scope& scope,
                          const net::PacketSet& entering, const FecOptions& options,
                          bool per_entry) {
  std::uint64_t h = kFnvOffset;
  mix(h, per_entry ? 1 : 2);
  mix(h, static_cast<std::uint64_t>(options.backend));
  std::vector<DeviceId> devices(scope.devices().begin(), scope.devices().end());
  std::sort(devices.begin(), devices.end());
  mix(h, devices.size());
  for (const auto d : devices) mix(h, d);
  for (std::size_t ei = 0; ei < topo.edges().size(); ++ei) {
    const auto& edge = topo.edges()[ei];
    if (!scope.contains_interface(topo, edge.from) ||
        !scope.contains_interface(topo, edge.to)) {
      continue;
    }
    mix(h, (std::uint64_t{edge.from} << 32) | edge.to);
    mix_set(h, edge.predicate);
  }
  mix_set(h, entering);
  return h;
}

}  // namespace

FecCache::Slot* FecCache::find_slot(std::uint64_t key, const Topology& topo,
                                    const net::PacketSet& entering) {
  for (auto& slot : slots_[key]) {
    if (slot.topo == &topo && slot.entering_cubes == entering.cubes()) return &slot;
  }
  return nullptr;
}

FecCache::EntryClassesPtr FecCache::entry_classes(const Topology& topo, const Scope& scope,
                                                  const net::PacketSet& entering,
                                                  const FecOptions& options) {
  const std::uint64_t key = fingerprint(topo, scope, entering, options, /*per_entry=*/true);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (Slot* slot = find_slot(key, topo, entering); slot != nullptr && slot->entry) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->entry;
    }
  }
  EntryClassesPtr computed;
  {
    obs::TraceSpan span{obs::Span::FecDerive};
    computed = std::make_shared<const std::vector<EntryClasses>>(
        per_entry_equivalence_classes(topo, scope, entering, options));
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  obs::count(obs::Counter::FecCacheMisses);
  Slot* slot = find_slot(key, topo, entering);
  if (slot == nullptr) {
    slots_[key].push_back(Slot{&topo, entering.cubes(), nullptr, nullptr});
    slot = &slots_[key].back();
  }
  if (!slot->entry) slot->entry = std::move(computed);
  return slot->entry;
}

FecCache::ClassesPtr FecCache::global_classes(const Topology& topo, const Scope& scope,
                                              const net::PacketSet& entering,
                                              const FecOptions& options) {
  const std::uint64_t key = fingerprint(topo, scope, entering, options, /*per_entry=*/false);
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (Slot* slot = find_slot(key, topo, entering); slot != nullptr && slot->global) {
      ++hits_;
      obs::count(obs::Counter::FecCacheHits);
      return slot->global;
    }
  }
  ClassesPtr computed;
  {
    obs::TraceSpan span{obs::Span::FecDerive};
    computed = std::make_shared<const std::vector<net::PacketSet>>(
        forwarding_equivalence_classes(topo, scope, entering, options));
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  obs::count(obs::Counter::FecCacheMisses);
  Slot* slot = find_slot(key, topo, entering);
  if (slot == nullptr) {
    slots_[key].push_back(Slot{&topo, entering.cubes(), nullptr, nullptr});
    slot = &slots_[key].back();
  }
  if (!slot->global) slot->global = std::move(computed);
  return slot->global;
}

std::uint64_t FecCache::hits() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::uint64_t FecCache::misses() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

double FecCache::hit_rate() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

std::size_t FecCache::live_entries() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::size_t total = 0;
  for (const auto& [key, slots] : slots_) total += slots.size();
  return total;
}

void FecCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  slots_.clear();
  hits_ = 0;
  misses_ = 0;
}

void FecCache::share(const Topology& from, const Topology& to) {
  if (&from == &to) return;
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& [key, bucket] : slots_) {
    // Collect first: pushing into the bucket invalidates its iterators.
    std::vector<Slot> copies;
    for (const auto& slot : bucket) {
      if (slot.topo != &from) continue;
      const bool present = std::any_of(bucket.begin(), bucket.end(), [&](const Slot& s) {
        return s.topo == &to && s.entering_cubes == slot.entering_cubes;
      });
      if (!present) copies.push_back(Slot{&to, slot.entering_cubes, slot.entry, slot.global});
    }
    for (auto& copy : copies) bucket.push_back(std::move(copy));
  }
}

void FecCache::evict(const Topology* topo) {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto it = slots_.begin(); it != slots_.end();) {
    auto& bucket = it->second;
    std::erase_if(bucket, [topo](const Slot& slot) { return slot.topo == topo; });
    it = bucket.empty() ? slots_.erase(it) : std::next(it);
  }
}

}  // namespace jinjing::topo
