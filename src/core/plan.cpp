#include "core/plan.h"

#include <algorithm>
#include <chrono>

namespace jinjing::core {

namespace {

/// Feasible paths of one class: paths whose forwarding set can carry it,
/// optionally restricted to one entry interface — exactly the set Y the
/// sequential checker computed per query.
std::vector<std::size_t> feasible_paths(const std::vector<topo::Path>& paths,
                                        const std::vector<net::PacketSet>& path_forwarding,
                                        const net::PacketSet& fec,
                                        std::optional<topo::InterfaceId> entry) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (entry && paths[i].entry() != *entry) continue;
    if (path_forwarding[i].intersects(fec)) out.push_back(i);
  }
  return out;
}

std::vector<topo::AclSlot> slot_union(const std::vector<topo::Path>& paths,
                                      const std::vector<std::size_t>& feasible) {
  std::vector<topo::AclSlot> slots;
  for (const std::size_t pi : feasible) {
    for (const auto& hop : paths[pi].hops()) slots.push_back(hop.slot());
  }
  const auto less = [](topo::AclSlot a, topo::AclSlot b) {
    if (a.iface != b.iface) return a.iface < b.iface;
    return a.dir < b.dir;
  };
  std::sort(slots.begin(), slots.end(), less);
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

}  // namespace

bool touches(const Obligation& obligation, const topo::AclUpdate& update) {
  for (const auto slot : obligation.slots) {
    if (update.find(slot) != update.end()) return true;
  }
  return false;
}

std::size_t VerifyPlan::live_count(const topo::AclUpdate& update, bool has_controls) const {
  if (has_controls) return obligations_.size();
  std::size_t live = 0;
  for (const auto& o : obligations_) {
    if (touches(o, update)) ++live;
  }
  return live;
}

VerifyPlan build_verify_plan(const std::vector<topo::Path>& paths,
                             const std::vector<net::PacketSet>& path_forwarding,
                             std::shared_ptr<const std::vector<topo::EntryClasses>> entry_classes,
                             Lowering mode) {
  const auto start = std::chrono::steady_clock::now();
  VerifyPlan plan;
  plan.entry_classes_ = std::move(entry_classes);
  for (const auto& [entry, classes] : *plan.entry_classes_) {
    for (const auto& cls : classes) {
      Obligation o;
      o.index = plan.obligations_.size();
      o.entry = entry;
      o.fec = &cls;
      o.paths = feasible_paths(paths, path_forwarding, cls, entry);
      o.slots = slot_union(paths, o.paths);
      o.mode = mode;
      plan.obligations_.push_back(std::move(o));
    }
  }
  plan.stats_.fec_count = plan.obligations_.size();
  plan.stats_.path_count = paths.size();
  plan.stats_.plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return plan;
}

VerifyPlan build_verify_plan(const std::vector<topo::Path>& paths,
                             const std::vector<net::PacketSet>& path_forwarding,
                             std::shared_ptr<const std::vector<net::PacketSet>> global_classes,
                             Lowering mode) {
  const auto start = std::chrono::steady_clock::now();
  VerifyPlan plan;
  plan.global_classes_ = std::move(global_classes);
  for (const auto& cls : *plan.global_classes_) {
    Obligation o;
    o.index = plan.obligations_.size();
    o.fec = &cls;
    o.paths = feasible_paths(paths, path_forwarding, cls, std::nullopt);
    o.slots = slot_union(paths, o.paths);
    o.mode = mode;
    plan.obligations_.push_back(std::move(o));
  }
  plan.stats_.fec_count = plan.obligations_.size();
  plan.stats_.path_count = paths.size();
  plan.stats_.plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return plan;
}

}  // namespace jinjing::core
