// Differential and related rules (§4.1, Definitions 4.1 & 4.2, Theorem 4.1).
//
// The check/fix fast path: an update usually touches few rules, so instead
// of encoding whole ACLs we (1) diff each ACL pair via longest common
// subsequence, (2) pool the added/removed rules into Diff_Ω, and (3) shrink
// every ACL to the rules overlapping Diff_Ω. Theorem 4.1 guarantees the
// reduced pair is consistent iff the original pair is.
#pragma once

#include <vector>

#include "net/acl.h"
#include "topo/topology.h"

namespace jinjing::core {

/// Marks which positions of two rule lists belong to one longest common
/// subsequence (the paper's L ⋒ L').
struct LcsMarks {
  std::vector<bool> in_a;
  std::vector<bool> in_b;
};

[[nodiscard]] LcsMarks lcs_marks(const std::vector<net::AclRule>& a,
                                 const std::vector<net::AclRule>& b);

/// D_{L,L'} ∪ D_{L',L}: every rule added or removed by the update
/// (Definition 4.1, both directions pooled). A default-action change
/// contributes a match-all rule, since it can flip any packet.
[[nodiscard]] std::vector<net::AclRule> differential_rules(const net::Acl& before,
                                                           const net::Acl& after);

/// R(L, S): the sub-ACL of rules overlapping at least one rule in S
/// (Definition 4.2), order and default action preserved.
[[nodiscard]] net::Acl related_rules(const net::Acl& acl, const std::vector<net::AclRule>& diff);

/// Diff_Ω: the union of differential rules over every (L, L') slot pair of
/// the two configuration views, for the given slots.
[[nodiscard]] std::vector<net::AclRule> scope_differential(
    const topo::ConfigView& before, const topo::ConfigView& after,
    const std::vector<topo::AclSlot>& slots);

/// The reduced ACL groups R_L / R_L' of Theorem 4.1: every slot's before-
/// and after-ACL filtered to rules related to Diff_Ω.
struct ReducedGroups {
  topo::AclUpdate before;  // slot -> R(L, Diff_Ω)
  topo::AclUpdate after;   // slot -> R(L', Diff_Ω)
  std::vector<net::AclRule> diff;
};

[[nodiscard]] ReducedGroups reduce_by_differential(const topo::ConfigView& before,
                                                   const topo::ConfigView& after,
                                                   const std::vector<topo::AclSlot>& slots);

}  // namespace jinjing::core
