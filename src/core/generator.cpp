#include "core/generator.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>

#include "net/acl_algebra.h"
#include "obs/trace.h"

namespace jinjing::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Generator::Generator(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
                     const GenerateOptions& options)
    : smt_(smt), topo_(topo), scope_(scope), options_(options) {}

GenerateResult Generator::generate(const MigrationSpec& spec,
                                   const std::vector<lai::ControlIntent>& controls) {
  GenerateResult result;
  const std::uint64_t queries_before = smt_.query_count();
  std::uint64_t worker_queries = 0;  // issued on per-worker contexts, not smt_

  // Phase 1: derive ACL equivalence classes (§5.1; §6 adds the control
  // headers as refinement predicates).
  auto t0 = std::chrono::steady_clock::now();
  const topo::ConfigView view{topo_};
  std::vector<topo::AclSlot> slots;
  for (const auto slot : topo_.bound_slots()) {
    if (scope_.contains_interface(topo_, slot.iface)) slots.push_back(slot);
  }
  std::vector<net::PacketSet> replacement_predicates;
  for (const auto& [slot, acl] : spec.replacements) {
    replacement_predicates.push_back(net::permitted_set(acl));
  }
  std::vector<net::PacketSet> classes;
  {
    const obs::TraceSpan span{obs::Span::GenDerive};
    classes = acl_equivalence_classes(view, slots, options_.universe, controls,
                                      replacement_predicates, options_.fec_cache.get());
  }
  result.aec_count = classes.size();
  result.derive_seconds = seconds_since(t0);

  // Phase 2: solve decision functions (§5.2), refine to DECs where needed
  // (§5.3). Classes are independent placement obligations, so with a
  // multi-threaded executor installed they fan out across per-worker
  // solvers (each with its own Z3 context) and merge in class-index order.
  t0 = std::chrono::steady_clock::now();
  PlacementResult placement;
  {
  const obs::TraceSpan solve_span{obs::Span::GenSolve};
  if (options_.executor && options_.executor->threads() > 1 && classes.size() > 1) {
    std::vector<ClassOutcome> outcomes(classes.size());
    struct WorkerState {
      smt::SmtContext smt;
      std::optional<PlacementSolver> solver;
    };
    std::mutex states_mutex;
    std::vector<std::unique_ptr<WorkerState>> states;
    const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
      auto owned = std::make_unique<WorkerState>();
      WorkerState* state = owned.get();
      if (smt_.timeout_ms() > 0) state->smt.set_timeout_ms(smt_.timeout_ms());
      state->solver.emplace(state->smt, topo_, scope_, options_.path_options);
      {
        const std::lock_guard<std::mutex> lock{states_mutex};
        states.push_back(std::move(owned));
      }
      return [&, state](std::size_t ci, const CancellationToken& token) {
        if (token.cancelled()) return false;
        outcomes[ci] = state->solver->solve_one(spec, classes[ci], controls);
        return false;
      };
    };
    (void)options_.executor->run(classes.size(), factory);
    for (const auto& state : states) worker_queries += state->smt.query_count();
    placement.smt_queries = worker_queries;
    for (std::size_t ci = 0; ci < outcomes.size(); ++ci) {
      auto& outcome = outcomes[ci];
      if (outcome.aec) {
        placement.aec_solutions.emplace(ci, std::move(*outcome.aec));
        continue;
      }
      if (!outcome.decs.empty()) placement.dec_solutions[ci] = std::move(outcome.decs);
      for (auto& dec : outcome.unsolved) {
        placement.success = false;
        placement.unsolved.push_back(std::move(dec));
      }
    }
  } else {
    PlacementSolver solver{smt_, topo_, scope_, options_.path_options};
    placement = solver.solve(spec, classes, controls);
  }
  }
  result.aec_solved = placement.aec_solutions.size();
  for (const auto& [ci, decs] : placement.dec_solutions) result.dec_count += decs.size();
  result.dec_count += placement.unsolved.size();
  result.unsolved = placement.unsolved.size();
  result.success = placement.success;
  result.solve_seconds = seconds_since(t0);

  // Phase 3: synthesize ACLs (§5.4 + §5.5).
  t0 = std::chrono::steady_clock::now();
  const obs::TraceSpan synth_span{obs::Span::GenSynth};
  auto synthesis = synthesize(topo_, scope_, spec, classes, placement, options_.synthesis,
                              controls);
  result.update = std::move(synthesis.acls);
  result.synthesis = synthesis.stats;
  result.synth_seconds = seconds_since(t0);

  result.smt_queries = smt_.query_count() - queries_before + worker_queries;
  return result;
}

}  // namespace jinjing::core
