#include "core/aec.h"

#include "net/acl_algebra.h"
#include "topo/fec.h"

namespace jinjing::core {

std::vector<net::PacketSet> aec_regions(const topo::ConfigView& view,
                                        const std::vector<topo::AclSlot>& slots,
                                        const net::PacketSet& universe,
                                        const std::vector<lai::ControlIntent>& controls,
                                        const std::vector<net::PacketSet>& extra_predicates) {
  // Each predicate is represented by its "interesting" side — the denied
  // region of an ACL (complement of the permitted set within the universe)
  // or a control header. Slots holding identical ACLs contribute one
  // predicate (the paper's "redundancy in ACL usage").
  std::vector<const net::Acl*> seen;
  std::vector<net::PacketSet> regions;
  for (const auto slot : slots) {
    const net::Acl& acl = view.acl(slot);
    const bool duplicate = std::any_of(seen.begin(), seen.end(),
                                       [&acl](const net::Acl* other) { return *other == acl; });
    if (duplicate) continue;
    seen.push_back(&acl);
    auto denied = universe - net::permitted_set(acl);
    if (!denied.is_empty()) regions.push_back(std::move(denied.compact()));
  }
  for (const auto& intent : controls) {
    auto header = intent.header & universe;
    if (!header.is_empty()) regions.push_back(std::move(header.compact()));
  }
  for (const auto& predicate : extra_predicates) {
    auto denied = universe - predicate;
    if (!denied.is_empty()) regions.push_back(std::move(denied.compact()));
  }
  return regions;
}

std::vector<net::PacketSet> overlay_atoms(const net::PacketSet& universe,
                                          const std::vector<net::PacketSet>& regions) {
  // Overlay the interesting regions into atoms; the big all-permit "rest"
  // class is materialized once at the end instead of being dragged through
  // every refinement pass.
  std::vector<net::PacketSet> atoms;
  net::PacketSet covered;
  for (const auto& region : regions) {
    net::PacketSet fresh = region - covered;
    std::vector<net::PacketSet> next;
    next.reserve(atoms.size() + 2);
    for (const auto& atom : atoms) {
      net::PacketSet inside = atom & region;
      if (inside.is_empty()) {
        next.push_back(atom);
        continue;
      }
      net::PacketSet outside = atom - region;
      next.push_back(std::move(inside.compact()));
      if (!outside.is_empty()) next.push_back(std::move(outside.compact()));
    }
    if (!fresh.is_empty()) next.push_back(std::move(fresh.compact()));
    atoms = std::move(next);
    covered = (covered | region).compact();
  }

  net::PacketSet rest = (universe - covered).compact();
  if (!rest.is_empty()) atoms.push_back(std::move(rest));
  return atoms;
}

std::vector<net::PacketSet> acl_equivalence_classes(
    const topo::ConfigView& view, const std::vector<topo::AclSlot>& slots,
    const net::PacketSet& universe, const std::vector<lai::ControlIntent>& controls,
    const std::vector<net::PacketSet>& extra_predicates, topo::FecCache* cache) {
  const std::vector<net::PacketSet> regions =
      aec_regions(view, slots, universe, controls, extra_predicates);
  if (cache == nullptr) return overlay_atoms(universe, regions);
  if (auto memoized = cache->find_overlay(universe, regions)) return *memoized;
  auto atoms = std::make_shared<const std::vector<net::PacketSet>>(
      overlay_atoms(universe, regions));
  cache->store_overlay(universe, regions, atoms);
  return *atoms;
}

std::vector<net::PacketSet> dataplane_equivalence_classes(const topo::Topology& topo,
                                                          const topo::Scope& scope,
                                                          const net::PacketSet& aec) {
  return topo::forwarding_equivalence_classes(topo, scope, aec);
}

}  // namespace jinjing::core
