// ACL simplification (§4.2 "Simplifying the final ACL").
//
// Removes redundant rules while provably preserving the decision model —
// the fixing process routinely shadows original rules (the running example
// ends with "permit 1/8, permit 2/8, deny 1/8, deny 2/8, deny 6/8,
// permit-all" on A1, which simplifies to "deny 6/8, permit-all").
#pragma once

#include "net/acl.h"
#include "net/packet_set.h"

namespace jinjing::core {

/// Removes every rule whose removal leaves the permitted set unchanged,
/// iterating to a fixpoint. Exact: simplify(acl) ≡ acl on all packets.
[[nodiscard]] net::Acl simplify(const net::Acl& acl);

/// Same, but only behaviour on `universe` must be preserved (useful when
/// the scope's traffic is known, e.g. from the IP management system).
[[nodiscard]] net::Acl simplify_on(const net::Acl& acl, const net::PacketSet& universe);

}  // namespace jinjing::core
