// ACL equivalence classes (§5.1).
//
// An AEC groups packets that every ACL decision model in the scope treats
// identically — the atoms of {permitted(L_ξ)}. Unlike FECs they ignore
// routing; §5.3 refines unsolvable AECs into dataplane equivalence classes
// (DECs) by additionally splitting on the forwarding predicates.
// With control intents present, the intent decision models r are extra
// refinement predicates (§6), so every class has a uniform desired change.
#pragma once

#include <vector>

#include "lai/sema.h"
#include "net/packet_set.h"
#include "topo/fec_cache.h"
#include "topo/topology.h"

namespace jinjing::core {

/// The refinement predicates of the AEC derivation: each slot ACL's denied
/// region within the universe (slots holding identical ACLs contribute one
/// region — the paper's "redundancy in ACL usage"), each control intent's
/// header, and each extra predicate's denied complement. Deterministic
/// order; empty regions dropped. The regions fully determine the partition
/// of `universe`, which is what makes the overlay memoizable.
[[nodiscard]] std::vector<net::PacketSet> aec_regions(
    const topo::ConfigView& view, const std::vector<topo::AclSlot>& slots,
    const net::PacketSet& universe,
    const std::vector<lai::ControlIntent>& controls = {},
    const std::vector<net::PacketSet>& extra_predicates = {});

/// Overlays the regions into the atoms of `universe`: a disjoint partition
/// in deterministic order, uniform w.r.t. every region.
[[nodiscard]] std::vector<net::PacketSet> overlay_atoms(
    const net::PacketSet& universe, const std::vector<net::PacketSet>& regions);

/// Derives the AECs of `universe` w.r.t. the ACLs bound (in `view`) on the
/// given slots. Result is a disjoint partition; deterministic order.
/// `extra_predicates` adds further refinement sets — e.g. the permitted
/// sets of explicit source replacements, so every class is also uniform
/// w.r.t. the post-update source decisions.
/// When `cache` is non-null the overlay is memoized by the exact cubes of
/// (universe, regions) — version-independent, so warm generate jobs whose
/// scoped ACLs coincide with an earlier derivation skip the overlay
/// entirely while returning bit-identical atoms.
[[nodiscard]] std::vector<net::PacketSet> acl_equivalence_classes(
    const topo::ConfigView& view, const std::vector<topo::AclSlot>& slots,
    const net::PacketSet& universe,
    const std::vector<lai::ControlIntent>& controls = {},
    const std::vector<net::PacketSet>& extra_predicates = {},
    topo::FecCache* cache = nullptr);

/// Splits one class into dataplane equivalence classes by refining with all
/// in-scope forwarding predicates (DEC = AEC ∧ FEC, §5.3).
[[nodiscard]] std::vector<net::PacketSet> dataplane_equivalence_classes(
    const topo::Topology& topo, const topo::Scope& scope, const net::PacketSet& aec);

}  // namespace jinjing::core
