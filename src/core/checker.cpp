#include "core/checker.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "net/acl_algebra.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "smt/encode.h"

namespace jinjing::core {

namespace {

/// Does a control intent span this path's endpoints?
bool intent_spans_path(const lai::ControlIntent& intent, const topo::Path& path) {
  const auto has = [](const std::vector<topo::InterfaceId>& list, topo::InterfaceId i) {
    return std::find(list.begin(), list.end(), i) != list.end();
  };
  return has(intent.from, path.entry()) && has(intent.to, path.exit());
}

/// Cache key for per-slot-per-side ACL expressions: (iface, direction,
/// before/after side) packed into distinct bit fields.
std::uint64_t acl_expr_key(topo::AclSlot slot, bool after_side) {
  return (std::uint64_t{slot.iface} << 2) |
         (std::uint64_t{slot.dir == topo::Dir::Out} << 1) | std::uint64_t{after_side};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool same_controls(const std::vector<lai::ControlIntent>& a,
                   const std::vector<lai::ControlIntent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].verb != b[i].verb || a[i].from != b[i].from || a[i].to != b[i].to ||
        !a[i].header.equals(b[i].header)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool desired_decision(const std::vector<lai::ControlIntent>& controls, const topo::Path& path,
                      const net::Packet& h, bool original_decision) {
  for (const auto& intent : controls) {
    if (!intent_spans_path(intent, path)) continue;
    if (!intent.header.contains(h)) continue;
    switch (intent.verb) {
      case lai::ControlVerb::Open: return true;
      case lai::ControlVerb::Isolate: return false;
      case lai::ControlVerb::Maintain: return original_decision;
    }
  }
  return original_decision;
}

namespace {

/// The rule text an ACL uses to decide `h`.
std::string deciding_rule(const net::Acl& acl, const net::Packet& h) {
  const auto index = acl.first_match(h);
  if (index) return net::to_string(acl.rules()[*index]);
  return "default " + std::string(net::to_string(acl.default_action()));
}

}  // namespace

void explain_violation(const topo::Topology& topo, const topo::ConfigView& before,
                       const topo::ConfigView& after, const topo::Path& path,
                       Violation& violation) {
  (void)topo;
  for (const auto& hop : path.hops()) {
    const bool b = before.acl(hop.slot()).permits(violation.witness);
    const bool a = after.acl(hop.slot()).permits(violation.witness);
    if (b != a) {
      violation.changed_slot = hop.slot();
      violation.before_rule = deciding_rule(before.acl(hop.slot()), violation.witness);
      violation.after_rule = deciding_rule(after.acl(hop.slot()), violation.witness);
      return;
    }
  }
}

Checker::Checker(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
                 const CheckOptions& options)
    : smt_(smt),
      topo_(topo),
      scope_(scope),
      options_(options),
      fec_cache_(options.fec_cache ? options.fec_cache : std::make_shared<topo::FecCache>()) {
  if (options_.timeout_ms > 0) smt_.set_timeout_ms(options_.timeout_ms);
  if (options_.adopted_plan) {
    // The bundle carries paths, forwarding sets and the plan verbatim; the
    // caller guarantees it was built over the same structure (see
    // CheckOptions::adopted_plan).
    adopted_ = options_.adopted_plan;
    return;
  }
  paths_ = topo::enumerate_paths(topo_, scope_, options_.path_options);
  path_forwarding_.reserve(paths_.size());
  for (const auto& p : paths_) path_forwarding_.push_back(topo::forwarding_set(topo_, p));
}

std::shared_ptr<const std::vector<topo::EntryClasses>> Checker::entry_classes(
    const net::PacketSet& entering) {
  return fec_cache_->entry_classes(topo_, scope_, entering, fec_options());
}

std::shared_ptr<const std::vector<net::PacketSet>> Checker::global_classes(
    const net::PacketSet& entering) {
  return fec_cache_->global_classes(topo_, scope_, entering, fec_options());
}

std::vector<std::size_t> Checker::feasible_paths(const net::PacketSet& traffic) const {
  const auto& forwarding = path_forwarding();
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < forwarding.size(); ++i) {
    if (forwarding[i].intersects(traffic)) out.push_back(i);
  }
  return out;
}

const VerifyPlan& Checker::plan(const net::PacketSet& entering) {
  if (adopted_ && adopted_->entering.equals(entering)) {
    last_plan_seconds_ = 0;  // served from the adopted bundle
    obs::count(obs::Counter::PlanCacheHits);
    return adopted_->plan;
  }
  if (plan_entering_ && plan_entering_->equals(entering)) {
    last_plan_seconds_ = 0;  // served from cache
    obs::count(obs::Counter::PlanCacheHits);
    return plan_;
  }
  const obs::TraceSpan span{obs::Span::CheckerPlan};
  const Lowering mode = options_.use_differential ? Lowering::Differential : Lowering::Basic;
  if (options_.per_entry_fec) {
    plan_ = build_verify_plan(paths(), path_forwarding(), entry_classes(entering), mode);
  } else {
    plan_ = build_verify_plan(paths(), path_forwarding(), global_classes(entering), mode);
  }
  plan_entering_ = entering;
  last_plan_seconds_ = plan_.stats().plan_seconds;
  obs::count(obs::Counter::PlanBuilds);
  obs::count(obs::Counter::ObligationsPlanned, plan_.obligations().size());
  return plan_;
}

std::shared_ptr<const PlanBundle> Checker::share_plan(const net::PacketSet& entering) {
  if (adopted_ && adopted_->entering.equals(entering)) return adopted_;
  auto bundle = std::make_shared<PlanBundle>();
  bundle->plan = plan(entering);  // builds (or reuses) first; copies share class storage
  bundle->paths = paths();
  bundle->path_forwarding = path_forwarding();
  bundle->entering = entering;
  return bundle;
}

CheckSession& Checker::session(const topo::AclUpdate& update,
                               const std::vector<lai::ControlIntent>& controls) {
  if (session_ && session_update_ == update && same_controls(session_controls_, controls)) {
    last_session_seconds_ = 0;
    obs::count(obs::Counter::SmtFrameReuses);
    return *session_;
  }
  // The session's ConfigView points at the stored copy, so tear the old
  // session down before replacing what it points at.
  session_.reset();
  session_update_ = update;
  session_controls_ = controls;
  session_ = std::make_unique<CheckSession>(*this, session_update_, session_controls_);
  last_session_seconds_ = session_->build_seconds();
  return *session_;
}

Executor& Checker::executor() {
  if (options_.executor) return *options_.executor;
  if (!own_executor_) own_executor_ = std::make_shared<Executor>(options_.threads);
  return *own_executor_;
}

CheckSession::CheckSession(Checker& checker, const topo::AclUpdate& update,
                           const std::vector<lai::ControlIntent>& controls)
    : CheckSession(checker, checker.smt_, update, controls) {}

CheckSession::CheckSession(Checker& checker, smt::SmtContext& smt,
                           const topo::AclUpdate& update,
                           const std::vector<lai::ControlIntent>& controls)
    : checker_(checker),
      smt_(smt),
      before_(checker.topo_),
      after_(checker.topo_, &update),
      controls_(controls),
      vars_(smt.packet_vars()) {
  const obs::TraceSpan span{obs::Span::CheckerCompile};
  obs::count(obs::Counter::SmtSessionsBuilt);
  const auto start = std::chrono::steady_clock::now();
  if (checker.options_.use_differential) {
    const auto slots = after_.bound_slots();
    auto reduced = reduce_by_differential(before_, after_, slots);
    // §6: traffic named by control intents can legitimately change decision,
    // so rules overlapping it must survive the Theorem 4.1 reduction.
    if (!controls_.empty()) {
      auto diff = std::move(reduced.diff);
      for (const auto& intent : controls_) {
        if (intent.verb == lai::ControlVerb::Maintain) continue;
        for (auto& rule : net::rules_for_set(intent.header, net::Action::Permit)) {
          diff.push_back(std::move(rule));
        }
      }
      reduced = ReducedGroups{};
      reduced.diff = std::move(diff);
      for (const auto slot : slots) {
        reduced.before.emplace(slot, related_rules(before_.acl(slot), reduced.diff));
        reduced.after.emplace(slot, related_rules(after_.acl(slot), reduced.diff));
      }
    }
    reduced_ = std::move(reduced);
  }
  build_seconds_ = seconds_since(start);
}

const net::Acl& CheckSession::encoded_acl(topo::AclSlot slot, bool after_side) const {
  if (reduced_) {
    const auto& group = after_side ? reduced_->after : reduced_->before;
    const auto it = group.find(slot);
    if (it != group.end()) return it->second;
  }
  return after_side ? after_.acl(slot) : before_.acl(slot);
}

const z3::expr& CheckSession::acl_expr(topo::AclSlot slot, bool after_side) {
  const std::uint64_t key = acl_expr_key(slot, after_side);
  const auto it = expr_cache_.find(key);
  if (it != expr_cache_.end()) return it->second;
  const z3::expr expr =
      smt::acl_permits(vars_, encoded_acl(slot, after_side), checker_.options_.encoder);
  return expr_cache_.emplace(key, expr).first->second;
}

/// ¬(desired(c_p) ⇔ c'_p) for one path — the per-path disjunct of
/// Equation 3, with c_p transformed by the control decision model r_p when
/// intents are present (§6).
z3::expr CheckSession::path_inconsistency_expr(std::size_t path_index) {
  auto& smt = smt_;
  const auto& h = vars_;
  const auto& path = checker_.paths()[path_index];

  const auto path_decision = [&](bool after_side) {
    z3::expr expr = smt.bool_val(true);
    for (const auto& hop : path.hops()) {
      const net::Acl& acl = encoded_acl(hop.slot(), after_side);
      if (acl.empty() && acl.default_action() == net::Action::Permit) continue;
      expr = expr && acl_expr(hop.slot(), after_side);
    }
    return expr;
  };

  const z3::expr original = path_decision(/*after_side=*/false);
  z3::expr desired = original;
  for (auto it = controls_.rbegin(); it != controls_.rend(); ++it) {
    if (!intent_spans_path(*it, path)) continue;
    z3::expr value = smt.bool_val(true);
    switch (it->verb) {
      case lai::ControlVerb::Open: value = smt.bool_val(true); break;
      case lai::ControlVerb::Isolate: value = smt.bool_val(false); break;
      case lai::ControlVerb::Maintain: value = original; break;
    }
    desired = z3::ite(smt::set_expr(h, it->header), value, desired);
  }
  const z3::expr updated = path_decision(/*after_side=*/true);
  return desired != updated;
}

const z3::expr& CheckSession::path_inconsistent(std::size_t path_index) {
  const auto it = path_flags_.find(path_index);
  if (it != path_flags_.end()) return it->second;
  const z3::expr flag =
      smt_.ctx().bool_const(("jj_incons_" + std::to_string(path_index)).c_str());
  // Asserted at the solver's base frame: callers only push() after every
  // flag of the query has been defined.
  solver_->add(flag == path_inconsistency_expr(path_index));
  return path_flags_.emplace(path_index, flag).first->second;
}

std::optional<Violation> CheckSession::find_violation(const net::PacketSet& fec,
                                                      const net::PacketSet& excluded,
                                                      std::optional<topo::InterfaceId> entry) {
  auto feasible = checker_.feasible_paths(fec);
  if (entry) {
    std::erase_if(feasible, [&](std::size_t pi) {
      return checker_.paths()[pi].entry() != *entry;
    });
  }
  return find_violation(fec, excluded, feasible);
}

std::optional<Violation> CheckSession::find_violation(const net::PacketSet& fec,
                                                      const net::PacketSet& excluded,
                                                      const std::vector<std::size_t>& feasible) {
  if (feasible.empty()) return std::nullopt;

  auto& smt = smt_;
  const auto& h = vars_;

  std::optional<net::Packet> witness;
  if (checker_.options_.incremental_smt) {
    // One solver for the whole session: each path's inconsistency disjunct
    // is asserted once (as a named indicator at the base frame), so the
    // solver internalizes every ACL expression a single time and reuses
    // learned clauses across the per-FEC queries. Only the query-specific
    // ψ_[h]FEC / exclusion constraints live inside the push/pop frame.
    if (!solver_) solver_.emplace(smt.make_solver());
    z3::expr any_inconsistent = smt.bool_val(false);
    for (const std::size_t pi : feasible) {
      any_inconsistent = any_inconsistent || path_inconsistent(pi);
    }
    solver_->push();
    solver_->add(any_inconsistent);
    solver_->add(smt::set_expr(h, fec));                       // ψ_[h]FEC
    if (!excluded.is_empty()) solver_->add(!smt::set_expr(h, excluded));
    obs::count(obs::Counter::SmtQueriesCached);
    witness = smt.solve_for_packet(*solver_, h);
    solver_->pop();
  } else {
    auto solver = smt.make_solver();
    z3::expr any_inconsistent = smt.bool_val(false);
    for (const std::size_t pi : feasible) {
      any_inconsistent = any_inconsistent || path_inconsistency_expr(pi);
    }
    solver.add(any_inconsistent);
    solver.add(smt::set_expr(h, fec));                         // ψ_[h]FEC
    if (!excluded.is_empty()) solver.add(!smt::set_expr(h, excluded));
    witness = smt.solve_for_packet(solver, h);
  }
  if (!witness) return std::nullopt;

  // Locate the violated path by concrete evaluation on the *full* views
  // (sound per Theorem 4.1: reduced and full verdicts agree pointwise).
  for (const std::size_t pi : feasible) {
    const auto& path = checker_.paths()[pi];
    const bool original = topo::path_permits(before_, path, *witness);
    const bool desired = desired_decision(controls_, path, *witness, original);
    const bool updated = topo::path_permits(after_, path, *witness);
    if (desired != updated) {
      Violation violation{*witness, pi, desired, updated, std::nullopt, {}, {}};
      explain_violation(checker_.topo_, before_, after_, path, violation);
      return violation;
    }
  }
  // The SMT witness must correspond to a concrete violation; reaching here
  // would mean the encodings disagree.
  throw std::logic_error("check: SMT witness does not violate consistency concretely");
}

CheckResult Checker::check_monolithic(const topo::AclUpdate& update,
                                      const net::PacketSet& entering) {
  const std::uint64_t queries_before = smt_.query_count();
  const auto& all_paths = paths();
  const auto& forwarding = path_forwarding();
  CheckResult result;
  result.path_count = all_paths.size();
  result.fec_count = 1;  // the whole entering traffic, unclassified

  const topo::ConfigView before{topo_};
  const topo::ConfigView after{topo_, &update};
  const auto h = smt_.packet_vars("m");
  auto solver = smt_.make_solver();

  // One formula over everything: the packet enters Ω, is routable along
  // some path, and that path's decision changes. Every ACL is encoded
  // whole; expressions are shared across paths via a local cache.
  std::unordered_map<std::uint64_t, z3::expr> cache;
  const auto acl_expr = [&](topo::AclSlot slot, bool after_side) {
    const std::uint64_t key = acl_expr_key(slot, after_side);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const auto& view = after_side ? after : before;
    const z3::expr expr = smt::acl_permits(h, view.acl(slot), options_.encoder);
    return cache.emplace(key, expr).first->second;
  };

  z3::expr any = smt_.bool_val(false);
  for (std::size_t pi = 0; pi < all_paths.size(); ++pi) {
    const auto& path = all_paths[pi];
    z3::expr before_decision = smt_.bool_val(true);
    z3::expr after_decision = smt_.bool_val(true);
    for (const auto& hop : path.hops()) {
      before_decision = before_decision && acl_expr(hop.slot(), false);
      after_decision = after_decision && acl_expr(hop.slot(), true);
    }
    const z3::expr routable = smt::set_expr(h, forwarding[pi]);
    any = any || (routable && (before_decision != after_decision));
  }
  solver.add(smt::set_expr(h, entering));
  solver.add(any);

  const auto witness = smt_.solve_for_packet(solver, h);
  if (witness) {
    result.consistent = false;
    for (std::size_t pi = 0; pi < all_paths.size(); ++pi) {
      if (!forwarding[pi].contains(*witness)) continue;
      const bool b = topo::path_permits(before, all_paths[pi], *witness);
      const bool a = topo::path_permits(after, all_paths[pi], *witness);
      if (b != a) {
        Violation violation{*witness, pi, b, a, std::nullopt, {}, {}};
        explain_violation(topo_, before, after, all_paths[pi], violation);
        result.violations.push_back(std::move(violation));
        break;
      }
    }
  }
  result.smt_queries = smt_.query_count() - queries_before;
  return result;
}

CheckResult Checker::check(const topo::AclUpdate& update, const net::PacketSet& entering,
                           const std::vector<lai::ControlIntent>& controls) {
  CheckResult result;
  result.path_count = paths().size();

  // Plan: the obligation DAG (update-independent, cached).
  const VerifyPlan& verify_plan = plan(entering);
  const auto& obligations = verify_plan.obligations();
  result.fec_count = verify_plan.stats().fec_count;
  result.obligation_count = obligations.size();
  result.plan_seconds = last_plan_seconds_;

  Executor& exec = executor();
  const bool stop_at_first = options_.stop_at_first;
  const bool parallel = exec.threads() > 1 && obligations.size() > 1;
  std::vector<std::optional<Violation>> found(obligations.size());
  ExecutionStats stats;

  if (!parallel) {
    // Sequential: one cached session on the checker's own context, executed
    // in plan order — byte-identical to the pre-pipeline sequential loop,
    // and the session's incremental base frame survives across commands.
    const std::uint64_t queries_before = smt_.query_count();
    const double solve_before = smt_.solve_seconds();
    CheckSession& main_session = session(update, controls);
    double busy = 0;
    const obs::TraceSpan execute_span{obs::Span::CheckerExecute};
    stats = exec.run(obligations.size(), [&](std::size_t) -> Executor::Task {
      return [&](std::size_t i, const CancellationToken& token) {
        if (token.cancelled()) return false;
        const auto start = std::chrono::steady_clock::now();
        const Obligation& o = obligations[i];
        auto violation = main_session.find_violation(*o.fec, net::PacketSet::empty(), o.paths);
        busy += seconds_since(start);
        if (!violation) return false;
        found[i] = std::move(*violation);
        return stop_at_first;
      };
    });
    result.smt_queries = smt_.query_count() - queries_before;
    result.solve_seconds = smt_.solve_seconds() - solve_before;
    result.compile_seconds =
        last_session_seconds_ + std::max(0.0, busy - result.solve_seconds);
  } else {
    // Parallel: each worker compiles its own session on a private Z3
    // context (Z3 contexts are single-threaded); the executor distributes
    // obligations by work stealing.
    struct WorkerState {
      smt::SmtContext smt;
      std::optional<CheckSession> session;
      double busy_seconds = 0;
    };
    std::mutex states_mutex;
    std::vector<std::unique_ptr<WorkerState>> states;
    const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
      auto owned = std::make_unique<WorkerState>();
      WorkerState* state = owned.get();
      if (options_.timeout_ms > 0) state->smt.set_timeout_ms(options_.timeout_ms);
      state->session.emplace(*this, state->smt, update, controls);
      {
        const std::lock_guard<std::mutex> lock{states_mutex};
        states.push_back(std::move(owned));
      }
      return [&, state](std::size_t i, const CancellationToken& token) {
        if (token.cancelled()) return false;
        const auto start = std::chrono::steady_clock::now();
        const Obligation& o = obligations[i];
        auto violation =
            state->session->find_violation(*o.fec, net::PacketSet::empty(), o.paths);
        state->busy_seconds += seconds_since(start);
        if (!violation) return false;
        found[i] = std::move(*violation);
        return stop_at_first;
      };
    };
    {
      const obs::TraceSpan execute_span{obs::Span::CheckerExecute};
      stats = exec.run(obligations.size(), factory);
    }
    double busy = 0;
    double build = 0;
    for (const auto& state : states) {
      result.smt_queries += state->smt.query_count();
      result.solve_seconds += state->smt.solve_seconds();
      busy += state->busy_seconds;
      build += state->session->build_seconds();
    }
    result.compile_seconds = build + std::max(0.0, busy - result.solve_seconds);
  }

  result.obligations_executed = stats.executed;
  result.obligations_cancelled = stats.cancelled;
  result.execute_seconds = stats.execute_seconds;
  obs::count(obs::Counter::ObligationsExecuted, stats.executed);
  obs::count(obs::Counter::ObligationsCancelled, stats.cancelled);

  if (parallel && stop_at_first && stats.stop_index < obligations.size()) {
    // The executor guarantees stop_index is the *minimal* obligation with a
    // violation; re-derive its witness on a fresh context so the reported
    // packet does not depend on which worker got there first.
    smt::SmtContext fresh;
    if (options_.timeout_ms > 0) fresh.set_timeout_ms(options_.timeout_ms);
    CheckSession fresh_session{*this, fresh, update, controls};
    const Obligation& o = obligations[stats.stop_index];
    auto violation = fresh_session.find_violation(*o.fec, net::PacketSet::empty(), o.paths);
    result.smt_queries += fresh.query_count();
    if (!violation) violation = std::move(found[stats.stop_index]);  // unreachable fallback
    result.consistent = false;
    result.violations.push_back(std::move(*violation));
    return result;
  }

  for (auto& violation : found) {
    if (!violation) continue;
    result.consistent = false;
    result.violations.push_back(std::move(*violation));
  }
  return result;
}

}  // namespace jinjing::core
