#include "core/checker.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "net/acl_algebra.h"
#include "smt/encode.h"

namespace jinjing::core {

namespace {

/// Does a control intent span this path's endpoints?
bool intent_spans_path(const lai::ControlIntent& intent, const topo::Path& path) {
  const auto has = [](const std::vector<topo::InterfaceId>& list, topo::InterfaceId i) {
    return std::find(list.begin(), list.end(), i) != list.end();
  };
  return has(intent.from, path.entry()) && has(intent.to, path.exit());
}

/// Cache key for per-slot-per-side ACL expressions: (iface, direction,
/// before/after side) packed into distinct bit fields.
std::uint64_t acl_expr_key(topo::AclSlot slot, bool after_side) {
  return (std::uint64_t{slot.iface} << 2) |
         (std::uint64_t{slot.dir == topo::Dir::Out} << 1) | std::uint64_t{after_side};
}

}  // namespace

bool desired_decision(const std::vector<lai::ControlIntent>& controls, const topo::Path& path,
                      const net::Packet& h, bool original_decision) {
  for (const auto& intent : controls) {
    if (!intent_spans_path(intent, path)) continue;
    if (!intent.header.contains(h)) continue;
    switch (intent.verb) {
      case lai::ControlVerb::Open: return true;
      case lai::ControlVerb::Isolate: return false;
      case lai::ControlVerb::Maintain: return original_decision;
    }
  }
  return original_decision;
}

namespace {

/// The rule text an ACL uses to decide `h`.
std::string deciding_rule(const net::Acl& acl, const net::Packet& h) {
  const auto index = acl.first_match(h);
  if (index) return net::to_string(acl.rules()[*index]);
  return "default " + std::string(net::to_string(acl.default_action()));
}

}  // namespace

void explain_violation(const topo::Topology& topo, const topo::ConfigView& before,
                       const topo::ConfigView& after, const topo::Path& path,
                       Violation& violation) {
  (void)topo;
  for (const auto& hop : path.hops()) {
    const bool b = before.acl(hop.slot()).permits(violation.witness);
    const bool a = after.acl(hop.slot()).permits(violation.witness);
    if (b != a) {
      violation.changed_slot = hop.slot();
      violation.before_rule = deciding_rule(before.acl(hop.slot()), violation.witness);
      violation.after_rule = deciding_rule(after.acl(hop.slot()), violation.witness);
      return;
    }
  }
}

Checker::Checker(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
                 const CheckOptions& options)
    : smt_(smt),
      topo_(topo),
      scope_(scope),
      options_(options),
      fec_cache_(options.fec_cache ? options.fec_cache : std::make_shared<topo::FecCache>()) {
  paths_ = topo::enumerate_paths(topo_, scope_, options_.path_options);
  path_forwarding_.reserve(paths_.size());
  for (const auto& p : paths_) path_forwarding_.push_back(topo::forwarding_set(topo_, p));
}

std::shared_ptr<const std::vector<topo::EntryClasses>> Checker::entry_classes(
    const net::PacketSet& entering) {
  return fec_cache_->entry_classes(topo_, scope_, entering, fec_options());
}

std::shared_ptr<const std::vector<net::PacketSet>> Checker::global_classes(
    const net::PacketSet& entering) {
  return fec_cache_->global_classes(topo_, scope_, entering, fec_options());
}

std::vector<std::size_t> Checker::feasible_paths(const net::PacketSet& traffic) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (path_forwarding_[i].intersects(traffic)) out.push_back(i);
  }
  return out;
}

CheckSession::CheckSession(Checker& checker, const topo::AclUpdate& update,
                           const std::vector<lai::ControlIntent>& controls)
    : CheckSession(checker, checker.smt_, update, controls) {}

CheckSession::CheckSession(Checker& checker, smt::SmtContext& smt,
                           const topo::AclUpdate& update,
                           const std::vector<lai::ControlIntent>& controls)
    : checker_(checker),
      smt_(smt),
      before_(checker.topo_),
      after_(checker.topo_, &update),
      controls_(controls),
      vars_(smt.packet_vars()) {
  if (checker.options_.use_differential) {
    const auto slots = after_.bound_slots();
    auto reduced = reduce_by_differential(before_, after_, slots);
    // §6: traffic named by control intents can legitimately change decision,
    // so rules overlapping it must survive the Theorem 4.1 reduction.
    if (!controls_.empty()) {
      auto diff = std::move(reduced.diff);
      for (const auto& intent : controls_) {
        if (intent.verb == lai::ControlVerb::Maintain) continue;
        for (auto& rule : net::rules_for_set(intent.header, net::Action::Permit)) {
          diff.push_back(std::move(rule));
        }
      }
      reduced = ReducedGroups{};
      reduced.diff = std::move(diff);
      for (const auto slot : slots) {
        reduced.before.emplace(slot, related_rules(before_.acl(slot), reduced.diff));
        reduced.after.emplace(slot, related_rules(after_.acl(slot), reduced.diff));
      }
    }
    reduced_ = std::move(reduced);
  }
}

const net::Acl& CheckSession::encoded_acl(topo::AclSlot slot, bool after_side) const {
  if (reduced_) {
    const auto& group = after_side ? reduced_->after : reduced_->before;
    const auto it = group.find(slot);
    if (it != group.end()) return it->second;
  }
  return after_side ? after_.acl(slot) : before_.acl(slot);
}

const z3::expr& CheckSession::acl_expr(topo::AclSlot slot, bool after_side) {
  const std::uint64_t key = acl_expr_key(slot, after_side);
  const auto it = expr_cache_.find(key);
  if (it != expr_cache_.end()) return it->second;
  const z3::expr expr =
      smt::acl_permits(vars_, encoded_acl(slot, after_side), checker_.options_.encoder);
  return expr_cache_.emplace(key, expr).first->second;
}

/// ¬(desired(c_p) ⇔ c'_p) for one path — the per-path disjunct of
/// Equation 3, with c_p transformed by the control decision model r_p when
/// intents are present (§6).
z3::expr CheckSession::path_inconsistency_expr(std::size_t path_index) {
  auto& smt = smt_;
  const auto& h = vars_;
  const auto& path = checker_.paths_[path_index];

  const auto path_decision = [&](bool after_side) {
    z3::expr expr = smt.bool_val(true);
    for (const auto& hop : path.hops()) {
      const net::Acl& acl = encoded_acl(hop.slot(), after_side);
      if (acl.empty() && acl.default_action() == net::Action::Permit) continue;
      expr = expr && acl_expr(hop.slot(), after_side);
    }
    return expr;
  };

  const z3::expr original = path_decision(/*after_side=*/false);
  z3::expr desired = original;
  for (auto it = controls_.rbegin(); it != controls_.rend(); ++it) {
    if (!intent_spans_path(*it, path)) continue;
    z3::expr value = smt.bool_val(true);
    switch (it->verb) {
      case lai::ControlVerb::Open: value = smt.bool_val(true); break;
      case lai::ControlVerb::Isolate: value = smt.bool_val(false); break;
      case lai::ControlVerb::Maintain: value = original; break;
    }
    desired = z3::ite(smt::set_expr(h, it->header), value, desired);
  }
  const z3::expr updated = path_decision(/*after_side=*/true);
  return desired != updated;
}

const z3::expr& CheckSession::path_inconsistent(std::size_t path_index) {
  const auto it = path_flags_.find(path_index);
  if (it != path_flags_.end()) return it->second;
  const z3::expr flag =
      smt_.ctx().bool_const(("jj_incons_" + std::to_string(path_index)).c_str());
  // Asserted at the solver's base frame: callers only push() after every
  // flag of the query has been defined.
  solver_->add(flag == path_inconsistency_expr(path_index));
  return path_flags_.emplace(path_index, flag).first->second;
}

std::optional<Violation> CheckSession::find_violation(const net::PacketSet& fec,
                                                      const net::PacketSet& excluded,
                                                      std::optional<topo::InterfaceId> entry) {
  auto feasible = checker_.feasible_paths(fec);
  if (entry) {
    std::erase_if(feasible, [&](std::size_t pi) {
      return checker_.paths_[pi].entry() != *entry;
    });
  }
  if (feasible.empty()) return std::nullopt;

  auto& smt = smt_;
  const auto& h = vars_;

  std::optional<net::Packet> witness;
  if (checker_.options_.incremental_smt) {
    // One solver for the whole session: each path's inconsistency disjunct
    // is asserted once (as a named indicator at the base frame), so the
    // solver internalizes every ACL expression a single time and reuses
    // learned clauses across the per-FEC queries. Only the query-specific
    // ψ_[h]FEC / exclusion constraints live inside the push/pop frame.
    if (!solver_) solver_.emplace(smt.make_solver());
    z3::expr any_inconsistent = smt.bool_val(false);
    for (const std::size_t pi : feasible) {
      any_inconsistent = any_inconsistent || path_inconsistent(pi);
    }
    solver_->push();
    solver_->add(any_inconsistent);
    solver_->add(smt::set_expr(h, fec));                       // ψ_[h]FEC
    if (!excluded.is_empty()) solver_->add(!smt::set_expr(h, excluded));
    witness = smt.solve_for_packet(*solver_, h);
    solver_->pop();
  } else {
    auto solver = smt.make_solver();
    z3::expr any_inconsistent = smt.bool_val(false);
    for (const std::size_t pi : feasible) {
      any_inconsistent = any_inconsistent || path_inconsistency_expr(pi);
    }
    solver.add(any_inconsistent);
    solver.add(smt::set_expr(h, fec));                         // ψ_[h]FEC
    if (!excluded.is_empty()) solver.add(!smt::set_expr(h, excluded));
    witness = smt.solve_for_packet(solver, h);
  }
  if (!witness) return std::nullopt;

  // Locate the violated path by concrete evaluation on the *full* views
  // (sound per Theorem 4.1: reduced and full verdicts agree pointwise).
  for (const std::size_t pi : feasible) {
    const auto& path = checker_.paths_[pi];
    const bool original = topo::path_permits(before_, path, *witness);
    const bool desired = desired_decision(controls_, path, *witness, original);
    const bool updated = topo::path_permits(after_, path, *witness);
    if (desired != updated) {
      Violation violation{*witness, pi, desired, updated, std::nullopt, {}, {}};
      explain_violation(checker_.topo_, before_, after_, path, violation);
      return violation;
    }
  }
  // The SMT witness must correspond to a concrete violation; reaching here
  // would mean the encodings disagree.
  throw std::logic_error("check: SMT witness does not violate consistency concretely");
}

CheckResult Checker::check_monolithic(const topo::AclUpdate& update,
                                      const net::PacketSet& entering) {
  const std::uint64_t queries_before = smt_.query_count();
  CheckResult result;
  result.path_count = paths_.size();
  result.fec_count = 1;  // the whole entering traffic, unclassified

  const topo::ConfigView before{topo_};
  const topo::ConfigView after{topo_, &update};
  const auto h = smt_.packet_vars("m");
  auto solver = smt_.make_solver();

  // One formula over everything: the packet enters Ω, is routable along
  // some path, and that path's decision changes. Every ACL is encoded
  // whole; expressions are shared across paths via a local cache.
  std::unordered_map<std::uint64_t, z3::expr> cache;
  const auto acl_expr = [&](topo::AclSlot slot, bool after_side) {
    const std::uint64_t key = acl_expr_key(slot, after_side);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    const auto& view = after_side ? after : before;
    const z3::expr expr = smt::acl_permits(h, view.acl(slot), options_.encoder);
    return cache.emplace(key, expr).first->second;
  };

  z3::expr any = smt_.bool_val(false);
  for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
    const auto& path = paths_[pi];
    z3::expr before_decision = smt_.bool_val(true);
    z3::expr after_decision = smt_.bool_val(true);
    for (const auto& hop : path.hops()) {
      before_decision = before_decision && acl_expr(hop.slot(), false);
      after_decision = after_decision && acl_expr(hop.slot(), true);
    }
    const z3::expr routable = smt::set_expr(h, path_forwarding_[pi]);
    any = any || (routable && (before_decision != after_decision));
  }
  solver.add(smt::set_expr(h, entering));
  solver.add(any);

  const auto witness = smt_.solve_for_packet(solver, h);
  if (witness) {
    result.consistent = false;
    for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
      if (!path_forwarding_[pi].contains(*witness)) continue;
      const bool b = topo::path_permits(before, paths_[pi], *witness);
      const bool a = topo::path_permits(after, paths_[pi], *witness);
      if (b != a) {
        Violation violation{*witness, pi, b, a, std::nullopt, {}, {}};
        explain_violation(topo_, before, after, paths_[pi], violation);
        result.violations.push_back(std::move(violation));
        break;
      }
    }
  }
  result.smt_queries = smt_.query_count() - queries_before;
  return result;
}

CheckResult Checker::check(const topo::AclUpdate& update, const net::PacketSet& entering,
                           const std::vector<lai::ControlIntent>& controls) {
  const std::uint64_t queries_before = smt_.query_count();
  CheckResult result;
  result.path_count = paths_.size();

  if (options_.per_entry_fec) {
    // Classes are cached across check() calls (they do not depend on the
    // update); the work list references them in place.
    const auto classified = entry_classes(entering);
    std::vector<std::pair<topo::InterfaceId, const net::PacketSet*>> work;
    for (const auto& [entry, classes] : *classified) {
      result.fec_count += classes.size();
      for (const auto& cls : classes) work.emplace_back(entry, &cls);
    }

    if (options_.threads > 1) {
      // Each worker owns a Z3 context and session (Z3 contexts are
      // single-threaded, so the checker's own context stays untouched);
      // violations are merged under a mutex and a flag short-circuits the
      // others on stop_at_first.
      std::atomic<std::size_t> next{0};
      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> queries{0};
      std::mutex merge;
      const auto worker = [&]() {
        smt::SmtContext worker_smt;
        CheckSession worker_session{*this, worker_smt, update, controls};
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t i = next.fetch_add(1);
          if (i >= work.size()) break;
          auto violation =
              worker_session.find_violation(*work[i].second, net::PacketSet::empty(),
                                            work[i].first);
          if (violation) {
            const std::lock_guard<std::mutex> lock{merge};
            result.consistent = false;
            result.violations.push_back(std::move(*violation));
            if (options_.stop_at_first) stop.store(true, std::memory_order_relaxed);
          }
        }
        queries.fetch_add(worker_smt.query_count());
      };
      std::vector<std::thread> pool;
      const std::size_t pool_size = std::min<std::size_t>(options_.threads, work.size());
      for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
      for (auto& t : pool) t.join();
      result.smt_queries = queries.load();
      return result;
    }

    CheckSession session{*this, update, controls};
    for (const auto& [entry, cls] : work) {
      auto violation = session.find_violation(*cls, net::PacketSet::empty(), entry);
      if (violation) {
        result.consistent = false;
        result.violations.push_back(std::move(*violation));
        if (options_.stop_at_first) break;
      }
    }
    result.smt_queries = smt_.query_count() - queries_before;
    return result;
  }

  const auto fecs = global_classes(entering);
  result.fec_count = fecs->size();

  CheckSession session{*this, update, controls};
  for (const auto& fec : *fecs) {
    auto violation = session.find_violation(fec, net::PacketSet::empty());
    if (violation) {
      result.consistent = false;
      result.violations.push_back(std::move(*violation));
      if (options_.stop_at_first) break;
    }
  }
  result.smt_queries = smt_.query_count() - queries_before;
  return result;
}

}  // namespace jinjing::core
