#include "core/incremental.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/diff.h"
#include "obs/stats.h"
#include "topo/fec_delta.h"

namespace jinjing::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
}

std::vector<topo::DeviceId> sorted_devices(const topo::Scope& scope) {
  std::vector<topo::DeviceId> devices(scope.devices().begin(), scope.devices().end());
  std::sort(devices.begin(), devices.end());
  return devices;
}

/// Structural fingerprint of one planning problem: scope devices + entering
/// cubes. The version is kept outside the key so all versions of one
/// problem share a bucket; exact guards (sorted devices, entering equality)
/// back the hash.
std::uint64_t problem_key(const std::vector<topo::DeviceId>& devices,
                          const net::PacketSet& entering) {
  std::uint64_t h = kFnvOffset;
  mix(h, devices.size());
  for (const auto d : devices) mix(h, d);
  mix(h, entering.cube_count());
  for (const auto& cube : entering.cubes()) {
    for (const net::Field f : net::kAllFields) {
      const auto& iv = cube.interval(f);
      mix(h, iv.lo);
      mix(h, iv.hi);
    }
  }
  return h;
}

std::uint64_t problem_key(const topo::Scope& scope, const net::PacketSet& entering) {
  return problem_key(sorted_devices(scope), entering);
}

bool slot_less(topo::AclSlot a, topo::AclSlot b) {
  if (a.iface != b.iface) return a.iface < b.iface;
  return static_cast<int>(a.dir) < static_cast<int>(b.dir);
}

/// Canonical text of an update — the exact-match guard for cached verdict
/// sets. Slot order is normalized; rule text is the parser round-trip form.
std::string update_text(const topo::AclUpdate& update) {
  std::vector<topo::AclSlot> slots;
  slots.reserve(update.size());
  for (const auto& [slot, acl] : update) slots.push_back(slot);
  std::sort(slots.begin(), slots.end(), slot_less);
  std::string out;
  for (const auto slot : slots) {
    const net::Acl& acl = update.at(slot);
    out += std::to_string(slot.iface);
    out += slot.dir == topo::Dir::In ? "i{" : "o{";
    for (const auto& rule : acl.rules()) {
      out += net::to_string(rule);
      out += ';';
    }
    out += "}d";
    out += net::to_string(acl.default_action());
    out += '\n';
  }
  return out;
}

std::uint64_t text_key(const std::string& text) {
  std::uint64_t h = kFnvOffset;
  for (const char c : text) mix(h, static_cast<unsigned char>(c));
  return h;
}

/// Do the obligation's path slots meet the delta's rewritten slots? Both
/// lists are tiny (a handful of hops / touched interfaces), so a linear
/// scan beats set machinery.
bool slots_intersect(const std::vector<topo::AclSlot>& obligation_slots,
                     const std::vector<topo::AclSlot>& delta_slots) {
  for (const auto slot : obligation_slots) {
    if (std::find(delta_slots.begin(), delta_slots.end(), slot) != delta_slots.end()) {
      return true;
    }
  }
  return false;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

IncrementalPlanner::IncrementalPlanner(IncrementalOptions options) : options_(options) {
  if (options_.max_entries == 0) options_.max_entries = 1;
}

IncrementalPlanner::Entry* IncrementalPlanner::find_entry_locked(
    std::uint64_t key, std::uint64_t version, const topo::Scope& scope,
    const net::PacketSet& entering) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  const auto devices = sorted_devices(scope);
  for (auto& entry : it->second) {
    if (entry.version == version && entry.scope_devices == devices &&
        entry.bundle->entering.equals(entering)) {
      return &entry;
    }
  }
  return nullptr;
}

void IncrementalPlanner::record_apply(std::uint64_t from_version, std::uint64_t to_version,
                                      const topo::Topology& before,
                                      const topo::AclUpdate& update) {
  if (options_.max_delta_chain == 0) return;

  // The Definition 4.1 differential of this apply, pooled across its slots,
  // as a packet set: an obligation class disjoint from it keeps every
  // first-match decision on the rewritten slots (Theorem 4.1), so its
  // cached verdicts survive.
  std::vector<topo::AclSlot> delta_slots;
  delta_slots.reserve(update.size());
  for (const auto& [slot, acl] : update) delta_slots.push_back(slot);
  std::sort(delta_slots.begin(), delta_slots.end(), slot_less);
  const topo::ConfigView before_view{before};
  const topo::ConfigView after_view{before, &update};
  net::PacketSet diff_packets;
  for (const auto& rule : scope_differential(before_view, after_view, delta_slots)) {
    diff_packets = diff_packets | net::PacketSet{rule.match.cube()};
  }

  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<Entry> rebased;
  for (auto& [key, bucket] : entries_) {
    for (const auto& entry : bucket) {
      if (entry.version != from_version) continue;
      if (entry.chain + 1 > options_.max_delta_chain) {
        ++stats_.fallbacks;  // budget exhausted: the next job rebuilds fresh
        continue;
      }
      Entry next;
      next.version = to_version;
      next.scope_devices = entry.scope_devices;
      next.bundle = entry.bundle;  // structurally valid verbatim (ACL-only apply)
      next.chain = entry.chain + 1;
      next.diffs = entry.diffs;
      next.verdicts = entry.verdicts;
      // Invalidate verdicts the delta can perturb, remembering which diff
      // hit them so the next check can re-prove just the touched sub-atoms.
      // Bits already false keep their earlier stale_from: the diff range
      // from that point automatically covers this apply too.
      const auto diff_index = static_cast<std::uint32_t>(next.diffs.size());
      std::uint64_t invalidated = 0;
      const auto& obligations = next.bundle->plan.obligations();
      for (auto& [vkey, verdicts] : next.verdicts) {
        if (verdicts.stale_from.size() < verdicts.clean.size()) {
          verdicts.stale_from.resize(verdicts.clean.size(), kNotStale);
        }
        for (std::size_t i = 0; i < verdicts.clean.size() && i < obligations.size(); ++i) {
          if (!verdicts.clean[i]) continue;
          const Obligation& o = obligations[i];
          if (slots_intersect(o.slots, delta_slots) && o.fec->intersects(diff_packets)) {
            verdicts.clean[i] = false;
            verdicts.stale_from[i] = diff_index;
            ++invalidated;
          }
        }
      }
      next.diffs.push_back(diff_packets);
      stats_.invalidations += invalidated;
      obs::count(obs::Counter::DeltaCacheInvalidations, invalidated);
      ++stats_.rebases;
      obs::count(obs::Counter::DeltaCacheRebases);
      rebased.push_back(std::move(next));
    }
  }
  // Re-insert under the same problem keys (the key is scope+entering, which
  // the rebase does not change, so each entry lands in its source bucket).
  for (auto& entry : rebased) {
    const std::uint64_t key = problem_key(entry.scope_devices, entry.bundle->entering);
    entries_[key].push_back(std::move(entry));
  }
  evict_locked();
  refresh_gauge_locked();
}

IncrementalLease IncrementalPlanner::acquire(std::uint64_t version, const topo::Scope& scope,
                                             const net::PacketSet& entering,
                                             const topo::AclUpdate& update) {
  if (options_.max_delta_chain == 0) return {};
  const std::uint64_t key = problem_key(scope, entering);
  const std::lock_guard<std::mutex> lock{mutex_};
  Entry* entry = find_entry_locked(key, version, scope, entering);
  if (entry == nullptr) {
    ++stats_.misses;
    obs::count(obs::Counter::DeltaCacheMisses);
    return {};
  }
  ++stats_.hits;
  obs::count(obs::Counter::DeltaCacheHits);
  IncrementalLease lease;
  lease.bundle = entry->bundle;
  lease.version = version;
  const std::string text = update_text(update);
  const auto it = entry->verdicts.find(text_key(text));
  if (it != entry->verdicts.end() && it->second.update_text == text) {
    it->second.stamp = ++stamp_;
    lease.clean = it->second.clean;
    lease.stale_from = it->second.stale_from;
    lease.diffs = entry->diffs;
  }
  return lease;
}

bool IncrementalPlanner::peek_fully_clean(std::uint64_t version, const topo::Scope& scope,
                                          const net::PacketSet& entering,
                                          const topo::AclUpdate& update) const {
  if (options_.max_delta_chain == 0) return false;
  const std::uint64_t key = problem_key(scope, entering);
  const std::lock_guard<std::mutex> lock{mutex_};
  Entry* entry =
      const_cast<IncrementalPlanner*>(this)->find_entry_locked(key, version, scope, entering);
  if (entry == nullptr) return false;
  const std::string text = update_text(update);
  const auto it = entry->verdicts.find(text_key(text));
  if (it == entry->verdicts.end() || it->second.update_text != text) return false;
  const auto& clean = it->second.clean;
  for (const Obligation& o : entry->bundle->plan.obligations()) {
    if (!touches(o, update)) continue;
    if (o.index >= clean.size() || !clean[o.index]) return false;
  }
  return true;
}

void IncrementalPlanner::install(std::uint64_t version, const topo::Scope& scope,
                                 std::shared_ptr<const PlanBundle> bundle) {
  if (options_.max_delta_chain == 0 || bundle == nullptr) return;
  const std::uint64_t key = problem_key(scope, bundle->entering);
  const std::lock_guard<std::mutex> lock{mutex_};
  if (find_entry_locked(key, version, scope, bundle->entering) != nullptr) return;
  Entry entry;
  entry.version = version;
  entry.scope_devices = sorted_devices(scope);
  entry.bundle = std::move(bundle);
  entries_[key].push_back(std::move(entry));
  evict_locked();
  refresh_gauge_locked();
}

void IncrementalPlanner::commit(std::uint64_t version, const topo::Scope& scope,
                                const net::PacketSet& entering, const topo::AclUpdate& update,
                                const std::vector<bool>& clean) {
  if (options_.max_delta_chain == 0) return;
  const std::uint64_t key = problem_key(scope, entering);
  const std::lock_guard<std::mutex> lock{mutex_};
  Entry* entry = find_entry_locked(key, version, scope, entering);
  if (entry == nullptr) return;  // retired or evicted while the check ran
  const std::string text = update_text(update);
  const std::uint64_t vkey = text_key(text);
  auto it = entry->verdicts.find(vkey);
  if (it == entry->verdicts.end() || it->second.update_text != text) {
    if (entry->verdicts.size() >= options_.max_verdict_sets) {
      // Evict the least recently touched verdict set.
      auto victim = entry->verdicts.begin();
      for (auto cand = entry->verdicts.begin(); cand != entry->verdicts.end(); ++cand) {
        if (cand->second.stamp < victim->second.stamp) victim = cand;
      }
      entry->verdicts.erase(victim);
    }
    VerdictSet fresh;
    fresh.update_text = text;
    fresh.clean.assign(entry->bundle->plan.size(), false);
    fresh.stale_from.assign(entry->bundle->plan.size(), kNotStale);
    it = entry->verdicts.insert_or_assign(vkey, std::move(fresh)).first;
  }
  it->second.stamp = ++stamp_;
  auto& bits = it->second.clean;
  auto& stale = it->second.stale_from;
  if (bits.size() < clean.size()) bits.resize(clean.size(), false);
  if (stale.size() < bits.size()) stale.resize(bits.size(), kNotStale);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i]) {
      bits[i] = true;  // verdicts only ever strengthen
      stale[i] = kNotStale;
    }
  }
}

void IncrementalPlanner::retire_version(std::uint64_t version) {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& bucket = it->second;
    std::erase_if(bucket, [version](const Entry& e) { return e.version == version; });
    it = bucket.empty() ? entries_.erase(it) : std::next(it);
  }
  refresh_gauge_locked();
}

void IncrementalPlanner::evict_locked() {
  std::size_t live = 0;
  for (const auto& [key, bucket] : entries_) live += bucket.size();
  while (live > options_.max_entries) {
    // Evict the lowest version first: old versions are the least likely to
    // be checked again (the head only moves forward).
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [key, bucket] : entries_) {
      for (const auto& entry : bucket) oldest = std::min(oldest, entry.version);
    }
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto& bucket = it->second;
      std::erase_if(bucket, [oldest](const Entry& e) { return e.version == oldest; });
      it = bucket.empty() ? entries_.erase(it) : std::next(it);
    }
    std::size_t remaining = 0;
    for (const auto& [key, bucket] : entries_) remaining += bucket.size();
    if (remaining == live) break;  // defensive: no progress, stop
    live = remaining;
  }
}

void IncrementalPlanner::refresh_gauge_locked() {
  stats_.cached_plans = 0;
  stats_.cached_obligations = 0;
  for (const auto& [key, bucket] : entries_) {
    stats_.cached_plans += bucket.size();
    for (const auto& entry : bucket) stats_.cached_obligations += entry.bundle->plan.size();
  }
  obs::gauge_max(obs::Gauge::SvcCachedObligations, stats_.cached_obligations);
}

IncrementalStats IncrementalPlanner::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

IncrementalOutcome run_incremental_check(Checker& checker, const IncrementalLease& lease,
                                         const topo::AclUpdate& update) {
  IncrementalOutcome out;
  const VerifyPlan& plan = lease.bundle->plan;
  const auto& obligations = plan.obligations();
  out.clean.assign(obligations.size(), false);

  CheckResult& result = out.result;
  result.path_count = lease.bundle->paths.size();
  result.fec_count = plan.stats().fec_count;
  result.obligation_count = obligations.size();
  result.plan_seconds = 0;  // served from the delta cache

  const std::uint64_t queries_before = checker.smt().query_count();
  const double solve_before = checker.smt().solve_seconds();
  CheckSession& session = checker.session(update, {});
  const bool stop_at_first = checker.options().stop_at_first;

  const auto start = std::chrono::steady_clock::now();
  for (const Obligation& o : obligations) {
    if (!touches(o, update)) {
      // No rewritten slot on any of its paths: both sides of Equation 3
      // coincide, the obligation is trivially consistent.
      ++out.skipped;
      out.clean[o.index] = true;
      continue;
    }
    if (o.index < lease.clean.size() && lease.clean[o.index]) {
      ++out.reused;  // proven consistent for this exact update earlier
      out.clean[o.index] = true;
      continue;
    }
    const std::uint32_t stale_from =
        o.index < lease.stale_from.size() ? lease.stale_from[o.index] : kNotStale;
    if (stale_from != kNotStale && stale_from < lease.diffs.size()) {
      // The verdict was proven and later invalidated by diffs[stale_from..]:
      // delta-refine the class and query only the sub-atoms those diffs
      // touch — the disjoint sub-atoms behaved identically under the old
      // proof and inherit consistency.
      const std::vector<net::PacketSet> changed(lease.diffs.begin() + stale_from,
                                                lease.diffs.end());
      const topo::FecDeltaResult delta =
          topo::refine_delta({*o.fec}, changed, checker.options().set_backend);
      ++result.obligations_executed;
      ++out.delta_checked;
      bool violated = false;
      for (std::size_t a = 0; a < delta.atoms.size() && !violated; ++a) {
        if (!delta.touched[a]) continue;
        violated = session.find_violation(delta.atoms[a], net::PacketSet::empty(), o.paths)
                       .has_value();
      }
      if (!violated) {
        out.clean[o.index] = true;
        continue;
      }
      // A violating sub-atom implies a full-class violation; re-derive it on
      // the whole class so the reported witness is bit-identical to a
      // from-scratch check.
      auto full = session.find_violation(*o.fec, net::PacketSet::empty(), o.paths);
      if (full) {
        result.consistent = false;
        result.violations.push_back(std::move(*full));
        if (stop_at_first) break;
      } else {
        out.clean[o.index] = true;  // defensive: treat as proven consistent
      }
      continue;
    }
    ++result.obligations_executed;
    auto violation = session.find_violation(*o.fec, net::PacketSet::empty(), o.paths);
    if (violation) {
      result.consistent = false;
      result.violations.push_back(std::move(*violation));
      if (stop_at_first) break;
    } else {
      out.clean[o.index] = true;
    }
  }
  result.execute_seconds = seconds_since(start);
  result.smt_queries = checker.smt().query_count() - queries_before;
  result.solve_seconds = checker.smt().solve_seconds() - solve_before;
  result.compile_seconds = session.build_seconds();
  obs::count(obs::Counter::ObligationsExecuted, result.obligations_executed);
  obs::count(obs::Counter::ObligationsSkipped, out.skipped + out.reused);
  return out;
}

}  // namespace jinjing::core
