#include "core/deploy.h"

#include <algorithm>
#include <map>

#include "net/acl_algebra.h"

namespace jinjing::core {

topo::AclUpdate rollback_update(const topo::Topology& topo, const topo::AclUpdate& update) {
  topo::AclUpdate rollback;
  for (const auto& [slot, acl] : update) {
    rollback.emplace(slot, topo.acl(slot));
  }
  return rollback;
}

std::vector<DeployStep> staged_plan(const topo::Topology& topo, const topo::AclUpdate& update,
                                    StagingMode mode) {
  // Deterministic slot order for reproducible plans.
  std::map<std::string, std::pair<topo::AclSlot, const net::Acl*>> ordered;
  for (const auto& [slot, acl] : update) {
    ordered.emplace(topo.qualified_name(slot.iface) +
                        (slot.dir == topo::Dir::In ? "-in" : "-out"),
                    std::make_pair(slot, &acl));
  }

  std::vector<DeployStep> steps;
  for (const auto& [name, entry] : ordered) {
    const auto [slot, after] = entry;
    const net::Acl& before = topo.acl(slot);
    if (before == *after) continue;

    const auto before_set = net::permitted_set(before);
    const auto after_set = net::permitted_set(*after);
    net::PacketSet transitional_set = mode == StagingMode::AvailabilityFirst
                                          ? (before_set | after_set)
                                          : (before_set & after_set);
    transitional_set.compact();

    // Skip the transitional push when one endpoint already *is* the bound:
    // e.g. a pure loosening under AvailabilityFirst goes straight to final.
    const bool after_is_bound = after_set.equals(transitional_set);
    if (!after_is_bound) {
      net::Acl transitional{net::rules_for_set(transitional_set.complement(), net::Action::Deny),
                            net::Action::Permit};
      steps.push_back(DeployStep{0, slot, std::move(transitional)});
    }
    steps.push_back(DeployStep{after_is_bound ? 0 : 1, slot, *after});
  }
  std::stable_sort(steps.begin(), steps.end(),
                   [](const DeployStep& a, const DeployStep& b) { return a.phase < b.phase; });
  return steps;
}

std::string describe_update(const topo::Topology& topo, const topo::AclUpdate& update) {
  std::map<std::string, std::pair<topo::AclSlot, const net::Acl*>> ordered;
  for (const auto& [slot, acl] : update) {
    ordered.emplace(topo.qualified_name(slot.iface) +
                        (slot.dir == topo::Dir::In ? "-in" : "-out"),
                    std::make_pair(slot, &acl));
  }

  std::string out;
  for (const auto& [name, entry] : ordered) {
    const auto [slot, after] = entry;
    const net::Acl& before = topo.acl(slot);
    if (before == *after) continue;

    const auto marks = lcs_marks(before.rules(), after->rules());
    std::vector<const net::AclRule*> removed;
    std::vector<const net::AclRule*> added;
    for (std::size_t i = 0; i < before.rules().size(); ++i) {
      if (!marks.in_a[i]) removed.push_back(&before.rules()[i]);
    }
    for (std::size_t i = 0; i < after->rules().size(); ++i) {
      if (!marks.in_b[i]) added.push_back(&after->rules()[i]);
    }

    out += name + ": +" + std::to_string(added.size()) + " -" +
           std::to_string(removed.size()) + " rules\n";
    for (const auto* rule : added) out += "  + " + net::to_string(*rule) + "\n";
    for (const auto* rule : removed) out += "  - " + net::to_string(*rule) + "\n";
  }
  if (out.empty()) out = "(no changes)\n";
  return out;
}

std::string format_plan(const topo::Topology& topo, const topo::AclUpdate& update) {
  if (update.empty()) return "(no changes)\n";
  std::map<std::string, const net::Acl*> ordered;
  for (const auto& [slot, acl] : update) {
    ordered.emplace(topo.qualified_name(slot.iface) +
                        (slot.dir == topo::Dir::In ? "-in" : "-out"),
                    &acl);
  }
  std::string out;
  for (const auto& [name, acl] : ordered) {
    out += "acl " + name + "\n";
    if (acl->empty()) {
      out += "  # no rules - " + std::string(net::to_string(acl->default_action())) + " all\n";
    }
    for (const auto& rule : acl->rules()) out += "  " + net::to_string(rule) + "\n";
    out += "end\n";
  }
  return out;
}

}  // namespace jinjing::core
