// The generate primitive (§5): derive classes → solve placements →
// synthesize ACLs, with the timing breakdown the paper reports in
// Figures 4c/4d.
#pragma once

#include <cstdint>
#include <memory>

#include "core/executor.h"
#include "core/synthesizer.h"
#include "topo/fec_cache.h"

namespace jinjing::core {

struct GenerateOptions {
  SynthesisOptions synthesis;
  topo::PathEnumOptions path_options;
  /// The traffic to classify and preserve. Defaults to every packet.
  net::PacketSet universe = net::PacketSet::all();
  /// Shared obligation executor for the per-class placement solving
  /// (phase 2). Unset or single-threaded = the sequential seed path.
  std::shared_ptr<Executor> executor;
  /// Shared partition cache: phase 1's AEC overlay is memoized by the exact
  /// cubes of (universe, refinement regions), so warm generate jobs whose
  /// scoped ACLs match an earlier derivation skip the overlay while
  /// producing bit-identical classes. Unset = always derive.
  std::shared_ptr<topo::FecCache> fec_cache;
};

struct GenerateResult {
  bool success = true;
  /// The generated plan: target slots -> synthesized ACLs, source slots ->
  /// permit-all.
  topo::AclUpdate update;

  std::size_t aec_count = 0;
  std::size_t aec_solved = 0;     // solved at AEC level
  std::size_t dec_count = 0;      // DECs derived for the unsolved AECs
  std::size_t unsolved = 0;       // DECs with no valid decision
  SynthesisStats synthesis;
  std::uint64_t smt_queries = 0;

  // Phase timing (seconds) — the Figure 4c/4d breakdown.
  double derive_seconds = 0;
  double solve_seconds = 0;
  double synth_seconds = 0;
};

class Generator {
 public:
  Generator(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
            const GenerateOptions& options = {});

  [[nodiscard]] GenerateResult generate(const MigrationSpec& spec,
                                        const std::vector<lai::ControlIntent>& controls = {});

 private:
  smt::SmtContext& smt_;
  const topo::Topology& topo_;
  const topo::Scope scope_;
  GenerateOptions options_;
};

}  // namespace jinjing::core
