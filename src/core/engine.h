// The Jinjing engine: executes a resolved LAI program (§3).
//
// The engine dispatches each command of the program against the *current*
// plan (initially the modify update; fix and generate replace it, so a
// trailing check re-validates the final plan):
//   check    -> Checker (Algorithm 1) on the modify update,
//   fix      -> Fixer (§4.2) constrained to the allow-listed slots,
//   generate -> Generator (§5): modify-to-permit-all slots are migration
//               sources, allow-listed slots are synthesis targets, control
//               statements define the desired reachability (§6).
// The final update of the last executed command is the deployable plan.
#pragma once

#include <optional>
#include <string_view>

#include "core/fixer.h"
#include "core/generator.h"
#include "lai/sema.h"

namespace jinjing::core {

struct EngineOptions {
  CheckOptions check;
  FixOptions fix;
  GenerateOptions generate;
};

/// Outcome of one command of the program.
struct CommandOutcome {
  lai::Command command = lai::Command::Check;
  std::optional<CheckResult> check;
  std::optional<FixResult> fix;
  std::optional<GenerateResult> generate;

  [[nodiscard]] bool ok() const;
};

struct EngineReport {
  std::vector<CommandOutcome> outcomes;
  /// The update plan produced by the pipeline: the modify update, possibly
  /// repaired by fix or replaced by generate.
  topo::AclUpdate final_update;
  /// The pipeline produced a deployable plan: the *last* command succeeded
  /// (a failing check followed by a successful fix is the intended
  /// check-then-repair workflow, not a failure).
  [[nodiscard]] bool success() const;
};

class EngineError : public std::runtime_error {
 public:
  explicit EngineError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  Engine(const topo::Topology& topo, EngineOptions options = {});

  /// Executes a resolved task against the traffic entering its scope.
  [[nodiscard]] EngineReport run(const lai::UpdateTask& task, const net::PacketSet& entering);

  /// Parses, resolves and executes an LAI program in one call.
  [[nodiscard]] EngineReport run_program(std::string_view source, const lai::AclLibrary& acls,
                                         const net::PacketSet& entering);

  [[nodiscard]] smt::SmtContext& smt() { return smt_; }

 private:
  const topo::Topology& topo_;
  EngineOptions options_;
  smt::SmtContext smt_;
};

}  // namespace jinjing::core
