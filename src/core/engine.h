// The Jinjing engine: executes a resolved LAI program (§3).
//
// The engine dispatches each command of the program against the *current*
// plan (initially the modify update; fix and generate replace it, so a
// trailing check re-validates the final plan):
//   check    -> Checker (Algorithm 1) on the modify update,
//   fix      -> Fixer (§4.2) constrained to the allow-listed slots,
//   generate -> Generator (§5): modify-to-permit-all slots are migration
//               sources, allow-listed slots are synthesis targets, control
//               statements define the desired reachability (§6).
// The final update of the last executed command is the deployable plan.
//
// One Checker/Fixer pair is kept per scope and reused across the commands
// of a task (and across tasks with the same scope), so a check; fix; check
// program shares its verification plan, FEC partitions and incremental Z3
// base frame instead of rebuilding them per command. One Executor and one
// FecCache are installed across the whole check/fix/generate pipeline.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/fixer.h"
#include "core/generator.h"
#include "lai/sema.h"

namespace jinjing::core {

struct EngineOptions {
  CheckOptions check;
  FixOptions fix;
  GenerateOptions generate;
};

/// Outcome of one command of the program.
struct CommandOutcome {
  lai::Command command = lai::Command::Check;
  std::optional<CheckResult> check;
  std::optional<FixResult> fix;
  std::optional<GenerateResult> generate;

  [[nodiscard]] bool ok() const;
};

struct EngineReport {
  std::vector<CommandOutcome> outcomes;
  /// The update plan produced by the pipeline: the modify update, possibly
  /// repaired by fix or replaced by generate.
  topo::AclUpdate final_update;
  /// The pipeline produced a deployable plan: the *last* command succeeded
  /// (a failing check followed by a successful fix is the intended
  /// check-then-repair workflow, not a failure).
  [[nodiscard]] bool success() const;
};

class EngineError : public std::runtime_error {
 public:
  explicit EngineError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  Engine(const topo::Topology& topo, EngineOptions options = {});

  /// Executes a resolved task against the traffic entering its scope.
  [[nodiscard]] EngineReport run(const lai::UpdateTask& task, const net::PacketSet& entering);

  /// Executes one command of `task` against the current plan `current`
  /// (initialized by the caller to task.modify), advancing it in place —
  /// fix replaces it with the repaired update, generate with the
  /// synthesized one. run() is a loop over this; it is exposed separately
  /// so a serving layer can interleave cooperative cancellation and
  /// deadline checks between the commands of a long program.
  [[nodiscard]] CommandOutcome run_command(const lai::UpdateTask& task, lai::Command command,
                                           topo::AclUpdate& current,
                                           const net::PacketSet& entering);

  /// Parses, resolves and executes an LAI program in one call.
  [[nodiscard]] EngineReport run_program(std::string_view source, const lai::AclLibrary& acls,
                                         const net::PacketSet& entering);

  /// Executes N independent update tasks, fanned out over the engine's
  /// executor (one single-threaded worker engine per pool worker, sharing
  /// this engine's FEC cache). Reports come back in task order. With a
  /// single-threaded executor (or one task) this degenerates to a
  /// sequential loop over run().
  [[nodiscard]] std::vector<EngineReport> run_batch(const std::vector<lai::UpdateTask>& tasks,
                                                    const net::PacketSet& entering);

  [[nodiscard]] smt::SmtContext& smt() { return smt_; }
  [[nodiscard]] const std::shared_ptr<Executor>& executor() const { return executor_; }

 private:
  /// The reusable per-scope verification session (rebuilt only when the
  /// task scope changes).
  Checker& checker_for(const topo::Scope& scope);
  Fixer& fixer_for(const topo::Scope& scope);

  const topo::Topology& topo_;
  EngineOptions options_;
  smt::SmtContext smt_;
  std::shared_ptr<Executor> executor_;

  std::optional<topo::Scope> session_scope_;
  std::unique_ptr<Checker> checker_;
  std::unique_ptr<Fixer> fixer_;
};

}  // namespace jinjing::core
