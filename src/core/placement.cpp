#include "core/placement.h"

#include <algorithm>
#include <set>

namespace jinjing::core {

namespace {

bool contains_slot(const std::vector<topo::AclSlot>& slots, topo::AclSlot slot) {
  return std::find(slots.begin(), slots.end(), slot) != slots.end();
}

}  // namespace

PlacementSolver::PlacementSolver(smt::SmtContext& smt, const topo::Topology& topo,
                                 const topo::Scope& scope,
                                 const topo::PathEnumOptions& path_options)
    : smt_(smt), topo_(topo), scope_(scope) {
  paths_ = topo::enumerate_paths(topo_, scope_, path_options);
  path_forwarding_.reserve(paths_.size());
  for (const auto& p : paths_) path_forwarding_.push_back(topo::forwarding_set(topo_, p));
}

std::optional<ClassDecision> PlacementSolver::solve_class(
    const MigrationSpec& spec, const net::PacketSet& cls,
    const std::vector<std::size_t>& path_set, const std::vector<lai::ControlIntent>& controls) {
  const net::Packet h = cls.sample();
  const topo::ConfigView view{topo_};

  auto opt = smt_.make_optimize();
  z3::context& ctx = smt_.ctx();
  std::unordered_map<topo::AclSlot, z3::expr, topo::AclSlotHash> vars;
  for (std::size_t i = 0; i < spec.targets.size(); ++i) {
    vars.emplace(spec.targets[i], ctx.bool_const(("D_" + std::to_string(i)).c_str()));
  }

  // Concrete f_ξ(h) decisions, memoized across the many paths that share
  // interfaces.
  std::unordered_map<topo::AclSlot, bool, topo::AclSlotHash> decision_memo;
  const auto slot_permits = [&](topo::AclSlot slot) {
    const auto it = decision_memo.find(slot);
    if (it != decision_memo.end()) return it->second;
    const bool permits = view.acl(slot).permits(h);
    decision_memo.emplace(slot, permits);
    return permits;
  };
  const auto original_decision = [&](const topo::Path& path) {
    for (const auto& hop : path.hops()) {
      if (!slot_permits(hop.slot())) return false;
    }
    return true;
  };

  // Many paths reduce to the same constraint (e.g. every core->gateway path
  // through one gateway interface); dedupe on (target-var set, desired).
  std::set<std::pair<std::vector<std::uint64_t>, bool>> seen_constraints;

  for (const std::size_t pi : path_set) {
    const auto& path = paths_[pi];
    const bool original = original_decision(path);
    const bool desired = desired_decision(controls, path, h, original);

    // c'_p (Equations 8–9): sources permit, targets are free variables,
    // everything else keeps its concrete decision on h.
    std::vector<std::uint64_t> var_slots;
    bool constant_false = false;
    for (const auto& hop : path.hops()) {
      const auto slot = hop.slot();
      if (contains_slot(spec.sources, slot)) {
        // Source slots carry their (fixed) post-update ACL — permit-all for
        // a migration, or an explicit replacement (Equation 8, extended).
        if (!spec.source_permits(slot, h)) {
          constant_false = true;
          break;
        }
        continue;
      }
      if (vars.contains(slot)) {
        var_slots.push_back((std::uint64_t{slot.iface} << 1) | (slot.dir == topo::Dir::Out));
      } else if (!slot_permits(slot)) {
        constant_false = true;
        break;
      }
    }
    if (constant_false) {
      if (desired) return std::nullopt;  // unreachable via untouched denies
      continue;
    }
    std::sort(var_slots.begin(), var_slots.end());
    var_slots.erase(std::unique(var_slots.begin(), var_slots.end()), var_slots.end());
    if (!seen_constraints.emplace(var_slots, desired).second) continue;

    z3::expr conj = ctx.bool_val(true);
    for (const auto encoded : var_slots) {
      const topo::AclSlot slot{static_cast<topo::InterfaceId>(encoded >> 1),
                               (encoded & 1) != 0 ? topo::Dir::Out : topo::Dir::In};
      conj = conj && vars.at(slot);
    }
    opt.add(conj == ctx.bool_val(desired));
  }

  // Prefer permitting: unconstrained targets default to permit, which
  // matches operator practice and the paper's Table 4.
  for (const auto& [slot, var] : vars) opt.add_soft(var, 1);

  const auto model = smt_.check_optimize(opt);
  if (!model) return std::nullopt;

  ClassDecision result;
  result.cls = cls;
  result.representative = h;
  for (const auto& [slot, var] : vars) {
    result.decision.emplace(slot, z3::eq(model->eval(var, true), ctx.bool_val(true)));
  }
  return result;
}

ClassOutcome PlacementSolver::solve_one(const MigrationSpec& spec, const net::PacketSet& cls,
                                        const std::vector<lai::ControlIntent>& controls) {
  ClassOutcome outcome;

  // AEC level: Equation 10 ranges over every path in Ω.
  std::vector<std::size_t> all_paths(paths_.size());
  for (std::size_t i = 0; i < all_paths.size(); ++i) all_paths[i] = i;
  if ((outcome.aec = solve_class(spec, cls, all_paths, controls))) return outcome;

  // DEC refinement (§5.3): split by routing, solve on feasible paths.
  for (const auto& dec : dataplane_equivalence_classes(topo_, scope_, cls)) {
    std::vector<std::size_t> feasible;
    for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
      if (path_forwarding_[pi].intersects(dec)) feasible.push_back(pi);
    }
    if (auto solved = solve_class(spec, dec, feasible, controls)) {
      solved->dec_level = true;
      outcome.decs.push_back(std::move(*solved));
    } else {
      outcome.unsolved.push_back(dec);
    }
  }
  return outcome;
}

PlacementResult PlacementSolver::solve(const MigrationSpec& spec,
                                       const std::vector<net::PacketSet>& classes,
                                       const std::vector<lai::ControlIntent>& controls) {
  const std::uint64_t queries_before = smt_.query_count();
  PlacementResult result;

  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    auto outcome = solve_one(spec, classes[ci], controls);
    if (outcome.aec) {
      result.aec_solutions.emplace(ci, std::move(*outcome.aec));
      continue;
    }
    if (!outcome.decs.empty()) result.dec_solutions[ci] = std::move(outcome.decs);
    for (auto& dec : outcome.unsolved) {
      result.success = false;
      result.unsolved.push_back(std::move(dec));
    }
  }
  result.smt_queries = smt_.query_count() - queries_before;
  return result;
}

}  // namespace jinjing::core
