#include "core/synth_opt.h"

#include <algorithm>

namespace jinjing::core {

std::vector<RuleGroup> singleton_groups(const net::Acl& acl) {
  std::vector<RuleGroup> groups;
  groups.reserve(acl.size());
  for (std::size_t i = 0; i < acl.size(); ++i) {
    RuleGroup g;
    g.action = acl.rules()[i].action;
    g.match = net::PacketSet{acl.rules()[i].match.cube()};
    g.members = {i};
    groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<RuleGroup> group_rules(const net::Acl& acl, bool aggressive) {
  std::vector<RuleGroup> groups;
  for (std::size_t i = 0; i < acl.size(); ++i) {
    const auto& rule = acl.rules()[i];
    const net::PacketSet match{rule.match.cube()};

    // Find the furthest group this rule can join: same action, and (when
    // bubbling past later groups) no overlap with anything in between.
    int join = -1;
    for (int gi = static_cast<int>(groups.size()) - 1; gi >= 0; --gi) {
      if (groups[gi].action == rule.action) {
        join = gi;
        break;
      }
      if (!aggressive || groups[gi].match.intersects(match)) break;
    }
    if (join >= 0) {
      auto& g = groups[static_cast<std::size_t>(join)];
      g.match = g.match | match;
      g.members.push_back(i);
    } else {
      RuleGroup g;
      g.action = rule.action;
      g.match = match;
      g.members = {i};
      groups.push_back(std::move(g));
    }
  }
  return groups;
}

bool row_order_less(const SynthRow& a, const SynthRow& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.subpriority < b.subpriority;
}

RowRelations::RowRelations(const std::vector<SynthRow>& rows) {
  const std::size_t n = rows.size();
  overlaps_.assign(n, std::vector<bool>(n, false));
  contains_.assign(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        overlaps_[i][j] = true;
        contains_[i][j] = true;
        continue;
      }
      overlaps_[i][j] = rows[i].set.intersects(rows[j].set);
      contains_[i][j] = overlaps_[i][j] && rows[i].set.contains(rows[j].set);
    }
  }
}

std::vector<std::size_t> minimize_row_order(const std::vector<SynthRow>& rows,
                                            const RowRelations& relations) {
  const std::size_t n = rows.size();
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> emitted;

  // Incrementally maintained per row:
  //  * blockers[i] — pending lower-numbered rows of different action that
  //    overlap i (emitting i before them could shadow them);
  //  * cover[i]    — pending same-action rows i's set contains.
  std::vector<std::size_t> blockers(n, 0);
  std::vector<std::size_t> cover(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (j < i && rows[j].action != rows[i].action && relations.overlaps(j, i)) ++blockers[i];
      if (rows[j].action == rows[i].action && relations.contains(i, j)) ++cover[i];
    }
  }

  const auto retire = [&](std::size_t k) {
    alive[k] = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] || i == k) continue;
      if (k < i && rows[k].action != rows[i].action && relations.overlaps(k, i)) --blockers[i];
      if (rows[k].action == rows[i].action && relations.contains(i, k)) --cover[i];
    }
  };

  std::size_t remaining = n;
  while (remaining > 0) {
    // Among unblocked rows pick the one covering the most pending rows.
    // The lowest pending row is never blocked, so one always exists.
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i] || blockers[i] != 0) continue;
      if (best == n || cover[i] > cover[best]) best = i;
    }
    retire(best);
    --remaining;
    std::vector<std::size_t> covered;
    for (std::size_t j = 0; j < n; ++j) {
      if (alive[j] && rows[j].action == rows[best].action && relations.contains(best, j)) {
        covered.push_back(j);
      }
    }
    for (const auto j : covered) {
      retire(j);
      --remaining;
    }
    emitted.push_back(best);
  }
  return emitted;
}

std::vector<SynthRow> minimize_rows(std::vector<SynthRow> rows) {
  std::sort(rows.begin(), rows.end(), row_order_less);
  const RowRelations relations{rows};
  std::vector<SynthRow> out;
  for (const auto i : minimize_row_order(rows, relations)) out.push_back(rows[i]);
  return out;
}

DstIntervalIndex::DstIntervalIndex(const net::PacketSet& set)
    : DstIntervalIndex(set.cubes()) {}

DstIntervalIndex::DstIntervalIndex(std::vector<net::HyperCube> cubes) : cubes_(std::move(cubes)) {
  std::vector<std::size_t> all(cubes_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  root_ = build(std::move(all));
}

int DstIntervalIndex::build(std::vector<std::size_t> items) {
  if (items.empty()) return -1;

  // Median of interval midpoints as the split center.
  std::vector<std::uint64_t> mids;
  mids.reserve(items.size());
  for (const auto i : items) {
    const auto& iv = cubes_[i].interval(net::Field::DstIp);
    mids.push_back(iv.lo + (iv.hi - iv.lo) / 2);
  }
  std::nth_element(mids.begin(), mids.begin() + static_cast<std::ptrdiff_t>(mids.size() / 2),
                   mids.end());
  const std::uint64_t center = mids[mids.size() / 2];

  Node node;
  node.center = center;
  std::vector<std::size_t> left_items;
  std::vector<std::size_t> right_items;
  for (const auto i : items) {
    const auto& iv = cubes_[i].interval(net::Field::DstIp);
    if (iv.hi < center) {
      left_items.push_back(i);
    } else if (iv.lo > center) {
      right_items.push_back(i);
    } else {
      node.here.push_back(i);
    }
  }
  // Degenerate split (all spanning the center): keep them in one node.
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[static_cast<std::size_t>(index)].left = build(std::move(left_items));
  nodes_[static_cast<std::size_t>(index)].right = build(std::move(right_items));
  return index;
}

std::vector<std::size_t> DstIntervalIndex::candidates(const net::Interval& query) const {
  std::vector<std::size_t> out;
  std::vector<int> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    for (const auto i : node.here) {
      if (cubes_[i].interval(net::Field::DstIp).overlaps(query)) out.push_back(i);
    }
    if (node.left >= 0 && query.lo < node.center) stack.push_back(node.left);
    if (node.right >= 0 && query.hi > node.center) stack.push_back(node.right);
  }
  return out;
}

bool DstIntervalIndex::intersects(const net::PacketSet& other) const {
  for (const auto& cube : other.cubes()) {
    if (overlaps_cube(cube)) return true;
  }
  return false;
}

bool DstIntervalIndex::overlaps_cube(const net::HyperCube& cube) const {
  for (const auto i : candidates(cube.interval(net::Field::DstIp))) {
    if (cubes_[i].overlaps(cube)) return true;
  }
  return false;
}

}  // namespace jinjing::core
