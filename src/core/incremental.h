// Incremental cross-version verification state.
//
// The serving workflow interleaves applies and checks: every apply mints a
// new StateStore version, and without help every later check re-enumerates
// paths, re-refines FECs and re-proves every obligation from scratch. Two
// facts make carrying that state forward sound:
//
//  1. An apply only rebinds ACL slots (StateStore::apply_locked calls
//     topo::Topology::bind_acl and nothing else), so edges and forwarding
//     predicates are identical across versions — paths, FEC partitions and
//     VerifyPlans built at version V are structurally valid at every later
//     version. Plans are therefore *rebased* wholesale: the same PlanBundle
//     is re-keyed under the new version.
//
//  2. A cached verdict "obligation o is consistent under update U at
//     version V" survives the apply delta D (V -> V+1) unless both
//     (a) o's paths traverse a slot D rewrites, and (b) o's entering class
//     intersects the Definition 4.1 differential rules of D. Outside (a)
//     the obligation's before-side decisions are untouched; outside (b)
//     every packet of the class keeps its first-match decision on each
//     rewritten slot (Theorem 4.1's contrapositive), so both sides of
//     Equation 3 are unchanged. Verdicts failing the test are invalidated,
//     not flipped — the next check re-proves exactly those obligations.
//
// Invalidation is additionally *scoped*, not just boolean: each entry keeps
// the pooled differential packet set of every apply it absorbed, and an
// invalidated verdict remembers which diff first hit it (stale_from). At
// check time the obligation's class is delta-refined by exactly the diffs
// since that point (topo::refine_delta): sub-atoms disjoint from every diff
// behaved identically when the verdict was proven and inherit consistency;
// only the touched sub-atoms get SMT queries. A violating sub-atom falls
// back to the full-class query so the reported witness is bit-identical to
// a from-scratch check.
//
// The planner keys entries by a structural fingerprint of (scope devices,
// entering cubes) plus the base version, guarded by exact comparisons so a
// hash collision can never return the wrong plan. Entries whose rebase
// chain exceeds max_delta_chain are dropped (the next job pays a full
// rebuild — the rebase-budget fallback); entries for a retired version are
// dropped by retire_version (the trimmed-base fallback).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/checker.h"
#include "core/plan.h"
#include "topo/topology.h"

namespace jinjing::core {

struct IncrementalOptions {
  /// Applies a cached entry may be carried across before it is dropped and
  /// the next job pays a full rebuild. 0 disables the planner.
  std::size_t max_delta_chain = 16;
  /// Bound on live (scope, entering, version) plan entries; the oldest
  /// versions are evicted first.
  std::size_t max_entries = 64;
  /// Bound on per-entry cached verdict sets (distinct pending updates).
  std::size_t max_verdict_sets = 32;
};

struct IncrementalStats {
  std::uint64_t hits = 0;           // acquire served from a cached entry
  std::uint64_t misses = 0;         // acquire that required a full rebuild
  std::uint64_t invalidations = 0;  // verdict bits cleared by apply deltas
  std::uint64_t rebases = 0;        // entries carried across a version bump
  std::uint64_t fallbacks = 0;      // entries dropped at the chain budget
  std::size_t cached_plans = 0;     // live entries
  std::size_t cached_obligations = 0;  // obligations across live entries
};

/// Sentinel for IncrementalLease::stale_from: the verdict bit was never
/// proven (or never invalidated), so no delta-scoped re-proof applies.
inline constexpr std::uint32_t kNotStale = 0xFFFFFFFFu;

/// A successful acquire: the shared plan bundle for (version, scope,
/// entering) plus the per-obligation verdict bits already proven for the
/// pending update (true = known consistent, skip its SMT query).
struct IncrementalLease {
  std::shared_ptr<const PlanBundle> bundle;
  std::vector<bool> clean;  // indexed by Obligation::index; may be empty
  /// For obligations with clean[i] == false: the index into `diffs` of the
  /// first apply differential that invalidated a previously proven verdict,
  /// or kNotStale when the verdict was never proven. A stale obligation
  /// only needs re-proving on the sub-atoms of its class that meet
  /// diffs[stale_from[i]..] — the rest inherit the old proof.
  std::vector<std::uint32_t> stale_from;
  /// Pooled Definition 4.1 differential of each apply absorbed by the
  /// leased entry since its full build, in apply order.
  std::vector<net::PacketSet> diffs;
  std::uint64_t version = 0;

  [[nodiscard]] bool valid() const { return bundle != nullptr; }
};

/// Outcome of one delta-scoped check execution (run_incremental_check).
struct IncrementalOutcome {
  CheckResult result;
  /// Obligations now known consistent under the update — feed to
  /// IncrementalPlanner::commit so later re-checks of the same pending
  /// update (e.g. after an apply_if_head conflict) skip them.
  std::vector<bool> clean;
  std::size_t reused = 0;   // skipped via leased verdicts
  std::size_t skipped = 0;  // untouched by the update (touches() == false)
  /// Stale obligations resolved by delta-refining the class and querying
  /// only the sub-atoms the diffs touch.
  std::size_t delta_checked = 0;
};

class IncrementalPlanner {
 public:
  explicit IncrementalPlanner(IncrementalOptions options = {});

  [[nodiscard]] const IncrementalOptions& options() const { return options_; }

  /// Records the delta of an apply: every entry based on `from_version` is
  /// rebased to `to_version` (shared bundle, chain + 1), with cached
  /// verdicts invalidated where the obligation's slots meet the delta AND
  /// its class meets the delta's differential rules. `before` is the
  /// pre-apply topology the differential is computed against. Entries at
  /// `from_version` are retained for jobs still pinning that snapshot.
  void record_apply(std::uint64_t from_version, std::uint64_t to_version,
                    const topo::Topology& before, const topo::AclUpdate& update);

  /// The cached plan (and any verdicts for `update`) at (version, scope,
  /// entering); invalid lease on a miss — caller builds fresh and installs.
  [[nodiscard]] IncrementalLease acquire(std::uint64_t version, const topo::Scope& scope,
                                         const net::PacketSet& entering,
                                         const topo::AclUpdate& update);

  /// Side-effect-free probe: true when a cached entry for (version, scope,
  /// entering) holds verdict bits proving every obligation `update` touches
  /// — i.e. a delta-scoped check would finish without issuing a single
  /// query. Unlike acquire, this never counts a hit/miss or refreshes LRU
  /// stamps; the service dispatcher uses it to route such jobs around
  /// batch coalescing straight onto the fast path.
  [[nodiscard]] bool peek_fully_clean(std::uint64_t version, const topo::Scope& scope,
                                      const net::PacketSet& entering,
                                      const topo::AclUpdate& update) const;

  /// Publishes a freshly built bundle for (version, scope). No-op when an
  /// entry already exists (a racing job won) or the planner is disabled.
  void install(std::uint64_t version, const topo::Scope& scope,
               std::shared_ptr<const PlanBundle> bundle);

  /// Merges verdict bits proven by a check of `update` at (version, scope,
  /// entering). Bits only ever turn true; dropped silently when the entry
  /// was retired or evicted meanwhile.
  void commit(std::uint64_t version, const topo::Scope& scope,
              const net::PacketSet& entering, const topo::AclUpdate& update,
              const std::vector<bool>& clean);

  /// Drops every entry based on `version` — wired to the StateStore release
  /// hook so delta-cache entries die with their snapshot.
  void retire_version(std::uint64_t version);

  [[nodiscard]] IncrementalStats stats() const;

 private:
  struct VerdictSet {
    std::string update_text;  // canonical update form (exact guard)
    std::vector<bool> clean;
    /// Parallel to `clean`: diff index that first invalidated bit i, or
    /// kNotStale. See IncrementalLease::stale_from.
    std::vector<std::uint32_t> stale_from;
    std::uint64_t stamp = 0;  // for LRU eviction of verdict sets
  };

  struct Entry {
    std::uint64_t version = 0;
    std::vector<topo::DeviceId> scope_devices;  // sorted; exact guard
    std::shared_ptr<const PlanBundle> bundle;
    std::size_t chain = 0;  // applies absorbed since the full build
    /// Pooled differential of each absorbed apply, in order (size == chain).
    std::vector<net::PacketSet> diffs;
    std::unordered_map<std::uint64_t, VerdictSet> verdicts;
  };

  [[nodiscard]] Entry* find_entry_locked(std::uint64_t key, std::uint64_t version,
                                         const topo::Scope& scope,
                                         const net::PacketSet& entering);
  void evict_locked();
  void refresh_gauge_locked();

  IncrementalOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::uint64_t stamp_ = 0;
  IncrementalStats stats_;
};

/// Executes a check of `update` against a leased plan, delta-scoped:
/// obligations the update cannot touch are trivially consistent, leased
/// verdicts are reused, stale verdicts are re-proven only on the sub-atoms
/// their invalidating diffs touch (topo::refine_delta), and only the rest
/// get full SMT queries (in plan order, honouring
/// CheckOptions::stop_at_first). The checker must have adopted the lease's
/// bundle. The consistency verdict — and any reported witness — is
/// identical to a full Checker::check of the same update.
[[nodiscard]] IncrementalOutcome run_incremental_check(Checker& checker,
                                                       const IncrementalLease& lease,
                                                       const topo::AclUpdate& update);

}  // namespace jinjing::core
