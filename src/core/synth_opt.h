// The §5.5 generate optimizations:
//  * rule grouping — consecutive same-decision rules (and rules that can be
//    bubbled together across non-overlapping neighbors) become one pseudo-
//    rule, shrinking the sequence-encoding table;
//  * "generating fewer ACL rules" — a conflict-aware greedy cover that
//    emits the fewest rules reproducing all row decisions;
//  * ACL search tree — an interval tree over the destination dimension
//    accelerating the overlap tests between classes and rule groups.
#pragma once

#include <cstddef>
#include <vector>

#include "net/acl.h"
#include "net/packet_set.h"

namespace jinjing::core {

/// A pseudo-rule: one or more original rules sharing a decision.
struct RuleGroup {
  net::Action action = net::Action::Permit;
  net::PacketSet match;               // union of member matches
  std::vector<std::size_t> members;   // original rule indices
};

/// Groups an ACL's rules (§5.5 "grouping ACL rules before sequence
/// encoding"). With `aggressive`, a rule may also merge into an earlier
/// same-decision group when it overlaps none of the groups in between
/// (adjacent non-overlapping rules commute).
[[nodiscard]] std::vector<RuleGroup> group_rules(const net::Acl& acl, bool aggressive);

/// Degenerate grouping: one group per rule (the unoptimized baseline).
[[nodiscard]] std::vector<RuleGroup> singleton_groups(const net::Acl& acl);

/// One row of the synthesized-decision table for a specific target
/// interface, ready for emission.
struct SynthRow {
  std::vector<std::size_t> key;  // group indices per column (sequence encoding)
  int subpriority = 1;           // 0 = §5.4-step-4 deny inserted above its row
  net::PacketSet set;
  net::Action action = net::Action::Permit;
};

/// Sequence-encoding order: lexicographic on (key, subpriority).
[[nodiscard]] bool row_order_less(const SynthRow& a, const SynthRow& b);

/// Pairwise set relations between rows, computed once and shared across
/// target interfaces (row sets are target-independent; only actions vary).
class RowRelations {
 public:
  explicit RowRelations(const std::vector<SynthRow>& rows);

  [[nodiscard]] bool overlaps(std::size_t i, std::size_t j) const {
    return overlaps_[i][j];
  }
  [[nodiscard]] bool contains(std::size_t i, std::size_t j) const {
    return contains_[i][j];
  }

 private:
  std::vector<std::vector<bool>> overlaps_;
  std::vector<std::vector<bool>> contains_;
};

/// The "fewer ACL rules" greedy cover over pre-sorted rows: returns the
/// indices to emit, in emission order, such that the emitted list decides
/// every packet exactly like the full sorted table. Rows blocked by a
/// lower-numbered overlapping row of different action wait; among unblocked
/// rows the one covering the most other rows is emitted first, and covered
/// rows are dropped.
[[nodiscard]] std::vector<std::size_t> minimize_row_order(const std::vector<SynthRow>& rows,
                                                          const RowRelations& relations);

/// Convenience wrapper: sorts, computes relations, and returns the emitted
/// rows themselves.
[[nodiscard]] std::vector<SynthRow> minimize_rows(std::vector<SynthRow> rows);

/// Static interval tree over the destination-address dimension of a list of
/// cubes (the §5.5 "ACL search tree"). Answers which cubes may overlap a
/// query interval without scanning the whole list. Used both for synthesis
/// overlap fields and for the Definition 4.2 related-rules filter.
class DstIntervalIndex {
 public:
  explicit DstIntervalIndex(const net::PacketSet& set);
  explicit DstIntervalIndex(std::vector<net::HyperCube> cubes);

  /// Indices of indexed cubes whose dst interval overlaps `query`.
  [[nodiscard]] std::vector<std::size_t> candidates(const net::Interval& query) const;

  /// Fast emptiness test: does `other` intersect any indexed cube?
  [[nodiscard]] bool intersects(const net::PacketSet& other) const;

  /// Does `cube` overlap any indexed cube?
  [[nodiscard]] bool overlaps_cube(const net::HyperCube& cube) const;

 private:
  struct Node {
    std::uint64_t center = 0;
    std::vector<std::size_t> here;  // cubes whose dst interval spans center
    int left = -1;
    int right = -1;
  };

  int build(std::vector<std::size_t> items);

  std::vector<net::HyperCube> cubes_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace jinjing::core
