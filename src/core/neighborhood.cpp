#include "core/neighborhood.h"

namespace jinjing::core {

namespace {

/// The prefix-aligned block of width 2^(bits-len) containing value v.
net::Interval block_around(std::uint64_t v, unsigned bits, unsigned len) {
  if (len == 0) return net::Interval::full(bits);
  const std::uint64_t size = std::uint64_t{1} << (bits - len);
  const std::uint64_t lo = v & ~(size - 1);
  return net::Interval{lo, lo + size - 1};
}

}  // namespace

DecisionModels DecisionModels::from_views(const topo::ConfigView& before,
                                          const topo::ConfigView& after) {
  return from_views(before, after, after.bound_slots());
}

DecisionModels DecisionModels::from_views(const topo::ConfigView& before,
                                          const topo::ConfigView& after,
                                          const std::vector<topo::AclSlot>& slots) {
  DecisionModels models;
  for (const auto slot : slots) {
    models.permitted_.push_back(net::permitted_set(before.acl(slot)));
    models.permitted_.push_back(net::permitted_set(after.acl(slot)));
  }
  return models;
}

net::PacketSet DecisionModels::agreement_region(const net::Packet& h) const {
  return agreement_region(h, net::PacketSet::all());
}

net::PacketSet DecisionModels::agreement_region(const net::Packet& h,
                                                const net::PacketSet& seed) const {
  net::PacketSet region = seed;
  for (const auto& permitted : permitted_) {
    region = permitted.contains(h) ? (region & permitted) : (region - permitted);
    if (region.is_empty()) break;  // defensive; h itself is always inside
  }
  return region;
}

net::HyperCube enlarge_neighborhood(const net::Packet& h, const net::PacketSet& fec,
                                    const DecisionModels& models) {
  return largest_prefix_block(h, models.agreement_region(h, fec));
}

net::HyperCube largest_prefix_block(const net::Packet& h, const net::PacketSet& target) {
  net::HyperCube cube = net::HyperCube::point(h);
  const auto fits = [&target](const net::HyperCube& candidate) {
    return target.contains(net::PacketSet{candidate});
  };

  // Greedy per-field expansion; within a field, binary search the shortest
  // mask (largest block) that still fits. Blocks of decreasing mask length
  // are nested, so fitting is monotone and binary search is sound.
  for (const net::Field f : net::kAllFields) {
    const unsigned bits = net::field_bits(f);
    const std::uint64_t v = h.field(f);

    unsigned best = bits;  // mask length `bits` = the point block, always fits
    unsigned lo = 0;
    unsigned hi = bits;
    while (lo < hi) {
      const unsigned mid = (lo + hi) / 2;
      net::HyperCube candidate = cube;
      candidate.set_interval(f, block_around(v, bits, mid));
      if (fits(candidate)) {
        best = mid;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    cube.set_interval(f, block_around(v, bits, best));
  }
  return cube;
}

}  // namespace jinjing::core
