#include "core/synthesizer.h"

#include <algorithm>
#include <map>

#include "net/acl_algebra.h"

namespace jinjing::core {

namespace {

/// One original-ACL column of the sequence-encoding table. Slots holding
/// identical ACLs share a column: duplicates add no discriminating power to
/// the keys and no narrowing to the overlap fields.
struct Column {
  std::vector<RuleGroup> groups;            // + trailing default pseudo-group
  std::vector<net::PacketSet> effective;    // per group, after shadowing
};

std::vector<Column> build_columns(const topo::Topology& topo, const topo::Scope& scope,
                                  const SynthesisOptions& options,
                                  const std::vector<lai::ControlIntent>& controls) {
  std::vector<Column> columns;
  std::vector<const net::Acl*> seen;
  for (const auto slot : topo.bound_slots()) {
    if (!scope.contains_interface(topo, slot.iface)) continue;
    const net::Acl& acl = topo.acl(slot);
    const bool duplicate = std::any_of(seen.begin(), seen.end(),
                                       [&acl](const net::Acl* other) { return *other == acl; });
    if (duplicate) continue;
    seen.push_back(&acl);

    Column col;
    col.groups = options.group_rules ? group_rules(acl, /*aggressive=*/true)
                                     : singleton_groups(acl);
    // The implicit default behaves like a final match-all pseudo-group.
    RuleGroup def;
    def.action = acl.default_action();
    def.match = net::PacketSet::all();
    col.groups.push_back(std::move(def));

    // Effective (post-shadowing) set per group.
    col.effective.assign(col.groups.size(), net::PacketSet{});
    std::vector<std::size_t> rule_group(acl.size(), 0);
    for (std::size_t gi = 0; gi < col.groups.size(); ++gi) {
      for (const auto ri : col.groups[gi].members) rule_group[ri] = gi;
    }
    net::PacketSet remaining = net::PacketSet::all();
    for (std::size_t ri = 0; ri < acl.size(); ++ri) {
      const net::PacketSet hit = remaining & net::PacketSet{acl.rules()[ri].match.cube()};
      col.effective[rule_group[ri]] = col.effective[rule_group[ri]] | hit;
      remaining = remaining - hit;
    }
    col.effective.back() = remaining;  // the default pseudo-group
    columns.push_back(std::move(col));
  }

  // §6: each control-intent header is a pseudo-column ("inside the header" /
  // "outside"). Classes the ACLs cannot tell apart — e.g. an isolated slice
  // of an otherwise uniform permit class — get distinct sequence-encoding
  // keys and overlap fields narrowed to the header. The pseudo-column has
  // no interface; it only shapes keys and row sets.
  for (const auto& intent : controls) {
    Column col;
    RuleGroup inside;
    inside.match = intent.header;
    RuleGroup outside;
    outside.match = net::PacketSet::all();
    col.groups.push_back(std::move(inside));
    col.groups.push_back(std::move(outside));
    col.effective.push_back(intent.header);
    col.effective.push_back(intent.header.complement());
    columns.push_back(std::move(col));
  }
  return columns;
}

/// Groups of `col` whose effective set intersects `cls`.
std::vector<std::size_t> hit_groups(const Column& col, const net::PacketSet& cls,
                                    bool use_search_tree,
                                    const std::vector<DstIntervalIndex>* indices) {
  std::vector<std::size_t> hits;
  for (std::size_t gi = 0; gi < col.groups.size(); ++gi) {
    const bool overlap = use_search_tree && indices != nullptr
                             ? (*indices)[gi].intersects(cls)
                             : col.effective[gi].intersects(cls);
    if (overlap) hits.push_back(gi);
  }
  return hits;
}

/// A fully-expanded row: key + set + which class decision applies.
struct Row {
  SynthRow synth;           // key, subpriority, set (action filled per target)
  std::size_t class_index;  // parent AEC
  int dec_index;            // -1 = AEC-level decision, else index into decs
};

}  // namespace

SynthesisResult synthesize(const topo::Topology& topo, const topo::Scope& scope,
                           const MigrationSpec& spec,
                           const std::vector<net::PacketSet>& classes,
                           const PlacementResult& placement, const SynthesisOptions& options,
                           const std::vector<lai::ControlIntent>& controls) {
  SynthesisResult result;
  const auto columns = build_columns(topo, scope, options, controls);

  result.stats.column_count = columns.size();
  for (const auto& col : columns) result.stats.group_count += col.groups.size();

  // Optional §5.5 search-tree indices over each group's effective set.
  std::vector<std::vector<DstIntervalIndex>> indices;
  if (options.use_search_tree) {
    indices.reserve(columns.size());
    for (const auto& col : columns) {
      std::vector<DstIntervalIndex> per_group;
      per_group.reserve(col.effective.size());
      for (const auto& eff : col.effective) per_group.emplace_back(eff);
      indices.push_back(std::move(per_group));
    }
  }

  // Steps 1 + 2: sequence encoding and overlap fields. Rows are expanded to
  // one per DEC for classes solved at the DEC level, so that row sets (and
  // hence the pairwise relations the §5.5 cover needs) are independent of
  // the target interface.
  std::vector<Row> rows;
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const bool aec_solved = placement.aec_solutions.contains(ci);
    const bool dec_solved = placement.dec_solutions.contains(ci);
    if (!aec_solved && !dec_solved) continue;  // fully unsolved class

    std::vector<std::vector<std::size_t>> hits;
    hits.reserve(columns.size());
    for (std::size_t cj = 0; cj < columns.size(); ++cj) {
      hits.push_back(hit_groups(columns[cj], classes[ci], options.use_search_tree,
                                options.use_search_tree ? &indices[cj] : nullptr));
    }

    // Cartesian product of per-column hits. The fold starts from the class
    // itself, so every overlap field is tightened to the class: rows of
    // different actions are then disjoint (classes partition the universe),
    // which makes the emitted order insensitive to shadowing. On the
    // paper's Figure 1 example the tightened fields coincide with Table 4's.
    struct Partial {
      std::vector<std::size_t> key;
      net::PacketSet set;
    };
    std::vector<Partial> partial;
    partial.push_back(Partial{{}, classes[ci]});
    for (std::size_t cj = 0; cj < columns.size(); ++cj) {
      std::vector<Partial> next;
      for (const auto& row : partial) {
        for (const auto gi : hits[cj]) {
          net::PacketSet meet = row.set & columns[cj].groups[gi].match;
          if (meet.is_empty()) continue;
          Partial extended;
          extended.key = row.key;
          extended.key.push_back(gi);
          extended.set = std::move(meet);
          next.push_back(std::move(extended));
        }
      }
      partial = std::move(next);
    }

    for (auto& p : partial) {
      if (aec_solved) {
        rows.push_back(Row{SynthRow{std::move(p.key), 0, std::move(p.set)}, ci, -1});
        continue;
      }
      // Step 4 (DEC split): one row per DEC at the same key, ordered by
      // subpriority. DEC sets are disjoint, so the rows never shadow each
      // other within a key.
      const auto& decs = placement.dec_solutions.at(ci);
      for (std::size_t di = 0; di < decs.size(); ++di) {
        net::PacketSet part = p.set & decs[di].cls;
        if (part.is_empty()) continue;
        rows.push_back(Row{SynthRow{p.key, static_cast<int>(di), std::move(part)}, ci,
                           static_cast<int>(di)});
      }
    }
  }
  result.stats.row_count = rows.size();

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return row_order_less(a.synth, b.synth); });

  // Pairwise relations once; shared by every target's greedy cover.
  std::vector<SynthRow> synth_rows;
  synth_rows.reserve(rows.size());
  for (const auto& row : rows) synth_rows.push_back(row.synth);
  std::optional<RowRelations> relations;
  if (options.minimize_rules) relations.emplace(synth_rows);

  // Step 3: per-target actions + emission. Targets with identical decision
  // vectors (common when a device binds one ACL on several interfaces) are
  // synthesized once and share the result.
  std::map<std::vector<bool>, net::Acl> by_decisions;
  for (const auto target : spec.targets) {
    std::vector<bool> decisions(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      decisions[i] =
          row.dec_index < 0
              ? placement.aec_solutions.at(row.class_index).decision.at(target)
              : placement.dec_solutions.at(row.class_index)[static_cast<std::size_t>(row.dec_index)]
                    .decision.at(target);
    }

    const auto cached = by_decisions.find(decisions);
    if (cached != by_decisions.end()) {
      result.stats.emitted_rules += cached->second.size();
      result.acls.insert_or_assign(target, cached->second);
      continue;
    }

    for (std::size_t i = 0; i < rows.size(); ++i) {
      synth_rows[i].action = decisions[i] ? net::Action::Permit : net::Action::Deny;
    }

    std::vector<std::size_t> order;
    if (options.minimize_rules) {
      order = minimize_row_order(synth_rows, *relations);
    } else {
      order.resize(synth_rows.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    }

    std::vector<net::AclRule> acl_rules;
    for (const auto i : order) {
      // With class-tightened fields, rows whose action matches the default
      // cannot shadow anything (different-action rows are disjoint) — the
      // optimized path drops them, which is where most of the §5.5 ACL-
      // length reduction comes from.
      if (options.minimize_rules && synth_rows[i].action == net::Action::Permit) continue;
      for (const auto& rule : net::rules_for_set(synth_rows[i].set, synth_rows[i].action)) {
        acl_rules.push_back(rule);
      }
    }
    net::Acl acl{std::move(acl_rules), net::Action::Permit};
    result.stats.emitted_rules += acl.size();
    by_decisions.emplace(std::move(decisions), acl);
    result.acls.insert_or_assign(target, std::move(acl));
  }

  // Sources take their fixed post-update ACL (permit-all unless an explicit
  // replacement was given).
  for (const auto source : spec.sources) {
    if (result.acls.contains(source)) continue;
    const auto it = spec.replacements.find(source);
    result.acls.emplace(source, it == spec.replacements.end() ? net::Acl::permit_all()
                                                              : it->second);
  }
  return result;
}

}  // namespace jinjing::core
