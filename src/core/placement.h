// Per-class placement solving for the generate primitive (§5.2–§5.3).
//
// For every ACL equivalence class, find a decision function D(ξ) over the
// target interfaces so that each path reproduces the desired decision
// (Equation 10, over *all* topological paths at the AEC level). Classes
// that come back UNSAT are split into dataplane equivalence classes and
// re-solved over their *feasible* paths only (Y_[h]DEC).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/aec.h"
#include "core/checker.h"
#include "smt/context.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace jinjing::core {

/// What generate is asked to do: replace the ACLs at `sources` (by default
/// with permit-all — the migration case; `replacements` pins a slot to any
/// other fixed ACL, the "arbitrary updates" extension of Equation 8) and
/// synthesize fresh ACLs at `targets`. A pure reachability-control task
/// (§6 / Figure 4d) uses empty sources.
struct MigrationSpec {
  std::vector<topo::AclSlot> sources;
  std::vector<topo::AclSlot> targets;
  topo::AclUpdate replacements;  // optional fixed ACLs for source slots

  /// The post-update decision of a source slot on a packet.
  [[nodiscard]] bool source_permits(topo::AclSlot slot, const net::Packet& h) const {
    const auto it = replacements.find(slot);
    return it == replacements.end() || it->second.permits(h);
  }
};

/// The solved decision function for one class (AEC or DEC).
struct ClassDecision {
  net::PacketSet cls;
  net::Packet representative;
  std::unordered_map<topo::AclSlot, bool, topo::AclSlotHash> decision;  // D(ξ), ξ ∈ T
  bool dec_level = false;  // solved after DEC refinement
};

struct PlacementResult {
  /// False when some DEC admits no decision function — the intent is
  /// infeasible within the given targets (§5.3).
  bool success = true;
  /// AEC-level solutions, indexed like the input classes (unsolved AECs
  /// have no entry here — see `dec_solutions`).
  std::unordered_map<std::size_t, ClassDecision> aec_solutions;
  /// DEC-level solutions, keyed by the index of their parent AEC.
  std::unordered_map<std::size_t, std::vector<ClassDecision>> dec_solutions;
  /// Classes (DEC level) with no valid decision function.
  std::vector<net::PacketSet> unsolved;
  std::uint64_t smt_queries = 0;
};

/// Outcome of solving a single AEC: either an AEC-level decision, or the
/// DEC refinement's solutions and unsolved remainders.
struct ClassOutcome {
  std::optional<ClassDecision> aec;
  std::vector<ClassDecision> decs;
  std::vector<net::PacketSet> unsolved;
};

class PlacementSolver {
 public:
  PlacementSolver(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
                  const topo::PathEnumOptions& path_options = {});

  /// Solves every class. `controls` switches the target decision from
  /// "preserve c_p" to the §6 desired decision.
  [[nodiscard]] PlacementResult solve(const MigrationSpec& spec,
                                      const std::vector<net::PacketSet>& classes,
                                      const std::vector<lai::ControlIntent>& controls = {});

  /// One class's placement obligation: AEC-level solve over all paths,
  /// falling back to DEC refinement over feasible paths (§5.3). Classes
  /// are mutually independent, so the generate primitive fans these out
  /// across per-worker solvers on the shared executor.
  [[nodiscard]] ClassOutcome solve_one(const MigrationSpec& spec, const net::PacketSet& cls,
                                       const std::vector<lai::ControlIntent>& controls = {});

  [[nodiscard]] const std::vector<topo::Path>& paths() const { return paths_; }

 private:
  /// Tries to solve one class over the given paths; nullopt on UNSAT.
  [[nodiscard]] std::optional<ClassDecision> solve_class(const MigrationSpec& spec,
                                                         const net::PacketSet& cls,
                                                         const std::vector<std::size_t>& path_set,
                                                         const std::vector<lai::ControlIntent>& controls);

  smt::SmtContext& smt_;
  const topo::Topology& topo_;
  const topo::Scope scope_;
  std::vector<topo::Path> paths_;
  std::vector<net::PacketSet> path_forwarding_;
};

}  // namespace jinjing::core
