// Deployment planning: rollback plans, transient-safe staging, and
// human-readable change summaries.
//
// §1 of the paper: operators "spent multiple weeks designing the migration
// and roll-back plans". A verified update plan still has to reach the
// devices one configuration push at a time; this module makes that final
// step safe:
//
//  * rollback_update  — the exact inverse of a plan (restores the current
//    ACLs of every touched slot);
//  * staged_plan      — orders the pushes in two phases through a
//    transitional ACL per slot so that *any* interleaving of pushes keeps
//    every slot's permitted set bounded by the union (availability-first:
//    nothing breaks that works before and after) or intersection
//    (security-first: nothing is transiently permitted that either
//    endpoint denies) of the before/after behaviour;
//  * describe_update  — a per-slot added/removed rule summary, built on the
//    §4.1 differential-rule machinery.
#pragma once

#include <string>
#include <vector>

#include "core/diff.h"
#include "topo/topology.h"

namespace jinjing::core {

/// The update that restores the pre-update ACLs of every slot `update`
/// touches. Applying `update` then its rollback is a no-op.
[[nodiscard]] topo::AclUpdate rollback_update(const topo::Topology& topo,
                                              const topo::AclUpdate& update);

enum class StagingMode {
  /// Transitional ACLs permit the union of before/after: no traffic that
  /// both endpoints permit is ever dropped mid-deployment.
  AvailabilityFirst,
  /// Transitional ACLs permit the intersection: no traffic that either
  /// endpoint denies is ever admitted mid-deployment.
  SecurityFirst,
};

/// One configuration push.
struct DeployStep {
  int phase = 0;  // steps within a phase may be pushed in any order
  topo::AclSlot slot;
  net::Acl acl;
};

/// Expands an update into a two-phase push sequence (transitional ACLs
/// first, final ACLs second). Slots whose ACL is unchanged are dropped.
[[nodiscard]] std::vector<DeployStep> staged_plan(const topo::Topology& topo,
                                                  const topo::AclUpdate& update,
                                                  StagingMode mode);

/// Per-slot rule diff of the plan, e.g.
///   A:1-in: +2 -1 rules
///     + permit dst 1.0.0.0/8
///     - deny dst 2.0.0.0/8
[[nodiscard]] std::string describe_update(const topo::Topology& topo,
                                          const topo::AclUpdate& update);

/// The plan as reusable `acl <Device:iface>-<dir> ... end` blocks in
/// deterministic slot order ("(no changes)" for an empty update). The CLI
/// prints this and the verification service returns it to clients, so both
/// render a deployable plan identically.
[[nodiscard]] std::string format_plan(const topo::Topology& topo, const topo::AclUpdate& update);

}  // namespace jinjing::core
