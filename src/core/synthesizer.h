// ACL synthesis (§5.4): turning solved class decisions into concrete ACLs.
//
// Step 1 — sequence encoding: each class "hits" one rule group per original
//   ACL column; the tuple of hit indices orders the rows. A packet's own
//   row is always the lexicographically-least row it matches (a packet
//   matching group g in a column has its first-match group ≤ g), so listing
//   rows in sequence-encoding order reproduces first-match semantics.
// Step 2 — overlap field: a row's match is the intersection of the hit
//   groups' matches.
// Step 3 — decisions: each target interface fills its column from D_AEC.
// Step 4 — DEC splits: where an AEC was solved per-DEC, the denied DECs are
//   carved out and emitted as deny rows immediately above the row (sub-
//   priority 0), reproducing the paper's "permit*" insertion.
#pragma once

#include "core/placement.h"
#include "core/synth_opt.h"

namespace jinjing::core {

struct SynthesisOptions {
  bool group_rules = true;      // §5.5 grouping (aggressive, reorder-aware)
  bool minimize_rules = true;   // §5.5 greedy cover
  bool use_search_tree = true;  // §5.5 dst interval tree for overlap tests
};

struct SynthesisStats {
  std::size_t column_count = 0;
  std::size_t group_count = 0;   // total groups across columns
  std::size_t row_count = 0;     // sequence-encoding table rows
  std::size_t emitted_rules = 0; // total ACL rules across target interfaces
};

struct SynthesisResult {
  topo::AclUpdate acls;  // targets -> synthesized ACLs, sources -> permit-all
  SynthesisStats stats;
};

/// Synthesizes target ACLs from the placement solution. `classes` must be
/// the same list placement solved (indices align). `controls` must be the
/// intents the classes were refined with: each intent header becomes a
/// pseudo-column of the sequence encoding, so classes that the ACLs alone
/// cannot distinguish still get distinct keys and tight overlap fields.
[[nodiscard]] SynthesisResult synthesize(const topo::Topology& topo, const topo::Scope& scope,
                                         const MigrationSpec& spec,
                                         const std::vector<net::PacketSet>& classes,
                                         const PlacementResult& placement,
                                         const SynthesisOptions& options = {},
                                         const std::vector<lai::ControlIntent>& controls = {});

}  // namespace jinjing::core
