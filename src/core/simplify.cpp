#include "core/simplify.h"

#include "net/acl_algebra.h"

namespace jinjing::core {

namespace {

/// One simplification pass. Computes, incrementally,
///   remaining[i] — universe minus the matches of rules 0..i-1 (what can
///                  still reach rule i), and
///   tail[i]      — the permitted set of the sub-ACL rules i.. + default,
/// then removes every redundant rule whose match overlaps no other rule
/// removed in the same pass (overlapping removals can invalidate each
/// other's redundancy argument — e.g. twin "permit X" rules over a deny
/// default are each redundant alone but not jointly).
/// Returns true when at least one rule was removed.
bool simplify_pass(std::vector<net::AclRule>& rules, net::Action default_action,
                   const net::PacketSet& universe) {
  const std::size_t n = rules.size();
  if (n == 0) return false;

  std::vector<net::PacketSet> match(n);
  for (std::size_t i = 0; i < n; ++i) match[i] = net::PacketSet{rules[i].match.cube()};

  std::vector<net::PacketSet> remaining(n);
  remaining[0] = universe;
  for (std::size_t i = 1; i < n; ++i) {
    remaining[i] = (remaining[i - 1] - match[i - 1]).compact();
  }

  std::vector<net::PacketSet> tail(n + 1);
  tail[n] = default_action == net::Action::Permit ? universe : net::PacketSet::empty();
  for (std::size_t i = n; i-- > 0;) {
    if (rules[i].action == net::Action::Permit) {
      tail[i] = ((match[i] & universe) | (tail[i + 1] - match[i])).compact();
    } else {
      tail[i] = (tail[i + 1] - match[i]).compact();
    }
  }

  std::vector<bool> remove(n, false);
  for (std::size_t i = n; i-- > 0;) {
    const net::PacketSet decided = remaining[i] & match[i];
    bool redundant = false;
    if (decided.is_empty()) {
      redundant = true;  // shadowed, or outside the universe of interest
    } else if (rules[i].action == net::Action::Permit) {
      redundant = tail[i + 1].contains(decided);
    } else {
      redundant = !tail[i + 1].intersects(decided);
    }
    if (!redundant) continue;
    // Batch-safety: skip when overlapping an already-planned removal.
    bool conflicts = false;
    for (std::size_t j = i + 1; j < n && !conflicts; ++j) {
      conflicts = remove[j] && match[i].intersects(match[j]);
    }
    if (!conflicts) remove[i] = true;
  }

  std::vector<net::AclRule> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!remove[i]) kept.push_back(rules[i]);
  }
  const bool changed = kept.size() != rules.size();
  rules = std::move(kept);
  return changed;
}

}  // namespace

net::Acl simplify_on(const net::Acl& acl, const net::PacketSet& universe) {
  std::vector<net::AclRule> rules = acl.rules();
  while (simplify_pass(rules, acl.default_action(), universe)) {
  }
  return net::Acl{std::move(rules), acl.default_action()};
}

net::Acl simplify(const net::Acl& acl) { return simplify_on(acl, net::PacketSet::all()); }

}  // namespace jinjing::core
