// The fix primitive (§4.2): repairing an update that fails check.
//
// Phase 1 (seeking neighborhoods): repeatedly ask the checker for a
// violating packet, enlarge it to its neighborhood (Equation 6), exclude
// the neighborhood, and repeat until no violation remains.
//
// Phase 2 (fixing plan generation): for each neighborhood, solve for a
// per-interface decision function D_[h]N (Equation 7) with Z3's optimizer:
//  * hard constraints — every feasible path must reproduce the desired
//    decision; interfaces outside `allow` keep their post-update decision;
//  * soft constraints — minimize the number of interfaces changed.
// Where the solved decision differs from the updated ACL's decision, a
// high-priority rule covering the neighborhood is prepended to that slot.
#pragma once

#include <cstdint>
#include <vector>

#include "core/checker.h"
#include "core/neighborhood.h"

namespace jinjing::core {

struct FixOptions {
  CheckOptions check;
  /// Run the §4.2 simplification pass on every ACL the fix touches.
  bool simplify_result = true;
  /// Guard against runaway neighborhood enumeration.
  std::size_t max_neighborhoods = 4096;
  /// Skip plan obligations whose feasible paths traverse no slot the
  /// candidate update rewrites: with no control intents, such obligations
  /// cannot violate (before == after on every hop), so re-executions in a
  /// candidate loop only pay for what changed. Off = execute every
  /// obligation (the seed behaviour, kept for the parity property test).
  bool replan_touched_only = true;
};

/// Rules to prepend (highest priority) to one slot's updated ACL.
struct FixAction {
  topo::AclSlot slot;
  std::vector<net::AclRule> rules;
};

/// One violating neighborhood and whether a repair could be placed for it.
/// The neighborhood is the witness's entire Equation-6 uniform region
/// (every packet in it is forwarded and filtered exactly like the
/// representative), generalizing the paper's single rule-shaped tuple:
/// emitting one region instead of its prefix-block fragments produces the
/// same rules with far fewer solver iterations.
struct NeighborhoodReport {
  net::PacketSet set;
  net::Packet representative;
  bool solved = true;
};

struct FixResult {
  /// True when every neighborhood admitted a repair within `allow`.
  bool success = true;
  std::vector<NeighborhoodReport> neighborhoods;
  std::vector<FixAction> actions;
  /// The repaired update: the proposed update with fixing rules prepended
  /// (and simplified when FixOptions::simplify_result is set).
  topo::AclUpdate fixed_update;
  std::uint64_t smt_queries = 0;

  /// Plan consumption: how many obligations the violation search covered,
  /// and how many were skipped as untouched by the update.
  std::size_t obligations = 0;
  std::size_t obligations_skipped = 0;

  // Phase timing (seconds), for the Figure 4b analysis.
  double search_seconds = 0;   // SMT violation queries
  double enlarge_seconds = 0;  // Equation 6 neighborhood enlargement
  double place_seconds = 0;    // per-neighborhood placement solving
  double assemble_seconds = 0; // rule emission + simplification
};

class Fixer {
 public:
  Fixer(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
        const FixOptions& options = {});

  /// Repairs `update` so that `entering` traffic keeps the desired
  /// reachability. `allowed` lists the slots fix may touch (from `allow`).
  [[nodiscard]] FixResult fix(const topo::AclUpdate& update, const net::PacketSet& entering,
                              const std::vector<topo::AclSlot>& allowed,
                              const std::vector<lai::ControlIntent>& controls = {});

  [[nodiscard]] Checker& checker() { return checker_; }

 private:
  smt::SmtContext& smt_;
  FixOptions options_;
  Checker checker_;
};

}  // namespace jinjing::core
