// Set-algebra batch execution for coalesced check-only jobs.
//
// A coalesced dispatch unit is a group of pure-check jobs against the same
// (snapshot version, scope, entering traffic) — i.e. the same PlanBundle.
// Running each through its own engine repays the fixed costs (SMT context,
// session compile, first-query warmup) once per job; this module amortizes
// them once per *version* instead. The per-(obligation, path) before-side
// permitted sets are precomputed against the base configuration (they do
// not depend on any job's update), and each job then only re-walks its
// *after* side with net::permitted_within, clipped to the obligation's FEC.
// An obligation is violated iff some feasible path's clipped permitted set
// differs between the two sides — the exact header-space dual of the
// checker's Equation 3 query (no control intents, which coalescing
// excludes), so the verdict is identical to a fresh Checker::check.
//
// Sharding: obligations are partitioned by entry interface (the plan's
// per-gateway structure; round-robin in global-FEC mode) and the batch is
// fanned out over the shared core::Executor as (job × shard) tasks. A
// per-job atomic minimum over violated obligation indices makes the
// stop_at_first answer deterministic regardless of scheduling — any
// violation at an index below the final minimum would itself have been
// scanned and lowered the minimum — and the reported witness is re-derived
// canonically (first feasible path, first changed-region sample) at that
// minimal obligation after the fan-out completes.
//
// Cancellation and deadlines are cooperative and per-job: every shard
// polls the job's probes between obligations, so a cancelled or expired
// job's remaining obligations are dropped without perturbing batchmates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/checker.h"
#include "core/executor.h"
#include "core/plan.h"
#include "topo/topology.h"

namespace jinjing::core {

/// The per-version precomputation shared by every job of a batch: for each
/// obligation, the FEC-clipped permitted set of each of its feasible paths
/// under the base (pre-update) configuration.
struct BatchAlgebra {
  std::shared_ptr<const PlanBundle> bundle;
  /// before[i][k]: packets of obligation i's class permitted along its k-th
  /// feasible path (paths[obligations()[i].paths[k]]) with no update.
  std::vector<std::vector<net::PacketSet>> before;
  double build_seconds = 0;
};

/// Builds the before-side sets for `bundle` against `topo`'s base ACLs.
[[nodiscard]] BatchAlgebra build_batch_algebra(const topo::Topology& topo,
                                               std::shared_ptr<const PlanBundle> bundle);

/// One job of a coalesced batch.
struct BatchItem {
  const topo::AclUpdate* update = nullptr;
  /// Cooperative cancellation probe, polled between obligations; may be
  /// empty (never cancelled).
  std::function<bool()> cancelled;
  /// Deadline probe, polled between obligations; true = budget exhausted.
  /// May be empty (no deadline).
  std::function<bool()> expired;
};

/// Per-job result of a batch run.
struct BatchOutcome {
  CheckResult result;
  /// Obligations proven consistent under the job's update (touches() ==
  /// false, or scanned without a differing path set) — commit these to the
  /// incremental planner so identical re-checks are query-free.
  std::vector<bool> clean;
  bool cancelled = false;
  bool deadline_expired = false;
};

struct BatchRunOptions {
  /// Report only the minimal violated obligation (the check behaviour).
  bool stop_at_first = true;
  /// Shared pool the (job × shard) tasks run on; nullptr = inline on the
  /// calling thread.
  Executor* executor = nullptr;
  /// Upper bound on obligation shards (per-entry groups are merged
  /// round-robin beyond it).
  std::size_t max_shards = 8;
};

/// Checks every item's update against the precomputed algebra. Outcomes
/// come back in item order; each is equal (verdict, minimal violated
/// obligation, canonical witness) to a fresh single-job check of the same
/// update at the same snapshot.
[[nodiscard]] std::vector<BatchOutcome> run_check_batch(const topo::Topology& topo,
                                                        const BatchAlgebra& algebra,
                                                        const std::vector<BatchItem>& items,
                                                        const BatchRunOptions& options = {});

}  // namespace jinjing::core
