// Neighborhood seeking (§4.2, Equation 6).
//
// The SMT solver yields one violating packet h at a time; fixing packet by
// packet would need ~10^31 iterations. Instead h is enlarged to a maximal
// rule-shaped tuple (a prefix-block hypercube) whose packets all (a) stay in
// h's forwarding equivalence class and (b) receive the same decision as h
// from every ACL decision model in F_Ω ∪ F'_Ω. The enlargement binary-
// searches the prefix mask of each field, exactly as the paper describes.
#pragma once

#include <vector>

#include "net/acl_algebra.h"
#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::core {

/// The decision models of Equation 6 in permitted-set form.
class DecisionModels {
 public:
  /// Collects f_ξ and f'_ξ for every bound slot of the two views.
  [[nodiscard]] static DecisionModels from_views(const topo::ConfigView& before,
                                                 const topo::ConfigView& after);

  /// Same, restricted to the given slots. Sound (and much faster) when the
  /// slots cover every ACL on the paths the caller cares about — ACLs off
  /// those paths cannot influence the fix constraints.
  [[nodiscard]] static DecisionModels from_views(const topo::ConfigView& before,
                                                 const topo::ConfigView& after,
                                                 const std::vector<topo::AclSlot>& slots);

  /// The region of packets treated exactly like `h` by every model:
  ///   ∩_f  (f(h) ? permitted(f) : ¬permitted(f))
  [[nodiscard]] net::PacketSet agreement_region(const net::Packet& h) const;

  /// agreement_region ∩ seed, folded from `seed` (cheaper when the caller
  /// already has a small region such as h's FEC).
  [[nodiscard]] net::PacketSet agreement_region(const net::Packet& h,
                                                const net::PacketSet& seed) const;

  [[nodiscard]] std::size_t size() const { return permitted_.size(); }

 private:
  std::vector<net::PacketSet> permitted_;
};

/// Enlarges h to its neighborhood [h]_N within `fec`: the largest prefix-
/// block cube around h contained in fec ∩ agreement_region(h). The result
/// always contains h and is rule-shaped (every field a prefix-aligned
/// block), so it converts directly to ACL rules.
[[nodiscard]] net::HyperCube enlarge_neighborhood(const net::Packet& h, const net::PacketSet& fec,
                                                  const DecisionModels& models);

/// The per-field binary-search core of the enlargement: the largest
/// prefix-block cube around h contained in `target` (which must contain h).
[[nodiscard]] net::HyperCube largest_prefix_block(const net::Packet& h,
                                                  const net::PacketSet& target);

}  // namespace jinjing::core
