// The verification-obligation IR — the "Plan" stage of the
// plan/compile/execute pipeline.
//
// Every Jinjing primitive (check §4.1, fix §5, generate §5.2) reduces to
// the same unit of work: one SMT query per (entry, FEC, feasible-path-set)
// triple. A VerifyPlan makes that decomposition explicit: it is built once
// per UpdateTask from path enumeration + equivalence-class refinement and
// does NOT depend on the ACL update under test, so checkers, fixer
// candidate loops and repeated engine commands all execute against the
// same plan. Obligations carry the lowering strategy (differential /
// basic, §4.1 vs Thm. 4.1) the compile stage uses to produce their Z3
// formula, plus the precomputed ACL slots their paths traverse, which is
// what lets an incremental re-execution skip obligations an update cannot
// affect.
//
// The obligation graph is a (currently edge-free) DAG: obligations are
// mutually independent, so the executor may run them in any order or in
// parallel; ordering by `index` reproduces the sequential semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet_set.h"
#include "topo/fec.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace jinjing::core {

/// How the compile stage lowers an obligation to its Z3 formula: encode the
/// Theorem 4.1 reduced rule groups, or the whole ACLs (the paper's "basic
/// version"). Control intents layer on either as the §6 decision rewrite.
enum class Lowering : std::uint8_t { Differential, Basic };

[[nodiscard]] constexpr std::string_view to_string(Lowering l) {
  return l == Lowering::Differential ? "differential" : "basic";
}

/// One proof obligation: "no packet of `fec` changes its (desired)
/// decision on any path in `paths`". `fec` points into class storage owned
/// by the plan; `paths` indexes the checker's path enumeration.
struct Obligation {
  std::size_t index = 0;                   // position in deterministic plan order
  std::optional<topo::InterfaceId> entry;  // set in per-entry classification mode
  const net::PacketSet* fec = nullptr;
  std::vector<std::size_t> paths;          // feasible paths (the set Y), ascending
  std::vector<topo::AclSlot> slots;        // ACL slots on those paths, sorted unique
  Lowering mode = Lowering::Differential;
};

/// Does the update rewrite any ACL slot this obligation's paths traverse?
/// When false (and no control intents are in play) the obligation is
/// trivially satisfied: every hop decision is unchanged.
[[nodiscard]] bool touches(const Obligation& obligation, const topo::AclUpdate& update);

class VerifyPlan {
 public:
  struct Stats {
    double plan_seconds = 0;     // wall time of the plan build
    std::size_t fec_count = 0;   // classes across all entries
    std::size_t path_count = 0;  // enumerated paths in scope
  };

  VerifyPlan() = default;

  [[nodiscard]] const std::vector<Obligation>& obligations() const { return obligations_; }
  [[nodiscard]] std::size_t size() const { return obligations_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Obligation count an update actually has to re-execute (`touches`);
  /// with control intents present every obligation is live.
  [[nodiscard]] std::size_t live_count(const topo::AclUpdate& update, bool has_controls) const;

 private:
  friend VerifyPlan build_verify_plan(
      const std::vector<topo::Path>& paths,
      const std::vector<net::PacketSet>& path_forwarding,
      std::shared_ptr<const std::vector<topo::EntryClasses>> entry_classes, Lowering mode);
  friend VerifyPlan build_verify_plan(
      const std::vector<topo::Path>& paths,
      const std::vector<net::PacketSet>& path_forwarding,
      std::shared_ptr<const std::vector<net::PacketSet>> global_classes, Lowering mode);

  // Class storage the obligations point into.
  std::shared_ptr<const std::vector<topo::EntryClasses>> entry_classes_;
  std::shared_ptr<const std::vector<net::PacketSet>> global_classes_;
  std::vector<Obligation> obligations_;
  Stats stats_;
};

/// The complete update-independent planning state of one (topology
/// structure, scope, entering traffic) verification problem: the enumerated
/// paths, their forwarding sets, and the obligation plan for one entering
/// set. A Checker exports its state as a bundle (Checker::share_plan) and
/// can adopt one instead of re-enumerating (CheckOptions::adopted_plan);
/// core::IncrementalPlanner carries bundles across svc::StateStore versions
/// — an ACL-only apply copies the topology but never changes edges or
/// forwarding predicates, so paths and FEC refinements stay valid verbatim.
struct PlanBundle {
  std::vector<topo::Path> paths;
  std::vector<net::PacketSet> path_forwarding;  // forwarding set per path
  net::PacketSet entering;                      // the traffic `plan` was built for
  VerifyPlan plan;
};

/// Builds the per-entry plan: one obligation per (entry, class), in the
/// classifier's deterministic order, with feasible paths restricted to the
/// entry (the per-entry fast path of Algorithm 1).
[[nodiscard]] VerifyPlan build_verify_plan(
    const std::vector<topo::Path>& paths, const std::vector<net::PacketSet>& path_forwarding,
    std::shared_ptr<const std::vector<topo::EntryClasses>> entry_classes, Lowering mode);

/// Builds the global-FEC plan: one obligation per class over all feasible
/// paths (Equation 2 without the per-entry restriction).
[[nodiscard]] VerifyPlan build_verify_plan(
    const std::vector<topo::Path>& paths, const std::vector<net::PacketSet>& path_forwarding,
    std::shared_ptr<const std::vector<net::PacketSet>> global_classes, Lowering mode);

}  // namespace jinjing::core
