// The "Execute" stage: a shared work-stealing thread pool that runs plan
// obligations (or any indexed task set) with cooperative cancellation.
//
// Design notes:
//  - One persistent pool per Executor; run() is serialized, the calling
//    thread participates as worker 0, so `threads == 1` degenerates to an
//    inline sequential loop with zero synchronization overhead.
//  - Work distribution is range splitting: the index space [0, count) is
//    divided into one contiguous range per worker, packed as next:32|end:32
//    in a single atomic so owner-pop (CAS next+1) and thief-split (CAS
//    end -> mid) are both single-word linearizable. A thief executes its
//    stolen segment thread-locally and never publishes it back, so shared
//    ranges only ever shrink — there is no ABA window.
//  - Early exit (`stop_at_first`) uses a CAS-min bound: a task returning
//    true lowers the bound to its own index; indices above the bound are
//    skipped (counted as cancelled), indices at or below it always run.
//    Hence the final stop_index is the *minimal* stopping index regardless
//    of scheduling — the property the checker's deterministic-witness
//    guarantee builds on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jinjing::core {

/// Cooperative cancellation scope shared by every task of one run().
class CancelSource {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Handed to each task: cancelled() turns true once the whole run is
/// cancelled or an earlier-indexed task requested early exit, letting
/// long-running obligations bail out mid-flight.
class CancellationToken {
 public:
  CancellationToken(const CancelSource* source, const std::atomic<std::size_t>* bound,
                    std::size_t index)
      : source_(source), bound_(bound), index_(index) {}

  [[nodiscard]] bool cancelled() const {
    return source_->cancelled() || index_ > bound_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t index() const { return index_; }

 private:
  const CancelSource* source_;
  const std::atomic<std::size_t>* bound_;
  std::size_t index_;
};

struct ExecutionStats {
  std::size_t executed = 0;   // tasks whose body ran
  std::size_t cancelled = 0;  // tasks skipped by early exit (executed+cancelled==count)
  std::size_t steals = 0;     // successful range splits
  /// Minimal index whose task requested early exit; count if none did.
  std::size_t stop_index = 0;
  double execute_seconds = 0;  // wall time of the run() call
};

/// Work-stealing executor. Thread-safe to share between consumers, but
/// run() calls are serialized — nested run() from inside a task deadlocks,
/// so worker-side consumers (e.g. Engine::run_batch engines) must use their
/// own single-threaded executors.
class Executor {
 public:
  /// A task returns true to request early exit ("stop at first").
  using Task = std::function<bool(std::size_t index, const CancellationToken&)>;
  /// Called once per participating worker; the returned Task runs every
  /// index that worker executes. Lets consumers hold per-worker state (an
  /// SmtContext, a CheckSession) without locking.
  using WorkerFactory = std::function<Task(std::size_t worker_id)>;

  explicit Executor(unsigned threads);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Runs tasks 0..count-1 across the pool and returns once all have
  /// executed or been cancelled.
  ExecutionStats run(std::size_t count, const WorkerFactory& factory);

 private:
  struct Job;

  void thread_main(std::size_t pool_index);
  void work(Job& job, std::size_t worker_id);
  void execute_range(Job& job, const Task& task, std::size_t begin, std::size_t end);

  unsigned threads_;
  std::vector<std::thread> pool_;  // threads_ - 1 helpers; caller is worker 0

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;          // current job, guarded by mutex_
  std::uint64_t job_seq_ = 0;   // bumped per run() to wake the pool
  std::size_t active_ = 0;      // pool workers still inside the current job
  bool shutdown_ = false;

  std::mutex run_mutex_;  // serializes run() calls
};

}  // namespace jinjing::core
