// The check primitive (§4.1, Algorithm 1), as a plan/compile/execute
// pipeline.
//
// Verifies packet reachability consistency between the current ACL group
// L_Ω and a proposed update L'_Ω: for every forwarding equivalence class of
// the traffic entering Ω and every path that can carry it, the path decision
// must be unchanged. The decomposition into per-(entry, FEC) proof
// obligations is materialized as a core::VerifyPlan (plan stage), each
// obligation is lowered to the Z3 formula
//
//      ( ∨_{p ∈ Y} ¬(c_p ⇔ c'_p) ) ∧ ψ_[h]FEC            (Equation 3)
//
// by a CheckSession (compile stage), and the obligations run on the shared
// work-stealing core::Executor (execute stage) with early-exit cancellation
// for stop_at_first.
//
// Two lowerings reproduce the paper's comparison: Basic (whole ACLs, the
// Minesweeper-style baseline) and Differential (Theorem 4.1 reduction).
// When control intents are present the original decision c_p is replaced by
// the desired decision r_p(c_p) (§6).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/diff.h"
#include "core/executor.h"
#include "core/plan.h"
#include "lai/sema.h"
#include "smt/acl_encoder.h"
#include "smt/context.h"
#include "topo/fec.h"
#include "topo/fec_cache.h"
#include "topo/paths.h"
#include "topo/topology.h"

namespace jinjing::core {

struct CheckOptions {
  /// Theorem 4.1 preprocessing (off = the paper's "basic version").
  bool use_differential = true;
  /// ACL decision-model encoding (§4.1 optimization; Sequential = baseline).
  smt::EncoderStrategy encoder = smt::EncoderStrategy::Tree;
  /// Return on the first violated FEC (the paper's check behaviour). Fix
  /// needs all of them and turns this off.
  bool stop_at_first = true;
  /// Classify entering traffic per entry interface against only the edges
  /// reachable from that entry (structured-topology fast path). Covers the
  /// same (class, feasible path) combinations as the global FECs.
  bool per_entry_fec = true;
  /// Worker threads for obligation execution and equivalence-class
  /// refinement. 1 = sequential (obligations run inline in plan order,
  /// which is the byte-deterministic mode). Ignored for execution when an
  /// explicit `executor` is installed.
  unsigned threads = 1;
  /// Exact set representation backing equivalence-class refinement
  /// (topo::FecOptions::backend). Both backends produce the same partition;
  /// the BDD backend refines atoms as decision-diagram nodes and converts
  /// to PacketSet only at the SMT-encoding boundary.
  topo::SetBackend set_backend = topo::SetBackend::Hypercube;
  /// One incremental Z3 solver per session, with push()/pop() around each
  /// per-FEC query, so path-decision assertions are encoded once per
  /// session instead of once per query. Off = a fresh solver per query
  /// (the seed behaviour, kept for ablation).
  bool incremental_smt = true;
  /// Per-query Z3 deadline in milliseconds (0 = none). A query that hits
  /// the deadline surfaces as smt::SmtTimeout — never as "consistent".
  unsigned timeout_ms = 0;
  /// Shared equivalence-class cache. When unset the checker creates a
  /// private one, which still serves repeated check() calls on the same
  /// checker (fixer-style candidate loops). The Engine installs one cache
  /// across all its checkers/fixers.
  std::shared_ptr<topo::FecCache> fec_cache;
  /// Shared obligation executor. When unset the checker lazily creates a
  /// private pool of `threads` workers. The Engine installs one executor
  /// across its whole check/fix/generate pipeline.
  std::shared_ptr<Executor> executor;
  /// A complete planning bundle exported by an earlier checker over the
  /// same (topology structure, scope) — path enumeration is skipped and
  /// plan() for the bundle's entering set is a lookup. The caller owns the
  /// structural-compatibility guarantee (core::IncrementalPlanner keys
  /// bundles so only structurally identical problems match).
  std::shared_ptr<const PlanBundle> adopted_plan;
  topo::PathEnumOptions path_options;
};

/// One witnessed inconsistency, with the blame assignment operators ask
/// for first: the hop whose ACL decision on the witness changed, and the
/// rule each side used.
struct Violation {
  net::Packet witness;          // a concrete packet whose reachability changed
  std::size_t path_index = 0;   // index into Checker::paths()
  bool decision_before = false; // desired decision on that path
  bool decision_after = false;  // decision under the update

  /// First hop on the path whose decision on the witness flipped (unset
  /// when the change is purely intent-driven, i.e. the ACLs agree but a
  /// control verb demands otherwise).
  std::optional<topo::AclSlot> changed_slot;
  std::string before_rule;  // rule text (or "default <action>") each side
  std::string after_rule;
};

/// Fills Violation::changed_slot/before_rule/after_rule by walking the
/// path's hops with both configuration views.
void explain_violation(const topo::Topology& topo, const topo::ConfigView& before,
                       const topo::ConfigView& after, const topo::Path& path,
                       Violation& violation);

struct CheckResult {
  bool consistent = true;
  std::vector<Violation> violations;  // one witness per violated FEC
  std::size_t fec_count = 0;
  std::size_t path_count = 0;
  std::uint64_t smt_queries = 0;

  // Per-stage breakdown of the pipeline.
  std::size_t obligation_count = 0;        // plan size
  std::size_t obligations_executed = 0;    // obligations whose query ran
  std::size_t obligations_cancelled = 0;   // skipped by stop_at_first early exit
  double plan_seconds = 0;     // plan build (0 when served from cache)
  double compile_seconds = 0;  // session build + formula lowering
  double solve_seconds = 0;    // inside Z3 check() calls
  double execute_seconds = 0;  // executor wall time for the obligation batch
};

/// The desired decision for a path/packet after applying control intents:
/// open => permit, isolate => deny, maintain (or no matching intent) =>
/// keep the original decision. First matching intent wins (§6).
[[nodiscard]] bool desired_decision(const std::vector<lai::ControlIntent>& controls,
                                    const topo::Path& path, const net::Packet& h,
                                    bool original_decision);

class Checker;

/// The compile stage for one update: the before/after configuration views
/// and (in Differential lowering) the Theorem 4.1 reduced groups, computed
/// once and reused across obligations. Lowered ACL expressions and path
/// indicators are cached, so executing many obligations against one session
/// encodes each ACL a single time. fix iterates find_violation with a
/// growing exclusion set to enumerate all violating neighborhoods.
class CheckSession {
 public:
  CheckSession(Checker& checker, const topo::AclUpdate& update,
               const std::vector<lai::ControlIntent>& controls);

  /// Same, but issuing its SMT queries through `smt` instead of the
  /// checker's context — one session per worker in parallel execution (Z3
  /// contexts are single-threaded).
  CheckSession(Checker& checker, smt::SmtContext& smt, const topo::AclUpdate& update,
               const std::vector<lai::ControlIntent>& controls);

  /// Searches one packet in `fec` (and outside `excluded`) whose desired
  /// decision differs from the updated decision on some feasible path.
  /// With `entry` set, only paths entering there are considered (the
  /// per-entry classification mode).
  [[nodiscard]] std::optional<Violation> find_violation(
      const net::PacketSet& fec, const net::PacketSet& excluded,
      std::optional<topo::InterfaceId> entry = std::nullopt);

  /// Obligation form: the feasible path set comes precomputed from the
  /// plan instead of being re-derived per query.
  [[nodiscard]] std::optional<Violation> find_violation(const net::PacketSet& fec,
                                                        const net::PacketSet& excluded,
                                                        const std::vector<std::size_t>& feasible);

  [[nodiscard]] const topo::ConfigView& before() const { return before_; }
  [[nodiscard]] const topo::ConfigView& after() const { return after_; }
  [[nodiscard]] const std::vector<lai::ControlIntent>& controls() const { return controls_; }

  /// Seconds spent building this session (differential reduction — the
  /// fixed cost of the compile stage).
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

 private:
  /// The slot's ACL as encoded for the given side (reduced or full).
  [[nodiscard]] const net::Acl& encoded_acl(topo::AclSlot slot, bool after_side) const;

  /// Cached f_ξ / f'_ξ encoding over the session's packet variables.
  [[nodiscard]] const z3::expr& acl_expr(topo::AclSlot slot, bool after_side);

  /// ¬(desired(c_p) ⇔ c'_p) for one path (Equation 3's per-path disjunct).
  [[nodiscard]] z3::expr path_inconsistency_expr(std::size_t path_index);

  /// Indicator for "path pi's desired and updated decisions differ". Its
  /// defining assertion is added to the incremental solver once, at the
  /// base frame, the first time the path participates in a query.
  [[nodiscard]] const z3::expr& path_inconsistent(std::size_t path_index);

  Checker& checker_;
  smt::SmtContext& smt_;
  topo::ConfigView before_;
  topo::ConfigView after_;
  std::vector<lai::ControlIntent> controls_;
  std::optional<ReducedGroups> reduced_;  // set in Differential lowering
  smt::PacketVars vars_;                  // shared by all queries in the session
  double build_seconds_ = 0;
  std::unordered_map<std::uint64_t, z3::expr> expr_cache_;
  std::optional<z3::solver> solver_;      // incremental mode: lives for the session
  std::unordered_map<std::size_t, z3::expr> path_flags_;
};

class Checker {
 public:
  /// Binds the checker to a network and scope. Paths are enumerated once.
  Checker(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
          const CheckOptions& options = {});

  /// Runs Algorithm 1 for the update against `entering` traffic (X_Ω):
  /// plans the obligation set, compiles it against the update, and executes
  /// it on the shared executor. `controls` (optional, §6) switches the
  /// target from packet reachability consistency to desired reachability
  /// consistency.
  [[nodiscard]] CheckResult check(const topo::AclUpdate& update, const net::PacketSet& entering,
                                  const std::vector<lai::ControlIntent>& controls = {});

  /// The Minesweeper-flavoured baseline the paper argues against (§1):
  /// no equivalence classes at all — one monolithic formula asserting
  /// "some entering packet changes decision on some path", with every ACL
  /// encoded whole. Equisatisfiable with Algorithm 1's per-class queries
  /// but gives the solver no structure to exploit; used by the ablation
  /// benchmark. Ignores CheckOptions::use_differential/per_entry_fec.
  [[nodiscard]] CheckResult check_monolithic(const topo::AclUpdate& update,
                                             const net::PacketSet& entering);

  /// The verification plan for `entering` traffic: the obligation DAG built
  /// from path enumeration + FEC refinement. Cached — the plan does not
  /// depend on the ACL update, so checker re-runs, fixer candidate loops
  /// and repeated engine commands reuse it.
  [[nodiscard]] const VerifyPlan& plan(const net::PacketSet& entering);

  /// The compile-stage session for (update, controls), cached so repeated
  /// executions against the same update (check; fix; trailing check of a
  /// candidate) keep their incremental Z3 base frame. Invalidated when
  /// either differs from the cached pair.
  [[nodiscard]] CheckSession& session(const topo::AclUpdate& update,
                                      const std::vector<lai::ControlIntent>& controls);

  /// The obligation executor: the installed shared one, or a lazily created
  /// private pool of options().threads workers.
  [[nodiscard]] Executor& executor();

  /// Exports this checker's planning state for `entering` as a shareable
  /// bundle (building the plan first if needed). The bundle is immutable
  /// and self-contained: another checker adopting it never touches this
  /// checker again.
  [[nodiscard]] std::shared_ptr<const PlanBundle> share_plan(const net::PacketSet& entering);

  [[nodiscard]] const std::vector<topo::Path>& paths() const {
    return adopted_ ? adopted_->paths : paths_;
  }
  [[nodiscard]] const CheckOptions& options() const { return options_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const topo::Scope& scope() const { return scope_; }
  [[nodiscard]] smt::SmtContext& smt() { return smt_; }

  /// Paths whose forwarding predicates can carry `traffic` (the set Y).
  [[nodiscard]] std::vector<std::size_t> feasible_paths(const net::PacketSet& traffic) const;

  /// Per-entry classes of `entering` under this checker's scope, derived
  /// with the configured backend and served from the FEC cache (classes do
  /// not depend on the update, so candidate loops hit).
  [[nodiscard]] std::shared_ptr<const std::vector<topo::EntryClasses>> entry_classes(
      const net::PacketSet& entering);

  /// Global FECs of `entering`, cached likewise.
  [[nodiscard]] std::shared_ptr<const std::vector<net::PacketSet>> global_classes(
      const net::PacketSet& entering);

  [[nodiscard]] topo::FecCache& fec_cache() { return *fec_cache_; }

 private:
  friend class CheckSession;

  [[nodiscard]] topo::FecOptions fec_options() const {
    return topo::FecOptions{options_.set_backend, options_.threads};
  }

  [[nodiscard]] const std::vector<net::PacketSet>& path_forwarding() const {
    return adopted_ ? adopted_->path_forwarding : path_forwarding_;
  }

  smt::SmtContext& smt_;
  const topo::Topology& topo_;
  const topo::Scope scope_;
  CheckOptions options_;
  std::shared_ptr<topo::FecCache> fec_cache_;
  std::shared_ptr<const PlanBundle> adopted_;    // set: paths_/path_forwarding_ stay empty
  std::vector<topo::Path> paths_;
  std::vector<net::PacketSet> path_forwarding_;  // forwarding set per path

  // Plan cache (keyed by the entering traffic).
  std::optional<net::PacketSet> plan_entering_;
  VerifyPlan plan_;
  double last_plan_seconds_ = 0;  // 0 on cache hit

  // Session cache. The session's ConfigView points at session_update_, so
  // the stored copies must outlive (and be rebuilt before) the session.
  topo::AclUpdate session_update_;
  std::vector<lai::ControlIntent> session_controls_;
  std::unique_ptr<CheckSession> session_;
  double last_session_seconds_ = 0;  // 0 on cache hit

  std::shared_ptr<Executor> own_executor_;  // lazily created when none installed
};

}  // namespace jinjing::core
