#include "core/diff.h"

#include <algorithm>

#include "core/synth_opt.h"

namespace jinjing::core {

namespace {

/// Appends to `out` the rules of `list` not marked as LCS members.
void collect_unmarked(const std::vector<net::AclRule>& list, const std::vector<bool>& marks,
                      std::vector<net::AclRule>& out) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (!marks[i]) out.push_back(list[i]);
  }
}

void append_unique(std::vector<net::AclRule>& pool, const std::vector<net::AclRule>& extra) {
  for (const auto& rule : extra) {
    if (std::find(pool.begin(), pool.end(), rule) == pool.end()) pool.push_back(rule);
  }
}

}  // namespace

LcsMarks lcs_marks(const std::vector<net::AclRule>& a, const std::vector<net::AclRule>& b) {
  LcsMarks marks;
  marks.in_a.assign(a.size(), false);
  marks.in_b.assign(b.size(), false);

  // Updates usually change a handful of rules, so trim the common prefix and
  // suffix before running the quadratic DP on the (tiny) middle.
  std::size_t lo = 0;
  while (lo < a.size() && lo < b.size() && a[lo] == b[lo]) {
    marks.in_a[lo] = marks.in_b[lo] = true;
    ++lo;
  }
  std::size_t a_hi = a.size();
  std::size_t b_hi = b.size();
  while (a_hi > lo && b_hi > lo && a[a_hi - 1] == b[b_hi - 1]) {
    --a_hi;
    --b_hi;
    marks.in_a[a_hi] = true;
    marks.in_b[b_hi] = true;
  }

  const std::size_t n = a_hi - lo;
  const std::size_t m = b_hi - lo;
  if (n == 0 || m == 0) return marks;

  // Classic LCS length table with backtracking.
  std::vector<std::vector<std::uint32_t>> dp(n + 1, std::vector<std::uint32_t>(m + 1, 0));
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (a[lo + i - 1] == b[lo + j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  std::size_t i = n;
  std::size_t j = m;
  while (i > 0 && j > 0) {
    if (a[lo + i - 1] == b[lo + j - 1]) {
      marks.in_a[lo + i - 1] = true;
      marks.in_b[lo + j - 1] = true;
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  return marks;
}

std::vector<net::AclRule> differential_rules(const net::Acl& before, const net::Acl& after) {
  const auto marks = lcs_marks(before.rules(), after.rules());
  std::vector<net::AclRule> diff;
  collect_unmarked(before.rules(), marks.in_a, diff);
  collect_unmarked(after.rules(), marks.in_b, diff);
  if (before.default_action() != after.default_action()) {
    diff.push_back(net::AclRule{net::Action::Permit, net::Match::any()});
  }
  return diff;
}

namespace {

/// Index of the differential matches by dst interval (the §5.5 search
/// tree): the overlap test of Definition 4.2 then touches only candidate
/// rules instead of the whole Diff_Ω pool.
DstIntervalIndex index_diff(const std::vector<net::AclRule>& diff) {
  std::vector<net::HyperCube> cubes;
  cubes.reserve(diff.size());
  for (const auto& d : diff) cubes.push_back(d.match.cube());
  return DstIntervalIndex{std::move(cubes)};
}

net::Acl related_rules_indexed(const net::Acl& acl, const DstIntervalIndex& index) {
  std::vector<net::AclRule> kept;
  for (const auto& rule : acl.rules()) {
    if (index.overlaps_cube(rule.match.cube())) kept.push_back(rule);
  }
  return net::Acl{std::move(kept), acl.default_action()};
}

}  // namespace

net::Acl related_rules(const net::Acl& acl, const std::vector<net::AclRule>& diff) {
  return related_rules_indexed(acl, index_diff(diff));
}

std::vector<net::AclRule> scope_differential(const topo::ConfigView& before,
                                             const topo::ConfigView& after,
                                             const std::vector<topo::AclSlot>& slots) {
  std::vector<net::AclRule> diff;
  for (const auto slot : slots) {
    append_unique(diff, differential_rules(before.acl(slot), after.acl(slot)));
  }
  return diff;
}

ReducedGroups reduce_by_differential(const topo::ConfigView& before, const topo::ConfigView& after,
                                     const std::vector<topo::AclSlot>& slots) {
  ReducedGroups groups;
  groups.diff = scope_differential(before, after, slots);
  const DstIntervalIndex index = index_diff(groups.diff);
  for (const auto slot : slots) {
    groups.before.emplace(slot, related_rules_indexed(before.acl(slot), index));
    groups.after.emplace(slot, related_rules_indexed(after.acl(slot), index));
  }
  return groups;
}

}  // namespace jinjing::core
