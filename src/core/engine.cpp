#include "core/engine.h"

#include <algorithm>

#include "lai/parser.h"
#include "net/acl_algebra.h"

namespace jinjing::core {

bool CommandOutcome::ok() const {
  switch (command) {
    case lai::Command::Check: return check && check->consistent;
    case lai::Command::Fix: return fix && fix->success;
    case lai::Command::Generate: return generate && generate->success;
  }
  return false;
}

bool EngineReport::success() const { return !outcomes.empty() && outcomes.back().ok(); }

Engine::Engine(const topo::Topology& topo, EngineOptions options)
    : topo_(topo), options_(std::move(options)) {
  // One equivalence-class cache across every checker/fixer the engine
  // creates: a check → fix → check pipeline derives each partition once.
  if (!options_.check.fec_cache) options_.check.fec_cache = std::make_shared<topo::FecCache>();
  if (!options_.fix.check.fec_cache) options_.fix.check.fec_cache = options_.check.fec_cache;
}

EngineReport Engine::run(const lai::UpdateTask& task, const net::PacketSet& entering) {
  EngineReport report;
  // Commands operate on the *current* plan: check after fix re-validates
  // the repaired update, not the original proposal.
  report.final_update = task.modify;

  for (const auto command : task.commands) {
    CommandOutcome outcome;
    outcome.command = command;
    switch (command) {
      case lai::Command::Check: {
        Checker checker{smt_, topo_, task.scope, options_.check};
        outcome.check = checker.check(report.final_update, entering, task.controls);
        break;
      }
      case lai::Command::Fix: {
        Fixer fixer{smt_, topo_, task.scope, options_.fix};
        outcome.fix = fixer.fix(report.final_update, entering, task.allowed, task.controls);
        report.final_update = outcome.fix->fixed_update;
        break;
      }
      case lai::Command::Generate: {
        // Modify slots are generate sources: their post-update ACL is fixed
        // (permit-all for a plain migration, or the named replacement).
        MigrationSpec spec;
        for (const auto& [slot, acl] : task.modify) {
          spec.sources.push_back(slot);
          if (!net::permitted_set(acl).equals(net::PacketSet::all())) {
            spec.replacements.emplace(slot, acl);
          }
        }
        for (const auto slot : task.allowed) {
          if (std::find(spec.sources.begin(), spec.sources.end(), slot) == spec.sources.end()) {
            spec.targets.push_back(slot);
          }
        }
        GenerateOptions gen_options = options_.generate;
        gen_options.universe = gen_options.universe & entering;
        Generator generator{smt_, topo_, task.scope, gen_options};
        outcome.generate = generator.generate(spec, task.controls);
        report.final_update = outcome.generate->update;
        break;
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

EngineReport Engine::run_program(std::string_view source, const lai::AclLibrary& acls,
                                 const net::PacketSet& entering) {
  const auto program = lai::parse(source);
  const auto task = lai::resolve(program, topo_, acls);
  return run(task, entering);
}

}  // namespace jinjing::core
