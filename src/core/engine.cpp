#include "core/engine.h"

#include <algorithm>
#include <mutex>

#include "lai/parser.h"
#include "net/acl_algebra.h"
#include "obs/trace.h"

namespace jinjing::core {

namespace {

bool same_scope(const topo::Scope& a, const topo::Scope& b) {
  return a.devices() == b.devices();
}

}  // namespace

bool CommandOutcome::ok() const {
  switch (command) {
    case lai::Command::Check: return check && check->consistent;
    case lai::Command::Fix: return fix && fix->success;
    case lai::Command::Generate: return generate && generate->success;
  }
  return false;
}

bool EngineReport::success() const { return !outcomes.empty() && outcomes.back().ok(); }

Engine::Engine(const topo::Topology& topo, EngineOptions options)
    : topo_(topo), options_(std::move(options)) {
  // One equivalence-class cache across every checker/fixer the engine
  // creates: a check → fix → check pipeline derives each partition once.
  if (!options_.check.fec_cache) options_.check.fec_cache = std::make_shared<topo::FecCache>();
  if (!options_.fix.check.fec_cache) options_.fix.check.fec_cache = options_.check.fec_cache;
  if (!options_.generate.fec_cache) options_.generate.fec_cache = options_.check.fec_cache;
  // One executor likewise: check obligations, fix searches and generate
  // placements all draw from the same worker pool.
  if (!options_.check.executor) {
    options_.check.executor = std::make_shared<Executor>(options_.check.threads);
  }
  executor_ = options_.check.executor;
  if (!options_.fix.check.executor) options_.fix.check.executor = executor_;
  if (!options_.generate.executor) options_.generate.executor = executor_;
  // The engine-wide per-query Z3 deadline (worker contexts pick it up from
  // their CheckOptions; the shared context is configured here).
  if (options_.check.timeout_ms > 0) smt_.set_timeout_ms(options_.check.timeout_ms);
}

Checker& Engine::checker_for(const topo::Scope& scope) {
  if (!session_scope_ || !same_scope(*session_scope_, scope)) {
    fixer_.reset();
    checker_.reset();
    session_scope_ = scope;
  }
  if (!checker_) checker_ = std::make_unique<Checker>(smt_, topo_, scope, options_.check);
  return *checker_;
}

Fixer& Engine::fixer_for(const topo::Scope& scope) {
  if (!session_scope_ || !same_scope(*session_scope_, scope)) {
    fixer_.reset();
    checker_.reset();
    session_scope_ = scope;
  }
  if (!fixer_) fixer_ = std::make_unique<Fixer>(smt_, topo_, scope, options_.fix);
  return *fixer_;
}

CommandOutcome Engine::run_command(const lai::UpdateTask& task, lai::Command command,
                                   topo::AclUpdate& current, const net::PacketSet& entering) {
  CommandOutcome outcome;
  outcome.command = command;
  switch (command) {
    case lai::Command::Check: {
      const obs::TraceSpan span{obs::Span::EngineCheck};
      outcome.check = checker_for(task.scope).check(current, entering, task.controls);
      break;
    }
    case lai::Command::Fix: {
      const obs::TraceSpan span{obs::Span::EngineFix};
      outcome.fix = fixer_for(task.scope).fix(current, entering, task.allowed, task.controls);
      current = outcome.fix->fixed_update;
      break;
    }
    case lai::Command::Generate: {
      const obs::TraceSpan span{obs::Span::EngineGenerate};
      // Modify slots are generate sources: their post-update ACL is fixed
      // (permit-all for a plain migration, or the named replacement). The
      // spec reads task.modify, not `current`: sources are the operator's
      // original migration statement, regardless of intervening repairs.
      MigrationSpec spec;
      for (const auto& [slot, acl] : task.modify) {
        spec.sources.push_back(slot);
        if (!net::permitted_set(acl).equals(net::PacketSet::all())) {
          spec.replacements.emplace(slot, acl);
        }
      }
      for (const auto slot : task.allowed) {
        if (std::find(spec.sources.begin(), spec.sources.end(), slot) == spec.sources.end()) {
          spec.targets.push_back(slot);
        }
      }
      GenerateOptions gen_options = options_.generate;
      gen_options.universe = gen_options.universe & entering;
      Generator generator{smt_, topo_, task.scope, gen_options};
      outcome.generate = generator.generate(spec, task.controls);
      current = outcome.generate->update;
      break;
    }
  }
  return outcome;
}

EngineReport Engine::run(const lai::UpdateTask& task, const net::PacketSet& entering) {
  EngineReport report;
  // Commands operate on the *current* plan: check after fix re-validates
  // the repaired update, not the original proposal.
  report.final_update = task.modify;
  for (const auto command : task.commands) {
    report.outcomes.push_back(run_command(task, command, report.final_update, entering));
  }
  return report;
}

std::vector<EngineReport> Engine::run_batch(const std::vector<lai::UpdateTask>& tasks,
                                            const net::PacketSet& entering) {
  std::vector<EngineReport> reports(tasks.size());
  if (executor_->threads() <= 1 || tasks.size() <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) reports[i] = run(tasks[i], entering);
    return reports;
  }

  // Worker engines are single-threaded (their checkers run obligations
  // inline — the outer executor's run() is not reentrant) and share this
  // engine's FEC cache, so tasks over the same scope derive each partition
  // once across the whole batch.
  EngineOptions worker_options = options_;
  worker_options.check.threads = 1;
  worker_options.check.executor = nullptr;
  worker_options.fix.check.threads = 1;
  worker_options.fix.check.executor = nullptr;
  worker_options.generate.executor = nullptr;

  std::mutex engines_mutex;
  std::vector<std::shared_ptr<Engine>> engines;
  const Executor::WorkerFactory factory = [&](std::size_t) -> Executor::Task {
    auto engine = std::make_shared<Engine>(topo_, worker_options);
    {
      const std::lock_guard<std::mutex> lock{engines_mutex};
      engines.push_back(engine);
    }
    return [&, engine](std::size_t i, const CancellationToken& token) {
      if (token.cancelled()) return false;
      reports[i] = engine->run(tasks[i], entering);
      return false;
    };
  };
  (void)executor_->run(tasks.size(), factory);
  return reports;
}

EngineReport Engine::run_program(std::string_view source, const lai::AclLibrary& acls,
                                 const net::PacketSet& entering) {
  const auto program = lai::parse(source);
  const auto task = lai::resolve(program, topo_, acls);
  return run(task, entering);
}

}  // namespace jinjing::core
