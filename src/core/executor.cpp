#include "core/executor.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/stats.h"
#include "obs/trace.h"

namespace jinjing::core {

namespace {

constexpr std::uint64_t pack(std::size_t next, std::size_t end) {
  return (static_cast<std::uint64_t>(next) << 32) | static_cast<std::uint64_t>(end);
}
constexpr std::size_t range_next(std::uint64_t packed) {
  return static_cast<std::size_t>(packed >> 32);
}
constexpr std::size_t range_end(std::uint64_t packed) {
  return static_cast<std::size_t>(packed & 0xffffffffu);
}

}  // namespace

struct Executor::Job {
  std::size_t count = 0;
  const WorkerFactory* factory = nullptr;
  std::size_t range_count = 0;  // shared ranges == participating workers
  std::vector<std::atomic<std::uint64_t>> ranges;

  CancelSource cancel;
  std::atomic<std::size_t> bound;  // tasks with index > bound are skipped
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> steals{0};

  // First exception thrown by any task/factory; the whole run is cancelled
  // and the exception rethrown from run() on the calling thread.
  std::mutex error_mutex;
  std::exception_ptr error;

  void record_error(std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock{error_mutex};
      if (!error) error = std::move(e);
    }
    cancel.cancel();
  }

  Job(std::size_t n, const WorkerFactory& f, std::size_t workers)
      : count(n), factory(&f), range_count(std::min(workers, n)), ranges(range_count), bound(n) {
    // Deal [0, count) into range_count contiguous strips.
    const std::size_t base = count / range_count;
    const std::size_t extra = count % range_count;
    std::size_t cursor = 0;
    for (std::size_t r = 0; r < range_count; ++r) {
      const std::size_t len = base + (r < extra ? 1 : 0);
      ranges[r].store(pack(cursor, cursor + len), std::memory_order_relaxed);
      cursor += len;
    }
  }
};

Executor::Executor(unsigned threads) : threads_(std::max(1u, threads)) {
  pool_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    pool_.emplace_back([this, t] { thread_main(t); });
  }
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : pool_) t.join();
}

void Executor::thread_main(std::size_t pool_index) {
  std::uint64_t seen_seq = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      cv_.wait(lock, [&] { return shutdown_ || job_seq_ != seen_seq; });
      if (shutdown_) return;
      seen_seq = job_seq_;
      job = job_;
      if (job == nullptr || pool_index >= job->range_count) continue;
      ++active_;
    }
    work(*job, pool_index);
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      --active_;
    }
    done_cv_.notify_one();
  }
}

void Executor::execute_range(Job& job, const Task& task, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (job.cancel.cancelled() || i > job.bound.load(std::memory_order_relaxed)) {
      job.cancelled.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const CancellationToken token{&job.cancel, &job.bound, i};
    bool stop = false;
    try {
      stop = task(i, token);
    } catch (...) {
      job.record_error(std::current_exception());
    }
    job.executed.fetch_add(1, std::memory_order_relaxed);
    if (stop) {
      // CAS-min: the bound only ever decreases, so the final value is the
      // minimal stopping index no matter how the pool interleaved.
      std::size_t current = job.bound.load(std::memory_order_relaxed);
      while (i < current &&
             !job.bound.compare_exchange_weak(current, i, std::memory_order_relaxed)) {
      }
    }
  }
}

void Executor::work(Job& job, std::size_t worker_id) {
  Task task;
  try {
    task = (*job.factory)(worker_id);
  } catch (...) {
    job.record_error(std::current_exception());
    task = [](std::size_t, const CancellationToken&) { return false; };
  }
  while (true) {
    // Drain the worker's own range first (owner pop: CAS next -> next+1).
    auto& own = job.ranges[worker_id];
    std::uint64_t packed = own.load(std::memory_order_acquire);
    while (range_next(packed) < range_end(packed)) {
      const std::size_t i = range_next(packed);
      if (own.compare_exchange_weak(packed, pack(i + 1, range_end(packed)),
                                    std::memory_order_acq_rel)) {
        execute_range(job, task, i, i + 1);
        packed = own.load(std::memory_order_acquire);
      }
    }

    // Own range empty: steal the upper half of the fullest other range and
    // execute it locally (never re-published, so shared ranges only shrink).
    std::size_t victim = job.range_count;
    std::size_t best = 0;
    for (std::size_t r = 0; r < job.range_count; ++r) {
      if (r == worker_id) continue;
      const std::uint64_t v = job.ranges[r].load(std::memory_order_acquire);
      const std::size_t avail = range_end(v) - range_next(v);
      if (avail > best) {
        best = avail;
        victim = r;
      }
    }
    if (victim == job.range_count) return;  // nothing left anywhere

    std::uint64_t v = job.ranges[victim].load(std::memory_order_acquire);
    const std::size_t next = range_next(v);
    const std::size_t end = range_end(v);
    if (next >= end) continue;  // raced away; rescan
    const std::size_t mid = next + (end - next + 1) / 2;
    if (job.ranges[victim].compare_exchange_strong(v, pack(next, mid),
                                                   std::memory_order_acq_rel)) {
      job.steals.fetch_add(1, std::memory_order_relaxed);
      obs::observe(obs::Histogram::ExecutorQueueDepth, end - next);
      execute_range(job, task, mid, end);
    }
  }
}

ExecutionStats Executor::run(std::size_t count, const WorkerFactory& factory) {
  const std::lock_guard<std::mutex> run_lock{run_mutex_};
  const obs::TraceSpan run_span{obs::Span::ExecutorRun};
  const auto start = std::chrono::steady_clock::now();
  ExecutionStats stats;
  if (count == 0) {
    stats.stop_index = 0;
    return stats;
  }
  obs::count(obs::Counter::ExecutorRuns);
  obs::count(obs::Counter::ExecutorTasks, count);
  obs::observe(obs::Histogram::ExecutorTasksPerRun, count);

  Job job{count, factory, threads_};

  if (job.range_count > 1) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      job_ = &job;
      ++job_seq_;
    }
    cv_.notify_all();
  }

  work(job, 0);  // the caller is worker 0

  if (job.range_count > 1) {
    std::unique_lock<std::mutex> lock{mutex_};
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }

  if (job.error) std::rethrow_exception(job.error);

  stats.executed = job.executed.load();
  stats.cancelled = job.cancelled.load();
  stats.steals = job.steals.load();
  obs::count(obs::Counter::ExecutorSteals, stats.steals);
  const std::size_t bound = job.bound.load();
  stats.stop_index = bound >= count ? count : bound;
  stats.execute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace jinjing::core
