#include "core/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>

#include "net/acl_algebra.h"
#include "obs/stats.h"

namespace jinjing::core {

namespace {

constexpr std::size_t kNoViolation = std::numeric_limits<std::size_t>::max();

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// The FEC-clipped permitted set of one path under a view: the first-match
/// walk of every hop ACL, with each intermediate set confined to `fec`.
/// Equals path_permitted_set(view, path) & fec, but never materializes the
/// whole-ACL permitted sets.
net::PacketSet clipped_path_set(const topo::ConfigView& view, const topo::Path& path,
                                const net::PacketSet& fec) {
  net::PacketSet permitted = fec;
  for (const topo::Hop& hop : path.hops()) {
    if (permitted.is_empty()) break;
    const net::Acl& acl = view.acl(hop.slot());
    if (acl.empty() && acl.default_action() == net::Action::Permit) continue;
    permitted = net::permitted_within(acl, permitted);
  }
  return permitted;
}

/// Mutable per-job state shared by that job's shard tasks. Distinct shards
/// own disjoint obligation indices, so the per-obligation byte vectors are
/// written race-free; the scalars are atomics.
struct JobScratch {
  std::atomic<std::size_t> bound{kNoViolation};  // CAS-min violated index
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> skipped{0};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> expired{false};
  std::vector<std::uint8_t> clean;
  std::vector<std::uint8_t> violated;
};

void lower_bound_to(std::atomic<std::size_t>& bound, std::size_t index) {
  std::size_t seen = bound.load(std::memory_order_relaxed);
  while (index < seen &&
         !bound.compare_exchange_weak(seen, index, std::memory_order_relaxed)) {
  }
}

/// Partitions obligation indices into shards by entry interface (the
/// per-gateway plan structure); global-mode obligations (no entry) are
/// spread round-robin. Groups beyond `max_shards` are merged round-robin.
/// Every shard is ascending in obligation index.
std::vector<std::vector<std::size_t>> make_shards(const VerifyPlan& plan,
                                                  std::size_t max_shards) {
  if (max_shards == 0) max_shards = 1;
  std::map<std::uint64_t, std::vector<std::size_t>> groups;  // ordered => deterministic
  std::size_t spread = 0;
  for (const Obligation& o : plan.obligations()) {
    const std::uint64_t key = o.entry ? static_cast<std::uint64_t>(*o.entry)
                                      : (spread++ % max_shards);
    groups[key].push_back(o.index);
  }
  std::vector<std::vector<std::size_t>> shards;
  shards.resize(std::min(max_shards, std::max<std::size_t>(groups.size(), 1)));
  std::size_t g = 0;
  for (auto& [key, indices] : groups) {
    auto& shard = shards[g++ % shards.size()];
    shard.insert(shard.end(), indices.begin(), indices.end());
  }
  for (auto& shard : shards) std::sort(shard.begin(), shard.end());
  std::erase_if(shards, [](const auto& shard) { return shard.empty(); });
  return shards;
}

}  // namespace

BatchAlgebra build_batch_algebra(const topo::Topology& topo,
                                 std::shared_ptr<const PlanBundle> bundle) {
  const auto start = std::chrono::steady_clock::now();
  BatchAlgebra algebra;
  algebra.bundle = std::move(bundle);
  const topo::ConfigView base{topo};
  const auto& obligations = algebra.bundle->plan.obligations();
  algebra.before.resize(obligations.size());
  for (const Obligation& o : obligations) {
    auto& sets = algebra.before[o.index];
    sets.reserve(o.paths.size());
    for (const std::size_t p : o.paths) {
      sets.push_back(clipped_path_set(base, algebra.bundle->paths[p], *o.fec));
    }
  }
  algebra.build_seconds = seconds_since(start);
  return algebra;
}

std::vector<BatchOutcome> run_check_batch(const topo::Topology& topo,
                                          const BatchAlgebra& algebra,
                                          const std::vector<BatchItem>& items,
                                          const BatchRunOptions& options) {
  const PlanBundle& bundle = *algebra.bundle;
  const auto& obligations = bundle.plan.obligations();
  const std::size_t count = obligations.size();

  std::vector<BatchOutcome> outcomes(items.size());
  if (items.empty()) return outcomes;

  const auto shards = make_shards(bundle.plan, options.max_shards);
  for (const auto& shard : shards) {
    obs::observe(obs::Histogram::SvcBatchShardOccupancy, shard.size());
  }

  std::vector<JobScratch> scratch(items.size());
  for (auto& s : scratch) {
    s.clean.assign(count, 0);
    s.violated.assign(count, 0);
  }

  const bool stop_at_first = options.stop_at_first;
  // One task per (job, shard): job-major so one worker's contiguous range
  // walks a single job's after-view, keeping its update hot.
  const auto body = [&](std::size_t task_index) {
    const std::size_t job = task_index / shards.size();
    const auto& shard = shards[task_index % shards.size()];
    const BatchItem& item = items[job];
    JobScratch& s = scratch[job];
    const topo::ConfigView after{topo, item.update};
    for (const std::size_t index : shard) {
      if (s.cancelled.load(std::memory_order_relaxed) ||
          (item.cancelled && item.cancelled())) {
        s.cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      if (s.expired.load(std::memory_order_relaxed) || (item.expired && item.expired())) {
        s.expired.store(true, std::memory_order_relaxed);
        return;
      }
      if (stop_at_first && index > s.bound.load(std::memory_order_relaxed)) continue;
      const Obligation& o = obligations[index];
      if (!touches(o, *item.update)) {
        // No rewritten slot on any feasible path: both decision sides
        // coincide, the obligation is trivially consistent.
        s.clean[index] = 1;
        s.skipped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      s.executed.fetch_add(1, std::memory_order_relaxed);
      bool violated = false;
      const auto& before_sets = algebra.before[index];
      for (std::size_t k = 0; k < o.paths.size(); ++k) {
        const net::PacketSet after_set =
            clipped_path_set(after, bundle.paths[o.paths[k]], *o.fec);
        if (!after_set.equals(before_sets[k])) {
          violated = true;
          break;
        }
      }
      if (violated) {
        s.violated[index] = 1;
        lower_bound_to(s.bound, index);
      } else {
        s.clean[index] = 1;
      }
    }
  };

  const std::size_t tasks = items.size() * shards.size();
  const auto start = std::chrono::steady_clock::now();
  if (options.executor != nullptr && options.executor->threads() > 1 && tasks > 1) {
    (void)options.executor->run(tasks, [&](std::size_t) {
      return [&](std::size_t index, const CancellationToken&) {
        body(index);
        return false;  // early exit is per-job (the scratch bound), not global
      };
    });
  } else {
    for (std::size_t t = 0; t < tasks; ++t) body(t);
  }
  const double execute_seconds = seconds_since(start);

  // Canonical witness re-derivation, sequential and deterministic: for each
  // violated obligation (the minimal one under stop_at_first), the first
  // feasible path with a changed region, and that region's first sample.
  std::uint64_t executed_total = 0;
  std::uint64_t skipped_total = 0;
  const topo::ConfigView base{topo};
  for (std::size_t job = 0; job < items.size(); ++job) {
    JobScratch& s = scratch[job];
    BatchOutcome& out = outcomes[job];
    out.cancelled = s.cancelled.load(std::memory_order_relaxed);
    out.deadline_expired = s.expired.load(std::memory_order_relaxed);
    out.clean.assign(count, false);
    for (std::size_t i = 0; i < count; ++i) out.clean[i] = s.clean[i] != 0;

    CheckResult& result = out.result;
    result.obligation_count = count;
    result.fec_count = bundle.plan.stats().fec_count;
    result.path_count = bundle.paths.size();
    result.obligations_executed = s.executed.load(std::memory_order_relaxed);
    const std::size_t skipped = s.skipped.load(std::memory_order_relaxed);
    result.obligations_cancelled = count - result.obligations_executed - skipped;
    result.plan_seconds = 0;  // amortized into the shared algebra build
    result.execute_seconds = execute_seconds;
    executed_total += result.obligations_executed;
    skipped_total += skipped;
    if (out.cancelled || out.deadline_expired) continue;

    const topo::ConfigView after{topo, items[job].update};
    for (std::size_t index = 0; index < count; ++index) {
      if (s.violated[index] == 0) continue;
      const Obligation& o = obligations[index];
      const auto& before_sets = algebra.before[index];
      for (std::size_t k = 0; k < o.paths.size(); ++k) {
        const net::PacketSet after_set =
            clipped_path_set(after, bundle.paths[o.paths[k]], *o.fec);
        const net::PacketSet changed =
            (before_sets[k] - after_set) | (after_set - before_sets[k]);
        if (changed.is_empty()) continue;
        Violation violation;
        violation.witness = changed.sample();
        violation.path_index = o.paths[k];
        violation.decision_before = before_sets[k].contains(violation.witness);
        violation.decision_after = after_set.contains(violation.witness);
        explain_violation(topo, base, after, bundle.paths[o.paths[k]], violation);
        result.consistent = false;
        result.violations.push_back(std::move(violation));
        break;
      }
      if (stop_at_first && !result.consistent) break;
    }
  }
  obs::count(obs::Counter::ObligationsExecuted, executed_total);
  obs::count(obs::Counter::ObligationsSkipped, skipped_total);
  return outcomes;
}

}  // namespace jinjing::core
