#include "core/fixer.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "core/simplify.h"
#include "net/acl_algebra.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "topo/fec.h"

namespace jinjing::core {

namespace {

/// The ACL slots a decision variable must exist for: every hop on any of
/// the given paths.
std::vector<topo::AclSlot> decision_slots(const std::vector<topo::Path>& paths,
                                          const std::vector<std::size_t>& indices) {
  std::vector<topo::AclSlot> slots;
  for (const std::size_t pi : indices) {
    for (const auto& hop : paths[pi].hops()) {
      if (std::find(slots.begin(), slots.end(), hop.slot()) == slots.end()) {
        slots.push_back(hop.slot());
      }
    }
  }
  return slots;
}

/// Seconds since `start`, also advancing `start` to now.
double lap(std::chrono::steady_clock::time_point& start) {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - start).count();
  start = now;
  return elapsed;
}

}  // namespace

Fixer::Fixer(smt::SmtContext& smt, const topo::Topology& topo, const topo::Scope& scope,
             const FixOptions& options)
    : smt_(smt), options_(options), checker_(smt, topo, scope, options.check) {}

FixResult Fixer::fix(const topo::AclUpdate& update, const net::PacketSet& entering,
                     const std::vector<topo::AclSlot>& allowed,
                     const std::vector<lai::ControlIntent>& controls) {
  // Simplification needs only preserve behaviour on traffic that exists;
  // restricting it to `entering` keeps the header-space sets small.
  const net::PacketSet& simplify_universe = entering;
  const std::uint64_t queries_before = smt_.query_count();
  FixResult result;

  // The checker-cached session: a preceding check of the same update (or a
  // re-fix in a candidate loop) shares its incremental Z3 base frame.
  CheckSession& session = checker_.session(update, controls);
  const auto& topo = checker_.topology();

  // Permitted sets of every bound slot's before/after ACL, computed lazily
  // and shared across all neighborhoods (the f / f' of Equation 6).
  std::unordered_map<topo::AclSlot, std::pair<net::PacketSet, net::PacketSet>, topo::AclSlotHash>
      permitted_cache;
  const auto slot_sets = [&](topo::AclSlot slot)
      -> const std::pair<net::PacketSet, net::PacketSet>& {
    const auto it = permitted_cache.find(slot);
    if (it != permitted_cache.end()) return it->second;
    return permitted_cache
        .emplace(slot, std::make_pair(net::permitted_set(session.before().acl(slot)),
                                      net::permitted_set(session.after().acl(slot))))
        .first->second;
  };

  // Phase 1: enumerate all violating neighborhoods. Violations are
  // *discovered* with the cheap per-entry classification; each witness is
  // then enlarged within its global forwarding equivalence class and the
  // agreement region of the decision models (Equation 6). Only edges and
  // ACL slots that can interact with the class are folded — the others
  // cannot split a region contained in it. One global `handled` set both
  // excludes found neighborhoods from later queries and dedupes across
  // entries.
  net::PacketSet handled;
  auto stopwatch = std::chrono::steady_clock::now();
  const VerifyPlan& plan = checker_.plan(entering);
  result.obligations = plan.size();
  for (const auto& obligation : plan.obligations()) {
    // An obligation whose feasible paths traverse no rewritten slot cannot
    // violate (every hop decision is unchanged) — unless control intents
    // redefine the desired decision, in which case everything stays live.
    if (options_.replan_touched_only && controls.empty() && !touches(obligation, update)) {
      ++result.obligations_skipped;
      obs::count(obs::Counter::ObligationsSkipped);
      continue;
    }
    const net::PacketSet& cls = *obligation.fec;

    // Per-class context, built on the first violation.
    std::vector<std::size_t> relevant_edges;
    std::vector<topo::AclSlot> relevant_slots;
    bool context_ready = false;

    while (true) {
      if (result.neighborhoods.size() >= options_.max_neighborhoods) {
        throw std::runtime_error("fix: exceeded max_neighborhoods = " +
                                 std::to_string(options_.max_neighborhoods));
      }
      (void)lap(stopwatch);
      // Only the part of `handled` inside this class matters; trimming it
      // keeps the exclusion encoding small as neighborhoods accumulate.
      std::optional<Violation> violation;
      {
        const obs::TraceSpan span{obs::Span::FixSearch};
        violation = session.find_violation(cls, (handled & cls).compact(), obligation.paths);
      }
      result.search_seconds += lap(stopwatch);
      if (!violation) break;

      if (!context_ready) {
        context_ready = true;
        for (std::size_t ei = 0; ei < topo.edges().size(); ++ei) {
          const auto& edge = topo.edges()[ei];
          if (checker_.scope().contains_interface(topo, edge.from) &&
              checker_.scope().contains_interface(topo, edge.to) &&
              edge.predicate.intersects(cls)) {
            relevant_edges.push_back(ei);
          }
        }
        relevant_slots = decision_slots(checker_.paths(), checker_.feasible_paths(cls));
      }

      // seed ∩ [h]_FEC ∩ agreement region, folded from the class.
      const obs::TraceSpan enlarge_span{obs::Span::FixEnlarge};
      const net::Packet& h = violation->witness;
      net::PacketSet region = cls;
      for (const auto ei : relevant_edges) {
        const auto& pred = topo.edges()[ei].predicate;
        region = pred.contains(h) ? (region & pred) : (region - pred);
        region.compact();
      }
      for (const auto slot : relevant_slots) {
        const auto& [before_set, after_set] = slot_sets(slot);
        for (const auto* f : {&before_set, &after_set}) {
          region = f->contains(h) ? (region & *f) : (region - *f);
          region.compact();
        }
      }

      handled = (handled | region).compact();
      result.enlarge_seconds += lap(stopwatch);
      result.neighborhoods.push_back(NeighborhoodReport{std::move(region), h, true});
    }
  }

  // Phase 2: solve a placement problem per neighborhood.
  (void)lap(stopwatch);
  std::unordered_map<topo::AclSlot, std::vector<net::AclRule>, topo::AclSlotHash> prepends;
  for (auto& report : result.neighborhoods) {
    const obs::TraceSpan place_span{obs::Span::FixPlace};
    const net::PacketSet& neighborhood = report.set;
    const net::Packet& h = report.representative;
    const auto feasible = checker_.feasible_paths(neighborhood);
    const auto slots = decision_slots(checker_.paths(), feasible);

    auto opt = smt_.make_optimize();
    z3::context& ctx = smt_.ctx();
    std::unordered_map<topo::AclSlot, z3::expr, topo::AclSlotHash> decision;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      decision.emplace(slots[i], ctx.bool_const(("D_" + std::to_string(i)).c_str()));
    }

    // Every feasible path reproduces the desired decision (Equation 7/3).
    for (const std::size_t pi : feasible) {
      const auto& path = checker_.paths()[pi];
      const bool original = topo::path_permits(session.before(), path, h);
      const bool desired = desired_decision(controls, path, h, original);
      z3::expr conj = ctx.bool_val(true);
      for (const auto& hop : path.hops()) conj = conj && decision.at(hop.slot());
      opt.add(conj == ctx.bool_val(desired));
    }

    // Placement constraints and the minimal-change objective.
    const auto allowed_contains = [&allowed](topo::AclSlot slot) {
      return std::find(allowed.begin(), allowed.end(), slot) != allowed.end();
    };
    for (const auto slot : slots) {
      const bool updated_decision = session.after().acl(slot).permits(h);
      const z3::expr keep = decision.at(slot) == ctx.bool_val(updated_decision);
      if (allowed_contains(slot)) {
        opt.add_soft(keep, 1);
      } else {
        opt.add(keep);
      }
    }

    const auto model = smt_.check_optimize(opt);
    if (!model) {
      report.solved = false;
      result.success = false;
      continue;
    }

    for (const auto slot : slots) {
      const bool updated_decision = session.after().acl(slot).permits(h);
      const bool solved_decision =
          z3::eq(model->eval(decision.at(slot), true), ctx.bool_val(true));
      if (solved_decision == updated_decision) continue;
      const auto action = solved_decision ? net::Action::Permit : net::Action::Deny;
      for (const auto& rule : net::rules_for_set(report.set, action)) {
        prepends[slot].push_back(rule);
      }
    }
  }

  result.place_seconds = lap(stopwatch);

  // Assemble the repaired update.
  const obs::TraceSpan assemble_span{obs::Span::FixAssemble};
  result.fixed_update = update;
  for (const auto& [slot, rules] : prepends) {
    net::Acl acl = session.after().acl(slot);
    acl.prepend(rules);
    if (options_.simplify_result) acl = simplify_on(acl, simplify_universe);
    result.fixed_update.insert_or_assign(slot, std::move(acl));
    result.actions.push_back(FixAction{slot, rules});
  }
  std::sort(result.actions.begin(), result.actions.end(),
            [](const FixAction& a, const FixAction& b) {
              return a.slot.iface != b.slot.iface ? a.slot.iface < b.slot.iface
                                                  : a.slot.dir < b.slot.dir;
            });

  result.assemble_seconds = lap(stopwatch);
  result.smt_queries = smt_.query_count() - queries_before;
  return result;
}

}  // namespace jinjing::core
