// Five-dimensional hyperrectangles over the packet-header space.
//
// Every ACL rule match (prefixes + port ranges + proto) denotes a hypercube;
// unions of hypercubes (PacketSet) are closed under the boolean operations
// the verification algorithms need.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/interval.h"
#include "net/packet.h"

namespace jinjing::net {

/// Unsigned 128-bit counter for header-space volumes (the full space has
/// 2^104 points, which overflows 64 bits).
using Volume = unsigned __int128;

/// An axis-aligned box: one closed interval per header field. Never empty.
class HyperCube {
 public:
  /// Constructs the full header space.
  HyperCube();

  explicit HyperCube(std::array<Interval, kNumFields> ivs) : ivs_(ivs) {}

  /// The cube containing exactly one packet.
  [[nodiscard]] static HyperCube point(const Packet& p);

  [[nodiscard]] const Interval& interval(Field f) const {
    return ivs_[static_cast<std::size_t>(f)];
  }
  void set_interval(Field f, Interval iv) { ivs_[static_cast<std::size_t>(f)] = iv; }

  [[nodiscard]] bool contains(const Packet& p) const;
  [[nodiscard]] bool contains(const HyperCube& other) const;
  [[nodiscard]] bool overlaps(const HyperCube& other) const;

  [[nodiscard]] Volume volume() const;

  /// The lexicographically-smallest packet in the cube.
  [[nodiscard]] Packet min_packet() const;

  friend bool operator==(const HyperCube&, const HyperCube&) = default;

 private:
  std::array<Interval, kNumFields> ivs_;
};

/// Intersection, or nullopt when the cubes are disjoint.
[[nodiscard]] std::optional<HyperCube> intersect(const HyperCube& a, const HyperCube& b);

/// a \ b as a list of pairwise-disjoint cubes (at most 2 * kNumFields).
[[nodiscard]] std::vector<HyperCube> subtract(const HyperCube& a, const HyperCube& b);

[[nodiscard]] std::string to_string(const HyperCube& c);

}  // namespace jinjing::net
