#include "net/acl.h"

#include <sstream>

namespace jinjing::net {

std::string_view to_string(Action a) { return a == Action::Permit ? "permit" : "deny"; }

bool Match::matches(const Packet& p) const {
  return src.contains(p.sip) && dst.contains(p.dip) && sport.contains(p.sport) &&
         dport.contains(p.dport) && proto.contains(p.proto);
}

bool Match::is_any() const {
  return src.is_any() && dst.is_any() && sport.is_any() && dport.is_any() && proto.is_any();
}

HyperCube Match::cube() const {
  HyperCube c;
  c.set_interval(Field::SrcIp, src.interval());
  c.set_interval(Field::DstIp, dst.interval());
  c.set_interval(Field::SrcPort, sport.interval());
  c.set_interval(Field::DstPort, dport.interval());
  c.set_interval(Field::Proto, proto.interval());
  return c;
}

bool Match::overlaps(const Match& other) const { return cube().overlaps(other.cube()); }

std::string to_string(const Match& m) {
  if (m.is_any()) return "all";
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += " ";
    out += part;
  };
  if (!m.src.is_any()) append("src " + to_string(m.src));
  if (!m.dst.is_any()) append("dst " + to_string(m.dst));
  if (!m.sport.is_any()) append("sport " + to_string(m.sport));
  if (!m.dport.is_any()) append("dport " + to_string(m.dport));
  if (!m.proto.is_any()) append("proto " + to_string(m.proto));
  return out;
}

std::string to_string(const AclRule& r) {
  return std::string(to_string(r.action)) + " " + to_string(r.match);
}

AclRule parse_rule(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string word;
  if (!(in >> word)) throw ParseError("empty ACL rule");

  AclRule rule;
  if (word == "permit") {
    rule.action = Action::Permit;
  } else if (word == "deny") {
    rule.action = Action::Deny;
  } else {
    throw ParseError("ACL rule must start with permit/deny: '" + std::string(text) + "'");
  }

  while (in >> word) {
    if (word == "all" || word == "any") continue;
    std::string value;
    if (!(in >> value)) throw ParseError("missing value after '" + word + "' in ACL rule");
    if (word == "src") {
      rule.match.src = parse_prefix(value);
    } else if (word == "dst") {
      rule.match.dst = parse_prefix(value);
    } else if (word == "sport") {
      rule.match.sport = parse_port_range(value);
    } else if (word == "dport") {
      rule.match.dport = parse_port_range(value);
    } else if (word == "proto") {
      rule.match.proto = parse_proto(value);
    } else {
      throw ParseError("unknown ACL match keyword: '" + word + "'");
    }
  }
  return rule;
}

Acl Acl::parse(const std::vector<std::string>& rule_texts, Action default_action) {
  std::vector<AclRule> rules;
  rules.reserve(rule_texts.size());
  for (const auto& text : rule_texts) rules.push_back(parse_rule(text));
  return Acl{std::move(rules), default_action};
}

void Acl::prepend(const std::vector<AclRule>& rules) {
  rules_.insert(rules_.begin(), rules.begin(), rules.end());
}

Action Acl::evaluate(const Packet& p) const {
  for (const auto& rule : rules_) {
    if (rule.match.matches(p)) return rule.action;
  }
  return default_action_;
}

std::optional<std::size_t> Acl::first_match(const Packet& p) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].match.matches(p)) return i;
  }
  return std::nullopt;
}

std::string to_string(const Acl& acl) {
  std::string out;
  for (const auto& rule : acl.rules()) {
    out += to_string(rule);
    out += "\n";
  }
  out += std::string(to_string(acl.default_action())) + " all (default)\n";
  return out;
}

}  // namespace jinjing::net
