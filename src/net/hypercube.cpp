#include "net/hypercube.h"

namespace jinjing::net {

HyperCube::HyperCube() {
  for (const Field f : kAllFields) {
    ivs_[static_cast<std::size_t>(f)] = Interval::full(field_bits(f));
  }
}

HyperCube HyperCube::point(const Packet& p) {
  HyperCube c;
  for (const Field f : kAllFields) c.set_interval(f, Interval::point(p.field(f)));
  return c;
}

bool HyperCube::contains(const Packet& p) const {
  for (const Field f : kAllFields) {
    if (!interval(f).contains(p.field(f))) return false;
  }
  return true;
}

bool HyperCube::contains(const HyperCube& other) const {
  for (std::size_t i = 0; i < kNumFields; ++i) {
    if (!ivs_[i].contains(other.ivs_[i])) return false;
  }
  return true;
}

bool HyperCube::overlaps(const HyperCube& other) const {
  for (std::size_t i = 0; i < kNumFields; ++i) {
    if (!ivs_[i].overlaps(other.ivs_[i])) return false;
  }
  return true;
}

Volume HyperCube::volume() const {
  Volume v = 1;
  for (const auto& iv : ivs_) v *= iv.size();
  return v;
}

Packet HyperCube::min_packet() const {
  Packet p;
  for (const Field f : kAllFields) p.set_field(f, interval(f).lo);
  return p;
}

std::optional<HyperCube> intersect(const HyperCube& a, const HyperCube& b) {
  std::array<Interval, kNumFields> ivs;
  for (const Field f : kAllFields) {
    const auto iv = intersect(a.interval(f), b.interval(f));
    if (!iv) return std::nullopt;
    ivs[static_cast<std::size_t>(f)] = *iv;
  }
  return HyperCube{ivs};
}

std::vector<HyperCube> subtract(const HyperCube& a, const HyperCube& b) {
  if (!a.overlaps(b)) return {a};

  // Carve off the parts of `a` outside `b`, one dimension at a time. The
  // remainder shrinks toward a ∩ b and is dropped at the end.
  std::vector<HyperCube> pieces;
  HyperCube rest = a;
  for (const Field f : kAllFields) {
    const auto diff = subtract(rest.interval(f), b.interval(f));
    if (diff.below) {
      HyperCube piece = rest;
      piece.set_interval(f, *diff.below);
      pieces.push_back(piece);
    }
    if (diff.above) {
      HyperCube piece = rest;
      piece.set_interval(f, *diff.above);
      pieces.push_back(piece);
    }
    const auto middle = intersect(rest.interval(f), b.interval(f));
    if (!middle) return pieces;  // defensive: cannot happen since a overlaps b
    rest.set_interval(f, *middle);
  }
  return pieces;
}

std::string to_string(const HyperCube& c) {
  std::string out = "{";
  bool first = true;
  for (const Field f : kAllFields) {
    const Interval full = Interval::full(field_bits(f));
    if (c.interval(f) == full) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string(field_name(f)) + "=" + to_string(c.interval(f));
  }
  if (first) out += "*";
  out += "}";
  return out;
}

std::string to_string(const Packet& p) {
  return "(" + to_string(p.sip) + " -> " + to_string(p.dip) + ", sport=" + std::to_string(p.sport) +
         ", dport=" + std::to_string(p.dport) + ", proto=" + std::to_string(p.proto) + ")";
}

Packet packet_to(Ipv4 dst) {
  Packet p;
  p.dip = dst;
  return p;
}

Packet packet_to(std::string_view dst_ip) { return packet_to(parse_ipv4(dst_ip)); }

}  // namespace jinjing::net
