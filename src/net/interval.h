// Closed integer intervals over unsigned 64-bit values.
//
// Intervals are the one-dimensional building block of the exact header-space
// engine: every matchable header field (IPv4 address under a prefix, port
// under a range, protocol number) denotes a closed interval [lo, hi].
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

namespace jinjing::net {

/// A closed interval [lo, hi] of unsigned values. Invariant: lo <= hi.
/// Empty intervals are represented by std::optional<Interval> == nullopt
/// at API boundaries; an Interval object itself is always non-empty.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  constexpr Interval() = default;
  constexpr Interval(std::uint64_t lo_, std::uint64_t hi_) : lo(lo_), hi(hi_) {}

  /// The single-point interval [v, v].
  [[nodiscard]] static constexpr Interval point(std::uint64_t v) { return {v, v}; }

  /// The full domain of a field that is `bits` wide: [0, 2^bits - 1].
  [[nodiscard]] static constexpr Interval full(unsigned bits) {
    return {0, bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1};
  }

  [[nodiscard]] constexpr bool contains(std::uint64_t v) const { return lo <= v && v <= hi; }

  [[nodiscard]] constexpr bool contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  [[nodiscard]] constexpr bool overlaps(const Interval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }

  /// Number of values in the interval. Saturates only for the full 64-bit
  /// domain, which none of our (<= 32-bit) fields reach.
  [[nodiscard]] constexpr std::uint64_t size() const { return hi - lo + 1; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// Intersection of two intervals, or nullopt when disjoint.
[[nodiscard]] constexpr std::optional<Interval> intersect(const Interval& a, const Interval& b) {
  const std::uint64_t lo = std::max(a.lo, b.lo);
  const std::uint64_t hi = std::min(a.hi, b.hi);
  if (lo > hi) return std::nullopt;
  return Interval{lo, hi};
}

/// The (up to two) pieces of `a` not covered by `b`.
struct IntervalDifference {
  std::optional<Interval> below;  // part of a strictly below b
  std::optional<Interval> above;  // part of a strictly above b
};

[[nodiscard]] constexpr IntervalDifference subtract(const Interval& a, const Interval& b) {
  IntervalDifference out;
  if (!a.overlaps(b)) {
    out.below = a;
    return out;
  }
  if (a.lo < b.lo) out.below = Interval{a.lo, b.lo - 1};
  if (a.hi > b.hi) out.above = Interval{b.hi + 1, a.hi};
  return out;
}

[[nodiscard]] std::string to_string(const Interval& iv);

}  // namespace jinjing::net
