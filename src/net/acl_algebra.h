// Set-based ACL algebra: compiling an ACL's decision model into an exact
// permitted PacketSet, plus exact equivalence and rule-shape helpers.
//
// This is the header-space dual of the SMT decision-model encoding; the two
// are cross-validated in tests.
#pragma once

#include <vector>

#include "net/acl.h"
#include "net/packet_set.h"

namespace jinjing::net {

/// The exact set of packets the ACL permits (first-match semantics).
[[nodiscard]] PacketSet permitted_set(const Acl& acl);

/// The exact subset of `clip` the ACL permits. Equivalent to
/// `permitted_set(acl) & clip`, but the first-match walk keeps every
/// intermediate set inside the clip region, so the cube counts stay
/// proportional to `clip` (a narrow FEC) rather than to the whole ACL —
/// the primitive behind the service's set-algebra batch checker.
[[nodiscard]] PacketSet permitted_within(const Acl& acl, const PacketSet& clip);

/// The set of packets matched by rule `index` *after* first-match shadowing
/// by earlier rules — i.e. the packets whose decision this rule determines.
[[nodiscard]] PacketSet effective_match_set(const Acl& acl, std::size_t index);

/// Decision-model equivalence: both ACLs permit exactly the same packets.
[[nodiscard]] bool equivalent(const Acl& a, const Acl& b);

/// Decision-model equivalence restricted to a universe of packets.
[[nodiscard]] bool equivalent_on(const Acl& a, const Acl& b, const PacketSet& universe);

/// Expresses a packet set as ACL rules with the given action, one per cube.
/// Cubes whose intervals are not prefix/range shaped are split into
/// prefix-aligned rules, so the output is always well-formed ACL syntax.
[[nodiscard]] std::vector<AclRule> rules_for_set(const PacketSet& set, Action action);

/// Converts one hypercube into match structs (possibly several, because an
/// arbitrary IP interval may need multiple prefixes to cover).
[[nodiscard]] std::vector<Match> matches_for_cube(const HyperCube& cube);

}  // namespace jinjing::net
