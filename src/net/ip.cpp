#include "net/ip.h"

#include <charconv>

namespace jinjing::net {
namespace {

std::uint64_t parse_uint(std::string_view text, std::uint64_t max, std::string_view what) {
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value > max) {
    throw ParseError("invalid " + std::string(what) + ": '" + std::string(text) + "'");
  }
  return value;
}

/// Mask with the top `len` bits set.
constexpr std::uint32_t prefix_mask(std::uint8_t len) {
  return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
}

}  // namespace

std::string to_string(const Interval& iv) {
  return "[" + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) + "]";
}

Ipv4 parse_ipv4(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t start = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const std::size_t dot = (octet < 3) ? text.find('.', start) : text.size();
    if (dot == std::string_view::npos) throw ParseError("invalid IPv4: '" + std::string(text) + "'");
    const auto part = text.substr(start, dot - start);
    value = (value << 8) | static_cast<std::uint32_t>(parse_uint(part, 255, "IPv4 octet"));
    start = dot + 1;
  }
  return Ipv4{value};
}

std::string to_string(const Ipv4& ip) {
  return std::to_string((ip.value >> 24) & 0xFF) + "." + std::to_string((ip.value >> 16) & 0xFF) +
         "." + std::to_string((ip.value >> 8) & 0xFF) + "." + std::to_string(ip.value & 0xFF);
}

Prefix::Prefix(Ipv4 a, std::uint8_t l) : addr(a.value & prefix_mask(l)), len(l) {
  if (l > 32) throw ParseError("prefix length out of range: " + std::to_string(l));
}

bool Prefix::contains(Ipv4 ip) const { return (ip.value & prefix_mask(len)) == addr.value; }

bool Prefix::contains(const Prefix& other) const {
  return len <= other.len && contains(other.addr);
}

bool Prefix::overlaps(const Prefix& other) const {
  return contains(other) || other.contains(*this);
}

Interval Prefix::interval() const {
  const std::uint32_t mask = prefix_mask(len);
  return {addr.value, addr.value | ~mask};
}

Prefix parse_prefix(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Prefix::host(parse_ipv4(text));
  const Ipv4 addr = parse_ipv4(text.substr(0, slash));
  const auto len = static_cast<std::uint8_t>(parse_uint(text.substr(slash + 1), 32, "prefix length"));
  return Prefix{addr, len};
}

std::string to_string(const Prefix& p) {
  return to_string(p.addr) + "/" + std::to_string(p.len);
}

PortRange::PortRange(std::uint16_t l, std::uint16_t h) : lo(l), hi(h) {
  if (l > h) throw ParseError("inverted port range");
}

PortRange parse_port_range(std::string_view text) {
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    const auto p = static_cast<std::uint16_t>(parse_uint(text, 0xFFFF, "port"));
    return PortRange::single(p);
  }
  const auto lo = static_cast<std::uint16_t>(parse_uint(text.substr(0, dash), 0xFFFF, "port"));
  const auto hi = static_cast<std::uint16_t>(parse_uint(text.substr(dash + 1), 0xFFFF, "port"));
  return PortRange{lo, hi};
}

std::string to_string(const PortRange& r) {
  if (r.is_any()) return "any";
  if (r.lo == r.hi) return std::to_string(r.lo);
  return std::to_string(r.lo) + "-" + std::to_string(r.hi);
}

ProtoMatch parse_proto(std::string_view text) {
  if (text == "any" || text == "ip") return ProtoMatch::any();
  if (text == "tcp") return ProtoMatch::tcp();
  if (text == "udp") return ProtoMatch::udp();
  if (text == "icmp") return ProtoMatch{1};
  return ProtoMatch{static_cast<std::uint8_t>(parse_uint(text, 255, "protocol"))};
}

std::string to_string(const ProtoMatch& m) {
  if (m.is_any()) return "any";
  switch (*m.proto) {
    case 1: return "icmp";
    case 6: return "tcp";
    case 17: return "udp";
    default: return std::to_string(*m.proto);
  }
}

}  // namespace jinjing::net
