// Access Control Lists: ordered permit/deny rules with first-match-wins
// semantics, as described in §2.1 of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/hypercube.h"
#include "net/ip.h"
#include "net/packet.h"

namespace jinjing::net {

enum class Action : std::uint8_t { Permit, Deny };

[[nodiscard]] constexpr Action negate(Action a) {
  return a == Action::Permit ? Action::Deny : Action::Permit;
}

[[nodiscard]] std::string_view to_string(Action a);

/// The 5-tuple match of an ACL rule. Each field defaults to "any".
struct Match {
  Prefix src;
  Prefix dst;
  PortRange sport;
  PortRange dport;
  ProtoMatch proto;

  [[nodiscard]] static Match any() { return {}; }
  [[nodiscard]] static Match dst_prefix(const Prefix& p) {
    Match m;
    m.dst = p;
    return m;
  }
  [[nodiscard]] static Match src_prefix(const Prefix& p) {
    Match m;
    m.src = p;
    return m;
  }

  [[nodiscard]] bool matches(const Packet& p) const;
  [[nodiscard]] bool is_any() const;

  /// The hypercube of packets this match denotes (m_k in the paper).
  [[nodiscard]] HyperCube cube() const;

  /// m_k ∧ m_k' satisfiable — Definition 4.2's overlap test.
  [[nodiscard]] bool overlaps(const Match& other) const;

  friend bool operator==(const Match&, const Match&) = default;
};

[[nodiscard]] std::string to_string(const Match& m);

/// One ACL rule: action + match.
struct AclRule {
  Action action = Action::Permit;
  Match match;

  [[nodiscard]] static AclRule permit(const Match& m) { return {Action::Permit, m}; }
  [[nodiscard]] static AclRule deny(const Match& m) { return {Action::Deny, m}; }
  [[nodiscard]] static AclRule permit_all() { return {Action::Permit, Match::any()}; }
  [[nodiscard]] static AclRule deny_all() { return {Action::Deny, Match::any()}; }

  friend bool operator==(const AclRule&, const AclRule&) = default;
};

[[nodiscard]] std::string to_string(const AclRule& r);

/// Parses a rule like "deny dst 1.0.0.0/8", "permit src 10.0.0.0/24 dst
/// 1.2.0.0/16 dport 80 proto tcp", or "permit all". Throws ParseError.
[[nodiscard]] AclRule parse_rule(std::string_view text);

/// An ACL: an ordered rule list plus a default action for packets that fall
/// off the end. The paper's examples use an explicit trailing "permit all";
/// both styles evaluate identically here.
class Acl {
 public:
  Acl() = default;
  explicit Acl(std::vector<AclRule> rules, Action default_action = Action::Permit)
      : rules_(std::move(rules)), default_action_(default_action) {}

  /// The empty "permit everything" ACL — what an unconfigured interface does.
  [[nodiscard]] static Acl permit_all() { return Acl{}; }

  /// Builds an ACL by parsing one rule per line/element.
  [[nodiscard]] static Acl parse(const std::vector<std::string>& rule_texts,
                                 Action default_action = Action::Permit);

  [[nodiscard]] const std::vector<AclRule>& rules() const { return rules_; }
  [[nodiscard]] Action default_action() const { return default_action_; }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  void push_back(AclRule r) { rules_.push_back(r); }

  /// Inserts rules at the top (highest priority) — how fixing plans land.
  void prepend(const std::vector<AclRule>& rules);

  /// First-match evaluation: the decision model f_ξ(h) of §3.3.
  [[nodiscard]] Action evaluate(const Packet& p) const;
  [[nodiscard]] bool permits(const Packet& p) const { return evaluate(p) == Action::Permit; }

  /// Index of the first rule matching p, or nullopt if only the default
  /// applies. Used by the §5.4 sequence encoding.
  [[nodiscard]] std::optional<std::size_t> first_match(const Packet& p) const;

  friend bool operator==(const Acl&, const Acl&) = default;

 private:
  std::vector<AclRule> rules_;
  Action default_action_ = Action::Permit;
};

[[nodiscard]] std::string to_string(const Acl& acl);

}  // namespace jinjing::net
