#include "net/bdd.h"

#include <algorithm>
#include <stdexcept>

#include "obs/stats.h"

namespace jinjing::net {

namespace {

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (std::uint64_t{a} << 32) | b;
}

}  // namespace

BddManager::BddManager() {
  nodes_.push_back(NodeData{kBits, kFalse, kFalse});  // 0: false terminal
  nodes_.push_back(NodeData{kBits, kTrue, kTrue});    // 1: true terminal
}

BddManager::Node BddManager::make(unsigned level, Node lo, Node hi) {
  if (lo == hi) return lo;  // reduction
  // Disjoint bit fields: level (7 bits) | lo (28) | hi (28).
  if ((lo >> 28) != 0 || (hi >> 28) != 0) {
    throw std::runtime_error("BddManager: node budget (2^28) exceeded");
  }
  const std::uint64_t key =
      (std::uint64_t{level} << 56) | (std::uint64_t{lo} << 28) | std::uint64_t{hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const Node node = static_cast<Node>(nodes_.size());
  nodes_.push_back(NodeData{level, lo, hi});
  unique_.emplace(key, node);
  obs::gauge_max(obs::Gauge::BddNodes, nodes_.size());
  return node;
}

BddManager::Node BddManager::var(unsigned level) { return make(level, kFalse, kTrue); }

BddManager::Node BddManager::land(Node a, Node b) {
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a > b) std::swap(a, b);  // canonical memo key

  const std::uint64_t key = pair_key(a, b);
  const auto it = and_memo_.find(key);
  if (it != and_memo_.end()) {
    obs::count(obs::Counter::BddMemoHits);
    return it->second;
  }
  obs::count(obs::Counter::BddMemoMisses);

  // Copy: recursive make() calls may reallocate nodes_.
  const NodeData na = nodes_[a];
  const NodeData nb = nodes_[b];
  const unsigned level = std::min(na.level, nb.level);
  const Node a_lo = na.level == level ? na.lo : a;
  const Node a_hi = na.level == level ? na.hi : a;
  const Node b_lo = nb.level == level ? nb.lo : b;
  const Node b_hi = nb.level == level ? nb.hi : b;
  const Node result = make(level, land(a_lo, b_lo), land(a_hi, b_hi));
  and_memo_.emplace(key, result);
  return result;
}

BddManager::Node BddManager::lnot(Node a) {
  if (a == kFalse) return kTrue;
  if (a == kTrue) return kFalse;
  const auto it = not_memo_.find(a);
  if (it != not_memo_.end()) {
    obs::count(obs::Counter::BddMemoHits);
    return it->second;
  }
  obs::count(obs::Counter::BddMemoMisses);
  const NodeData n = nodes_[a];  // copy: recursion may reallocate nodes_
  const Node result = make(n.level, lnot(n.lo), lnot(n.hi));
  not_memo_.emplace(a, result);
  return result;
}

BddManager::Node BddManager::lor(Node a, Node b) { return lnot(land(lnot(a), lnot(b))); }

BddManager::Node BddManager::geq(unsigned first_bit, unsigned bits, std::uint64_t bound) {
  // x >= bound, built from the least-significant bit (deepest level) up so
  // every node's children sit at strictly greater levels.
  Node result = kTrue;  // suffix comparison over zero bits: equal => >=
  for (unsigned i = 0; i < bits; ++i) {
    const unsigned level = first_bit + bits - 1 - i;  // LSB = deepest level
    const bool bound_bit = ((bound >> i) & 1) != 0;
    if (bound_bit) {
      // x_bit must be 1 and the lower bits >=; x_bit = 0 means x < bound.
      result = make(level, kFalse, result);
    } else {
      // x_bit = 1 makes x > bound regardless; 0 defers to the lower bits.
      result = make(level, result, kTrue);
    }
  }
  return result;
}

BddManager::Node BddManager::leq(unsigned first_bit, unsigned bits, std::uint64_t bound) {
  Node result = kTrue;
  for (unsigned i = 0; i < bits; ++i) {
    const unsigned level = first_bit + bits - 1 - i;
    const bool bound_bit = ((bound >> i) & 1) != 0;
    if (bound_bit) {
      result = make(level, kTrue, result);
    } else {
      result = make(level, result, kFalse);
    }
  }
  return result;
}

BddManager::Node BddManager::interval(unsigned first_bit, unsigned bits, std::uint64_t lo,
                                      std::uint64_t hi) {
  Node result = kTrue;
  if (lo > 0) result = land(result, geq(first_bit, bits, lo));
  const std::uint64_t full = bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  if (hi < full) result = land(result, leq(first_bit, bits, hi));
  return result;
}

BddManager::Node BddManager::from_cube(const HyperCube& cube) {
  Node result = kTrue;
  for (const Field f : kAllFields) {
    const auto& iv = cube.interval(f);
    result = land(result, interval(bdd_field_offset(f), field_bits(f), iv.lo, iv.hi));
    if (result == kFalse) break;
  }
  return result;
}

BddManager::Node BddManager::from_set(const PacketSet& set) {
  Node result = kFalse;
  for (const auto& cube : set.cubes()) result = lor(result, from_cube(cube));
  return result;
}

BddManager::Node BddManager::from_packet(const Packet& p) {
  return from_cube(HyperCube::point(p));
}

BddManager::Node BddManager::exists(Node a, unsigned first_bit, unsigned bits) {
  const unsigned end = first_bit + bits;
  std::unordered_map<Node, Node> memo;
  const auto rec = [&](auto&& self, Node at) -> Node {
    if (at == kFalse || at == kTrue) return at;
    const auto it = memo.find(at);
    if (it != memo.end()) return it->second;
    const NodeData n = nodes_[at];  // copy: make()/lor() may reallocate nodes_
    const Node lo = self(self, n.lo);
    const Node hi = self(self, n.hi);
    const Node result =
        (n.level >= first_bit && n.level < end) ? lor(lo, hi) : make(n.level, lo, hi);
    memo.emplace(at, result);
    return result;
  };
  return rec(rec, a);
}

namespace {

/// Expands the bit constraint {x : (x & mask) == value} over a `bits`-wide
/// field into disjoint intervals. A mask whose fixed bits form a contiguous
/// top prefix denotes one interval; otherwise the highest free bit (which
/// then has a fixed bit below it) is split and both halves recurse.
void expand_intervals(std::uint64_t mask, std::uint64_t value, unsigned bits,
                      std::vector<Interval>& out) {
  const std::uint64_t full = bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  if (mask == 0 || ((mask | (mask - 1)) & full) == full) {
    out.push_back(Interval{value, value | (~mask & full)});
    return;
  }
  unsigned h = bits - 1;
  while (((mask >> h) & 1) != 0) --h;
  const std::uint64_t bit = std::uint64_t{1} << h;
  expand_intervals(mask | bit, value, bits, out);
  expand_intervals(mask | bit, value | bit, bits, out);
}

struct PathConstraint {
  std::array<std::uint64_t, kNumFields> mask{};   // fixed decision bits per field
  std::array<std::uint64_t, kNumFields> value{};  // their required values
};

/// Decodes a global bit level into (field, in-field bit position).
std::pair<Field, unsigned> decode_level(unsigned level) {
  for (const Field f : kAllFields) {
    const unsigned offset = bdd_field_offset(f);
    if (level >= offset && level < offset + field_bits(f)) {
      return {f, field_bits(f) - 1 - (level - offset)};
    }
  }
  return {Field::Proto, 0};  // unreachable for in-range levels
}

}  // namespace

PacketSet BddManager::to_set(Node a) const {
  std::vector<HyperCube> cubes;
  PathConstraint path;
  const auto emit = [&]() {
    // Cross-product of each field's interval decomposition.
    std::array<std::vector<Interval>, kNumFields> field_ivs;
    for (const Field f : kAllFields) {
      const auto i = static_cast<std::size_t>(f);
      expand_intervals(path.mask[i], path.value[i], field_bits(f), field_ivs[i]);
    }
    std::array<std::size_t, kNumFields> pick{};
    while (true) {
      HyperCube cube;
      for (const Field f : kAllFields) {
        const auto i = static_cast<std::size_t>(f);
        cube.set_interval(f, field_ivs[i][pick[i]]);
      }
      cubes.push_back(cube);
      std::size_t d = 0;
      for (; d < kNumFields; ++d) {
        if (++pick[d] < field_ivs[d].size()) break;
        pick[d] = 0;
      }
      if (d == kNumFields) break;
    }
  };
  const auto walk = [&](auto&& self, Node at) -> void {
    if (at == kFalse) return;
    if (at == kTrue) {
      emit();
      return;
    }
    const NodeData& n = nodes_[at];
    const auto [field, position] = decode_level(n.level);
    const auto i = static_cast<std::size_t>(field);
    const std::uint64_t bit = std::uint64_t{1} << position;
    path.mask[i] |= bit;
    self(self, n.lo);
    path.value[i] |= bit;
    self(self, n.hi);
    path.mask[i] &= ~bit;
    path.value[i] &= ~bit;
  };
  walk(walk, a);
  return PacketSet::from_disjoint_cubes(std::move(cubes));
}

bool BddManager::contains(Node set, const Packet& p) const {
  Node at = set;
  while (at != kFalse && at != kTrue) {
    const auto& n = nodes_[at];
    // Decode the bit: which field, which position.
    unsigned level = n.level;
    Field field = Field::Proto;
    for (const Field f : kAllFields) {
      const unsigned offset = bdd_field_offset(f);
      if (level >= offset && level < offset + field_bits(f)) {
        field = f;
        break;
      }
    }
    const unsigned position = field_bits(field) - 1 - (level - bdd_field_offset(field));
    const bool bit = ((p.field(field) >> position) & 1) != 0;
    at = bit ? n.hi : n.lo;
  }
  return at == kTrue;
}

std::optional<Packet> BddManager::sample(Node a) const {
  if (a == kFalse) return std::nullopt;
  Packet p;  // all-zero baseline
  for (const Field f : kAllFields) p.set_field(f, 0);
  p.proto = 0;

  Node at = a;
  while (at != kTrue) {
    const auto& n = nodes_[at];
    const bool take_hi = n.lo == kFalse;
    if (take_hi) {
      // Set the decision bit in the packet.
      unsigned level = n.level;
      for (const Field f : kAllFields) {
        const unsigned offset = bdd_field_offset(f);
        if (level >= offset && level < offset + field_bits(f)) {
          const unsigned position = field_bits(f) - 1 - (level - offset);
          p.set_field(f, p.field(f) | (std::uint64_t{1} << position));
          break;
        }
      }
      at = n.hi;
    } else {
      at = n.lo;
    }
  }
  return p;
}

Volume BddManager::volume(Node a) const {
  // Memoized satisfying-count, scaled by skipped levels.
  std::unordered_map<Node, Volume> memo;
  const auto count = [&](auto&& self, Node node) -> Volume {
    if (node == kFalse) return 0;
    if (node == kTrue) return Volume{1};
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const auto& n = nodes_[node];
    const auto scale = [&](Node child) -> Volume {
      const unsigned child_level = nodes_[child].level;
      const Volume sub = self(self, child);
      return sub << (child_level - n.level - 1);
    };
    const Volume total = scale(n.lo) + scale(n.hi);
    memo.emplace(node, total);
    return total;
  };
  const Volume at_root = count(count, a);
  return at_root << nodes_[a].level;
}

}  // namespace jinjing::net
