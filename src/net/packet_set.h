// Exact header-space sets: unions of pairwise-disjoint hypercubes.
//
// PacketSet is the second, independent implementation of packet semantics in
// this repository (the first being the SMT encoding). It backs forwarding
// predicates, equivalence-class derivation (FEC/AEC/DEC), neighborhood
// enlargement, ACL equivalence proofs, and all cross-validation in tests.
#pragma once

#include <string>
#include <vector>

#include "net/hypercube.h"

namespace jinjing::net {

class PacketSet {
 public:
  /// The empty set.
  PacketSet() = default;

  /// The set of exactly one cube.
  explicit PacketSet(const HyperCube& cube) : cubes_{cube} {}

  [[nodiscard]] static PacketSet empty() { return {}; }

  /// Adopts `cubes` directly. Precondition: the cubes are pairwise disjoint
  /// (the class invariant); used by exact converters (e.g. BddManager::
  /// to_set) whose construction guarantees disjointness.
  [[nodiscard]] static PacketSet from_disjoint_cubes(std::vector<HyperCube> cubes) {
    PacketSet out;
    out.cubes_ = std::move(cubes);
    return out;
  }
  [[nodiscard]] static PacketSet all() { return PacketSet{HyperCube{}}; }
  [[nodiscard]] static PacketSet point(const Packet& p) { return PacketSet{HyperCube::point(p)}; }

  [[nodiscard]] bool is_empty() const { return cubes_.empty(); }
  [[nodiscard]] bool contains(const Packet& p) const;
  [[nodiscard]] bool contains(const PacketSet& other) const;

  [[nodiscard]] Volume volume() const;

  /// Some packet in the set. Precondition: !is_empty().
  [[nodiscard]] Packet sample() const;

  [[nodiscard]] const std::vector<HyperCube>& cubes() const { return cubes_; }

  /// Number of cubes in the internal representation (fragmentation metric).
  [[nodiscard]] std::size_t cube_count() const { return cubes_.size(); }

  friend PacketSet operator&(const PacketSet& a, const PacketSet& b);
  friend PacketSet operator|(const PacketSet& a, const PacketSet& b);
  friend PacketSet operator-(const PacketSet& a, const PacketSet& b);

  /// Complement with respect to the full header space.
  [[nodiscard]] PacketSet complement() const;

  /// Merges cubes that differ in exactly one dimension with adjacent or
  /// touching intervals. Set operations fragment their results (subtraction
  /// especially); compacting keeps downstream costs — SMT ψ encodings,
  /// pairwise overlap tests — proportional to the set's true shape.
  /// Returns *this for chaining.
  PacketSet& compact();

  /// Set equality (exact, via symmetric-difference emptiness).
  [[nodiscard]] bool equals(const PacketSet& other) const;

  /// True when the intersection with `other` is non-empty.
  [[nodiscard]] bool intersects(const PacketSet& other) const;

 private:
  // Invariant: cubes are pairwise disjoint.
  std::vector<HyperCube> cubes_;
};

[[nodiscard]] std::string to_string(const PacketSet& s);

}  // namespace jinjing::net
