#include "net/packet_set.h"

#include <stdexcept>

namespace jinjing::net {

bool PacketSet::contains(const Packet& p) const {
  for (const auto& c : cubes_) {
    if (c.contains(p)) return true;
  }
  return false;
}

bool PacketSet::contains(const PacketSet& other) const { return (other - *this).is_empty(); }

Volume PacketSet::volume() const {
  Volume v = 0;
  for (const auto& c : cubes_) v += c.volume();
  return v;
}

Packet PacketSet::sample() const {
  if (cubes_.empty()) throw std::logic_error("PacketSet::sample on an empty set");
  return cubes_.front().min_packet();
}

PacketSet operator&(const PacketSet& a, const PacketSet& b) {
  PacketSet out;
  for (const auto& ca : a.cubes_) {
    for (const auto& cb : b.cubes_) {
      if (auto c = intersect(ca, cb)) out.cubes_.push_back(*c);
    }
  }
  return out;
}

PacketSet operator-(const PacketSet& a, const PacketSet& b) {
  PacketSet out;
  for (const auto& ca : a.cubes_) {
    std::vector<HyperCube> pieces{ca};
    for (const auto& cb : b.cubes_) {
      std::vector<HyperCube> next;
      for (const auto& piece : pieces) {
        auto sub = subtract(piece, cb);
        next.insert(next.end(), sub.begin(), sub.end());
      }
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    out.cubes_.insert(out.cubes_.end(), pieces.begin(), pieces.end());
  }
  return out;
}

PacketSet operator|(const PacketSet& a, const PacketSet& b) {
  // Keep cubes disjoint: add only the part of b not already covered by a.
  PacketSet out = a;
  PacketSet fresh = b - a;
  out.cubes_.insert(out.cubes_.end(), fresh.cubes_.begin(), fresh.cubes_.end());
  return out;
}

PacketSet PacketSet::complement() const { return all() - *this; }

namespace {

/// If a and b can merge into one cube (equal in all dimensions but one,
/// where their intervals touch or overlap), returns the merged cube.
std::optional<HyperCube> merge_cubes(const HyperCube& a, const HyperCube& b) {
  std::optional<Field> differing;
  for (const Field f : kAllFields) {
    if (a.interval(f) == b.interval(f)) continue;
    if (differing) return std::nullopt;  // differ in two dimensions
    differing = f;
  }
  if (!differing) return std::nullopt;  // identical cubes cannot coexist (disjoint invariant)
  const Interval& ia = a.interval(*differing);
  const Interval& ib = b.interval(*differing);
  const bool touching = ia.overlaps(ib) || (ia.hi != ~std::uint64_t{0} && ia.hi + 1 == ib.lo) ||
                        (ib.hi != ~std::uint64_t{0} && ib.hi + 1 == ia.lo);
  if (!touching) return std::nullopt;
  HyperCube merged = a;
  merged.set_interval(*differing, Interval{std::min(ia.lo, ib.lo), std::max(ia.hi, ib.hi)});
  return merged;
}

}  // namespace

PacketSet& PacketSet::compact() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cubes_.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cubes_.size(); ++j) {
        if (auto merged = merge_cubes(cubes_[i], cubes_[j])) {
          cubes_[i] = *merged;
          cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
          break;
        }
      }
    }
  }
  return *this;
}

bool PacketSet::equals(const PacketSet& other) const {
  return (*this - other).is_empty() && (other - *this).is_empty();
}

bool PacketSet::intersects(const PacketSet& other) const {
  for (const auto& ca : cubes_) {
    for (const auto& cb : other.cubes_) {
      if (ca.overlaps(cb)) return true;
    }
  }
  return false;
}

std::string to_string(const PacketSet& s) {
  if (s.is_empty()) return "{}";
  std::string out;
  for (std::size_t i = 0; i < s.cubes().size(); ++i) {
    if (i > 0) out += " u ";
    out += to_string(s.cubes()[i]);
  }
  return out;
}

}  // namespace jinjing::net
