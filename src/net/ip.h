// IPv4 addresses, prefixes, port ranges and protocol matches.
//
// These are the operator-facing vocabulary of ACL rules: a rule matches a
// packet by (src prefix, dst prefix, src port range, dst port range, proto).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "net/interval.h"

namespace jinjing::net {

/// Error thrown by all textual parsers in this library.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// An IPv4 address as a host-order 32-bit integer.
struct Ipv4 {
  std::uint32_t value = 0;

  constexpr Ipv4() = default;
  explicit constexpr Ipv4(std::uint32_t v) : value(v) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  friend constexpr bool operator==(const Ipv4&, const Ipv4&) = default;
};

/// Parses dotted-quad notation, e.g. "10.0.0.1". Throws ParseError.
[[nodiscard]] Ipv4 parse_ipv4(std::string_view text);
[[nodiscard]] std::string to_string(const Ipv4& ip);

/// An IPv4 prefix `addr/len`. The address is stored canonically with all
/// host bits cleared. len == 0 matches everything.
struct Prefix {
  Ipv4 addr;
  std::uint8_t len = 0;

  constexpr Prefix() = default;
  Prefix(Ipv4 a, std::uint8_t l);

  /// The prefix 0.0.0.0/0 matching all addresses.
  [[nodiscard]] static constexpr Prefix any() { return {}; }

  /// The /32 prefix containing exactly `ip`.
  [[nodiscard]] static Prefix host(Ipv4 ip) { return Prefix{ip, 32}; }

  /// The prefix of length `len` containing `ip` (host bits cleared).
  [[nodiscard]] static Prefix containing(Ipv4 ip, std::uint8_t len) { return Prefix{ip, len}; }

  [[nodiscard]] bool contains(Ipv4 ip) const;
  [[nodiscard]] bool contains(const Prefix& other) const;
  [[nodiscard]] bool overlaps(const Prefix& other) const;

  /// The contiguous address interval this prefix denotes.
  [[nodiscard]] Interval interval() const;

  [[nodiscard]] bool is_any() const { return len == 0; }

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
};

/// Parses "a.b.c.d/len"; a bare address parses as a /32. Throws ParseError.
[[nodiscard]] Prefix parse_prefix(std::string_view text);
[[nodiscard]] std::string to_string(const Prefix& p);

/// An inclusive L4 port range. Default = all ports.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0xFFFF;

  constexpr PortRange() = default;
  PortRange(std::uint16_t l, std::uint16_t h);

  [[nodiscard]] static constexpr PortRange any() { return {}; }
  [[nodiscard]] static PortRange single(std::uint16_t p) { return PortRange{p, p}; }

  [[nodiscard]] constexpr bool contains(std::uint16_t p) const { return lo <= p && p <= hi; }
  [[nodiscard]] bool is_any() const { return lo == 0 && hi == 0xFFFF; }
  [[nodiscard]] Interval interval() const { return {lo, hi}; }

  friend constexpr bool operator==(const PortRange&, const PortRange&) = default;
};

[[nodiscard]] PortRange parse_port_range(std::string_view text);
[[nodiscard]] std::string to_string(const PortRange& r);

/// IP protocol match: either a specific protocol number or any.
struct ProtoMatch {
  std::optional<std::uint8_t> proto;  // nullopt = any

  constexpr ProtoMatch() = default;
  explicit constexpr ProtoMatch(std::uint8_t p) : proto(p) {}

  [[nodiscard]] static constexpr ProtoMatch any() { return {}; }
  [[nodiscard]] static constexpr ProtoMatch tcp() { return ProtoMatch{6}; }
  [[nodiscard]] static constexpr ProtoMatch udp() { return ProtoMatch{17}; }

  [[nodiscard]] constexpr bool contains(std::uint8_t p) const { return !proto || *proto == p; }
  [[nodiscard]] bool is_any() const { return !proto.has_value(); }
  [[nodiscard]] Interval interval() const {
    return proto ? Interval::point(*proto) : Interval::full(8);
  }

  friend constexpr bool operator==(const ProtoMatch&, const ProtoMatch&) = default;
};

[[nodiscard]] ProtoMatch parse_proto(std::string_view text);
[[nodiscard]] std::string to_string(const ProtoMatch& m);

}  // namespace jinjing::net
