// The packet-header model: a 5-tuple (sip, dip, sport, dport, proto).
//
// The paper models a packet as a 104-bit boolean vector; we keep the fields
// typed and expose the per-field bit widths that the SMT encoder and the
// header-space engine share.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/ip.h"

namespace jinjing::net {

/// Index of a header field inside the 5-tuple. The order is fixed and shared
/// by HyperCube, the SMT encoding, and neighborhood enlargement.
enum class Field : std::uint8_t { SrcIp = 0, DstIp = 1, SrcPort = 2, DstPort = 3, Proto = 4 };

inline constexpr std::size_t kNumFields = 5;

/// Bit width of each field, indexed by Field.
inline constexpr std::array<unsigned, kNumFields> kFieldBits = {32, 32, 16, 16, 8};

[[nodiscard]] constexpr unsigned field_bits(Field f) {
  return kFieldBits[static_cast<std::size_t>(f)];
}

[[nodiscard]] constexpr std::string_view field_name(Field f) {
  constexpr std::array<std::string_view, kNumFields> names = {"sip", "dip", "sport", "dport",
                                                              "proto"};
  return names[static_cast<std::size_t>(f)];
}

inline constexpr std::array<Field, kNumFields> kAllFields = {
    Field::SrcIp, Field::DstIp, Field::SrcPort, Field::DstPort, Field::Proto};

/// A concrete packet header.
struct Packet {
  Ipv4 sip;
  Ipv4 dip;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t proto = 6;  // TCP by default

  [[nodiscard]] std::uint64_t field(Field f) const {
    switch (f) {
      case Field::SrcIp: return sip.value;
      case Field::DstIp: return dip.value;
      case Field::SrcPort: return sport;
      case Field::DstPort: return dport;
      case Field::Proto: return proto;
    }
    return 0;  // unreachable
  }

  void set_field(Field f, std::uint64_t v) {
    switch (f) {
      case Field::SrcIp: sip.value = static_cast<std::uint32_t>(v); break;
      case Field::DstIp: dip.value = static_cast<std::uint32_t>(v); break;
      case Field::SrcPort: sport = static_cast<std::uint16_t>(v); break;
      case Field::DstPort: dport = static_cast<std::uint16_t>(v); break;
      case Field::Proto: proto = static_cast<std::uint8_t>(v); break;
    }
  }

  friend constexpr bool operator==(const Packet&, const Packet&) = default;
};

[[nodiscard]] std::string to_string(const Packet& p);

/// Convenience constructor: a TCP packet to `dst` (other fields zero).
[[nodiscard]] Packet packet_to(Ipv4 dst);
[[nodiscard]] Packet packet_to(std::string_view dst_ip);

}  // namespace jinjing::net
