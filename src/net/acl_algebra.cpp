#include "net/acl_algebra.h"

#include <bit>

namespace jinjing::net {
namespace {

/// Greedy cover of an address interval by CIDR prefixes.
std::vector<Prefix> prefixes_for_interval(const Interval& iv) {
  std::vector<Prefix> out;
  std::uint64_t lo = iv.lo;
  while (lo <= iv.hi) {
    // Largest power-of-two block aligned at lo that stays within [lo, hi].
    unsigned max_align = lo == 0 ? 32 : static_cast<unsigned>(std::countr_zero(lo));
    if (max_align > 32) max_align = 32;
    std::uint64_t span = iv.hi - lo + 1;
    unsigned block = 0;
    while (block < max_align && (std::uint64_t{1} << (block + 1)) <= span) ++block;
    if ((std::uint64_t{1} << block) > span) {
      // Defensive: cannot happen, a /32 block always fits.
      break;
    }
    out.emplace_back(Ipv4{static_cast<std::uint32_t>(lo)}, static_cast<std::uint8_t>(32 - block));
    lo += std::uint64_t{1} << block;
    if (lo == 0) break;  // wrapped past 2^32 - 1
  }
  return out;
}

PortRange port_range_for(const Interval& iv) {
  return PortRange{static_cast<std::uint16_t>(iv.lo), static_cast<std::uint16_t>(iv.hi)};
}

}  // namespace

PacketSet permitted_set(const Acl& acl) {
  PacketSet permitted;
  PacketSet remaining = PacketSet::all();
  for (const auto& rule : acl.rules()) {
    if (remaining.is_empty()) break;
    const PacketSet matched = remaining & PacketSet{rule.match.cube()};
    if (rule.action == Action::Permit) permitted = permitted | matched;
    remaining = remaining - matched;
  }
  if (acl.default_action() == Action::Permit) permitted = permitted | remaining;
  return permitted.compact();
}

PacketSet permitted_within(const Acl& acl, const PacketSet& clip) {
  PacketSet permitted;
  PacketSet remaining = clip;
  for (const auto& rule : acl.rules()) {
    if (remaining.is_empty()) break;
    const PacketSet matched = remaining & PacketSet{rule.match.cube()};
    if (matched.is_empty()) continue;
    if (rule.action == Action::Permit) permitted = permitted | matched;
    remaining = remaining - matched;
  }
  if (acl.default_action() == Action::Permit) permitted = permitted | remaining;
  return permitted.compact();
}

PacketSet effective_match_set(const Acl& acl, std::size_t index) {
  PacketSet remaining = PacketSet::all();
  for (std::size_t i = 0; i < index && i < acl.rules().size(); ++i) {
    remaining = remaining - PacketSet{acl.rules()[i].match.cube()};
  }
  if (index >= acl.rules().size()) return remaining;  // the default rule
  return remaining & PacketSet{acl.rules()[index].match.cube()};
}

bool equivalent(const Acl& a, const Acl& b) { return permitted_set(a).equals(permitted_set(b)); }

bool equivalent_on(const Acl& a, const Acl& b, const PacketSet& universe) {
  return (permitted_set(a) & universe).equals(permitted_set(b) & universe);
}

std::vector<Match> matches_for_cube(const HyperCube& cube) {
  std::vector<Match> out;
  const auto src_prefixes = prefixes_for_interval(cube.interval(Field::SrcIp));
  const auto dst_prefixes = prefixes_for_interval(cube.interval(Field::DstIp));
  const Interval proto_iv = cube.interval(Field::Proto);

  std::vector<ProtoMatch> protos;
  if (proto_iv == Interval::full(8)) {
    protos.push_back(ProtoMatch::any());
  } else {
    for (std::uint64_t p = proto_iv.lo; p <= proto_iv.hi; ++p) {
      protos.push_back(ProtoMatch{static_cast<std::uint8_t>(p)});
    }
  }

  for (const auto& src : src_prefixes) {
    for (const auto& dst : dst_prefixes) {
      for (const auto& proto : protos) {
        Match m;
        m.src = src;
        m.dst = dst;
        m.sport = port_range_for(cube.interval(Field::SrcPort));
        m.dport = port_range_for(cube.interval(Field::DstPort));
        m.proto = proto;
        out.push_back(m);
      }
    }
  }
  return out;
}

std::vector<AclRule> rules_for_set(const PacketSet& set, Action action) {
  std::vector<AclRule> out;
  for (const auto& cube : set.cubes()) {
    for (const auto& match : matches_for_cube(cube)) {
      out.push_back(AclRule{action, match});
    }
  }
  return out;
}

}  // namespace jinjing::net
