// Reduced ordered binary decision diagrams over the 104 packet-header bits.
//
// The verification literature the paper builds on (HSA, Veriflow, Delta-net,
// AP verifier) represents header spaces either as unions of hypercubes (our
// PacketSet) or as decision diagrams. This BDD engine is the second exact
// representation in this repository: it cross-validates the hypercube
// engine in tests (three independent semantics implementations in total,
// counting the SMT encoding) and backs the set-representation ablation
// benchmark.
//
// Bit order is field-major, most-significant bit first (sip[31..0],
// dip[31..0], sport[15..0], dport[15..0], proto[7..0]) — prefix matches
// then depend only on a top slice of each field's bits, keeping prefix-
// structured sets small.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet_set.h"

namespace jinjing::net {

class BddManager {
 public:
  /// A node handle. 0 and 1 are the false/true terminals.
  using Node = std::uint32_t;
  static constexpr Node kFalse = 0;
  static constexpr Node kTrue = 1;

  /// Total decision bits: 32 + 32 + 16 + 16 + 8.
  static constexpr unsigned kBits = 104;

  BddManager();

  // --- boolean algebra ---------------------------------------------------
  [[nodiscard]] Node land(Node a, Node b);
  [[nodiscard]] Node lor(Node a, Node b);
  [[nodiscard]] Node lnot(Node a);
  [[nodiscard]] Node ldiff(Node a, Node b) { return land(a, lnot(b)); }

  // --- construction ------------------------------------------------------
  /// The function "bit `level` of the header is 1".
  [[nodiscard]] Node var(unsigned level);

  [[nodiscard]] Node from_cube(const HyperCube& cube);
  [[nodiscard]] Node from_set(const PacketSet& set);
  [[nodiscard]] Node from_packet(const Packet& p);

  /// Existential quantification of the decision bits [first_bit,
  /// first_bit + bits): the projection of `a` that ignores those bits.
  [[nodiscard]] Node exists(Node a, unsigned first_bit, unsigned bits);

  // --- queries -----------------------------------------------------------
  /// Canonicity makes equality and emptiness O(1) once built.
  [[nodiscard]] static bool is_empty(Node a) { return a == kFalse; }
  [[nodiscard]] static bool equal(Node a, Node b) { return a == b; }

  [[nodiscard]] bool contains(Node set, const Packet& p) const;

  /// Some packet in the set, or nullopt when empty.
  [[nodiscard]] std::optional<Packet> sample(Node a) const;

  /// Exact conversion back to a union of pairwise-disjoint hypercubes.
  /// Each root-to-true path contributes per-field (mask, value) bit
  /// constraints, expanded into their minimal interval decomposition;
  /// distinct paths denote disjoint sets, so the resulting cubes are
  /// disjoint. This is the boundary where the BDD-backed equivalence-class
  /// pipeline hands atoms to the PacketSet/SMT world.
  [[nodiscard]] PacketSet to_set(Node a) const;

  /// Number of satisfying headers (exact, 2^104 max).
  [[nodiscard]] Volume volume(Node a) const;

  /// Live nodes allocated so far (a size metric; nothing is freed).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeData {
    unsigned level;  // decision bit; terminals use kBits
    Node lo;         // bit = 0 branch
    Node hi;         // bit = 1 branch
  };

  [[nodiscard]] Node make(unsigned level, Node lo, Node hi);
  [[nodiscard]] Node interval(unsigned first_bit, unsigned bits, std::uint64_t lo,
                              std::uint64_t hi);
  [[nodiscard]] Node geq(unsigned first_bit, unsigned bits, std::uint64_t bound);
  [[nodiscard]] Node leq(unsigned first_bit, unsigned bits, std::uint64_t bound);

  std::vector<NodeData> nodes_;
  std::unordered_map<std::uint64_t, Node> unique_;          // (level, lo, hi) -> node
  std::unordered_map<std::uint64_t, Node> and_memo_;        // (a, b) -> node
  std::unordered_map<std::uint64_t, Node> not_memo_;        // a -> node
};

/// First bit index of a field in the global order.
[[nodiscard]] constexpr unsigned bdd_field_offset(Field f) {
  switch (f) {
    case Field::SrcIp: return 0;
    case Field::DstIp: return 32;
    case Field::SrcPort: return 64;
    case Field::DstPort: return 80;
    case Field::Proto: return 96;
  }
  return 0;
}

}  // namespace jinjing::net
