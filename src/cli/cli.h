// The `jinjing` command-line tool: runs LAI programs against network files.
//
//   jinjing run   --network net.topo --program plan.lai [--acl name=file]...
//   jinjing show  --network net.topo            # paths, FECs, ACL summary
//   jinjing audit --network net.topo            # data-quality checks (§7)
//
// `run` executes the program's commands (check / fix / generate) and prints
// the resulting update plan; the exit code is 0 only when every command
// succeeded. ACLs referenced by `modify` statements are supplied as
// --acl NAME=FILE pairs (canonical or IOS dialect, auto-detected); the name
// `permit_all` is predefined.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace jinjing::cli {

/// Runs the CLI with the given arguments (excluding argv[0]). Output goes
/// to `out`, diagnostics to `err`. Returns the process exit code.
[[nodiscard]] int run(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err);

}  // namespace jinjing::cli
