#include "cli/cli.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "config/acl_format.h"
#include "config/audit.h"
#include "config/topology_format.h"
#include "core/deploy.h"
#include "core/diff.h"
#include "core/engine.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "obs/stats.h"
#include "net/acl_algebra.h"
#include "replica/replica.h"
#include "soak/soak.h"
#include "svc/client.h"
#include "svc/routed_client.h"
#include "svc/server.h"
#include "topo/fec.h"
#include "topo/paths.h"

namespace jinjing::cli {

namespace {

constexpr const char* kUsage = R"(usage:
  jinjing run   --network FILE --program FILE [--acl NAME=FILE]...
                [--diff] [--rollback] [--stage availability|security]
                [--out FILE] [--set-backend hypercube|bdd] [--threads N]
                [--no-incremental-smt] [--timeout-ms N] [--report-json FILE]
                [--metrics FILE] [--trace FILE]
  jinjing show  --network FILE
  jinjing audit --network FILE
  jinjing reach --network FILE --from IFACE --to IFACE [--packet SPEC]
  jinjing trace --network FILE --packet SPEC [--from IFACE]
  jinjing diff  --acl-a FILE --acl-b FILE
  jinjing gen   --size small|medium|large [--seed N]
  jinjing serve  --network FILE [--socket PATH] [--listen HOST:PORT --token SECRET]
                 [--queue-depth N] [--workers N]
                 [--coalesce N] [--keep-versions N] [--retain-jobs N]
                 [--max-delta-chain N] [--max-lease-ms N]
                 [--set-backend hypercube|bdd] [--timeout-ms N]
                 [--no-incremental-smt]
  jinjing replica --network FILE --writer ENDPOINT [--token SECRET]
                 [--socket PATH] [--listen HOST:PORT] [--lease-ms N]
                 [--queue-depth N] [--workers N] [--coalesce N]
                 [--keep-versions N] [--retain-jobs N] [--max-delta-chain N]
  jinjing client (--socket ENDPOINT | --writer ENDPOINT [--replica ENDPOINT]...)
                 METHOD [--token SECRET] [--program FILE] [--acl NAME=FILE]...
                 [--priority interactive|batch] [--deadline-ms N]
                 [--snapshot N] [--job N] [--wait] [--wait-ms N]
                 [--lease N] [--lease-ms N] [--version N]
  jinjing soak   [--size small|medium|large] [--seed N] [--events N]
                 [--sessions N] [--qps X] [--duration-s X] [--workers N]
                 [--coalesce N] [--queue-depth N] [--keep-versions N]
                 [--retain-jobs N] [--max-delta-chain N] [--no-oracle]
                 [--transport unix|tcp] [--report-json FILE] [--socket PATH]
                 [--dump-stream]

run      execute an LAI program (check / fix / generate) and print the plan
         --diff      also print the per-slot rule diff of the plan
         --rollback  also print the plan that restores the current ACLs
         --stage M   also print a transient-safe two-phase push sequence
         --out FILE  write the plan as reusable 'acl ... end' blocks
         --set-backend B      set representation for traffic classification
                              (hypercube, the default, or bdd)
         --threads N          worker threads for classification and the
                              per-class SMT queries
         --no-incremental-smt fresh solver per query instead of one
                              incremental solver per session
         --timeout-ms N       per-query Z3 deadline in milliseconds (0, the
                              default, means none); a query hitting the
                              deadline is an error, never a pass
         --report-json FILE   write per-stage timings (plan/compile/solve/
                              execute), obligation counts and the full
                              observability counter dump to FILE
         --metrics FILE       write pipeline counters/histograms to FILE in
                              Prometheus text exposition format
         --trace FILE         write scoped spans to FILE as Chrome
                              trace-event JSON (chrome://tracing, Perfetto)
show     print the network summary: paths, traffic classes, ACLs
audit    run the data-quality checks; exit 1 when errors are found
reach    answer "what can go from A to B?" — per-path permitted traffic,
         or the verdict for one packet (--packet "dst 1.2.3.4 dport 80")
trace    follow one packet hop by hop: routing choice and ACL verdict (with
         the matching rule) at every interface it crosses
diff     compare two ACLs semantically: equivalence verdict, the rules the
         update adds/removes (Definition 4.1), and a witness packet whose
         decision differs
gen      write a synthetic layered WAN (the benchmark workloads) to stdout
serve    run the long-lived verification service on a Unix domain socket
         and/or a TCP listener: versioned network snapshots, a prioritized
         job queue (interactive check ahead of batch fix/generate) and warm
         per-worker engines
         --listen HOST:PORT   also accept authenticated TCP connections
                              (port 0 binds an ephemeral port); requires
                              --token
         --max-delta-chain N  how many applies a cached verification plan
                              may be carried across before a full rebuild
                              (default 16; 0 disables incremental
                              cross-version verification)
replica  run a read-only verifier replica: subscribes to the writer's
         replication stream, re-verifies every record's hash chain, and
         serves checks locally from its own warm caches; fix/generate and
         apply are redirected to the writer (421)
         --writer ENDPOINT    the writer's Unix socket path or host:port
         --lease-ms N         writer-side lease window pinning the
                              replica's applied version (default 10000)
client   drive a running service; METHOD is one of submit, status, result,
         cancel, apply, lease, renew, release, info, metrics, shutdown
         --socket ENDPOINT    Unix socket path or host:port to dial
         --writer/--replica   replica-aware routing instead of one socket:
                              pure checks go to the replicas round-robin
                              (pinned to the last applied version), all
                              mutations go to the writer
         --wait      after submit, block until the job finishes; exit 0
                     only when it produced a deployable plan
         --wait-ms N bound a result wait instead of blocking forever
         --lease N / --lease-ms N / --version N
                     arguments for the lease, renew and release methods
soak     boot an in-process service and replay a seeded churn stream of
         checks, applies, control intents, cancels and malformed intents
         through concurrent client sessions; every completed job is re-run
         on a fresh sequential oracle and `metrics` snapshots are diffed
         for retention / cache leak invariants; exit 0 only when every
         answer matched and every invariant held
         --events N      stream events per pass (default 500)
         --sessions N    concurrent client sessions (default 4)
         --qps X         aggregate submission pacing (default unpaced)
         --duration-s X  replay derived-seed passes until X seconds elapsed
         --no-oracle     skip the differential oracle (watchdogs only)
         --dump-stream   print the resolved event stream and exit (two runs
                         of one seed must print identical lines)
         --transport tcp drive the sessions over loopback TCP with token
                         auth instead of the Unix socket
)";

struct Options {
  std::string command;
  std::string network_path;
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> acl_files;  // name -> path
  bool show_diff = false;
  bool show_rollback = false;
  std::optional<core::StagingMode> stage;
  std::string from_iface;
  std::string to_iface;
  std::string packet_spec;
  std::string gen_size;
  unsigned gen_seed = 0;
  std::string out_path;
  std::string acl_a_path;
  std::string acl_b_path;
  topo::SetBackend set_backend = topo::SetBackend::Hypercube;
  unsigned threads = 1;
  bool incremental_smt = true;
  unsigned timeout_ms = 0;
  std::string report_json_path;
  std::string metrics_path;
  std::string trace_path;
  // serve / replica / client
  std::string socket_path;
  std::string listen_address;
  std::string auth_token;
  std::string writer_endpoint;
  std::vector<std::string> replica_endpoints;
  unsigned max_lease_ms = 60000;
  unsigned replica_lease_ms = 10000;
  std::optional<std::uint64_t> lease_id;
  std::optional<std::uint64_t> lease_ms_arg;
  std::optional<std::uint64_t> version_arg;
  unsigned queue_depth = 64;
  unsigned workers = 2;
  unsigned coalesce = 32;
  unsigned keep_versions = 8;
  unsigned retain_jobs = 1024;
  unsigned max_delta_chain = 16;
  std::string client_method;
  std::string priority;
  std::optional<std::uint64_t> job_id;
  std::optional<std::uint64_t> deadline_ms;
  std::optional<std::uint64_t> snapshot;
  std::optional<std::uint64_t> wait_ms;
  bool wait = false;
  // soak
  unsigned soak_events = 500;
  unsigned soak_sessions = 4;
  double soak_qps = 0;
  double soak_duration_s = 0;
  bool soak_no_oracle = false;
  bool soak_dump_stream = false;
  bool soak_tcp = false;
  bool retain_jobs_set = false;  // soak defaults lower than serve's 1024
};

/// Strict flag-value parsing: the whole token must be a decimal number in
/// [min, max]. Negative values, empty strings, trailing garbage and
/// overflow are all usage errors naming the flag — never a partial run.
unsigned long parse_unsigned(const char* flag, const std::string& text, unsigned long min,
                             unsigned long max) {
  unsigned long parsed = 0;
  try {
    if (text.empty() || text[0] == '-' || text[0] == '+') throw std::invalid_argument(text);
    std::size_t consumed = 0;
    parsed = std::stoul(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(flag) + " expects a number, got '" + text + "'");
  }
  if (parsed < min || parsed > max) {
    throw std::runtime_error(std::string(flag) + " expects " + std::to_string(min) +
                             " <= N <= " + std::to_string(max) + ", got '" + text + "'");
  }
  return parsed;
}

/// Same strictness for non-negative decimal flags (--qps 2.5).
double parse_nonnegative_double(const char* flag, const std::string& text, double max) {
  double parsed = 0;
  try {
    if (text.empty() || text[0] == '-' || text[0] == '+') throw std::invalid_argument(text);
    std::size_t consumed = 0;
    parsed = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(flag) + " expects a number, got '" + text + "'");
  }
  if (!(parsed >= 0) || parsed > max) {
    throw std::runtime_error(std::string(flag) + " expects 0 <= X <= " + std::to_string(max) +
                             ", got '" + text + "'");
  }
  return parsed;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Options parse_args(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("missing command");
  Options options;
  options.command = args[0];
  const bool known_command =
      options.command == "run" || options.command == "show" || options.command == "audit" ||
      options.command == "reach" || options.command == "trace" || options.command == "diff" ||
      options.command == "gen" || options.command == "serve" ||
      options.command == "replica" || options.command == "client" ||
      options.command == "soak";
  if (!known_command) {
    throw std::runtime_error("unknown command '" + options.command + "'");
  }
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw std::runtime_error("missing value after " + arg);
      return args[++i];
    };
    if (arg == "--network") {
      options.network_path = value();
    } else if (arg == "--program") {
      options.program_path = value();
    } else if (arg == "--acl") {
      const auto& pair = value();
      const auto eq = pair.find('=');
      if (eq == std::string::npos) throw std::runtime_error("--acl expects NAME=FILE");
      options.acl_files.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    } else if (arg == "--diff") {
      options.show_diff = true;
    } else if (arg == "--rollback") {
      options.show_rollback = true;
    } else if (arg == "--stage") {
      const auto& mode = value();
      if (mode == "availability") {
        options.stage = core::StagingMode::AvailabilityFirst;
      } else if (mode == "security") {
        options.stage = core::StagingMode::SecurityFirst;
      } else {
        throw std::runtime_error("--stage expects 'availability' or 'security'");
      }
    } else if (arg == "--from") {
      options.from_iface = value();
    } else if (arg == "--to") {
      options.to_iface = value();
    } else if (arg == "--packet") {
      options.packet_spec = value();
    } else if (arg == "--acl-a") {
      options.acl_a_path = value();
    } else if (arg == "--acl-b") {
      options.acl_b_path = value();
    } else if (arg == "--out") {
      options.out_path = value();
    } else if (arg == "--set-backend") {
      const auto& backend = value();
      if (backend == "hypercube") {
        options.set_backend = topo::SetBackend::Hypercube;
      } else if (backend == "bdd") {
        options.set_backend = topo::SetBackend::Bdd;
      } else {
        throw std::runtime_error("--set-backend expects 'hypercube' or 'bdd'");
      }
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(parse_unsigned("--threads", value(), 1, 1024));
    } else if (arg == "--timeout-ms") {
      options.timeout_ms =
          static_cast<unsigned>(parse_unsigned("--timeout-ms", value(), 0, 3600000));
    } else if (arg == "--report-json") {
      options.report_json_path = value();
    } else if (arg == "--metrics") {
      options.metrics_path = value();
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--no-incremental-smt") {
      options.incremental_smt = false;
    } else if (arg == "--size") {
      options.gen_size = value();
    } else if (arg == "--seed") {
      options.gen_seed = static_cast<unsigned>(
          parse_unsigned("--seed", value(), 0, std::numeric_limits<unsigned>::max()));
    } else if (arg == "--socket") {
      options.socket_path = value();
    } else if (arg == "--listen") {
      options.listen_address = value();
    } else if (arg == "--token") {
      options.auth_token = value();
    } else if (arg == "--writer") {
      options.writer_endpoint = value();
    } else if (arg == "--replica") {
      options.replica_endpoints.push_back(value());
    } else if (arg == "--max-lease-ms") {
      options.max_lease_ms =
          static_cast<unsigned>(parse_unsigned("--max-lease-ms", value(), 1, 86400000));
    } else if (arg == "--lease") {
      options.lease_id = parse_unsigned("--lease", value(), 1,
                                        std::numeric_limits<unsigned long>::max());
    } else if (arg == "--lease-ms") {
      options.lease_ms_arg = parse_unsigned("--lease-ms", value(), 1, 86400000);
      options.replica_lease_ms = static_cast<unsigned>(*options.lease_ms_arg);
    } else if (arg == "--version") {
      options.version_arg = parse_unsigned("--version", value(), 1,
                                           std::numeric_limits<unsigned long>::max());
    } else if (arg == "--transport") {
      const auto& transport = value();
      if (transport == "tcp") {
        options.soak_tcp = true;
      } else if (transport != "unix") {
        throw std::runtime_error("--transport expects 'unix' or 'tcp', got '" + transport +
                                 "'");
      }
    } else if (arg == "--queue-depth") {
      options.queue_depth = static_cast<unsigned>(parse_unsigned("--queue-depth", value(), 1,
                                                                 1u << 20));
    } else if (arg == "--workers") {
      options.workers = static_cast<unsigned>(parse_unsigned("--workers", value(), 1, 1024));
    } else if (arg == "--coalesce") {
      options.coalesce = static_cast<unsigned>(parse_unsigned("--coalesce", value(), 1, 4096));
    } else if (arg == "--keep-versions") {
      options.keep_versions =
          static_cast<unsigned>(parse_unsigned("--keep-versions", value(), 1, 1u << 20));
    } else if (arg == "--retain-jobs") {
      options.retain_jobs =
          static_cast<unsigned>(parse_unsigned("--retain-jobs", value(), 1, 1u << 20));
      options.retain_jobs_set = true;
    } else if (arg == "--events") {
      options.soak_events =
          static_cast<unsigned>(parse_unsigned("--events", value(), 1, 1u << 20));
    } else if (arg == "--sessions") {
      options.soak_sessions =
          static_cast<unsigned>(parse_unsigned("--sessions", value(), 1, 256));
    } else if (arg == "--qps") {
      options.soak_qps = parse_nonnegative_double("--qps", value(), 1e6);
    } else if (arg == "--duration-s") {
      options.soak_duration_s = parse_nonnegative_double("--duration-s", value(), 86400);
    } else if (arg == "--no-oracle") {
      options.soak_no_oracle = true;
    } else if (arg == "--dump-stream") {
      options.soak_dump_stream = true;
    } else if (arg == "--max-delta-chain") {
      options.max_delta_chain =
          static_cast<unsigned>(parse_unsigned("--max-delta-chain", value(), 0, 1u << 20));
    } else if (arg == "--priority") {
      const auto& priority = value();
      if (priority != "interactive" && priority != "batch") {
        throw std::runtime_error("--priority expects 'interactive' or 'batch', got '" +
                                 priority + "'");
      }
      options.priority = priority;
    } else if (arg == "--job") {
      options.job_id = parse_unsigned("--job", value(), 1,
                                      std::numeric_limits<unsigned long>::max());
    } else if (arg == "--deadline-ms") {
      options.deadline_ms = parse_unsigned("--deadline-ms", value(), 1, 86400000);
    } else if (arg == "--snapshot") {
      options.snapshot = parse_unsigned("--snapshot", value(), 1,
                                        std::numeric_limits<unsigned long>::max());
    } else if (arg == "--wait") {
      options.wait = true;
    } else if (arg == "--wait-ms") {
      options.wait_ms = parse_unsigned("--wait-ms", value(), 1, 86400000);
    } else if (options.command == "client" && options.client_method.empty() &&
               arg.rfind("--", 0) != 0) {
      options.client_method = arg;
    } else {
      throw std::runtime_error("unknown option: " + arg);
    }
  }
  if (options.command != "gen" && options.command != "diff" && options.command != "client" &&
      options.command != "soak" && options.network_path.empty()) {
    throw std::runtime_error("--network is required");
  }
  return options;
}

void print_plan(std::ostream& out, const topo::Topology& topo, const topo::AclUpdate& plan) {
  // One formatter for every consumer: the CLI, --out files, and the
  // service's job outcomes all go through core::format_plan.
  out << core::format_plan(topo, plan);
}

/// JSON string-literal escaping for values that originate outside the tool
/// (output paths, file names): quotes, backslashes and control characters.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Opens `path`, streams `body` into it and verifies the write landed; any
/// failure (unwritable path, disk full, ...) is a CLI error, so the caller
/// never prints a "written to" success message for a file that is not there.
template <typename Body>
void write_output_file(const std::string& path, Body&& body) {
  std::ofstream file{path};
  if (!file) throw std::runtime_error("cannot write " + path);
  body(file);
  file.flush();
  if (!file) throw std::runtime_error("error while writing " + path);
}

/// The --report-json payload: per-command obligation counts and stage
/// timings, pipeline totals, and (when observability is installed) the full
/// counter dump.
void write_report_json(const std::string& path, const core::EngineReport& report,
                       const obs::StatsRegistry* registry) {
  write_output_file(path, [&](std::ostream& file) {
  file << "{\n  \"report_path\": \"" << json_escape(path) << "\",\n  \"commands\": [";
  bool first = true;
  std::uint64_t total_queries = 0;
  double total_plan = 0, total_compile = 0, total_solve = 0, total_execute = 0;
  for (const auto& outcome : report.outcomes) {
    if (!first) file << ",";
    first = false;
    file << "\n    {\"command\": \"" << lai::to_string(outcome.command) << "\", \"ok\": "
         << (outcome.ok() ? "true" : "false");
    if (outcome.check) {
      const auto& c = *outcome.check;
      file << ", \"obligations\": " << c.obligation_count
           << ", \"executed\": " << c.obligations_executed
           << ", \"cancelled\": " << c.obligations_cancelled
           << ", \"fec_count\": " << c.fec_count << ", \"smt_queries\": " << c.smt_queries
           << ", \"plan_seconds\": " << c.plan_seconds
           << ", \"compile_seconds\": " << c.compile_seconds
           << ", \"solve_seconds\": " << c.solve_seconds
           << ", \"execute_seconds\": " << c.execute_seconds;
      total_queries += c.smt_queries;
      total_plan += c.plan_seconds;
      total_compile += c.compile_seconds;
      total_solve += c.solve_seconds;
      total_execute += c.execute_seconds;
    }
    if (outcome.fix) {
      const auto& f = *outcome.fix;
      file << ", \"obligations\": " << f.obligations
           << ", \"obligations_skipped\": " << f.obligations_skipped
           << ", \"neighborhoods\": " << f.neighborhoods.size()
           << ", \"actions\": " << f.actions.size() << ", \"smt_queries\": " << f.smt_queries
           << ", \"search_seconds\": " << f.search_seconds
           << ", \"enlarge_seconds\": " << f.enlarge_seconds
           << ", \"place_seconds\": " << f.place_seconds
           << ", \"assemble_seconds\": " << f.assemble_seconds;
      total_queries += f.smt_queries;
      total_solve += f.search_seconds + f.place_seconds;
    }
    if (outcome.generate) {
      const auto& g = *outcome.generate;
      file << ", \"aec_count\": " << g.aec_count << ", \"dec_count\": " << g.dec_count
           << ", \"smt_queries\": " << g.smt_queries
           << ", \"derive_seconds\": " << g.derive_seconds
           << ", \"solve_seconds\": " << g.solve_seconds
           << ", \"synth_seconds\": " << g.synth_seconds;
      total_queries += g.smt_queries;
      total_solve += g.solve_seconds;
    }
    file << "}";
  }
  file << "\n  ],\n  \"totals\": {\"smt_queries\": " << total_queries
       << ", \"plan_seconds\": " << total_plan << ", \"compile_seconds\": " << total_compile
       << ", \"solve_seconds\": " << total_solve << ", \"execute_seconds\": " << total_execute
       << "}";
  if (registry != nullptr) {
    file << ",\n  \"observability\": ";
    registry->write_json(file, "  ");
  }
  file << "\n}\n";
  });
}

int run_command(const Options& options, std::ostream& out) {
  if (options.program_path.empty()) throw std::runtime_error("--program is required for run");
  const auto network = config::load_network(options.network_path);
  const auto program_text = read_file(options.program_path);

  lai::AclLibrary library;
  library.emplace("permit_all", net::Acl::permit_all());
  for (const auto& [name, path] : options.acl_files) {
    library.insert_or_assign(name, config::parse_acl_auto(read_file(path)));
  }

  core::EngineOptions engine_options;
  for (core::CheckOptions* check : {&engine_options.check, &engine_options.fix.check}) {
    check->set_backend = options.set_backend;
    check->threads = options.threads;
    check->incremental_smt = options.incremental_smt;
    check->timeout_ms = options.timeout_ms;
  }
  // Observability is on whenever any export wants its data; the registry
  // lives on the stack and is uninstalled before the outputs are written.
  const bool want_observability = !options.report_json_path.empty() ||
                                  !options.metrics_path.empty() ||
                                  !options.trace_path.empty();
  std::optional<obs::StatsRegistry> registry;
  std::optional<obs::ScopedRegistry> installed;
  if (want_observability) {
    registry.emplace();
    installed.emplace(*registry);
  }

  core::Engine engine{network.topo, engine_options};
  const auto report = engine.run_program(program_text, library, network.traffic);

  installed.reset();
  if (!options.report_json_path.empty()) {
    write_report_json(options.report_json_path, report, registry ? &*registry : nullptr);
    out << "report written to " << options.report_json_path << "\n";
  }
  if (!options.metrics_path.empty()) {
    write_output_file(options.metrics_path,
                      [&](std::ostream& file) { registry->write_prometheus(file); });
    out << "metrics written to " << options.metrics_path << "\n";
  }
  if (!options.trace_path.empty()) {
    write_output_file(options.trace_path,
                      [&](std::ostream& file) { registry->write_chrome_trace(file); });
    out << "trace written to " << options.trace_path << "\n";
  }

  for (const auto& outcome : report.outcomes) {
    out << lai::to_string(outcome.command) << ": " << (outcome.ok() ? "ok" : "FAILED");
    if (outcome.check) {
      out << " (" << (outcome.check->consistent ? "consistent" : "inconsistent") << ", "
          << outcome.check->fec_count << " classes, " << outcome.check->smt_queries
          << " SMT queries)";
    }
    if (outcome.fix) {
      out << " (" << outcome.fix->neighborhoods.size() << " neighborhoods, "
          << outcome.fix->actions.size() << " interfaces touched)";
    }
    if (outcome.generate) {
      out << " (" << outcome.generate->aec_count << " AECs, "
          << outcome.generate->synthesis.emitted_rules << " rules synthesized)";
    }
    out << "\n";
  }
  out << "\nupdate plan:\n";
  print_plan(out, network.topo, report.final_update);

  if (options.show_diff) {
    out << "\nchanges:\n" << core::describe_update(network.topo, report.final_update);
  }
  if (options.stage) {
    out << "\nstaged deployment ("
        << (*options.stage == core::StagingMode::AvailabilityFirst ? "availability" : "security")
        << "-first):\n";
    for (const auto& step : core::staged_plan(network.topo, report.final_update,
                                              *options.stage)) {
      out << "phase " << step.phase + 1 << " push "
          << network.topo.qualified_name(step.slot.iface)
          << (step.slot.dir == topo::Dir::In ? "-in" : "-out") << " (" << step.acl.size()
          << " rules)\n";
    }
  }
  if (options.show_rollback) {
    out << "\nrollback plan:\n";
    print_plan(out, network.topo, core::rollback_update(network.topo, report.final_update));
  }
  if (!options.out_path.empty()) {
    write_output_file(options.out_path, [&](std::ostream& file) {
      print_plan(file, network.topo, report.final_update);
    });
    out << "\nplan written to " << options.out_path << "\n";
  }
  return report.success() ? 0 : 1;
}

int show_command(const Options& options, std::ostream& out) {
  const auto network = config::load_network(options.network_path);
  const auto scope = topo::Scope::whole_network(network.topo);

  out << "devices: " << network.topo.device_count()
      << ", interfaces: " << network.topo.interface_count()
      << ", links: " << network.topo.edges().size() << "\n";

  const auto paths = topo::enumerate_paths(network.topo, scope);
  out << "border-to-border paths: " << paths.size() << "\n";
  for (const auto& p : paths) out << "  " << to_string(network.topo, p) << "\n";

  std::size_t classes = 0;
  for (const auto& entry : topo::per_entry_equivalence_classes(network.topo, scope,
                                                               network.traffic)) {
    classes += entry.classes.size();
  }
  out << "traffic classes (per entry): " << classes << "\n";

  out << "ACLs:\n";
  for (const auto slot : network.topo.bound_slots()) {
    out << "  " << network.topo.qualified_name(slot.iface)
        << (slot.dir == topo::Dir::In ? "-in" : "-out") << ": "
        << network.topo.acl(slot).size() << " rules\n";
  }
  return 0;
}

int audit_command(const Options& options, std::ostream& out) {
  const auto network = config::load_network(options.network_path);
  const auto issues = config::audit_network(network.topo, network.traffic);
  if (issues.empty()) {
    out << "audit clean\n";
    return 0;
  }
  for (const auto& issue : issues) out << to_string(issue) << "\n";
  return config::has_errors(issues) ? 1 : 0;
}

int reach_command(const Options& options, std::ostream& out) {
  if (options.from_iface.empty() || options.to_iface.empty()) {
    throw std::runtime_error("reach requires --from and --to interfaces");
  }
  const auto network = config::load_network(options.network_path);
  const auto from = network.topo.find_interface(options.from_iface);
  const auto to = network.topo.find_interface(options.to_iface);
  if (!from) throw std::runtime_error("unknown interface " + options.from_iface);
  if (!to) throw std::runtime_error("unknown interface " + options.to_iface);

  const auto scope = topo::Scope::whole_network(network.topo);
  const topo::ConfigView view{network.topo};

  std::optional<net::Packet> packet;
  if (!options.packet_spec.empty()) {
    const auto spec = config::parse_packet_set(options.packet_spec);
    if (spec.is_empty()) throw std::runtime_error("empty packet spec");
    packet = spec.sample();
    out << "packet: " << net::to_string(*packet) << "\n";
  }

  bool any_path = false;
  bool reachable = false;
  for (const auto& path : topo::enumerate_paths(network.topo, scope)) {
    if (path.entry() != *from || path.exit() != *to) continue;
    any_path = true;
    const auto carried = topo::forwarding_set(network.topo, path);
    if (packet) {
      if (!carried.contains(*packet)) continue;
      const bool permitted = topo::path_permits(view, path, *packet);
      reachable = reachable || permitted;
      out << "  " << to_string(network.topo, path) << ": "
          << (permitted ? "permitted" : "denied") << "\n";
    } else {
      auto deliverable = topo::path_permitted_set(view, path) & carried;
      if (!network.traffic.is_empty()) deliverable = deliverable & network.traffic;
      reachable = reachable || !deliverable.is_empty();
      out << "  " << to_string(network.topo, path) << ": "
          << (deliverable.is_empty() ? "(nothing)"
                                     : config::print_packet_set(deliverable.compact()))
          << "\n";
    }
  }
  if (!any_path) {
    out << "no path from " << options.from_iface << " to " << options.to_iface << "\n";
    return 1;
  }
  out << (reachable ? "reachable" : "unreachable") << "\n";
  return reachable ? 0 : 1;
}

int trace_command(const Options& options, std::ostream& out) {
  if (options.packet_spec.empty()) throw std::runtime_error("trace requires --packet");
  const auto network = config::load_network(options.network_path);
  const auto spec = config::parse_packet_set(options.packet_spec);
  if (spec.is_empty()) throw std::runtime_error("empty packet spec");
  const net::Packet packet = spec.sample();
  out << "packet: " << net::to_string(packet) << "\n";

  const auto scope = topo::Scope::whole_network(network.topo);
  const topo::ConfigView view{network.topo};

  std::vector<topo::InterfaceId> entries;
  if (!options.from_iface.empty()) {
    const auto from = network.topo.find_interface(options.from_iface);
    if (!from) throw std::runtime_error("unknown interface " + options.from_iface);
    entries.push_back(*from);
  } else {
    entries = topo::entry_interfaces(network.topo, scope);
  }

  bool delivered = false;
  for (const auto entry : entries) {
    for (const auto& path : topo::enumerate_paths(network.topo, scope)) {
      if (path.entry() != entry) continue;
      if (!topo::forwarding_set(network.topo, path).contains(packet)) continue;
      out << "path " << to_string(network.topo, path) << ":\n";
      bool dropped = false;
      for (const auto& hop : path.hops()) {
        out << "  " << network.topo.qualified_name(hop.iface) << "-"
            << topo::to_string(hop.dir);
        const auto& acl = view.acl(hop.slot());
        if (acl.empty()) {
          out << ": no ACL\n";
          continue;
        }
        const auto rule_index = acl.first_match(packet);
        if (rule_index) {
          const auto& rule = acl.rules()[*rule_index];
          out << ": rule " << *rule_index + 1 << " '" << net::to_string(rule) << "' -> "
              << net::to_string(rule.action) << "\n";
          if (rule.action == net::Action::Deny) {
            dropped = true;
            break;
          }
        } else {
          out << ": default " << net::to_string(acl.default_action()) << "\n";
          if (acl.default_action() == net::Action::Deny) {
            dropped = true;
            break;
          }
        }
      }
      out << (dropped ? "  => DROPPED\n" : "  => delivered\n");
      delivered = delivered || !dropped;
    }
  }
  out << (delivered ? "packet is delivered on at least one path\n"
                    : "packet is dropped everywhere\n");
  return delivered ? 0 : 1;
}

int diff_command(const Options& options, std::ostream& out) {
  if (options.acl_a_path.empty() || options.acl_b_path.empty()) {
    throw std::runtime_error("diff requires --acl-a and --acl-b");
  }
  const auto a = config::parse_acl_auto(read_file(options.acl_a_path));
  const auto b = config::parse_acl_auto(read_file(options.acl_b_path));

  const auto marks = core::lcs_marks(a.rules(), b.rules());
  for (std::size_t i = 0; i < a.rules().size(); ++i) {
    if (!marks.in_a[i]) out << "- " << net::to_string(a.rules()[i]) << "\n";
  }
  for (std::size_t i = 0; i < b.rules().size(); ++i) {
    if (!marks.in_b[i]) out << "+ " << net::to_string(b.rules()[i]) << "\n";
  }

  if (net::equivalent(a, b)) {
    out << "equivalent: the ACLs permit exactly the same packets\n";
    return 0;
  }
  const auto only_a = net::permitted_set(a) - net::permitted_set(b);
  const auto only_b = net::permitted_set(b) - net::permitted_set(a);
  if (!only_a.is_empty()) {
    out << "B newly denies e.g. " << net::to_string(only_a.sample()) << "\n";
  }
  if (!only_b.is_empty()) {
    out << "B newly permits e.g. " << net::to_string(only_b.sample()) << "\n";
  }
  out << "NOT equivalent\n";
  return 1;
}

gen::WanParams wan_params_for(const Options& options) {
  gen::WanParams params;
  if (options.gen_size == "small" || options.gen_size.empty()) {
    params = gen::small_wan();
  } else if (options.gen_size == "medium") {
    params = gen::medium_wan();
  } else if (options.gen_size == "large") {
    params = gen::large_wan();
  } else {
    throw std::runtime_error("--size expects small, medium or large");
  }
  if (options.gen_seed != 0) params.seed = options.gen_seed;
  return params;
}

int gen_command(const Options& options, std::ostream& out) {
  const auto wan = gen::make_wan(wan_params_for(options));
  config::NetworkFile file;
  file.topo = wan.topo;
  file.traffic = wan.traffic;
  out << config::print_network(file);
  return 0;
}

int soak_command(const Options& options, std::ostream& out) {
  soak::SoakOptions soak_options;
  soak_options.wan = wan_params_for(options);
  soak_options.stream.events = options.soak_events;
  if (options.gen_seed != 0) soak_options.stream.seed = options.gen_seed;
  soak_options.sessions = options.soak_sessions;
  soak_options.target_qps = options.soak_qps;
  soak_options.min_duration_seconds = options.soak_duration_s;
  soak_options.oracle = !options.soak_no_oracle;
  soak_options.tcp = options.soak_tcp;
  soak_options.log = &out;
  soak_options.server.socket_path = options.socket_path;  // empty = temp path
  soak_options.server.queue_depth = options.queue_depth;
  soak_options.server.workers = options.workers;
  soak_options.server.coalesce = options.coalesce;
  soak_options.server.keep_versions = options.keep_versions;
  // The retention flush submits exactly retain_jobs trivial checks, so the
  // soak default stays far below serve's 1024.
  soak_options.server.retain_jobs = options.retain_jobs_set ? options.retain_jobs : 64;
  soak_options.server.max_delta_chain = options.max_delta_chain;
  // The engine knobs (--set-backend etc.) are deliberately not wired: the
  // soak's oracle runs default options, and the service must agree with it.

  if (options.soak_dump_stream) {
    const gen::Wan wan = gen::make_wan(soak_options.wan);
    for (const auto& event : gen::churn_stream(wan, soak_options.stream)) {
      out << gen::describe(event) << "\n";
    }
    return 0;
  }

  const soak::SoakReport report = soak::run_soak(soak_options);
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>(report.stream_fingerprint));
  out << "soak: " << report.passes << " passes, " << report.events << " events, "
      << report.submitted << " submitted, " << report.completed << " completed, "
      << report.cancelled << " cancelled, " << report.applies << " applies ("
      << report.apply_conflicts << " conflicts), " << report.rejected
      << " backpressure rejections, " << report.evicted_before_read
      << " evicted before read, " << report.expected_submit_errors
      << " malformed bounced, " << report.flushed << " flushed\n"
      << "oracle: " << report.oracle_checked << " checked, " << report.oracle_mismatches
      << " mismatches\n"
      << "stream fingerprint: " << fingerprint << "\n"
      << "wall: " << report.wall_seconds << "s (" << report.achieved_qps << " jobs/s)\n";
  for (const auto& failure : report.failures) out << "FAIL: " << failure << "\n";
  if (!options.report_json_path.empty()) {
    write_output_file(options.report_json_path, [&](std::ostream& file) {
      soak::write_report_json(file, soak_options, report);
    });
    out << "report written to " << options.report_json_path << "\n";
  }
  out << (report.ok() ? "soak PASSED\n" : "soak FAILED\n");
  return report.ok() ? 0 : 1;
}

svc::ServerOptions server_options_for(const Options& options) {
  svc::ServerOptions server_options;
  server_options.socket_path = options.socket_path;
  server_options.listen_address = options.listen_address;
  server_options.auth_token = options.auth_token;
  server_options.max_lease_ms = options.max_lease_ms;
  server_options.queue_depth = options.queue_depth;
  server_options.workers = options.workers;
  server_options.coalesce = options.coalesce;
  server_options.keep_versions = options.keep_versions;
  server_options.retain_jobs = options.retain_jobs;
  server_options.max_delta_chain = options.max_delta_chain;
  for (core::CheckOptions* check :
       {&server_options.engine.check, &server_options.engine.fix.check}) {
    check->set_backend = options.set_backend;
    check->incremental_smt = options.incremental_smt;
    check->timeout_ms = options.timeout_ms;
  }
  return server_options;
}

int serve_command(const Options& options, std::ostream& out) {
  if (options.socket_path.empty() && options.listen_address.empty()) {
    throw std::runtime_error("serve requires --socket and/or --listen");
  }
  auto network = config::load_network(options.network_path);

  svc::Server server{std::move(network), server_options_for(options)};
  server.start();
  out << "serving on ";
  if (!server.socket_path().empty()) out << server.socket_path();
  if (!server.listen_endpoint().empty()) {
    if (!server.socket_path().empty()) out << " and ";
    out << "tcp " << server.listen_endpoint();
  }
  out << " (" << options.workers << " workers, queue depth " << options.queue_depth
      << ")\n";
  out.flush();
  server.wait();
  out << "server drained, exiting\n";
  return 0;
}

int replica_command(const Options& options, std::ostream& out) {
  if (options.writer_endpoint.empty()) throw std::runtime_error("replica requires --writer");
  if (options.socket_path.empty() && options.listen_address.empty()) {
    throw std::runtime_error("replica requires --socket and/or --listen");
  }
  auto network = config::load_network(options.network_path);

  replica::ReplicaOptions replica_options;
  replica_options.writer = options.writer_endpoint;
  replica_options.token = options.auth_token;
  replica_options.lease_ms = options.replica_lease_ms;
  replica_options.serve = server_options_for(options);

  replica::Replica replica{std::move(network), std::move(replica_options)};
  replica.start();
  out << "replica of " << options.writer_endpoint << " serving on ";
  if (!replica.server().socket_path().empty()) out << replica.server().socket_path();
  if (!replica.server().listen_endpoint().empty()) {
    if (!replica.server().socket_path().empty()) out << " and ";
    out << "tcp " << replica.server().listen_endpoint();
  }
  out << "\n";
  out.flush();
  replica.wait();
  out << "replica drained, exiting\n";
  return 0;
}

int client_command(const Options& options, std::ostream& out) {
  if (options.socket_path.empty() && options.writer_endpoint.empty()) {
    throw std::runtime_error("client requires --socket ENDPOINT or --writer ENDPOINT");
  }
  if (!options.replica_endpoints.empty() && options.writer_endpoint.empty()) {
    throw std::runtime_error("client --replica requires --writer");
  }
  const std::string& method = options.client_method;
  if (method.empty()) {
    throw std::runtime_error(
        "client requires a METHOD (submit, status, result, cancel, apply, lease, "
        "renew, release, info, metrics, shutdown)");
  }
  const bool job_method =
      method == "status" || method == "result" || method == "cancel" || method == "apply";
  const bool lease_method = method == "lease" || method == "renew" || method == "release";
  if (!job_method && !lease_method && method != "submit" && method != "info" &&
      method != "metrics" && method != "shutdown") {
    throw std::runtime_error("unknown client method '" + method + "'");
  }
  if (job_method && !options.job_id) {
    throw std::runtime_error("client " + method + " requires --job N");
  }
  if ((method == "renew" || method == "release") && !options.lease_id) {
    throw std::runtime_error("client " + method + " requires --lease N");
  }
  if (method == "submit" && options.program_path.empty()) {
    throw std::runtime_error("client submit requires --program FILE");
  }

  svc::Json::Object params;
  if (method == "submit") {
    params.emplace("program", read_file(options.program_path));
    svc::Json::Object acls;
    for (const auto& [name, path] : options.acl_files) acls.emplace(name, read_file(path));
    if (!acls.empty()) params.emplace("acls", svc::Json{std::move(acls)});
    if (!options.priority.empty()) params.emplace("priority", options.priority);
    if (options.deadline_ms) params.emplace("deadline_ms", *options.deadline_ms);
    if (options.snapshot) params.emplace("snapshot", *options.snapshot);
  } else if (job_method) {
    params.emplace("job", *options.job_id);
    if (method == "result" && options.wait_ms) params.emplace("timeout_ms", *options.wait_ms);
  } else if (lease_method) {
    if (options.lease_id) params.emplace("lease", *options.lease_id);
    if (options.lease_ms_arg) params.emplace("lease_ms", *options.lease_ms_arg);
    if (options.version_arg) params.emplace("version", *options.version_arg);
  }

  // One socket = a plain client; --writer (+ --replica ...) = replica-aware
  // routing. Both expose the same call surface.
  std::optional<svc::Client> direct;
  std::optional<svc::RoutedClient> routed;
  if (!options.writer_endpoint.empty()) {
    svc::RouteOptions route;
    route.writer = options.writer_endpoint;
    route.replicas = options.replica_endpoints;
    route.client.token = options.auth_token;
    routed.emplace(std::move(route));
  } else {
    svc::ClientOptions client_options;
    client_options.token = options.auth_token;
    direct.emplace(options.socket_path, client_options);
  }
  const auto call = [&](const std::string& m, svc::Json p) {
    return routed ? routed->call(m, std::move(p)) : direct->call(m, std::move(p));
  };
  try {
    svc::Json result = call(method, svc::Json{std::move(params)});
    if (method == "metrics") {
      out << result.at("prometheus").as_string();
      return 0;
    }
    out << result.dump() << "\n";
    if (method == "submit" && options.wait) {
      svc::Json::Object wait_params;
      wait_params.emplace("job", result.at("job").as_u64());
      if (options.wait_ms) wait_params.emplace("timeout_ms", *options.wait_ms);
      const svc::Json final = call("result", svc::Json{std::move(wait_params)});
      out << final.dump() << "\n";
      const svc::Json& status = final.at("status");
      const svc::Json* outcome = status.get("outcome");
      const bool success = final.at("done").as_bool() &&
                           status.at("state").as_string() == "done" && outcome != nullptr &&
                           outcome->at("success").as_bool();
      if (success) {
        if (const svc::Json* plan = outcome->get("plan")) {
          out << "\nupdate plan:\n" << plan->as_string();
        }
      }
      return success ? 0 : 1;
    }
    return 0;
  } catch (const svc::RpcError& e) {
    // A server-side rejection is a job outcome, not a usage error.
    out << "rpc error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    const auto options = parse_args(args);
    if (options.command == "run") return run_command(options, out);
    if (options.command == "show") return show_command(options, out);
    if (options.command == "audit") return audit_command(options, out);
    if (options.command == "reach") return reach_command(options, out);
    if (options.command == "trace") return trace_command(options, out);
    if (options.command == "gen") return gen_command(options, out);
    if (options.command == "diff") return diff_command(options, out);
    if (options.command == "serve") return serve_command(options, out);
    if (options.command == "replica") return replica_command(options, out);
    if (options.command == "client") return client_command(options, out);
    if (options.command == "soak") return soak_command(options, out);
    err << "unknown command '" << options.command << "'\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n" << kUsage;
    return 2;
  }
}

}  // namespace jinjing::cli
