// The paper's Figure 1 motivating network, reconstructed exactly from the
// facts stated throughout §2–§5, as a reusable fixture for tests, examples
// and benchmarks.
//
// Routers A, B, C, D. Traffic k (k = 1..7) means "dst k.0.0.0/8". Interfaces
// and forwarding predicates (dst /8 octets carried):
//
//   external -> A1 (entry; ingress ACL: deny 6/8, permit all)
//   A1 -> A2 {2,3}        A2 -> B1 {2,3}        B1 -> B2 {2,3}
//   A1 -> A3 {4,5,6,7}    A3 -> C1 {4,5,6,7}    B2 -> C2 {2,3}
//   A1 -> A4 {1,2,3,4,5,6} A4 -> D1 {1,2,3,4,5,6}
//   C1 -> C3 {5,6,7} (C3 exits; C1 ingress ACL: deny 7/8, permit all)
//   C1 -> C4 {4}          C2 -> C4 {2,3}        C4 -> D2 {2,3,4}
//   D1 -> D3 {1,2,3,4,5,6} D2 -> D3 {2,3,4} (D3 exits;
//                          D2 ingress ACL: deny 1/8, deny 2/8, permit all)
//
// This reproduces every concrete statement in the paper:
//  * paths A1→D3: p0=<A1,A4,D1,D3>, p1=<A1,A3,C1,C4,D2,D3>,
//    p2=<A1,A2,B1,B2,C2,C4,D2,D3>; path A1→C3: <A1,A3,C1,C3>.
//  * FECs of traffic 1-7: {1}, {2,3}, {4}, {5,6}, {7}   (§4.1)
//  * [2]_FEC's feasible A1→D3 paths are exactly {p0, p2}  (§4.1 example)
//  * traffic 2 can cross A2→B1, traffic 1 cannot          (§5.3)
//  * AECs: [1]={1,2}, [3]={3,4,5}, [6]={6}, [7]={7}       (Table 3)
#pragma once

#include <vector>

#include "topo/paths.h"
#include "topo/topology.h"

namespace jinjing::gen {

struct Figure1 {
  topo::Topology topo;
  topo::Scope scope;            // all of A, B, C, D
  net::PacketSet traffic;       // dst 1.0.0.0/8 .. 7.0.0.0/8 entering at A1

  topo::DeviceId A = 0, B = 0, C = 0, D = 0;
  topo::InterfaceId A1 = 0, A2 = 0, A3 = 0, A4 = 0;
  topo::InterfaceId B1 = 0, B2 = 0;
  topo::InterfaceId C1 = 0, C2 = 0, C3 = 0, C4 = 0;
  topo::InterfaceId D1 = 0, D2 = 0, D3 = 0;

  /// The set "dst k.0.0.0/8" (all other fields free), k in [1, 7].
  [[nodiscard]] static net::PacketSet traffic_class(int k);

  /// A representative packet of traffic class k.
  [[nodiscard]] static net::Packet traffic_packet(int k);

  /// The §3.2 running-example update: move "deny 1/8, deny 2/8" from D2 to
  /// the top of A1, move "deny 7/8" from C1 to A3 (egress), and clear C1/D2.
  [[nodiscard]] topo::AclUpdate running_example_update() const;

  /// The §5 migration task: sources whose ACLs are removed...
  [[nodiscard]] std::vector<topo::AclSlot> migration_sources() const;
  /// ...and targets where new ACLs may be generated.
  [[nodiscard]] std::vector<topo::AclSlot> migration_targets() const;
};

/// Builds the fixture.
[[nodiscard]] Figure1 make_figure1();

}  // namespace jinjing::gen
