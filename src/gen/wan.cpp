#include "gen/wan.h"

#include <random>
#include <stdexcept>
#include <string>

#include "net/acl.h"

namespace jinjing::gen {

namespace {

using net::Acl;
using net::AclRule;

/// Dst-prefix packet set.
net::PacketSet dst_set(const net::Prefix& p) {
  net::HyperCube cube;
  cube.set_interval(net::Field::DstIp, p.interval());
  return net::PacketSet{cube};
}

net::PacketSet dst_union(const std::vector<net::Prefix>& prefixes) {
  net::PacketSet out;
  for (const auto& p : prefixes) out = out | dst_set(p);
  return out;
}

}  // namespace

WanParams small_wan() {
  WanParams p;
  p.cores = 2;
  p.aggs = 2;
  p.cells = 2;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 3;
  p.rules_per_acl = 24;
  p.seed = 11;
  return p;
}

WanParams medium_wan() {
  WanParams p;
  p.cores = 3;
  p.aggs = 3;
  p.cells = 3;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 4;
  p.rules_per_acl = 64;
  p.seed = 22;
  return p;
}

WanParams large_wan() {
  WanParams p;
  p.cores = 4;
  p.aggs = 6;
  p.cells = 6;
  p.gateways_per_cell = 4;
  p.prefixes_per_gateway = 6;
  p.rules_per_acl = 96;
  p.seed = 33;
  return p;
}

net::PacketSet Wan::gateway_dst_set(std::size_t gw) const {
  return dst_union(gateway_prefixes[gw]);
}

net::PacketSet Wan::cell_dst_set(std::size_t cell) const {
  net::PacketSet out;
  for (const auto gw : cell_members[cell]) out = out | gateway_dst_set(gw);
  return out;
}

std::size_t total_rules(const Wan& wan) {
  std::size_t total = 0;
  for (const auto slot : wan.topo.bound_slots()) total += wan.topo.acl(slot).size();
  return total;
}

Wan make_wan(const WanParams& params) {
  const std::size_t gw_count = params.cells * params.gateways_per_cell;
  if (gw_count * params.prefixes_per_gateway > 200) {
    throw std::invalid_argument("WAN address plan exceeds the 10.x/16 budget");
  }

  Wan wan;
  wan.params = params;
  auto& t = wan.topo;
  std::mt19937 rng(params.seed);

  // ---- Address plan: gateway g announces 10.(g*P+j).0.0/16. -------------
  wan.gateway_prefixes.resize(gw_count);
  for (std::size_t g = 0; g < gw_count; ++g) {
    for (std::size_t j = 0; j < params.prefixes_per_gateway; ++j) {
      const auto octet = static_cast<std::uint8_t>(g * params.prefixes_per_gateway + j);
      wan.gateway_prefixes[g].push_back(net::Prefix{net::Ipv4{10, octet, 0, 0}, 16});
    }
  }

  // ---- Devices & interfaces. --------------------------------------------
  for (std::size_t c = 0; c < params.cores; ++c) {
    wan.cores.push_back(t.add_device("core" + std::to_string(c)));
  }
  for (std::size_t a = 0; a < params.aggs; ++a) {
    wan.aggs.push_back(t.add_device("agg" + std::to_string(a)));
  }
  wan.cell_members.resize(params.cells);
  for (std::size_t cell = 0; cell < params.cells; ++cell) {
    for (std::size_t k = 0; k < params.gateways_per_cell; ++k) {
      wan.cell_members[cell].push_back(wan.gateways.size());
      wan.gateways.push_back(
          t.add_device("gw" + std::to_string(cell) + "_" + std::to_string(k)));
    }
  }

  // agg <-> gateway connectivity with the configured asymmetry.
  const auto connected = [&params](std::size_t a, std::size_t g) {
    return params.asymmetry == 0 || (a + g) % params.asymmetry != 1;
  };

  // Interfaces.
  std::vector<topo::InterfaceId> core_up(params.cores);
  std::vector<std::vector<topo::InterfaceId>> core_down(params.cores,
                                                        std::vector<topo::InterfaceId>(params.aggs));
  std::vector<std::vector<topo::InterfaceId>> agg_up(params.aggs,
                                                     std::vector<topo::InterfaceId>(params.cores));
  std::vector<std::unordered_map<std::size_t, topo::InterfaceId>> agg_down(params.aggs);
  std::vector<std::unordered_map<std::size_t, topo::InterfaceId>> gw_up(gw_count);
  std::vector<topo::InterfaceId> gw_host(gw_count);
  std::vector<topo::InterfaceId> gw_pe(gw_count);

  for (std::size_t c = 0; c < params.cores; ++c) {
    core_up[c] = t.add_interface(wan.cores[c], "up");
    t.mark_external(core_up[c]);
    wan.core_entry_ifaces.push_back(core_up[c]);
    for (std::size_t a = 0; a < params.aggs; ++a) {
      core_down[c][a] = t.add_interface(wan.cores[c], "d" + std::to_string(a));
    }
  }
  for (std::size_t a = 0; a < params.aggs; ++a) {
    for (std::size_t c = 0; c < params.cores; ++c) {
      agg_up[a][c] = t.add_interface(wan.aggs[a], "u" + std::to_string(c));
    }
    for (std::size_t g = 0; g < gw_count; ++g) {
      if (connected(a, g)) {
        agg_down[a][g] = t.add_interface(wan.aggs[a], "d" + std::to_string(g));
      }
    }
  }
  for (std::size_t g = 0; g < gw_count; ++g) {
    for (std::size_t a = 0; a < params.aggs; ++a) {
      if (connected(a, g)) {
        gw_up[g][a] = t.add_interface(wan.gateways[g], "u" + std::to_string(a));
      }
    }
    gw_host[g] = t.add_interface(wan.gateways[g], "host");
    gw_pe[g] = t.add_interface(wan.gateways[g], "pe");
    t.mark_external(gw_host[g]);
    t.mark_external(gw_pe[g]);
    wan.gateway_egress_slots.push_back({gw_host[g], topo::Dir::Out});
    wan.gateway_peer_ifaces.push_back(gw_pe[g]);
  }

  // ---- Forwarding edges (dst-based, downward). ---------------------------
  std::vector<net::PacketSet> gw_dst(gw_count);
  for (std::size_t g = 0; g < gw_count; ++g) gw_dst[g] = dst_union(wan.gateway_prefixes[g]);

  std::vector<net::PacketSet> via_agg(params.aggs);
  for (std::size_t a = 0; a < params.aggs; ++a) {
    for (std::size_t g = 0; g < gw_count; ++g) {
      if (connected(a, g)) via_agg[a] = via_agg[a] | gw_dst[g];
    }
  }

  for (std::size_t c = 0; c < params.cores; ++c) {
    for (std::size_t a = 0; a < params.aggs; ++a) {
      t.add_edge(core_up[c], core_down[c][a], via_agg[a]);
      t.add_edge(core_down[c][a], agg_up[a][c], via_agg[a]);
    }
  }
  for (std::size_t a = 0; a < params.aggs; ++a) {
    for (std::size_t c = 0; c < params.cores; ++c) {
      for (std::size_t g = 0; g < gw_count; ++g) {
        if (connected(a, g)) t.add_edge(agg_up[a][c], agg_down[a][g], gw_dst[g]);
      }
    }
    for (std::size_t g = 0; g < gw_count; ++g) {
      if (connected(a, g)) t.add_edge(agg_down[a][g], gw_up[g][a], gw_dst[g]);
    }
  }
  for (std::size_t g = 0; g < gw_count; ++g) {
    for (const auto& [a, up] : gw_up[g]) {
      t.add_edge(up, gw_host[g], gw_dst[g]);
    }
  }

  // Intra-cell peer fabric: traffic sourced in the cell enters a gateway on
  // "pe" and leaves through "host" — untouched by the ingress ACLs.
  net::PacketSet peer_traffic;
  for (std::size_t cell = 0; cell < params.cells; ++cell) {
    // Source interval of the whole cell (contiguous by the address plan).
    net::PacketSet cell_src;
    for (const auto gw : wan.cell_members[cell]) {
      for (const auto& p : wan.gateway_prefixes[gw]) {
        net::HyperCube c;
        c.set_interval(net::Field::SrcIp, p.interval());
        cell_src = cell_src | net::PacketSet{c};
      }
    }
    for (const auto gw : wan.cell_members[cell]) {
      const net::PacketSet pred = cell_src & gw_dst[gw];
      t.add_edge(gw_pe[gw], gw_host[gw], pred);
      peer_traffic = peer_traffic | pred;
    }
  }

  // ---- ACLs from the shared address plan. --------------------------------
  // Sub-/24 z-octets: 0..3 are gateway-protected subnets (denied at the
  // gateway), 4..7 are middle-layer filtered (denied at aggregation), so
  // control-open intents on protected subnets stay solvable at the
  // gateways.
  const auto plan_24 = [&](std::size_t g, std::size_t j, int z) {
    const auto octet = static_cast<std::uint8_t>(g * params.prefixes_per_gateway + j);
    return net::Prefix{net::Ipv4{10, octet, static_cast<std::uint8_t>(z), 0}, 24};
  };

  std::uniform_int_distribution<std::size_t> any_gw(0, gw_count - 1);
  std::uniform_int_distribution<std::size_t> any_pfx(0, params.prefixes_per_gateway - 1);
  std::uniform_int_distribution<int> mid_z(8, 255);
  std::uniform_int_distribution<int> port_slice(-1, 7);  // -1 = any port
  std::uniform_int_distribution<int> coin(0, 3);

  // Rules are drawn from a large (dst /24 x dport slice) space so that an
  // update's differential stays sparse relative to the rule population —
  // the regime the paper's production network is in. The z octets 0..3 are
  // reserved for the gateway-protected subnets the control-open scenario
  // targets.
  const auto sparse_deny = [&]() {
    net::Match m = net::Match::dst_prefix(plan_24(any_gw(rng), any_pfx(rng), mid_z(rng)));
    const int slice = port_slice(rng);
    if (slice >= 0) {
      const auto lo = static_cast<std::uint16_t>(slice * 8192);
      m.dport = net::PortRange{lo, static_cast<std::uint16_t>(lo + 8191)};
    }
    return AclRule::deny(m);
  };

  for (std::size_t a = 0; a < params.aggs; ++a) {
    std::vector<AclRule> rules;
    for (std::size_t r = 0; r + 1 < params.rules_per_acl; ++r) rules.push_back(sparse_deny());
    rules.push_back(AclRule::permit_all());
    const Acl acl{rules};
    for (std::size_t c = 0; c < params.cores; ++c) {
      const topo::AclSlot slot{agg_up[a][c], topo::Dir::In};
      t.bind_acl(slot, acl);
      wan.agg_slots.push_back(slot);
    }
  }

  for (std::size_t g = 0; g < gw_count; ++g) {
    std::vector<AclRule> rules;
    // Protect the gateway's own z in {0..3} subnets from the backbone side.
    for (std::size_t j = 0; j < params.prefixes_per_gateway; ++j) {
      for (int z = 0; z < 4; ++z) {
        if (rules.size() + 1 >= params.rules_per_acl) break;
        rules.push_back(AclRule::deny(net::Match::dst_prefix(plan_24(g, j, z))));
      }
    }
    // Pad with sparse deny rules like the aggregation layer's.
    while (rules.size() + 1 < params.rules_per_acl) rules.push_back(sparse_deny());
    rules.push_back(AclRule::permit_all());
    const Acl acl{rules};
    for (const auto& [a, up] : gw_up[g]) {
      const topo::AclSlot slot{up, topo::Dir::In};
      t.bind_acl(slot, acl);
      wan.gateway_slots.push_back(slot);
    }
  }

  // ---- Scope & entering traffic. -----------------------------------------
  wan.scope = topo::Scope::whole_network(t);
  net::PacketSet backbone;
  for (std::size_t g = 0; g < gw_count; ++g) backbone = backbone | gw_dst[g];
  wan.traffic = backbone | peer_traffic;
  return wan;
}

}  // namespace jinjing::gen
