// Synthetic layered WAN generator — the stand-in for the production
// networks of §8 (8% / 30% / 80% of Alibaba's WAN).
//
// Topology (traffic flows top-down from an external backbone):
//
//   backbone ──> core routers ──> aggregation routers ──> cell gateways ──> hosts
//
// plus an intra-cell fabric: each gateway also receives peer traffic from
// its cell on a separate external interface ("pe") that leaves through the
// gateway's host-side egress — the structure that makes §7 Scenario 2's
// ingress→egress ACL relocation non-trivial.
//
// The address plan is hierarchical (one /16 block per gateway, /24
// sub-blocks for protected subnets); ACL rules are drawn from the plan so
// rule overlap statistics mirror a "well-organized cloud-scale network"
// (converged traffic, polynomial AEC growth, no FEC explosion).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/topology.h"

namespace jinjing::gen {

struct WanParams {
  std::size_t cores = 2;
  std::size_t aggs = 2;
  std::size_t cells = 2;
  std::size_t gateways_per_cell = 2;
  std::size_t prefixes_per_gateway = 2;   // announced /16 blocks
  std::size_t rules_per_acl = 8;          // approximate ACL length
  /// Drop the agg->gateway link when (agg + gw) % asymmetry == 1, creating
  /// the path asymmetry §1 says defeats compression techniques. 0 = full
  /// bipartite.
  std::size_t asymmetry = 4;
  unsigned seed = 1;
};

/// The three calibrated sizes of §8.
[[nodiscard]] WanParams small_wan();
[[nodiscard]] WanParams medium_wan();
[[nodiscard]] WanParams large_wan();

struct Wan {
  topo::Topology topo;
  topo::Scope scope;        // the whole generated network
  net::PacketSet traffic;   // everything entering: backbone + intra-cell peer

  WanParams params;
  std::vector<topo::DeviceId> cores;
  std::vector<topo::DeviceId> aggs;
  std::vector<topo::DeviceId> gateways;               // cell-major order
  std::vector<std::vector<std::size_t>> cell_members; // per cell: gateway indices

  /// Announced /16 prefixes per gateway (indices align with `gateways`).
  std::vector<std::vector<net::Prefix>> gateway_prefixes;

  /// ACL-bearing slots by layer.
  std::vector<topo::AclSlot> agg_slots;      // middle layer (ingress)
  std::vector<topo::AclSlot> gateway_slots;  // lower layer (ingress, from aggs)
  /// Per gateway index: the host-side egress slot (no ACL initially).
  std::vector<topo::AclSlot> gateway_egress_slots;
  /// Per gateway index: entry interfaces.
  std::vector<topo::InterfaceId> gateway_peer_ifaces;  // intra-cell entry
  /// Backbone entry interfaces ("up" on each core).
  std::vector<topo::InterfaceId> core_entry_ifaces;

  /// Union of the prefixes announced by one gateway, as a packet set on dst.
  [[nodiscard]] net::PacketSet gateway_dst_set(std::size_t gw) const;
  /// Union over a whole cell.
  [[nodiscard]] net::PacketSet cell_dst_set(std::size_t cell) const;
};

[[nodiscard]] Wan make_wan(const WanParams& params);

/// Total ACL rules across all configured slots (a size metric for reports).
[[nodiscard]] std::size_t total_rules(const Wan& wan);

}  // namespace jinjing::gen
