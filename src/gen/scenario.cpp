#include "gen/scenario.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>

#include "net/acl_algebra.h"

namespace jinjing::gen {

namespace {

using net::AclRule;

/// One random mutation of a rule: flip, narrow, or replace.
AclRule mutate_rule(const AclRule& rule, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 2);
  AclRule out = rule;
  switch (kind(rng)) {
    case 0:  // flip the action
      out.action = net::negate(out.action);
      break;
    case 1:  // narrow the dst prefix by one bit (keeps the low half)
      if (out.match.dst.len < 32) {
        out.match.dst = net::Prefix{out.match.dst.addr,
                                    static_cast<std::uint8_t>(out.match.dst.len + 1)};
      } else {
        out.action = net::negate(out.action);
      }
      break;
    default:  // constrain to a port slice
      out.match.dport = net::PortRange{0, 1023};
      break;
  }
  return out;
}

std::string slot_ref(const Wan& wan, topo::AclSlot slot) {
  return wan.topo.qualified_name(slot.iface) +
         (slot.dir == topo::Dir::In ? "-in" : "-out");
}

}  // namespace

topo::AclUpdate perturb_rules(const Wan& wan, double fraction, unsigned seed) {
  std::mt19937 rng(seed);

  // Global mutation budget: `fraction` of all mutable rules network-wide
  // (the trailing permit-all of each ACL is preserved), at least one.
  std::vector<std::pair<topo::AclSlot, std::size_t>> sites;
  for (const auto slot : wan.topo.bound_slots()) {
    const net::Acl& acl = wan.topo.acl(slot);
    for (std::size_t i = 0; i + 1 < acl.size(); ++i) sites.emplace_back(slot, i);
  }
  if (sites.empty()) return {};
  std::shuffle(sites.begin(), sites.end(), rng);
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(sites.size()) + 0.5));

  topo::AclUpdate update;
  for (std::size_t s = 0; s < budget && s < sites.size(); ++s) {
    const auto& [slot, index] = sites[s];
    if (!update.contains(slot)) update.emplace(slot, wan.topo.acl(slot));
    net::Acl& acl = update.at(slot);
    std::vector<AclRule> rules = acl.rules();
    rules[index] = mutate_rule(rules[index], rng);
    acl = net::Acl{std::move(rules), acl.default_action()};
  }
  return update;
}

core::MigrationSpec migration_spec(const Wan& wan) {
  core::MigrationSpec spec;
  spec.sources = wan.agg_slots;
  spec.targets = wan.gateway_slots;
  return spec;
}

ControlOpenScenario control_open(const Wan& wan, std::size_t k, unsigned seed) {
  std::mt19937 rng(seed);
  ControlOpenScenario sc;
  sc.spec.targets = wan.gateway_slots;

  const std::size_t per_gw = wan.params.prefixes_per_gateway * 4;  // z in 0..3
  const std::size_t open_per_gw = std::min(k, per_gw);

  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    // Enumerate this gateway's protected /24s and sample without
    // replacement.
    std::vector<net::Prefix> protected_24s;
    for (std::size_t j = 0; j < wan.params.prefixes_per_gateway; ++j) {
      const auto octet =
          static_cast<std::uint8_t>(g * wan.params.prefixes_per_gateway + j);
      for (int z = 0; z < 4; ++z) {
        protected_24s.push_back(
            net::Prefix{net::Ipv4{10, octet, static_cast<std::uint8_t>(z), 0}, 24});
      }
    }
    std::shuffle(protected_24s.begin(), protected_24s.end(), rng);

    for (std::size_t i = 0; i < open_per_gw; ++i) {
      lai::ControlIntent intent;
      intent.from = wan.core_entry_ifaces;
      intent.to = {wan.gateway_egress_slots[g].iface};
      intent.verb = lai::ControlVerb::Open;
      intent.header = lai::header_set({lai::HeaderSpec::Kind::Dst, protected_24s[i]});
      sc.intents.push_back(std::move(intent));
      ++sc.opened;
    }
  }
  return sc;
}

topo::AclUpdate ingress_to_egress_update(const Wan& wan) {
  topo::AclUpdate update;
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    // All u-slots of a gateway share one ACL; take the first as the source.
    const net::Acl* acl = nullptr;
    for (const auto slot : wan.gateway_slots) {
      if (wan.topo.device_of(slot.iface) == wan.gateways[g]) {
        if (acl == nullptr) acl = &wan.topo.acl(slot);
        update.insert_or_assign(slot, net::Acl::permit_all());
      }
    }
    if (acl != nullptr) update.insert_or_assign(wan.gateway_egress_slots[g], *acl);
  }
  return update;
}

std::vector<topo::AclSlot> gateway_layer_allow(const Wan& wan) {
  std::vector<topo::AclSlot> allowed = wan.gateway_slots;
  allowed.insert(allowed.end(), wan.gateway_egress_slots.begin(),
                 wan.gateway_egress_slots.end());
  return allowed;
}

namespace {

std::string scope_all_line(const Wan& wan) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  return out;
}

std::string allow_gateways_line(const Wan& wan) {
  std::string out = "allow ";
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    if (g > 0) out += ", ";
    out += wan.topo.device_name(wan.gateways[g]);
  }
  return out;
}

/// The perturbation events: modify lines shipping named bodies, then the
/// requested commands ("check\n" or "check\nfix\n").
ChurnEvent perturb_event(const Wan& wan, double fraction, unsigned seed,
                         const std::string& commands) {
  const topo::AclUpdate update = perturb_rules(wan, fraction, seed);
  ChurnEvent event;
  std::string modifies;
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    const std::string name = "acl_" + std::to_string(i++);
    modifies += "modify " + slot_ref(wan, slot) + " to " + name + "\n";
    event.acls.emplace_back(name, acl);
  }
  event.program =
      scope_all_line(wan) + "\n" + allow_gateways_line(wan) + "\n" + modifies + commands;
  return event;
}

/// The apply events: rebind a rotating aggregation slot to its *base* ACL
/// with the first rule duplicated. Under first-match semantics that is a
/// semantic no-op — the check always passes, so the plan deploys — but the
/// rule lists differ, so every apply is a real version bump with a
/// non-trivial differential. Deriving the body from the base topology
/// (never from the run-time head) keeps the stream precomputable: replays
/// of one seed ship byte-identical bodies no matter how many applies have
/// already landed.
ChurnEvent apply_event(const Wan& wan, std::size_t rotation) {
  const topo::AclSlot slot = wan.agg_slots[rotation % wan.agg_slots.size()];
  const net::Acl& acl = wan.topo.acl(slot);
  std::vector<AclRule> rules{acl.rules().begin(), acl.rules().end()};
  rules.insert(rules.begin(), rules.front());
  ChurnEvent event;
  event.acls.emplace_back("dup", net::Acl{std::move(rules), acl.default_action()});
  event.program = scope_all_line(wan) + "\nmodify " + slot_ref(wan, slot) + " to dup\ncheck\n";
  event.apply_plan = true;
  return event;
}

/// Deliberately broken programs, one per failure family the submission
/// path must reject (parse error, unknown device, unknown interface,
/// unknown ACL name). All surface as invalid-params submission errors.
ChurnEvent malformed_event(const Wan& wan, unsigned variant) {
  ChurnEvent event;
  event.expect_submit_error = true;
  switch (variant % 4) {
    case 0:  // not LAI at all
      event.program = "this is not an intent language program\n";
      break;
    case 1:  // unknown device in scope
      event.program = "scope no_such_device\ncheck\n";
      break;
    case 2:  // unknown interface in a modify
      event.program =
          scope_all_line(wan) + "\nmodify no_such_device:0-in to permit_all\ncheck\n";
      break;
    default:  // unresolved ACL name
      event.program = scope_all_line(wan) + "\nmodify " +
                      slot_ref(wan, wan.agg_slots.front()) + " to acl_never_shipped\ncheck\n";
      break;
  }
  return event;
}

/// Mutually conflicting control lines over one protected /24: an `open`
/// and an `isolate` spanning the same traffic. Both orders are legal LAI —
/// the checker resolves the conflict by specification order (first
/// matching intent wins) — so the job must reach a definite verdict that
/// the oracle reproduces, never an error.
ChurnEvent conflicting_event(const Wan& wan, unsigned seed) {
  std::mt19937 rng(seed);
  const std::size_t g = rng() % wan.gateways.size();
  const auto octet = static_cast<std::uint8_t>(g * wan.params.prefixes_per_gateway +
                                               rng() % wan.params.prefixes_per_gateway);
  const net::Prefix prefix{net::Ipv4{10, octet, static_cast<std::uint8_t>(rng() % 4), 0}, 24};

  std::string froms;
  for (std::size_t i = 0; i < wan.core_entry_ifaces.size(); ++i) {
    if (i > 0) froms += ", ";
    froms += wan.topo.qualified_name(wan.core_entry_ifaces[i]);
  }
  const std::string to = wan.topo.qualified_name(wan.gateway_egress_slots[g].iface) + "-out";
  const std::string header = "dst " + net::to_string(prefix);

  const bool open_first = (rng() % 2) == 0;
  ChurnEvent event;
  event.program = scope_all_line(wan) + "\n";
  event.program += "control " + froms + " -> " + to + " " +
                   (open_first ? "open" : "isolate") + " " + header + "\n";
  event.program += "control " + froms + " -> " + to + " " +
                   (open_first ? "isolate" : "open") + " " + header + "\n";
  event.program += "check\n";
  return event;
}

/// A deterministic weighted pick that does not depend on the standard
/// library's unspecified distribution algorithms: the raw mt19937 draw is
/// scaled into [0, total) by hand, so every platform walks the same
/// cumulative-weight table the same way.
ChurnEventKind pick_kind(const ChurnMix& mix, std::mt19937& rng) {
  const std::pair<ChurnEventKind, double> table[] = {
      {ChurnEventKind::PureCheck, mix.pure_check},
      {ChurnEventKind::PendingCheck, mix.pending_check},
      {ChurnEventKind::CheckFix, mix.check_fix},
      {ChurnEventKind::Apply, mix.apply},
      {ChurnEventKind::ControlOpen, mix.control_open},
      {ChurnEventKind::Migration, mix.migration},
      {ChurnEventKind::Cancel, mix.cancel},
      {ChurnEventKind::Malformed, mix.malformed},
      {ChurnEventKind::Conflicting, mix.conflicting},
  };
  double total = 0;
  for (const auto& [kind, weight] : table) total += std::max(0.0, weight);
  if (total <= 0) return ChurnEventKind::PureCheck;
  const double u = (static_cast<double>(rng()) / 4294967296.0) * total;
  double cumulative = 0;
  for (const auto& [kind, weight] : table) {
    cumulative += std::max(0.0, weight);
    if (u < cumulative) return kind;
  }
  return ChurnEventKind::PureCheck;
}

std::uint64_t fnv64(std::uint64_t hash, std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

std::string_view to_string(ChurnEventKind kind) {
  switch (kind) {
    case ChurnEventKind::PureCheck: return "pure_check";
    case ChurnEventKind::PendingCheck: return "pending_check";
    case ChurnEventKind::CheckFix: return "check_fix";
    case ChurnEventKind::Apply: return "apply";
    case ChurnEventKind::ControlOpen: return "control_open";
    case ChurnEventKind::Migration: return "migration";
    case ChurnEventKind::Cancel: return "cancel";
    case ChurnEventKind::Malformed: return "malformed";
    case ChurnEventKind::Conflicting: return "conflicting";
  }
  return "unknown";
}

std::vector<ChurnEvent> churn_stream(const Wan& wan, const ChurnStreamParams& params) {
  std::mt19937 rng(params.seed);
  std::vector<ChurnEvent> events;
  events.reserve(params.events);
  std::size_t apply_rotation = 0;
  for (std::size_t i = 0; i < params.events; ++i) {
    // One kind draw plus one per-event seed per iteration, whatever the
    // kind consumes — the stream prefix is stable under mix changes that
    // keep earlier draws in the same bucket.
    const ChurnEventKind kind = pick_kind(params.mix, rng);
    const unsigned event_seed = static_cast<unsigned>(rng());
    ChurnEvent event;
    switch (kind) {
      case ChurnEventKind::PureCheck:
        event.program = scope_all_line(wan) + "\ncheck\n";
        break;
      case ChurnEventKind::PendingCheck:
        event = perturb_event(wan, params.perturb_fraction, event_seed, "check\n");
        break;
      case ChurnEventKind::CheckFix:
        event = perturb_event(wan, params.perturb_fraction, event_seed, "check\nfix\n");
        break;
      case ChurnEventKind::Apply:
        event = apply_event(wan, apply_rotation++);
        break;
      case ChurnEventKind::ControlOpen: {
        const ControlOpenScenario sc = control_open(wan, params.control_open_k, event_seed);
        event.program = control_open_program(wan, sc);
        break;
      }
      case ChurnEventKind::Migration:
        event.program = migration_program(wan);
        break;
      case ChurnEventKind::Cancel:
        break;  // no program: the harness targets a recent job
      case ChurnEventKind::Malformed:
        event = malformed_event(wan, event_seed);
        break;
      case ChurnEventKind::Conflicting:
        event = conflicting_event(wan, event_seed);
        break;
    }
    event.index = i;
    event.kind = kind;
    events.push_back(std::move(event));
  }
  return events;
}

std::string describe(const ChurnEvent& event) {
  std::uint64_t hash = fnv64(14695981039346656037ull, event.program);
  for (const auto& [name, acl] : event.acls) {
    hash = fnv64(hash, name);
    for (const auto& rule : acl.rules()) {
      hash = fnv64(hash, net::to_string(rule));
    }
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx", static_cast<unsigned long long>(hash));
  return std::to_string(event.index) + " " + std::string(to_string(event.kind)) + " " + digest;
}

std::string check_fix_program(const Wan& wan, const topo::AclUpdate& update) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    if (g > 0) out += ", ";
    out += wan.topo.device_name(wan.gateways[g]);
  }
  out += "\n";
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    out += "modify " + slot_ref(wan, slot) + " to acl_" + std::to_string(i++) + "\n";
  }
  out += "check\nfix\n";
  return out;
}

std::string migration_program(const Wan& wan) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t i = 0; i < wan.gateway_slots.size(); ++i) {
    if (i > 0) out += ", ";
    out += slot_ref(wan, wan.gateway_slots[i]);
  }
  out += "\n";
  for (const auto slot : wan.agg_slots) {
    out += "modify " + slot_ref(wan, slot) + " to permit_all\n";
  }
  out += "generate\n";
  return out;
}

std::string control_open_program(const Wan& wan, const ControlOpenScenario& sc) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t i = 0; i < wan.gateway_slots.size(); ++i) {
    if (i > 0) out += ", ";
    out += slot_ref(wan, wan.gateway_slots[i]);
  }
  out += "\n";
  for (const auto& intent : sc.intents) {
    out += "control ";
    for (std::size_t i = 0; i < intent.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += wan.topo.qualified_name(intent.from[i]);
    }
    out += " -> ";
    for (std::size_t i = 0; i < intent.to.size(); ++i) {
      if (i > 0) out += ", ";
      out += wan.topo.qualified_name(intent.to[i]) + "-out";
    }
    // Every generated intent header is a single dst cube.
    const auto matches = net::matches_for_cube(intent.header.cubes().front());
    out += " open dst " + net::to_string(matches.front().dst) + "\n";
  }
  out += "generate\n";
  return out;
}

}  // namespace jinjing::gen
