#include "gen/scenario.h"

#include <algorithm>
#include <random>

#include "net/acl_algebra.h"

namespace jinjing::gen {

namespace {

using net::AclRule;

/// One random mutation of a rule: flip, narrow, or replace.
AclRule mutate_rule(const AclRule& rule, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 2);
  AclRule out = rule;
  switch (kind(rng)) {
    case 0:  // flip the action
      out.action = net::negate(out.action);
      break;
    case 1:  // narrow the dst prefix by one bit (keeps the low half)
      if (out.match.dst.len < 32) {
        out.match.dst = net::Prefix{out.match.dst.addr,
                                    static_cast<std::uint8_t>(out.match.dst.len + 1)};
      } else {
        out.action = net::negate(out.action);
      }
      break;
    default:  // constrain to a port slice
      out.match.dport = net::PortRange{0, 1023};
      break;
  }
  return out;
}

std::string slot_ref(const Wan& wan, topo::AclSlot slot) {
  return wan.topo.qualified_name(slot.iface) +
         (slot.dir == topo::Dir::In ? "-in" : "-out");
}

}  // namespace

topo::AclUpdate perturb_rules(const Wan& wan, double fraction, unsigned seed) {
  std::mt19937 rng(seed);

  // Global mutation budget: `fraction` of all mutable rules network-wide
  // (the trailing permit-all of each ACL is preserved), at least one.
  std::vector<std::pair<topo::AclSlot, std::size_t>> sites;
  for (const auto slot : wan.topo.bound_slots()) {
    const net::Acl& acl = wan.topo.acl(slot);
    for (std::size_t i = 0; i + 1 < acl.size(); ++i) sites.emplace_back(slot, i);
  }
  if (sites.empty()) return {};
  std::shuffle(sites.begin(), sites.end(), rng);
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(sites.size()) + 0.5));

  topo::AclUpdate update;
  for (std::size_t s = 0; s < budget && s < sites.size(); ++s) {
    const auto& [slot, index] = sites[s];
    if (!update.contains(slot)) update.emplace(slot, wan.topo.acl(slot));
    net::Acl& acl = update.at(slot);
    std::vector<AclRule> rules = acl.rules();
    rules[index] = mutate_rule(rules[index], rng);
    acl = net::Acl{std::move(rules), acl.default_action()};
  }
  return update;
}

core::MigrationSpec migration_spec(const Wan& wan) {
  core::MigrationSpec spec;
  spec.sources = wan.agg_slots;
  spec.targets = wan.gateway_slots;
  return spec;
}

ControlOpenScenario control_open(const Wan& wan, std::size_t k, unsigned seed) {
  std::mt19937 rng(seed);
  ControlOpenScenario sc;
  sc.spec.targets = wan.gateway_slots;

  const std::size_t per_gw = wan.params.prefixes_per_gateway * 4;  // z in 0..3
  const std::size_t open_per_gw = std::min(k, per_gw);

  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    // Enumerate this gateway's protected /24s and sample without
    // replacement.
    std::vector<net::Prefix> protected_24s;
    for (std::size_t j = 0; j < wan.params.prefixes_per_gateway; ++j) {
      const auto octet =
          static_cast<std::uint8_t>(g * wan.params.prefixes_per_gateway + j);
      for (int z = 0; z < 4; ++z) {
        protected_24s.push_back(
            net::Prefix{net::Ipv4{10, octet, static_cast<std::uint8_t>(z), 0}, 24});
      }
    }
    std::shuffle(protected_24s.begin(), protected_24s.end(), rng);

    for (std::size_t i = 0; i < open_per_gw; ++i) {
      lai::ControlIntent intent;
      intent.from = wan.core_entry_ifaces;
      intent.to = {wan.gateway_egress_slots[g].iface};
      intent.verb = lai::ControlVerb::Open;
      intent.header = lai::header_set({lai::HeaderSpec::Kind::Dst, protected_24s[i]});
      sc.intents.push_back(std::move(intent));
      ++sc.opened;
    }
  }
  return sc;
}

topo::AclUpdate ingress_to_egress_update(const Wan& wan) {
  topo::AclUpdate update;
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    // All u-slots of a gateway share one ACL; take the first as the source.
    const net::Acl* acl = nullptr;
    for (const auto slot : wan.gateway_slots) {
      if (wan.topo.device_of(slot.iface) == wan.gateways[g]) {
        if (acl == nullptr) acl = &wan.topo.acl(slot);
        update.insert_or_assign(slot, net::Acl::permit_all());
      }
    }
    if (acl != nullptr) update.insert_or_assign(wan.gateway_egress_slots[g], *acl);
  }
  return update;
}

std::vector<topo::AclSlot> gateway_layer_allow(const Wan& wan) {
  std::vector<topo::AclSlot> allowed = wan.gateway_slots;
  allowed.insert(allowed.end(), wan.gateway_egress_slots.begin(),
                 wan.gateway_egress_slots.end());
  return allowed;
}

std::string check_fix_program(const Wan& wan, const topo::AclUpdate& update) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t g = 0; g < wan.gateways.size(); ++g) {
    if (g > 0) out += ", ";
    out += wan.topo.device_name(wan.gateways[g]);
  }
  out += "\n";
  std::size_t i = 0;
  for (const auto& [slot, acl] : update) {
    out += "modify " + slot_ref(wan, slot) + " to acl_" + std::to_string(i++) + "\n";
  }
  out += "check\nfix\n";
  return out;
}

std::string migration_program(const Wan& wan) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t i = 0; i < wan.gateway_slots.size(); ++i) {
    if (i > 0) out += ", ";
    out += slot_ref(wan, wan.gateway_slots[i]);
  }
  out += "\n";
  for (const auto slot : wan.agg_slots) {
    out += "modify " + slot_ref(wan, slot) + " to permit_all\n";
  }
  out += "generate\n";
  return out;
}

std::string control_open_program(const Wan& wan, const ControlOpenScenario& sc) {
  std::string out = "scope ";
  for (topo::DeviceId d = 0; d < wan.topo.device_count(); ++d) {
    if (d > 0) out += ", ";
    out += wan.topo.device_name(d);
  }
  out += "\nallow ";
  for (std::size_t i = 0; i < wan.gateway_slots.size(); ++i) {
    if (i > 0) out += ", ";
    out += slot_ref(wan, wan.gateway_slots[i]);
  }
  out += "\n";
  for (const auto& intent : sc.intents) {
    out += "control ";
    for (std::size_t i = 0; i < intent.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += wan.topo.qualified_name(intent.from[i]);
    }
    out += " -> ";
    for (std::size_t i = 0; i < intent.to.size(); ++i) {
      if (i > 0) out += ", ";
      out += wan.topo.qualified_name(intent.to[i]) + "-out";
    }
    // Every generated intent header is a single dst cube.
    const auto matches = net::matches_for_cube(intent.header.cubes().front());
    out += " open dst " + net::to_string(matches.front().dst) + "\n";
  }
  out += "generate\n";
  return out;
}

}  // namespace jinjing::gen
