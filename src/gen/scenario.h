// Workload recipes for the §7–§8 experiments, built on the synthetic WAN.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/placement.h"
#include "gen/wan.h"
#include "lai/sema.h"
#include "net/acl.h"

namespace jinjing::gen {

/// Figures 4a/4b: randomly perturb `fraction` of the rules in every
/// configured ACL (flip action / narrow prefix / delete / insert).
/// Deterministic for a given seed. The trailing permit-all is preserved.
[[nodiscard]] topo::AclUpdate perturb_rules(const Wan& wan, double fraction, unsigned seed);

/// Figure 4c: the common migration — move all ACLs from the middle
/// (aggregation) layer down to the gateway layer.
[[nodiscard]] core::MigrationSpec migration_spec(const Wan& wan);

/// Figure 4d: control-open scenario — open `k` gateway-protected /24
/// subnets per gateway (clamped to availability) and regenerate the
/// gateway ACLs. `intents` feed check/generate; `spec` lists the targets.
struct ControlOpenScenario {
  std::vector<lai::ControlIntent> intents;
  core::MigrationSpec spec;
  std::size_t opened = 0;  // total prefixes opened
};
[[nodiscard]] ControlOpenScenario control_open(const Wan& wan, std::size_t k, unsigned seed);

/// §7 Scenario 2: relocate every gateway's ingress ACL to its host-side
/// egress interface — subtly breaking intra-cell (pe) reachability.
[[nodiscard]] topo::AclUpdate ingress_to_egress_update(const Wan& wan);

/// The slots fix may touch in the scenario-2 repair (the gateway layer).
[[nodiscard]] std::vector<topo::AclSlot> gateway_layer_allow(const Wan& wan);

// ---- Continuous-churn event streams (the soak harness's workload). -------

/// One event class of the churn mix. Check-shaped events carry a full LAI
/// program; Cancel carries nothing (the harness targets a recently
/// submitted job); Malformed must be rejected at submission.
enum class ChurnEventKind : std::uint8_t {
  PureCheck,     // whole-network check of the pinned head (coalescable)
  PendingCheck,  // modify(perturbation) + check — the delta-cache shape
  CheckFix,      // perturbation check + fix (batch priority, full engine)
  Apply,         // consistency-preserving rebind; deploy the plan on success
  ControlOpen,   // control ... open burst + generate
  Migration,     // aggregation -> gateway migration + generate
  Cancel,        // cancel a recently submitted job
  Malformed,     // unparsable / unresolvable LAI: a submission error
  Conflicting,   // mutually conflicting control lines (priority-resolved)
};

[[nodiscard]] std::string_view to_string(ChurnEventKind kind);

/// Relative weights of the event classes (they need not sum to 1; zero
/// removes a class from the stream entirely).
struct ChurnMix {
  double pure_check = 0.30;
  double pending_check = 0.24;
  double check_fix = 0.04;
  double apply = 0.12;
  double control_open = 0.03;
  double migration = 0.02;
  double cancel = 0.10;
  double malformed = 0.07;
  double conflicting = 0.08;
};

struct ChurnStreamParams {
  std::size_t events = 500;
  unsigned seed = 1;
  ChurnMix mix;
  double perturb_fraction = 0.05;  // PendingCheck / CheckFix mutation budget
  std::size_t control_open_k = 1;  // prefixes opened per gateway
};

struct ChurnEvent {
  std::size_t index = 0;
  ChurnEventKind kind = ChurnEventKind::PureCheck;
  std::string program;                                  // empty for Cancel
  std::vector<std::pair<std::string, net::Acl>> acls;   // named bodies
  bool expect_submit_error = false;  // Malformed: submission must fail
  bool apply_plan = false;           // Apply: deploy the plan once verified
};

/// The seeded churn stream: `params.events` events drawn from the mix.
/// Deterministic — the same (wan, params) always produces byte-identical
/// programs and ACL bodies, so a soak run is replayable from its seed.
/// Apply-event bodies are derived from the *base* topology (semantically
/// no-op rebinds under first-match), so the stream never depends on the
/// run-time version history it will itself create.
[[nodiscard]] std::vector<ChurnEvent> churn_stream(const Wan& wan,
                                                   const ChurnStreamParams& params);

/// One-line fingerprint "index kind fnv64(program+bodies)" for stream
/// dumps; two runs of the same seed must produce identical dumps.
[[nodiscard]] std::string describe(const ChurnEvent& event);

// ---- LAI program emitters (Table 5: program line counts). ----------------

/// The check+fix program for a perturbation update (modify one line per
/// perturbed slot).
[[nodiscard]] std::string check_fix_program(const Wan& wan, const topo::AclUpdate& update);

/// The migration program (modify sources to permit-all, generate at
/// targets).
[[nodiscard]] std::string migration_program(const Wan& wan);

/// The control-open program (one control line per opened prefix group).
[[nodiscard]] std::string control_open_program(const Wan& wan, const ControlOpenScenario& sc);

}  // namespace jinjing::gen
