// Workload recipes for the §7–§8 experiments, built on the synthetic WAN.
#pragma once

#include <string>
#include <vector>

#include "core/placement.h"
#include "gen/wan.h"
#include "lai/sema.h"

namespace jinjing::gen {

/// Figures 4a/4b: randomly perturb `fraction` of the rules in every
/// configured ACL (flip action / narrow prefix / delete / insert).
/// Deterministic for a given seed. The trailing permit-all is preserved.
[[nodiscard]] topo::AclUpdate perturb_rules(const Wan& wan, double fraction, unsigned seed);

/// Figure 4c: the common migration — move all ACLs from the middle
/// (aggregation) layer down to the gateway layer.
[[nodiscard]] core::MigrationSpec migration_spec(const Wan& wan);

/// Figure 4d: control-open scenario — open `k` gateway-protected /24
/// subnets per gateway (clamped to availability) and regenerate the
/// gateway ACLs. `intents` feed check/generate; `spec` lists the targets.
struct ControlOpenScenario {
  std::vector<lai::ControlIntent> intents;
  core::MigrationSpec spec;
  std::size_t opened = 0;  // total prefixes opened
};
[[nodiscard]] ControlOpenScenario control_open(const Wan& wan, std::size_t k, unsigned seed);

/// §7 Scenario 2: relocate every gateway's ingress ACL to its host-side
/// egress interface — subtly breaking intra-cell (pe) reachability.
[[nodiscard]] topo::AclUpdate ingress_to_egress_update(const Wan& wan);

/// The slots fix may touch in the scenario-2 repair (the gateway layer).
[[nodiscard]] std::vector<topo::AclSlot> gateway_layer_allow(const Wan& wan);

// ---- LAI program emitters (Table 5: program line counts). ----------------

/// The check+fix program for a perturbation update (modify one line per
/// perturbed slot).
[[nodiscard]] std::string check_fix_program(const Wan& wan, const topo::AclUpdate& update);

/// The migration program (modify sources to permit-all, generate at
/// targets).
[[nodiscard]] std::string migration_program(const Wan& wan);

/// The control-open program (one control line per opened prefix group).
[[nodiscard]] std::string control_open_program(const Wan& wan, const ControlOpenScenario& sc);

}  // namespace jinjing::gen
