#include "gen/fixtures.h"

#include <initializer_list>

#include "net/acl.h"

namespace jinjing::gen {

using net::Acl;
using net::PacketSet;

net::PacketSet Figure1::traffic_class(int k) {
  net::HyperCube cube;
  cube.set_interval(net::Field::DstIp,
                    net::parse_prefix(std::to_string(k) + ".0.0.0/8").interval());
  return PacketSet{cube};
}

net::Packet Figure1::traffic_packet(int k) {
  return net::packet_to(std::to_string(k) + ".0.0.1");
}

namespace {

/// Union of dst-/8 traffic classes.
PacketSet classes(std::initializer_list<int> ks) {
  PacketSet out;
  for (const int k : ks) out = out | Figure1::traffic_class(k);
  return out;
}

}  // namespace

Figure1 make_figure1() {
  Figure1 f;
  auto& t = f.topo;

  f.A = t.add_device("A");
  f.B = t.add_device("B");
  f.C = t.add_device("C");
  f.D = t.add_device("D");

  f.A1 = t.add_interface(f.A, "1");
  f.A2 = t.add_interface(f.A, "2");
  f.A3 = t.add_interface(f.A, "3");
  f.A4 = t.add_interface(f.A, "4");
  f.B1 = t.add_interface(f.B, "1");
  f.B2 = t.add_interface(f.B, "2");
  f.C1 = t.add_interface(f.C, "1");
  f.C2 = t.add_interface(f.C, "2");
  f.C3 = t.add_interface(f.C, "3");
  f.C4 = t.add_interface(f.C, "4");
  f.D1 = t.add_interface(f.D, "1");
  f.D2 = t.add_interface(f.D, "2");
  f.D3 = t.add_interface(f.D, "3");

  t.mark_external(f.A1);
  t.mark_external(f.C3);
  t.mark_external(f.D3);

  // Intra-device forwarding.
  t.add_edge(f.A1, f.A2, classes({2, 3}));
  t.add_edge(f.A1, f.A3, classes({4, 5, 6, 7}));
  t.add_edge(f.A1, f.A4, classes({1, 2, 3, 4, 5, 6}));
  t.add_edge(f.B1, f.B2, classes({2, 3}));
  t.add_edge(f.C1, f.C3, classes({5, 6, 7}));
  t.add_edge(f.C1, f.C4, classes({4}));
  t.add_edge(f.C2, f.C4, classes({2, 3}));
  t.add_edge(f.D1, f.D3, classes({1, 2, 3, 4, 5, 6}));
  t.add_edge(f.D2, f.D3, classes({2, 3, 4}));

  // Inter-device links.
  t.add_edge(f.A2, f.B1, classes({2, 3}));
  t.add_edge(f.A3, f.C1, classes({4, 5, 6, 7}));
  t.add_edge(f.A4, f.D1, classes({1, 2, 3, 4, 5, 6}));
  t.add_edge(f.B2, f.C2, classes({2, 3}));
  t.add_edge(f.C4, f.D2, classes({2, 3, 4}));

  // ACLs (Figure 1).
  t.bind_acl(f.A1, topo::Dir::In, Acl::parse({"deny dst 6.0.0.0/8", "permit all"}));
  t.bind_acl(f.C1, topo::Dir::In, Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  t.bind_acl(f.D2, topo::Dir::In,
             Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "permit all"}));

  f.scope = topo::Scope::whole_network(t);
  f.traffic = classes({1, 2, 3, 4, 5, 6, 7});
  return f;
}

topo::AclUpdate Figure1::running_example_update() const {
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{A1, topo::Dir::In},
                 Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "deny dst 6.0.0.0/8",
                             "permit all"}));
  update.emplace(topo::AclSlot{A3, topo::Dir::Out},
                 Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  update.emplace(topo::AclSlot{C1, topo::Dir::In}, Acl::permit_all());
  update.emplace(topo::AclSlot{D2, topo::Dir::In}, Acl::permit_all());
  return update;
}

std::vector<topo::AclSlot> Figure1::migration_sources() const {
  return {topo::AclSlot{A1, topo::Dir::In}, topo::AclSlot{D2, topo::Dir::In}};
}

std::vector<topo::AclSlot> Figure1::migration_targets() const {
  return {topo::AclSlot{C1, topo::Dir::In}, topo::AclSlot{C2, topo::Dir::In},
          topo::AclSlot{D1, topo::Dir::In}};
}

}  // namespace jinjing::gen
