#include "replica/replica.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <ostream>
#include <utility>

#include "svc/client.h"
#include "svc/repl_wire.h"

namespace jinjing::replica {

using Clock = std::chrono::steady_clock;

Replica::Replica(config::NetworkFile network, ReplicaOptions options)
    : pristine_(std::move(network)), options_(std::move(options)) {
  options_.serve.read_only = true;
  options_.serve.writer_endpoint = options_.writer;
  if (options_.serve.auth_token.empty()) options_.serve.auth_token = options_.token;
  options_.serve.extra_metrics = [this](std::ostream& out) { emit_metrics(out); };
}

Replica::~Replica() {
  request_shutdown();
  if (started_) wait();
}

void Replica::build_server() {
  config::NetworkFile copy = pristine_;
  auto server = std::make_unique<svc::Server>(std::move(copy), options_.serve);
  // Warm the FEC cache and plan cache from the pristine network before the
  // listener opens: after a divergence rebuild the first differential
  // checks would otherwise pay full refinement serially under live load.
  server->prewarm();
  server->start();
  // Pin whatever the kernel picked, so a rebuild after a writer-restart
  // reset comes back on the same port (clients keep their address).
  if (!server->listen_endpoint().empty()) {
    options_.serve.listen_address = server->listen_endpoint();
  }
  const std::lock_guard<std::mutex> lock{server_mutex_};
  server_ = std::move(server);
}

void Replica::start() {
  if (started_) return;
  build_server();
  chain_ = svc::network_fingerprint(pristine_);
  applied_.store(1, std::memory_order_relaxed);
  writer_head_.store(1, std::memory_order_relaxed);
  started_ = true;
  follow_thread_ = std::thread([this] { follow_loop(); });
}

void Replica::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock{stop_mutex_};
    stop_.store(true, std::memory_order_relaxed);
  }
  stop_cv_.notify_all();
}

void Replica::wait() {
  {
    std::unique_lock<std::mutex> lock{stop_mutex_};
    stop_cv_.wait(lock, [this] { return stop_.load(std::memory_order_relaxed); });
  }
  if (follow_thread_.joinable()) follow_thread_.join();
  // The follower is gone, so no reset can swap the server anymore.
  std::unique_ptr<svc::Server> server;
  {
    const std::lock_guard<std::mutex> lock{server_mutex_};
    server = std::move(server_);
  }
  if (server) {
    server->request_shutdown();
    server->wait();
  }
}

svc::Server& Replica::server() {
  const std::lock_guard<std::mutex> lock{server_mutex_};
  return *server_;
}

void Replica::emit_metrics(std::ostream& out) const {
  const std::uint64_t applied = applied_.load(std::memory_order_relaxed);
  const std::uint64_t head = writer_head_.load(std::memory_order_relaxed);
  out << "# TYPE jinjing_replica_applied_version gauge\n"
      << "jinjing_replica_applied_version " << applied << "\n"
      << "# TYPE jinjing_replica_writer_head gauge\n"
      << "jinjing_replica_writer_head " << head << "\n"
      << "# TYPE jinjing_replica_lag gauge\n"
      << "jinjing_replica_lag " << (head > applied ? head - applied : 0) << "\n"
      << "# TYPE jinjing_replica_connected gauge\n"
      << "jinjing_replica_connected " << (connected_.load(std::memory_order_relaxed) ? 1 : 0)
      << "\n"
      << "# TYPE jinjing_replica_resets gauge\n"
      << "jinjing_replica_resets " << resets_.load(std::memory_order_relaxed) << "\n";
}

void Replica::reset_server() {
  resets_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<svc::Server> old;
  {
    const std::lock_guard<std::mutex> lock{server_mutex_};
    old = std::move(server_);
  }
  if (old) {
    old->request_shutdown();
    old->wait();
    old.reset();
  }
  build_server();
  chain_ = svc::network_fingerprint(pristine_);
  applied_.store(1, std::memory_order_relaxed);
}

void Replica::follow_loop() {
  std::uint64_t delay = options_.backoff_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    // An operator shutting the local server down (RPC `shutdown`) shuts
    // the whole replica down. Only the follower itself tears the server
    // down otherwise (reset), and that swap completes before this check
    // runs again.
    {
      const std::lock_guard<std::mutex> lock{server_mutex_};
      if (server_ && server_->shutdown_requested()) {
        request_shutdown();
        return;
      }
    }

    const std::uint64_t before = applied_.load(std::memory_order_relaxed);
    const bool soft = follow_once();
    if (stop_.load(std::memory_order_relaxed)) return;
    if (!soft) reset_server();

    // Progress resets the backoff; repeated failures stretch it.
    delay = applied_.load(std::memory_order_relaxed) > before || !soft
                ? options_.backoff_ms
                : std::min(delay * 2, options_.backoff_cap_ms);
    std::unique_lock<std::mutex> lock{stop_mutex_};
    stop_cv_.wait_for(lock, std::chrono::milliseconds(delay),
                      [this] { return stop_.load(std::memory_order_relaxed); });
  }
}

bool Replica::follow_once() {
  svc::ClientOptions copts;
  copts.token = options_.token;
  copts.max_retries = 0;  // follow_loop owns the reconnect policy

  // Two connections: one turns into the record stream, the other stays
  // request/response for lease renewals.
  std::optional<svc::Client> stream;
  std::optional<svc::Client> control;
  try {
    stream.emplace(options_.writer, copts);
    if (options_.lease_ms > 0) control.emplace(options_.writer, copts);
  } catch (const svc::ClientError&) {
    return true;  // writer away; back off and redial
  }

  const std::uint64_t from = applied_.load(std::memory_order_relaxed);
  svc::Json header;
  try {
    svc::Json::Object params;
    params.emplace("from", from);
    params.emplace("fingerprint", svc::hash_hex(svc::network_fingerprint(pristine_)));
    header = stream->call("subscribe", svc::Json{std::move(params)});
  } catch (const svc::RpcError& error) {
    // 409: we are ahead of the writer (it restarted). 410: the log no
    // longer covers us. 412: different base network (also a writer swap).
    // All three mean the local replay is unsalvageable.
    return !(error.code() == 409 || error.code() == 410 || error.code() == 412);
  } catch (const svc::ClientError&) {
    return true;
  }
  writer_head_.store(header.at("head").as_u64(), std::memory_order_relaxed);
  connected_.store(true, std::memory_order_relaxed);

  // The writer-side lease pins our applied version so the writer neither
  // trims it nor lets the replication log slide past us while we hold on.
  std::optional<std::uint64_t> lease;
  auto last_renew = Clock::now();
  if (control) {
    try {
      svc::Json::Object params;
      params.emplace("version", from);
      params.emplace("lease_ms", options_.lease_ms);
      lease = control->call("lease", svc::Json{std::move(params)}).at("lease").as_u64();
    } catch (const std::exception&) {
      // Unleased is degraded, not broken: a long disconnect now risks a
      // 410 reset instead of a cheap catch-up.
    }
  }
  const auto renew_lease = [&](std::uint64_t version) {
    if (!lease) return;
    try {
      svc::Json::Object params;
      params.emplace("lease", *lease);
      params.emplace("lease_ms", options_.lease_ms);
      params.emplace("version", version);
      (void)control->call("renew", svc::Json{std::move(params)});
      last_renew = Clock::now();
    } catch (const std::exception&) {
      lease.reset();
    }
  };

  bool soft = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      const std::lock_guard<std::mutex> lock{server_mutex_};
      if (server_ && server_->shutdown_requested()) {
        request_shutdown();
        break;
      }
    }

    std::optional<std::string> line;
    try {
      line = stream->read_line(200);
    } catch (const svc::ClientError&) {
      break;  // stream dropped; resubscribe from applied_
    }

    if (line) {
      svc::Json record;
      try {
        record = svc::Json::parse(*line);
      } catch (const svc::JsonError&) {
        soft = false;  // framing is broken; start over from scratch
        break;
      }
      if (record.get("error") != nullptr) {
        // The in-stream 410: the log was trimmed out from under us.
        soft = false;
        break;
      }
      std::uint64_t version = 0;
      topo::AclUpdate update;
      std::uint64_t expected = 0;
      try {
        version = record.at("version").as_u64();
        const svc::Json& encoded = record.at("update");
        expected = svc::chain_hash(chain_, version, encoded);
        if (svc::parse_hash_hex(record.at("hash").as_string()) != expected) {
          soft = false;  // divergence: writer state is not our state
          break;
        }
        const svc::SnapshotPtr head = server_->store().head();
        update = svc::decode_update(*head->topo, encoded);
      } catch (const std::exception&) {
        soft = false;
        break;
      }
      const svc::SnapshotPtr next = server_->apply_replicated(version - 1, update);
      if (!next || next->version != version) {
        soft = false;
        break;
      }
      chain_ = expected;
      applied_.store(version, std::memory_order_relaxed);
      if (version > writer_head_.load(std::memory_order_relaxed)) {
        writer_head_.store(version, std::memory_order_relaxed);
      }
      renew_lease(version);
    } else if (lease && Clock::now() - last_renew >
                            std::chrono::milliseconds(options_.lease_ms / 3 + 1)) {
      renew_lease(applied_.load(std::memory_order_relaxed));
    }
  }

  connected_.store(false, std::memory_order_relaxed);
  if (lease) {
    try {
      svc::Json::Object params;
      params.emplace("lease", *lease);
      (void)control->call("release", svc::Json{std::move(params)});
    } catch (const std::exception&) {
    }
  }
  return soft;
}

}  // namespace jinjing::replica
