// A read-only verifier replica.
//
// One writer owns the network state; replicas shadow it and absorb the
// check load. A Replica embeds a full svc::Server in read-only mode —
// warm FecCache, incremental planner, batch coalescing, the works — and a
// follower thread that subscribes to the writer's replication stream
// (svc/repl_wire.h) and replays every applied update into the local
// StateStore. Checks served locally therefore run against bit-identical
// topology snapshots at the same version numbers as the writer's;
// fix/generate submissions and apply are bounced with a 421 naming the
// writer.
//
// Safety over availability: every record's hash is re-verified against
// the local chain state before it is applied. Any divergence — hash
// mismatch, fingerprint mismatch (412), a subscription gap the writer can
// no longer cover (410), or a writer restart (409 / chain reset) — tears
// the local server down and rebuilds it from the pristine network file on
// the SAME endpoints, then resubscribes from scratch. A replica can be
// wrong about freshness (it lags), never about content.
//
// While connected, the follower holds one lease on the writer pinned to
// its applied version (renewed with each replayed record and on an idle
// timer), so the writer keeps that version resolvable — a briefly
// disconnected replica can re-subscribe from where it was instead of
// resetting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "config/topology_format.h"
#include "svc/server.h"

namespace jinjing::replica {

struct ReplicaOptions {
  /// The writer's endpoint (Unix socket path or host:port). Required.
  std::string writer;
  /// Shared token for the writer's TCP transport (and, via serve.auth_token,
  /// the replica's own TCP listener).
  std::string token;
  /// Writer-side lease window pinning the replica's applied version. The
  /// follower renews at a third of this. 0 disables the lease.
  std::uint64_t lease_ms = 10000;
  /// Resubscribe backoff after a lost writer connection (doubles per
  /// attempt up to the cap).
  std::uint64_t backoff_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  /// Tuning for the local server (transports, workers, coalesce, caches).
  /// read_only and writer_endpoint are overridden by the replica.
  svc::ServerOptions serve;
};

class Replica {
 public:
  /// `network` must be the same network file the writer was started from;
  /// the fingerprint handshake enforces this at subscribe time.
  Replica(config::NetworkFile network, ReplicaOptions options);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Starts the local read-only server and the follower thread.
  void start();
  /// Blocks until request_shutdown(), then tears everything down.
  void wait();
  /// Stops the follower and drains the local server; idempotent.
  void request_shutdown();

  /// The local server (valid between start() and wait() returning). The
  /// endpoint accessors are stable across writer-restart resets.
  [[nodiscard]] svc::Server& server();

  [[nodiscard]] std::uint64_t applied_version() const {
    return applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t writer_head() const {
    return writer_head_.load(std::memory_order_relaxed);
  }
  /// Records known to exist on the writer but not yet replayed locally.
  [[nodiscard]] std::uint64_t lag() const {
    const std::uint64_t head = writer_head();
    const std::uint64_t applied = applied_version();
    return head > applied ? head - applied : 0;
  }
  /// Full rebuilds forced by divergence or writer restart (test hook).
  [[nodiscard]] std::uint64_t resets() const {
    return resets_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool connected() const {
    return connected_.load(std::memory_order_relaxed);
  }

 private:
  void follow_loop();
  /// One subscribe session against the writer. Returns true when the
  /// connection merely dropped (resubscribe in place) and false when the
  /// local state must be rebuilt before trying again.
  bool follow_once();
  /// Tears down the local server and rebuilds it from the pristine
  /// network file, reusing the endpoints already bound.
  void reset_server();
  void build_server();
  void emit_metrics(std::ostream& out) const;

  config::NetworkFile pristine_;
  ReplicaOptions options_;

  std::mutex server_mutex_;  // guards server_ swaps during reset
  std::unique_ptr<svc::Server> server_;

  std::uint64_t chain_ = 0;  // local mirror of the record hash chain
  std::thread follow_thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> applied_{1};
  std::atomic<std::uint64_t> writer_head_{1};
  std::atomic<std::uint64_t> resets_{0};
  bool started_ = false;
};

}  // namespace jinjing::replica
