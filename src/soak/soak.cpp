#include "soak/soak.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "config/acl_format.h"
#include "config/topology_format.h"
#include "core/deploy.h"
#include "core/engine.h"
#include "svc/client.h"

namespace jinjing::soak {

namespace {

using Clock = std::chrono::steady_clock;

/// What the harness remembers about one submitted stream job: enough to
/// re-run it on the oracle (program + bodies via the event pointer, the
/// snapshot pinned at submission) and the terminal answer the service gave.
struct Record {
  std::uint64_t id = 0;
  const gen::ChurnEvent* event = nullptr;
  svc::SnapshotPtr snapshot;
  svc::Version snapshot_version = 0;
  std::string state;  // terminal state string, filled when resolved
  bool success = false;
  std::string plan;
};

/// Counters and failure lines shared by the sessions; one mutex, touched
/// briefly per event.
class Totals {
 public:
  explicit Totals(SoakReport& report) : report_(report) {}

  template <typename Fn>
  void update(Fn&& fn) {
    const std::lock_guard<std::mutex> lock{mutex_};
    fn(report_);
  }

  void failure(std::string text) {
    const std::lock_guard<std::mutex> lock{mutex_};
    if (report_.failures.size() < kMaxFailures) {
      report_.failures.push_back(std::move(text));
    } else if (report_.failures.size() == kMaxFailures) {
      report_.failures.push_back("... further failures truncated");
    }
  }

 private:
  static constexpr std::size_t kMaxFailures = 40;
  std::mutex mutex_;
  SoakReport& report_;
};

/// Dials the server over whichever transport the run exercises.
svc::Client make_client(svc::Server& server, const SoakOptions& options) {
  if (options.tcp) {
    svc::ClientOptions copts;
    copts.token = options.server.auth_token;
    return svc::Client{server.listen_endpoint(), copts};
  }
  return svc::Client{server.socket_path()};
}

svc::Json submit_params(const gen::ChurnEvent& event) {
  svc::Json::Object params;
  params.emplace("program", event.program);
  if (!event.acls.empty()) {
    svc::Json::Object acls;
    for (const auto& [name, acl] : event.acls) acls.emplace(name, config::print_acl(acl));
    params.emplace("acls", svc::Json{std::move(acls)});
  }
  return svc::Json{std::move(params)};
}

/// Event wait for a terminal result: the server's result method blocks on
/// the scheduler's condition variable; the bounded timeout_ms only re-arms
/// the wait so a wedged server cannot hang the harness silently forever.
svc::Json wait_result(svc::Client& client, std::uint64_t id) {
  while (true) {
    svc::Json::Object wait;
    wait.emplace("job", id);
    wait.emplace("timeout_ms", std::uint64_t{60000});
    svc::Json result = client.call("result", svc::Json{std::move(wait)});
    if (result.at("done").as_bool()) return result;
  }
}

void resolve(svc::Client& client, Record& record, Totals& totals) {
  svc::Json result;
  try {
    result = wait_result(client, record.id);
  } catch (const svc::RpcError& e) {
    if (e.code() == 404) {
      // The job finished and retention rotated it out before this session
      // got around to reading it — the documented contract for a client
      // that waits too long, so it is excluded from the oracle, never a
      // failure.
      record.state = "evicted";
      totals.update([](SoakReport& r) { ++r.evicted_before_read; });
      return;
    }
    throw;
  }
  const svc::Json& status = result.at("status");
  record.state = status.at("state").as_string();
  record.snapshot_version = status.at("snapshot").as_u64();
  if (record.state == "done") {
    record.success = status.at("outcome").at("success").as_bool();
    record.plan = status.at("outcome").at("plan").as_string();
    totals.update([](SoakReport& r) { ++r.completed; });
  } else if (record.state == "cancelled") {
    totals.update([](SoakReport& r) { ++r.cancelled; });
  } else {
    totals.update([](SoakReport& r) { ++r.failed; });
    totals.failure("job " + std::to_string(record.id) + " (event " +
                   std::to_string(record.event->index) + ", " +
                   std::string(gen::to_string(record.event->kind)) + ") failed: " +
                   status.at("outcome").at("error").as_string());
  }
}

/// One client session: replays its round-robin share of the stream in
/// order, keeps at most `window` jobs outstanding (resolving the oldest
/// gives natural backpressure), paces submissions against the global QPS
/// schedule, and pins every job's snapshot for the oracle pass.
void run_session(svc::Server& server, const SoakOptions& options,
                 const std::vector<gen::ChurnEvent>& stream, std::size_t session,
                 std::size_t pass_base, Clock::time_point start,
                 std::vector<Record>& out, Totals& totals) {
  svc::Client client = make_client(server, options);
  std::deque<std::size_t> outstanding;  // indices into `out`
  std::uint64_t last_submitted = 0;

  const auto resolve_oldest = [&] {
    resolve(client, out[outstanding.front()], totals);
    outstanding.pop_front();
  };

  for (std::size_t i = session; i < stream.size(); i += options.sessions) {
    const gen::ChurnEvent& event = stream[i];
    if (options.target_qps > 0) {
      const double offset =
          static_cast<double>(pass_base + event.index) / options.target_qps;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(offset)));
    }

    if (event.kind == gen::ChurnEventKind::Cancel) {
      if (last_submitted == 0) continue;
      svc::Json::Object cancel;
      cancel.emplace("job", last_submitted);
      try {
        (void)client.call("cancel", svc::Json{std::move(cancel)});
      } catch (const svc::RpcError& e) {
        // 404: the job finished long enough ago that retention already
        // rotated it out — a legal answer, not a soak failure.
        if (e.code() != 404) {
          totals.failure("cancel of job " + std::to_string(last_submitted) +
                         " errored: " + e.what());
        }
      }
      totals.update([](SoakReport& r) { ++r.cancel_attempts; });
      continue;
    }

    if (event.expect_submit_error) {
      try {
        (void)client.call("submit", submit_params(event));
        totals.failure("malformed event " + std::to_string(event.index) +
                       " was accepted instead of rejected");
      } catch (const svc::RpcError& e) {
        if (e.code() == -32602) {
          totals.update([](SoakReport& r) { ++r.expected_submit_errors; });
        } else {
          totals.failure("malformed event " + std::to_string(event.index) +
                         " bounced with unexpected code: " + e.what());
        }
      }
      continue;
    }

    // Submit with admission backpressure: a 429 means the queue is full,
    // so resolve the oldest outstanding job (an event wait on its result)
    // and try again.
    svc::Json submitted;
    bool admitted = false;
    for (int attempt = 0; attempt < 2000 && !admitted; ++attempt) {
      try {
        submitted = client.call("submit", submit_params(event));
        admitted = true;
      } catch (const svc::RpcError& e) {
        if (e.code() != 429) {
          totals.failure("event " + std::to_string(event.index) + " (" +
                         std::string(gen::to_string(event.kind)) +
                         ") rejected: " + e.what());
          break;
        }
        totals.update([](SoakReport& r) { ++r.rejected; });
        if (!outstanding.empty()) {
          resolve_oldest();
        } else {
          // Other sessions own the backlog; yield briefly and retry.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    }
    if (!admitted) {
      if (event.kind != gen::ChurnEventKind::Malformed) {
        totals.failure("event " + std::to_string(event.index) + " never admitted");
      }
      continue;
    }

    Record record;
    record.id = submitted.at("job").as_u64();
    record.event = &event;
    // Pin the snapshot through the job object (still retained — it was
    // admitted microseconds ago) so the oracle can re-run the job even
    // after the store trims the version and retention drops the job.
    if (const svc::JobPtr job = server.scheduler().find(record.id)) {
      record.snapshot = job->snapshot();
    }
    last_submitted = record.id;
    totals.update([](SoakReport& r) { ++r.submitted; });

    out.push_back(std::move(record));
    outstanding.push_back(out.size() - 1);

    if (event.apply_plan) {
      // Deploy the verified plan. Resolve everything outstanding first so
      // the apply decision reads this event's own result.
      while (!outstanding.empty()) resolve_oldest();
      Record& applied = out.back();
      if (applied.state == "done" && applied.success) {
        try {
          svc::Json::Object apply;
          apply.emplace("job", applied.id);
          (void)client.call("apply", svc::Json{std::move(apply)});
          totals.update([](SoakReport& r) { ++r.applies; });
        } catch (const svc::RpcError& e) {
          if (e.code() == 409 || e.code() == 404) {
            // 409: another session's apply advanced the head after this job
            // pinned it — the conflict discipline working as designed.
            // 404: retention evicted the job between its result and the
            // apply (an eviction race in the harness, not a server fault).
            totals.update([](SoakReport& r) { ++r.apply_conflicts; });
          } else {
            totals.failure("apply of job " + std::to_string(applied.id) +
                           " errored: " + e.what());
          }
        }
      } else if (applied.state == "done" && !applied.success) {
        totals.failure("apply event " + std::to_string(event.index) +
                       " verified inconsistent; duplicate-rule rebinds must pass");
      }
    } else {
      while (outstanding.size() >= options.window) resolve_oldest();
    }
  }
  while (!outstanding.empty()) resolve_oldest();
}

MetricSample take_sample(svc::Client& client, std::string label) {
  const std::string text = client.call("metrics").at("prometheus").as_string();
  MetricSample sample;
  sample.label = std::move(label);
  sample.queued = prometheus_value(text, "jinjing_svc_queued_jobs");
  sample.running = prometheus_value(text, "jinjing_svc_running_jobs");
  sample.head_version = prometheus_value(text, "jinjing_svc_head_version");
  sample.versions = prometheus_value(text, "jinjing_svc_versions");
  sample.live_snapshots = prometheus_value(text, "jinjing_svc_live_snapshots");
  sample.tracked_jobs = prometheus_value(text, "jinjing_svc_tracked_jobs");
  sample.fec_entries = prometheus_value(text, "jinjing_svc_fec_entries");
  sample.cached_plans = prometheus_value(text, "jinjing_svc_cached_plans");
  sample.cached_obligations = prometheus_value(text, "jinjing_svc_cached_obligations_live");
  return sample;
}

/// Sequential fresh-engine oracle over one pass's records. Mirrors the
/// server's input path exactly: the ACL bodies are printed and re-parsed
/// the same way the wire carries them.
void run_oracle(const std::vector<Record>& records, SoakReport& report, Totals& totals) {
  for (const Record& record : records) {
    if (record.state != "done") continue;
    if (!record.snapshot || record.snapshot->version != record.snapshot_version) {
      totals.failure("job " + std::to_string(record.id) +
                     ": pinned snapshot unavailable for the oracle");
      continue;
    }
    core::Engine oracle{*record.snapshot->topo};
    lai::AclLibrary library;
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, acl] : record.event->acls) {
      library.insert_or_assign(name, config::parse_acl_auto(config::print_acl(acl)));
    }
    const core::EngineReport oracle_report =
        oracle.run_program(record.event->program, library, record.snapshot->traffic);
    ++report.oracle_checked;
    const std::string oracle_plan =
        core::format_plan(*record.snapshot->topo, oracle_report.final_update);
    if (oracle_report.success() != record.success || oracle_plan != record.plan) {
      ++report.oracle_mismatches;
      totals.failure("oracle mismatch: job " + std::to_string(record.id) + " (event " +
                     std::to_string(record.event->index) + ", " +
                     std::string(gen::to_string(record.event->kind)) + ", snapshot " +
                     std::to_string(record.snapshot_version) + "): service success=" +
                     (record.success ? "true" : "false") + " oracle success=" +
                     (oracle_report.success() ? "true" : "false") +
                     (oracle_plan != record.plan ? ", plans differ" : ""));
    }
  }
}

/// Rotates every churn job out of the retained-terminal window with
/// exactly retain_jobs trivial head checks. Afterwards nothing but flush
/// jobs pin snapshots, so the leak invariants can demand a return to
/// baseline-shaped counts instead of bounds polluted by retention pins.
void run_flush(svc::Server& server, const SoakOptions& options,
               const std::string& check_program, Totals& totals) {
  svc::Client client = make_client(server, options);
  const std::size_t count = server.scheduler().retain_terminal();
  std::deque<std::uint64_t> outstanding;
  for (std::size_t i = 0; i < count; ++i) {
    bool admitted = false;
    while (!admitted) {
      svc::Json::Object params;
      params.emplace("program", check_program);
      try {
        const svc::Json submitted = client.call("submit", svc::Json{std::move(params)});
        outstanding.push_back(submitted.at("job").as_u64());
        admitted = true;
      } catch (const svc::RpcError& e) {
        if (e.code() != 429 || outstanding.empty()) {
          totals.failure(std::string("flush submission errored: ") + e.what());
          return;
        }
        (void)wait_result(client, outstanding.front());
        outstanding.pop_front();
      }
    }
    totals.update([](SoakReport& r) { ++r.flushed; });
    while (outstanding.size() >= 16) {
      const svc::Json result = wait_result(client, outstanding.front());
      outstanding.pop_front();
      if (result.at("status").at("state").as_string() != "done") {
        totals.failure("flush job did not complete: " + result.dump());
      }
    }
  }
  while (!outstanding.empty()) {
    (void)wait_result(client, outstanding.front());
    outstanding.pop_front();
  }
}

std::uint64_t fnv64(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

void check_invariants(const SoakOptions& options, SoakReport& report, Totals& totals) {
  const std::size_t keep = options.server.keep_versions;
  for (const MetricSample& sample : report.samples) {
    // Retention may never be exceeded while the server runs: tracked jobs
    // beyond queued+running are terminal, and terminal jobs are bounded by
    // retain_jobs at every finish.
    if (sample.tracked_jobs >
        options.server.retain_jobs + sample.queued + sample.running) {
      totals.failure("invariant: sample '" + sample.label + "' tracks " +
                     std::to_string(sample.tracked_jobs) + " jobs > retain_jobs " +
                     std::to_string(options.server.retain_jobs) + " + in-flight");
    }
  }

  const MetricSample& final_sample = report.samples.back();
  const auto breach = [&](const std::string& what, std::uint64_t got, std::uint64_t bound) {
    if (got > bound) {
      totals.failure("invariant: final " + what + " = " + std::to_string(got) +
                     " exceeds bound " + std::to_string(bound));
    }
  };
  breach("queued", final_sample.queued, 0);
  breach("running", final_sample.running, 0);
  breach("tracked_jobs", final_sample.tracked_jobs, options.server.retain_jobs);
  breach("versions", final_sample.versions, keep);
  // After the flush every retained job pins the head, so live snapshots
  // fall back to the version index (+1 for a transient client pin).
  breach("live_snapshots", final_sample.live_snapshots, keep + 1);
  breach("cached_plans", final_sample.cached_plans, 4 * keep + 4);
  breach("fec_entries", final_sample.fec_entries, 4 * final_sample.live_snapshots + 4);

  // The RSS proxy may breathe with the load, but growth across *every*
  // epoch — through the oracle releases and the retention flush — is the
  // signature of a leak, not of churn.
  if (report.samples.size() >= 4) {
    bool monotone = true;
    for (std::size_t i = 1; i < report.samples.size(); ++i) {
      if (report.samples[i].leak_proxy() <= report.samples[i - 1].leak_proxy()) {
        monotone = false;
        break;
      }
    }
    const std::uint64_t first = report.samples.front().leak_proxy();
    const std::uint64_t last = report.samples.back().leak_proxy();
    if (monotone && last > first + first / 2 + 16) {
      totals.failure("invariant: leak proxy grew monotonically across all " +
                     std::to_string(report.samples.size()) + " epochs (" +
                     std::to_string(first) + " -> " + std::to_string(last) + ")");
    }
  }
}

}  // namespace

std::uint64_t prometheus_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  return std::stoull(text.substr(pos + needle.size()));
}

SoakReport run_soak(const SoakOptions& options_in) {
  SoakOptions options = options_in;
  if (options.sessions == 0) options.sessions = 1;
  if (options.window == 0) options.window = 1;
  // The sessions' outstanding windows must fit the admission bound, or
  // every session spins on 429 against its own backlog.
  options.server.queue_depth =
      std::max(options.server.queue_depth, options.sessions * options.window + 4);
  // A job must still be queryable when its session finally waits on it:
  // every session resolves within `window` submissions, so the retained
  // window must cover all sessions' outstanding jobs with slack.
  options.server.retain_jobs =
      std::max(options.server.retain_jobs, 2 * options.sessions * options.window);
  if (options.server.socket_path.empty()) {
    options.server.socket_path =
        (std::filesystem::temp_directory_path() /
         ("jinjing_soak_" + std::to_string(::getpid()) + "_" +
          std::to_string(options.stream.seed) + ".sock"))
            .string();
  }
  if (options.tcp) {
    if (options.server.listen_address.empty()) {
      options.server.listen_address = "127.0.0.1:0";
    }
    if (options.server.auth_token.empty()) options.server.auth_token = "jinjing-soak";
  }

  const gen::Wan wan = gen::make_wan(options.wan);
  config::NetworkFile network;
  network.topo = wan.topo;
  network.traffic = wan.traffic;

  svc::Server server{std::move(network), options.server};
  server.start();

  SoakReport report;
  Totals totals{report};
  report.stream_fingerprint = 14695981039346656037ull;

  svc::Client control = make_client(server, options);
  report.samples.push_back(take_sample(control, "baseline"));

  const Clock::time_point start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::string check_program;  // the flush workload, built once
  while (report.passes == 0 ||
         (options.min_duration_seconds > 0 && elapsed() < options.min_duration_seconds)) {
    gen::ChurnStreamParams pass_params = options.stream;
    // Per-pass seed derivation keeps multi-pass runs deterministic end to
    // end while never replaying identical perturbations back to back.
    pass_params.seed = options.stream.seed + 1000003u * static_cast<unsigned>(report.passes);
    const std::vector<gen::ChurnEvent> stream = gen::churn_stream(wan, pass_params);
    for (const gen::ChurnEvent& event : stream) {
      report.stream_fingerprint = fnv64(report.stream_fingerprint, gen::describe(event));
    }
    if (check_program.empty()) {
      for (const gen::ChurnEvent& event : stream) {
        if (event.kind == gen::ChurnEventKind::PureCheck) {
          check_program = event.program;
          break;
        }
      }
      if (check_program.empty()) check_program = "check\n";  // mix without pure checks
    }

    const std::size_t pass_base = report.passes * options.stream.events;
    std::vector<std::vector<Record>> session_records(options.sessions);
    std::vector<std::thread> threads;
    threads.reserve(options.sessions);
    for (std::size_t s = 0; s < options.sessions; ++s) {
      threads.emplace_back([&, s] {
        run_session(server, options, stream, s, pass_base, start, session_records[s],
                    totals);
      });
    }
    for (std::thread& thread : threads) thread.join();
    report.events += stream.size();
    ++report.passes;

    if (options.oracle) {
      for (const std::vector<Record>& records : session_records) {
        run_oracle(records, report, totals);
      }
    }
    session_records.clear();  // drop the snapshot pins before sampling
    report.samples.push_back(take_sample(control, "pass " + std::to_string(report.passes)));
    if (options.log != nullptr) {
      *options.log << "pass " << report.passes << ": events " << report.events
                   << ", submitted " << report.submitted << ", completed "
                   << report.completed << ", applies " << report.applies << ", oracle "
                   << report.oracle_checked << "/" << report.oracle_mismatches
                   << " mismatches, " << elapsed() << "s\n";
      options.log->flush();
    }
  }

  run_flush(server, options, check_program, totals);
  report.samples.push_back(take_sample(control, "final"));

  report.wall_seconds = elapsed();
  report.achieved_qps = report.wall_seconds > 0
                            ? static_cast<double>(report.submitted) / report.wall_seconds
                            : 0;
  check_invariants(options, report, totals);

  server.request_shutdown();
  server.wait();
  std::filesystem::remove(options.server.socket_path);
  return report;
}

void write_report_json(std::ostream& out, const SoakOptions& options,
                       const SoakReport& report) {
  svc::Json::Object doc;
  {
    svc::Json::Object config;
    config.emplace("events_per_pass", static_cast<std::uint64_t>(options.stream.events));
    config.emplace("seed", static_cast<std::uint64_t>(options.stream.seed));
    config.emplace("sessions", static_cast<std::uint64_t>(options.sessions));
    config.emplace("target_qps", options.target_qps);
    config.emplace("min_duration_seconds", options.min_duration_seconds);
    config.emplace("workers", static_cast<std::uint64_t>(options.server.workers));
    config.emplace("coalesce", static_cast<std::uint64_t>(options.server.coalesce));
    config.emplace("keep_versions", static_cast<std::uint64_t>(options.server.keep_versions));
    config.emplace("retain_jobs", static_cast<std::uint64_t>(options.server.retain_jobs));
    config.emplace("max_delta_chain",
                   static_cast<std::uint64_t>(options.server.max_delta_chain));
    config.emplace("oracle", options.oracle);
    config.emplace("transport", options.tcp ? "tcp" : "unix");
    doc.emplace("config", svc::Json{std::move(config)});
  }
  {
    svc::Json::Object totals;
    totals.emplace("passes", static_cast<std::uint64_t>(report.passes));
    totals.emplace("events", static_cast<std::uint64_t>(report.events));
    totals.emplace("submitted", static_cast<std::uint64_t>(report.submitted));
    totals.emplace("completed", static_cast<std::uint64_t>(report.completed));
    totals.emplace("cancelled", static_cast<std::uint64_t>(report.cancelled));
    totals.emplace("failed", static_cast<std::uint64_t>(report.failed));
    totals.emplace("cancel_attempts", static_cast<std::uint64_t>(report.cancel_attempts));
    totals.emplace("applies", static_cast<std::uint64_t>(report.applies));
    totals.emplace("apply_conflicts", static_cast<std::uint64_t>(report.apply_conflicts));
    totals.emplace("rejected", static_cast<std::uint64_t>(report.rejected));
    totals.emplace("evicted_before_read",
                   static_cast<std::uint64_t>(report.evicted_before_read));
    totals.emplace("expected_submit_errors",
                   static_cast<std::uint64_t>(report.expected_submit_errors));
    totals.emplace("flushed", static_cast<std::uint64_t>(report.flushed));
    doc.emplace("totals", svc::Json{std::move(totals)});
  }
  {
    svc::Json::Object oracle;
    oracle.emplace("checked", static_cast<std::uint64_t>(report.oracle_checked));
    oracle.emplace("mismatches", static_cast<std::uint64_t>(report.oracle_mismatches));
    doc.emplace("oracle", svc::Json{std::move(oracle)});
  }
  {
    svc::Json::Array samples;
    for (const MetricSample& sample : report.samples) {
      svc::Json::Object s;
      s.emplace("label", sample.label);
      s.emplace("queued", sample.queued);
      s.emplace("running", sample.running);
      s.emplace("head_version", sample.head_version);
      s.emplace("versions", sample.versions);
      s.emplace("live_snapshots", sample.live_snapshots);
      s.emplace("tracked_jobs", sample.tracked_jobs);
      s.emplace("fec_entries", sample.fec_entries);
      s.emplace("cached_plans", sample.cached_plans);
      s.emplace("cached_obligations", sample.cached_obligations);
      s.emplace("leak_proxy", sample.leak_proxy());
      samples.push_back(svc::Json{std::move(s)});
    }
    doc.emplace("samples", svc::Json{std::move(samples)});
  }
  {
    svc::Json::Array failures;
    for (const std::string& failure : report.failures) {
      failures.push_back(svc::Json{failure});
    }
    doc.emplace("failures", svc::Json{std::move(failures)});
  }
  doc.emplace("wall_seconds", report.wall_seconds);
  doc.emplace("achieved_qps", report.achieved_qps);
  {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(report.stream_fingerprint));
    doc.emplace("stream_fingerprint", std::string(digest));
  }
  doc.emplace("ok", report.ok());
  out << svc::Json{std::move(doc)}.dump() << "\n";
}

}  // namespace jinjing::soak
