// The continuous-churn soak harness.
//
// A soak run boots a live svc::Server in-process, replays a seeded
// gen::churn_stream against it through concurrent svc::Client sessions
// (optionally paced to a target QPS), and holds the service to two
// independent standards at once:
//
//  * Differential oracle — every job that reaches Done is re-run on a
//    fresh single-threaded core::Engine against its pinned snapshot; the
//    verdict and the formatted plan must match bit for bit. Coalesced
//    batches, delta-cache rebases and concurrent applies are never allowed
//    to change a client-visible answer.
//  * Metric-leak watchdogs — `metrics` snapshots are diffed across epochs:
//    tracked jobs must respect the retention bound, and after a retention
//    flush the live-snapshot count, version index, FEC-cache entries and
//    delta-cache entries must all fall back to baseline-shaped bounds. A
//    leak-proxy sum that only ever grows across every epoch fails the run.
//
// The stream is replayable: the same (wan params, stream params) produce
// byte-identical events, so any soak failure can be reproduced from the
// seed printed in its report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gen/scenario.h"
#include "gen/wan.h"
#include "svc/server.h"

namespace jinjing::soak {

struct SoakOptions {
  gen::WanParams wan = gen::small_wan();
  gen::ChurnStreamParams stream;
  /// Concurrent client sessions; stream events are dealt round-robin.
  std::size_t sessions = 4;
  /// Aggregate submission rate; 0 = unpaced (as fast as results allow).
  double target_qps = 0;
  /// Keep replaying passes (seed derived per pass) until this much wall
  /// time has elapsed; 0 = exactly one pass.
  double min_duration_seconds = 0;
  /// Per-session cap on submitted-but-unresolved jobs (backpressure).
  std::size_t window = 8;
  bool oracle = true;
  /// Dial the sessions over loopback TCP (ephemeral port, token auth)
  /// instead of the Unix socket — same churn, plus the network framing and
  /// the auth handshake under load.
  bool tcp = false;
  /// Progress/summary sink; nullptr = silent.
  std::ostream* log = nullptr;
  /// Server configuration. socket_path may be empty (a temp path is
  /// chosen); keep retain_jobs modest — the harness flushes exactly that
  /// many trivial checks at the end to rotate every churn job out of
  /// retention before the leak invariants are asserted.
  svc::ServerOptions server;
};

/// One parsed `metrics` snapshot (the gauges the watchdogs care about).
struct MetricSample {
  std::string label;
  std::uint64_t queued = 0;
  std::uint64_t running = 0;
  std::uint64_t head_version = 0;
  std::uint64_t versions = 0;
  std::uint64_t live_snapshots = 0;
  std::uint64_t tracked_jobs = 0;
  std::uint64_t fec_entries = 0;
  std::uint64_t cached_plans = 0;
  std::uint64_t cached_obligations = 0;

  /// The RSS proxy: every count that should be bounded by live state, not
  /// by how long the server has been running.
  [[nodiscard]] std::uint64_t leak_proxy() const {
    return versions + live_snapshots + tracked_jobs + fec_entries + cached_plans +
           cached_obligations;
  }
};

struct SoakReport {
  std::size_t passes = 0;
  std::size_t events = 0;           // stream events consumed (all passes)
  std::size_t submitted = 0;        // jobs admitted by the server
  std::size_t completed = 0;        // terminal Done
  std::size_t cancelled = 0;        // terminal Cancelled
  std::size_t failed = 0;           // terminal Failed (always a soak failure)
  std::size_t cancel_attempts = 0;
  std::size_t applies = 0;          // deployed version bumps
  std::size_t apply_conflicts = 0;  // 409: another apply won the race
  std::size_t rejected = 0;         // 429 admission rejections (retried)
  /// Jobs whose result was already rotated out of retention when the
  /// session read it (the documented 404 contract; excluded from the
  /// oracle — the service never produced an answer for us to check).
  std::size_t evicted_before_read = 0;
  std::size_t expected_submit_errors = 0;  // malformed events bounced
  std::size_t flushed = 0;          // retention-flush jobs
  std::size_t oracle_checked = 0;
  std::size_t oracle_mismatches = 0;
  /// Every reason the run is not ok: oracle divergence, invariant breach,
  /// unexpected error codes, failed jobs (first ~40, then truncated).
  std::vector<std::string> failures;
  std::vector<MetricSample> samples;
  double wall_seconds = 0;
  double achieved_qps = 0;  // submitted / wall
  /// FNV-1a over every event's describe() line, all passes — two runs of
  /// one seed must report the same fingerprint.
  std::uint64_t stream_fingerprint = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the soak to completion (drain + oracle + flush + invariants).
[[nodiscard]] SoakReport run_soak(const SoakOptions& options);

/// The report as one JSON document (the CI artifact / --report-json body).
void write_report_json(std::ostream& out, const SoakOptions& options,
                       const SoakReport& report);

/// First value of a `name value` line in Prometheus text exposition
/// ("# TYPE" comments never match); 0 when absent.
[[nodiscard]] std::uint64_t prometheus_value(const std::string& text,
                                             const std::string& name);

}  // namespace jinjing::soak
