// A blocking JSON-RPC client for the verification service.
//
// One connection, sequential calls: call() writes one request line and
// reads exactly one response line. Error responses surface as RpcError
// (carrying the server's code + message); transport failures surface as
// ClientError — after the reconnect budget below is spent. The CLI
// `jinjing client` verb, the replica's control channel and the tests all
// sit on this class.
//
// Endpoints: a Unix socket path or TCP "host:port" (see endpoint.h). On
// TCP the client opens with an `auth` call carrying `options.token`.
//
// Transient-error hardening: a send/recv failure (ECONNRESET, EPIPE, the
// server closing mid-line) does not fail the session — the client redials
// with capped exponential backoff, re-authenticates, and resends the
// request. The retry resend is at-least-once: a `submit` whose response
// line was lost may run twice server-side. Callers that need exactly-once
// must disable retries (max_retries = 0) and handle ClientError.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "svc/endpoint.h"
#include "svc/json.h"

namespace jinjing::svc {

class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON-RPC error object returned by the server.
class RpcError : public std::runtime_error {
 public:
  RpcError(int code, const std::string& message)
      : std::runtime_error("[" + std::to_string(code) + "] " + message), code_(code) {}

  [[nodiscard]] int code() const { return code_; }

 private:
  int code_;
};

struct ClientOptions {
  /// Shared secret for the TCP auth handshake; ignored on a Unix socket.
  std::string token;
  /// Reconnect attempts per call on transport failure. 0 restores the old
  /// fail-the-session behaviour.
  unsigned max_retries = 5;
  /// First reconnect delay; doubled per attempt up to backoff_cap_ms.
  std::uint64_t backoff_ms = 10;
  std::uint64_t backoff_cap_ms = 500;
};

class Client {
 public:
  /// Connects (and authenticates, on TCP) immediately. Throws ClientError
  /// when the endpoint is unreachable or rejects the token.
  explicit Client(const std::string& endpoint, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// One round trip: sends {"id","method","params"} and returns the
  /// response's "result". Throws RpcError on an error response and
  /// ClientError on transport failure that outlives the reconnect budget.
  Json call(const std::string& method, Json params = Json{Json::Object{}});

  /// Reads one pushed line off the connection — the replication stream
  /// after a `subscribe` call. Returns nullopt on timeout; throws
  /// ClientError when the peer closes. Never reconnects (the subscriber
  /// must re-handshake with its own `from`).
  std::optional<std::string> read_line(std::uint64_t timeout_ms);

  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

 private:
  void connect();  // dial + auth; throws ClientError
  void disconnect() noexcept;
  /// Single send/receive attempt; throws ClientError on transport failure.
  Json round_trip(const std::string& line);

  Endpoint endpoint_;
  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes received past the previous response line
};

}  // namespace jinjing::svc
