// A blocking JSON-RPC client for the verification service.
//
// One connection, sequential calls: call() writes one request line and
// reads exactly one response line. Error responses surface as RpcError
// (carrying the server's code + message); transport failures surface as
// ClientError. The CLI `jinjing client` verb and the tests both sit on
// this class.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "svc/json.h"

namespace jinjing::svc {

class ClientError : public std::runtime_error {
 public:
  explicit ClientError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON-RPC error object returned by the server.
class RpcError : public std::runtime_error {
 public:
  RpcError(int code, const std::string& message)
      : std::runtime_error("[" + std::to_string(code) + "] " + message), code_(code) {}

  [[nodiscard]] int code() const { return code_; }

 private:
  int code_;
};

class Client {
 public:
  /// Connects to the server's Unix domain socket. Throws ClientError when
  /// the socket is absent or refuses the connection.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// One round trip: sends {"id","method","params"} and returns the
  /// response's "result". Throws RpcError on an error response and
  /// ClientError on transport failure (server gone mid-call).
  Json call(const std::string& method, Json params = Json{Json::Object{}});

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes received past the previous response line
};

}  // namespace jinjing::svc
