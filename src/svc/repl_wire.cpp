#include "svc/repl_wire.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "config/acl_format.h"

namespace jinjing::svc {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, std::string_view data) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string slot_name(const topo::Topology& topo, const topo::AclSlot& slot) {
  return topo.qualified_name(slot.iface) + "-" +
         std::string(topo::to_string(slot.dir));
}

}  // namespace

Json encode_update(const topo::Topology& topo, const topo::AclUpdate& update) {
  std::vector<std::pair<std::string, const net::Acl*>> slots;
  slots.reserve(update.size());
  for (const auto& [slot, acl] : update) {
    slots.emplace_back(slot_name(topo, slot), &acl);
  }
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Json::Array encoded;
  encoded.reserve(slots.size());
  for (const auto& [name, acl] : slots) {
    Json::Object entry;
    entry.emplace("slot", name);
    entry.emplace("acl", config::print_acl(*acl));
    encoded.emplace_back(std::move(entry));
  }
  return Json{std::move(encoded)};
}

topo::AclUpdate decode_update(const topo::Topology& topo, const Json& encoded) {
  if (!encoded.is_array()) throw ReplWireError("update must be an array");
  topo::AclUpdate update;
  for (const Json& entry : encoded.as_array()) {
    const Json* slot_json = entry.get("slot");
    const Json* acl_json = entry.get("acl");
    if (slot_json == nullptr || !slot_json->is_string() || acl_json == nullptr ||
        !acl_json->is_string()) {
      throw ReplWireError("update entry needs string \"slot\" and \"acl\"");
    }
    std::string name = slot_json->as_string();
    topo::Dir dir;
    if (name.size() > 3 && name.ends_with("-in")) {
      dir = topo::Dir::In;
      name.resize(name.size() - 3);
    } else if (name.size() > 4 && name.ends_with("-out")) {
      dir = topo::Dir::Out;
      name.resize(name.size() - 4);
    } else {
      throw ReplWireError("slot \"" + name + "\" lacks an -in/-out suffix");
    }
    const auto iface = topo.find_interface(name);
    if (!iface) throw ReplWireError("unknown interface \"" + name + "\"");
    net::Acl acl;
    try {
      acl = config::parse_acl_auto(acl_json->as_string());
    } catch (const std::exception& e) {
      throw ReplWireError("acl for slot \"" + name + "\": " + e.what());
    }
    update.insert_or_assign(topo::AclSlot{*iface, dir}, std::move(acl));
  }
  return update;
}

std::uint64_t chain_hash(std::uint64_t previous, std::uint64_t version,
                         const Json& update) {
  std::uint64_t h = fnv1a(kFnvOffset, hash_hex(previous));
  h = fnv1a(h, std::to_string(version));
  h = fnv1a(h, update.dump());
  return h;
}

std::uint64_t network_fingerprint(const config::NetworkFile& network) {
  return fnv1a(kFnvOffset, config::print_network(network));
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::uint64_t parse_hash_hex(const std::string& hex) {
  if (hex.size() != 16) throw ReplWireError("hash must be 16 hex characters");
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw ReplWireError("bad hex digit in hash");
    }
  }
  return value;
}

}  // namespace jinjing::svc
