// The long-running verification service.
//
// One process keeps the expensive state warm across requests — a
// topo::FecCache shared by every engine, the incremental planner's
// cross-version plan/verdict cache, and per-version batch algebras for
// coalesced check execution — and serves a stream of check/fix/generate
// programs over a Unix domain socket. Execution is a dispatcher thread
// pulling dispatch units (one full-engine job, or a coalesced unit of
// compatible pure-check jobs) off the scheduler and running them on the
// server-wide work-stealing core::Executor; see docs/INTERNALS.md
// "Batched + sharded execution".
//
// Wire protocol: newline-delimited JSON-RPC. One request per line,
//   {"id": 1, "method": "submit", "params": {...}}
// answered by exactly one line,
//   {"id": 1, "result": {...}}   or   {"id": 1, "error": {"code": 429, ...}}
//
// Methods: submit, status, result, cancel, apply, info, metrics, lease,
// renew, release, auth, subscribe, shutdown (see docs/INTERNALS.md
// "Service" and "Replication & transport" for the schemas). Several
// clients may be connected at once; each connection is served by its own
// thread, so a blocking `result` wait never stalls other clients.
//
// Transports: always the Unix socket (when socket_path is set), plus an
// optional TCP listener (`listen_address`). TCP connections must open with
// an `auth` call carrying the shared token before any other method; until
// then the per-line read limit is a few KB and any other input closes the
// connection. `subscribe` turns a connection into a one-way replication
// stream (see repl_wire.h) until the peer disconnects.
//
// Shutdown is a graceful drain: new submissions are rejected (503), every
// admitted job still runs to a terminal state, then the socket closes and
// wait() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "core/incremental.h"
#include "obs/stats.h"
#include "svc/json.h"
#include "svc/scheduler.h"
#include "svc/state_store.h"
#include "topo/fec_cache.h"

namespace jinjing::svc {

class ServerError : public std::runtime_error {
 public:
  explicit ServerError(const std::string& what) : std::runtime_error(what) {}
};

struct ServerOptions {
  /// Unix-socket transport; may be empty when a TCP listener is configured.
  std::string socket_path;
  /// TCP transport as "host:port" ("127.0.0.1:0" binds an ephemeral port,
  /// reported by listen_endpoint()). Empty disables TCP. Requires
  /// auth_token: the network is not the filesystem permission boundary the
  /// Unix socket enjoys.
  std::string listen_address;
  /// Shared secret TCP connections must present in an `auth` call before
  /// anything else. Ignored on the Unix socket.
  std::string auth_token;
  /// Read-only replica mode: fix/generate submissions and apply are
  /// rejected with a 421 redirect naming writer_endpoint; pure checks,
  /// status/result/metrics and subscribe serve locally.
  bool read_only = false;
  /// Advertised in read-only redirects so clients can re-route.
  std::string writer_endpoint;
  /// Upper bound on any client-requested lease window.
  std::uint64_t max_lease_ms = 60000;
  /// Let one queued non-coalescable fix/generate job run on a side thread
  /// while the dispatcher keeps draining batch units (one overlap slot).
  /// Off pins the PR-7 behaviour: strictly one dispatch unit at a time.
  bool overlap = true;
  /// Extra Prometheus lines appended to the metrics export (the replica
  /// adds its lag gauges here).
  std::function<void(std::ostream&)> extra_metrics;
  std::size_t queue_depth = 64;
  /// Executor threads of the server-wide pool. A small dispatcher thread
  /// pulls dispatch units (single jobs or coalesced batches) off the
  /// scheduler and fans their obligations out over the pool; the
  /// dispatcher itself participates as pool worker 0, so `workers` is the
  /// total execution thread count.
  unsigned workers = 2;
  /// Most jobs one dispatch unit may coalesce (same snapshot version,
  /// scope family, pure check program). 1 disables coalescing.
  std::size_t coalesce = 32;
  /// Snapshot versions kept resolvable after apply advances the head
  /// (older ones are trimmed; jobs already holding a trimmed snapshot
  /// still finish against it, and its FEC cache entries are evicted once
  /// the last pin is released).
  std::size_t keep_versions = 8;
  /// Finished jobs kept queryable via status/result; the oldest-finished
  /// beyond this are evicted (404), releasing their snapshot and report.
  std::size_t retain_jobs = 1024;
  /// Rebase budget for the incremental planner: how many applies a cached
  /// verification plan may be carried across before the next job rebuilds
  /// it from scratch. 0 disables incremental cross-version verification
  /// (every check-only job builds a fresh engine, the seed behaviour).
  std::size_t max_delta_chain = 16;
  /// Template for the per-worker engines (threads are forced to 1 — the
  /// workers themselves are the parallelism; the FEC cache is replaced by
  /// the server-wide shared one).
  core::EngineOptions engine;
};

class Server {
 public:
  Server(config::NetworkFile network, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept/worker threads. Throws
  /// ServerError when the socket cannot be created.
  void start();

  /// Pre-warms the shared FEC cache and the incremental planner from the
  /// head snapshot (whole-network scope, head traffic) so the first checks
  /// after startup — or after a replica divergence rebuild — do not pay
  /// full path enumeration and refinement serially under live traffic.
  /// Best-effort: derivation failures are swallowed. Call before start().
  void prewarm();

  /// Blocks until a graceful shutdown has completed (shutdown method or
  /// request_shutdown()), then tears down every thread and the socket.
  void wait();

  /// Initiates a graceful drain; idempotent, callable from any thread.
  void request_shutdown();

  /// Whether a drain has been initiated (shutdown method, or
  /// request_shutdown from any side). The replica polls this to turn an
  /// operator shutdown of its local server into a full replica shutdown.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }
  /// The bound TCP endpoint ("host:port" with the real port even when the
  /// listen address asked for port 0), or empty when TCP is off. Valid
  /// after start().
  [[nodiscard]] const std::string& listen_endpoint() const { return bound_endpoint_; }
  /// Version the replication hash chain has reached (== head version).
  [[nodiscard]] Version repl_head() const;
  /// Subscribers currently streaming.
  [[nodiscard]] std::size_t subscriber_count() const {
    return subscribers_.load(std::memory_order_relaxed);
  }
  /// The replica's apply path: replays one replication record's update on
  /// top of `expected_head`, then retires old versions exactly like the
  /// writer's apply (version trim + replication-log trim). Returns nullptr
  /// when the local head is not `expected_head` — the stream and the store
  /// have diverged and the caller must resync.
  SnapshotPtr apply_replicated(Version expected_head, const topo::AclUpdate& update);

  [[nodiscard]] StateStore& store() { return store_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const obs::StatsRegistry& registry() const { return registry_; }
  /// The incremental planner, or nullptr when max_delta_chain is 0.
  [[nodiscard]] const core::IncrementalPlanner* incremental() const {
    return incremental_.get();
  }

 private:
  /// Set by the subscribe handler: after the response line is written the
  /// connection switches into the one-way replication stream.
  struct SubscribeIntent {
    bool requested = false;
    Version from = 0;
  };

  void accept_loop();
  void connection_loop(int fd, bool needs_auth);
  void dispatch_loop();
  /// Streams replication records with version > `from` until the peer
  /// disconnects or the server drains.
  void serve_subscription(int fd, Version from);
  /// Periodic housekeeping on the accept-loop tick: sweep expired leases
  /// and re-trim so a lapsed lease actually releases its version.
  void sweep_tick();
  void trim_repl_log();

  /// One request line -> one response line (never throws).
  [[nodiscard]] std::string handle_line(const std::string& line, SubscribeIntent* sub);
  [[nodiscard]] Json dispatch(const std::string& method, const Json& params,
                              SubscribeIntent* sub);

  Json handle_submit(const Json& params);
  Json handle_status(const Json& params);
  Json handle_result(const Json& params);
  Json handle_cancel(const Json& params);
  Json handle_apply(const Json& params);
  Json handle_lease(const Json& params);
  Json handle_renew(const Json& params);
  Json handle_release(const Json& params);
  Json handle_subscribe(const Json& params, SubscribeIntent* sub);
  Json handle_info();
  Json handle_metrics();

  void execute_job(const JobPtr& job);

  /// Runs a coalesced unit of pure-check jobs through the set-algebra
  /// batch checker, sharded over the shared executor. Falls back to
  /// per-job execute_job when the shared algebra cannot be built.
  void execute_batch(const std::vector<JobPtr>& batch);

  /// The per-version batch algebra for the lead job's coalesce family,
  /// built on first use and cached until the version is released.
  [[nodiscard]] std::shared_ptr<const core::BatchAlgebra> batch_algebra_for(const JobPtr& job);

  /// The delta-scoped fast path for check-only jobs without control
  /// intents: adopt the cached plan for the job's snapshot (or build and
  /// install one), execute only the obligations the update can touch, and
  /// commit the proven verdicts. Returns false when the job is not
  /// eligible (the caller runs the full engine path).
  [[nodiscard]] bool run_check_only(const JobPtr& job, const lai::UpdateTask& task,
                                    core::EngineReport& report, bool& cancelled);

  /// The one place per-job engine configuration lives: the template
  /// options with the engine forced single-threaded (Executor::run is
  /// serialized, not reentrant) over the server-wide FEC cache. Shared by
  /// the full-engine dispatch path, run_check_only, and the batch path's
  /// plan builds.
  [[nodiscard]] core::CheckOptions job_check_options() const;
  [[nodiscard]] core::EngineOptions job_engine_options() const;

  ServerOptions options_;
  // Declared before store_: the store's release hook sweeps this cache, so
  // it must outlive the store's teardown.
  std::mutex batch_mutex_;
  struct VersionedAlgebra {
    Version version = 0;
    std::shared_ptr<const core::BatchAlgebra> algebra;
  };
  std::unordered_map<std::uint64_t, VersionedAlgebra> batch_algebra_;  // by coalesce key
  // Replication log: one pre-serialized record per applied version,
  // appended by the store's apply hook (so also declared before store_).
  // repl_hash_ is only touched under the store lock (the apply hook is the
  // single writer); the log, head marker and cv are guarded by repl_mutex_.
  struct ReplRecord {
    Version version = 0;
    std::string line;  // full JSON record + '\n'
  };
  mutable std::mutex repl_mutex_;
  std::condition_variable repl_cv_;
  std::deque<ReplRecord> repl_log_;
  Version repl_head_ = 1;
  std::uint64_t repl_hash_ = 0;       // chain state, seeded by the fingerprint
  std::uint64_t base_fingerprint_ = 0;
  std::atomic<std::size_t> subscribers_{0};
  std::string bound_endpoint_;
  StateStore store_;
  Scheduler scheduler_;
  std::shared_ptr<topo::FecCache> fec_cache_;
  std::shared_ptr<core::IncrementalPlanner> incremental_;
  obs::StatsRegistry registry_;
  std::optional<obs::ScopedRegistry> installed_;

  std::shared_ptr<core::Executor> executor_;

  int listen_fd_ = -1;      // Unix socket, -1 when socket_path is empty
  int tcp_listen_fd_ = -1;  // TCP listener, -1 when listen_address is empty
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_connections_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool started_ = false;
  bool torn_down_ = false;
};

}  // namespace jinjing::svc
