// The long-running verification service.
//
// One process keeps the expensive state warm across requests — a
// topo::FecCache shared by every engine, the incremental planner's
// cross-version plan/verdict cache, and per-version batch algebras for
// coalesced check execution — and serves a stream of check/fix/generate
// programs over a Unix domain socket. Execution is a dispatcher thread
// pulling dispatch units (one full-engine job, or a coalesced unit of
// compatible pure-check jobs) off the scheduler and running them on the
// server-wide work-stealing core::Executor; see docs/INTERNALS.md
// "Batched + sharded execution".
//
// Wire protocol: newline-delimited JSON-RPC. One request per line,
//   {"id": 1, "method": "submit", "params": {...}}
// answered by exactly one line,
//   {"id": 1, "result": {...}}   or   {"id": 1, "error": {"code": 429, ...}}
//
// Methods: submit, status, result, cancel, apply, info, metrics, shutdown
// (see docs/INTERNALS.md "Service" for the schemas). Several clients may be
// connected at once; each connection is served by its own thread, so a
// blocking `result` wait never stalls other clients.
//
// Shutdown is a graceful drain: new submissions are rejected (503), every
// admitted job still runs to a terminal state, then the socket closes and
// wait() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch.h"
#include "core/engine.h"
#include "core/incremental.h"
#include "obs/stats.h"
#include "svc/json.h"
#include "svc/scheduler.h"
#include "svc/state_store.h"
#include "topo/fec_cache.h"

namespace jinjing::svc {

class ServerError : public std::runtime_error {
 public:
  explicit ServerError(const std::string& what) : std::runtime_error(what) {}
};

struct ServerOptions {
  std::string socket_path;
  std::size_t queue_depth = 64;
  /// Executor threads of the server-wide pool. A small dispatcher thread
  /// pulls dispatch units (single jobs or coalesced batches) off the
  /// scheduler and fans their obligations out over the pool; the
  /// dispatcher itself participates as pool worker 0, so `workers` is the
  /// total execution thread count.
  unsigned workers = 2;
  /// Most jobs one dispatch unit may coalesce (same snapshot version,
  /// scope family, pure check program). 1 disables coalescing.
  std::size_t coalesce = 32;
  /// Snapshot versions kept resolvable after apply advances the head
  /// (older ones are trimmed; jobs already holding a trimmed snapshot
  /// still finish against it, and its FEC cache entries are evicted once
  /// the last pin is released).
  std::size_t keep_versions = 8;
  /// Finished jobs kept queryable via status/result; the oldest-finished
  /// beyond this are evicted (404), releasing their snapshot and report.
  std::size_t retain_jobs = 1024;
  /// Rebase budget for the incremental planner: how many applies a cached
  /// verification plan may be carried across before the next job rebuilds
  /// it from scratch. 0 disables incremental cross-version verification
  /// (every check-only job builds a fresh engine, the seed behaviour).
  std::size_t max_delta_chain = 16;
  /// Template for the per-worker engines (threads are forced to 1 — the
  /// workers themselves are the parallelism; the FEC cache is replaced by
  /// the server-wide shared one).
  core::EngineOptions engine;
};

class Server {
 public:
  Server(config::NetworkFile network, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept/worker threads. Throws
  /// ServerError when the socket cannot be created.
  void start();

  /// Blocks until a graceful shutdown has completed (shutdown method or
  /// request_shutdown()), then tears down every thread and the socket.
  void wait();

  /// Initiates a graceful drain; idempotent, callable from any thread.
  void request_shutdown();

  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }
  [[nodiscard]] StateStore& store() { return store_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const obs::StatsRegistry& registry() const { return registry_; }
  /// The incremental planner, or nullptr when max_delta_chain is 0.
  [[nodiscard]] const core::IncrementalPlanner* incremental() const {
    return incremental_.get();
  }

 private:
  void accept_loop();
  void connection_loop(int fd);
  void dispatch_loop();

  /// One request line -> one response line (never throws).
  [[nodiscard]] std::string handle_line(const std::string& line);
  [[nodiscard]] Json dispatch(const std::string& method, const Json& params);

  Json handle_submit(const Json& params);
  Json handle_status(const Json& params);
  Json handle_result(const Json& params);
  Json handle_cancel(const Json& params);
  Json handle_apply(const Json& params);
  Json handle_info();
  Json handle_metrics();

  void execute_job(const JobPtr& job);

  /// Runs a coalesced unit of pure-check jobs through the set-algebra
  /// batch checker, sharded over the shared executor. Falls back to
  /// per-job execute_job when the shared algebra cannot be built.
  void execute_batch(const std::vector<JobPtr>& batch);

  /// The per-version batch algebra for the lead job's coalesce family,
  /// built on first use and cached until the version is released.
  [[nodiscard]] std::shared_ptr<const core::BatchAlgebra> batch_algebra_for(const JobPtr& job);

  /// The delta-scoped fast path for check-only jobs without control
  /// intents: adopt the cached plan for the job's snapshot (or build and
  /// install one), execute only the obligations the update can touch, and
  /// commit the proven verdicts. Returns false when the job is not
  /// eligible (the caller runs the full engine path).
  [[nodiscard]] bool run_check_only(const JobPtr& job, const lai::UpdateTask& task,
                                    core::EngineReport& report, bool& cancelled);

  /// The one place per-job engine configuration lives: the template
  /// options with the engine forced single-threaded (Executor::run is
  /// serialized, not reentrant) over the server-wide FEC cache. Shared by
  /// the full-engine dispatch path, run_check_only, and the batch path's
  /// plan builds.
  [[nodiscard]] core::CheckOptions job_check_options() const;
  [[nodiscard]] core::EngineOptions job_engine_options() const;

  ServerOptions options_;
  // Declared before store_: the store's release hook sweeps this cache, so
  // it must outlive the store's teardown.
  std::mutex batch_mutex_;
  struct VersionedAlgebra {
    Version version = 0;
    std::shared_ptr<const core::BatchAlgebra> algebra;
  };
  std::unordered_map<std::uint64_t, VersionedAlgebra> batch_algebra_;  // by coalesce key
  StateStore store_;
  Scheduler scheduler_;
  std::shared_ptr<topo::FecCache> fec_cache_;
  std::shared_ptr<core::IncrementalPlanner> incremental_;
  obs::StatsRegistry registry_;
  std::optional<obs::ScopedRegistry> installed_;

  std::shared_ptr<core::Executor> executor_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_connections_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool started_ = false;
  bool torn_down_ = false;
};

}  // namespace jinjing::svc
