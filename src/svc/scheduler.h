// The service's prioritized job queue with admission control.
//
// Policy (in order):
//  * Admission control — the queue is bounded; a submission that would
//    exceed the depth is rejected immediately (the JSON-RPC layer maps
//    this to a 429-style error) instead of building unbounded backlog.
//  * Priority — interactive jobs (check) always dispatch ahead of batch
//    jobs (fix/generate), regardless of arrival order.
//  * FIFO fairness within a priority — jobs of equal priority run in
//    submission order; a stream of interactive jobs can delay batch work
//    but never reorder it. Batch coalescing (next_batch) may run a later
//    compatible job *together with* an earlier one, but never reorders the
//    jobs it leaves queued.
//  * Deadlines — a job whose deadline expires while queued fails at
//    dispatch without running; the remaining budget of a running job is
//    mapped onto the per-query SmtTimeout by the worker.
//  * Cancellation is cooperative — a queued job cancels immediately; a
//    running job observes its cancel flag between program commands.
//  * Retention — terminal jobs are kept (for status/result queries) only
//    up to a bound; beyond it the oldest-finished are evicted, releasing
//    their pinned snapshot and report. A long-running server therefore
//    does not grow without bound with every submission, at the cost of
//    `status`/`result` answering 404 for jobs that finished long ago.
//
// All job state is guarded by one scheduler mutex (the per-job atomic
// cancel flag is the only cross-thread signal a worker polls mid-job);
// completion is broadcast on a condition variable that result waiters and
// the drain path share.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "lai/sema.h"
#include "svc/state_store.h"

namespace jinjing::svc {

enum class Priority : std::uint8_t { Interactive = 0, Batch = 1 };

[[nodiscard]] std::string_view to_string(Priority p);
/// Parses "interactive" / "batch"; nullopt otherwise.
[[nodiscard]] std::optional<Priority> parse_priority(std::string_view text);

enum class JobState : std::uint8_t { Queued, Running, Done, Failed, Cancelled };

[[nodiscard]] std::string_view to_string(JobState s);
[[nodiscard]] constexpr bool is_terminal(JobState s) {
  return s == JobState::Done || s == JobState::Failed || s == JobState::Cancelled;
}

struct JobSpec {
  std::string program;           // LAI source
  lai::AclLibrary acls;          // named ACLs the program references
  Priority priority = Priority::Interactive;
  std::uint64_t deadline_ms = 0; // 0 = none; measured from submission
  /// Resolved form of `program` against the pinned snapshot, set by the
  /// server at submission so dispatch does not parse/resolve again. May be
  /// null (a direct scheduler user); the executor then re-resolves.
  std::shared_ptr<const lai::UpdateTask> task;
  /// Batch-coalescing family: jobs sharing a nonzero key — same snapshot
  /// version, same scope/entering fingerprint, pure check program — may be
  /// dispatched as one unit by next_batch(). 0 = never coalesced.
  std::uint64_t coalesce_key = 0;
};

/// Terminal payload of a job.
struct JobOutcome {
  bool success = false;               // EngineReport::success() for Done
  std::string error;                  // Failed: the diagnostic
  std::optional<core::EngineReport> report;  // Done: the full report
  std::string plan_text;              // Done: the formatted deployable plan
};

class Job {
 public:
  Job(std::uint64_t id, JobSpec spec, SnapshotPtr snapshot)
      : id_(id), spec_(std::move(spec)), snapshot_(std::move(snapshot)) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  /// The pinned snapshot — held alive by the job even after the store
  /// trims its version.
  [[nodiscard]] const SnapshotPtr& snapshot() const { return snapshot_; }
  [[nodiscard]] Version snapshot_version() const { return snapshot_->version; }

  void request_cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

  /// Milliseconds of deadline budget left; nullopt when no deadline, 0 when
  /// expired. Safe from any thread (submitted_at_ is set before publish).
  [[nodiscard]] std::optional<std::uint64_t> remaining_ms() const;

 private:
  friend class Scheduler;

  const std::uint64_t id_;
  const JobSpec spec_;
  const SnapshotPtr snapshot_;
  std::atomic<bool> cancel_requested_{false};
  std::chrono::steady_clock::time_point submitted_at_{};

  // Guarded by the scheduler mutex.
  JobState state_ = JobState::Queued;
  JobOutcome outcome_;
  std::chrono::steady_clock::time_point started_at_{};
  std::chrono::steady_clock::time_point finished_at_{};
};

using JobPtr = std::shared_ptr<Job>;

/// A point-in-time copy of a job's externally visible state.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  Priority priority = Priority::Interactive;
  Version snapshot = 0;
  double queue_seconds = 0;  // submission -> start (or now while queued)
  double run_seconds = 0;    // start -> finish (or now while running)
  JobOutcome outcome;        // meaningful once terminal
};

class Scheduler {
 public:
  /// A submission verdict: the job, or a rejection (nullptr + code/message).
  struct Admission {
    JobPtr job;
    int error_code = 0;         // 429 queue full, 503 draining
    std::string error_message;
  };

  /// `retain_terminal` bounds how many finished jobs stay queryable; the
  /// oldest-finished beyond it are forgotten entirely (404 thereafter).
  explicit Scheduler(std::size_t queue_depth, std::size_t retain_terminal = 1024);

  [[nodiscard]] std::size_t queue_depth() const { return queue_depth_; }
  [[nodiscard]] std::size_t retain_terminal() const { return retain_terminal_; }

  /// Admits or rejects a job. `snapshot` is the resolved state the job
  /// will run against (the caller pins head at submission time).
  Admission submit(JobSpec spec, SnapshotPtr snapshot);

  /// Blocks until a job is available; transitions it Queued -> Running.
  /// Queued jobs that were cancelled or whose deadline expired are finished
  /// inline (Cancelled / Failed) without being returned. Returns nullptr
  /// once draining and the queue is empty.
  JobPtr next();

  /// Like next(), but when the lead job carries a nonzero coalesce key,
  /// pulls up to `max - 1` further queued jobs with the same key from the
  /// lead's priority class into one dispatch unit (all Running on return,
  /// in submission order). Coalescing runs a later compatible job together
  /// with an earlier one; it never reorders the jobs left behind, and never
  /// mixes priorities. Empty once draining and the queue is empty.
  std::vector<JobPtr> next_batch(std::size_t max);

  /// Terminal transition; wakes result waiters.
  void finish(const JobPtr& job, JobState state, JobOutcome outcome);

  /// True when the cancellation took hold (job was queued or running).
  bool cancel(std::uint64_t id);

  [[nodiscard]] JobPtr find(std::uint64_t id) const;
  [[nodiscard]] std::optional<JobStatus> status(std::uint64_t id) const;

  /// Blocks until the job is terminal (or `timeout` elapses when set);
  /// returns the final status (nullopt on timeout).
  std::optional<JobStatus> wait(std::uint64_t id,
                                std::optional<std::chrono::milliseconds> timeout = {});

  /// Blocks until the job has left the queue (Running or terminal) — the
  /// condition-wait tests use to know a blocker occupies the dispatcher
  /// before they burst-submit, instead of sleeping and hoping. Returns the
  /// status at that moment (nullopt on timeout or unknown id).
  std::optional<JobStatus> wait_started(std::uint64_t id,
                                        std::optional<std::chrono::milliseconds> timeout = {});

  /// Stops admission; next() drains the backlog then returns nullptr.
  void drain();
  [[nodiscard]] bool draining() const;

  /// Blocks until every admitted job is terminal (drain() must have been
  /// called, otherwise new work may keep arriving forever).
  void wait_idle();

  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] std::size_t running_count() const;
  /// Every job the scheduler still remembers — queued + running + the
  /// retained terminal window. Bounded by queue_depth + running +
  /// retain_terminal; the soak harness asserts it never drifts past that.
  [[nodiscard]] std::size_t tracked_count() const;

 private:
  [[nodiscard]] JobStatus status_locked(const Job& job) const;
  /// Retention eviction appends the dropped JobPtrs to `evicted` instead of
  /// destroying them: releasing a job may drop the last pin on its snapshot
  /// and fire the store's release hooks (FEC-cache / delta-cache eviction),
  /// which must not run under the scheduler mutex. Callers destroy
  /// `evicted` after unlocking.
  void finish_locked(Job& job, JobState state, JobOutcome outcome,
                     std::vector<JobPtr>& evicted);
  void start_locked(Job& job);

  const std::size_t queue_depth_;
  const std::size_t retain_terminal_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // new work or drain
  std::condition_variable done_cv_;   // job reached a terminal state
  std::deque<JobPtr> queues_[2];      // indexed by Priority
  std::map<std::uint64_t, JobPtr> jobs_;
  std::deque<std::uint64_t> terminal_order_;  // finish order, oldest first
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
};

}  // namespace jinjing::svc
