#include "svc/scheduler.h"

#include "obs/stats.h"

namespace jinjing::svc {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string_view to_string(Priority p) {
  return p == Priority::Interactive ? "interactive" : "batch";
}

std::optional<Priority> parse_priority(std::string_view text) {
  if (text == "interactive") return Priority::Interactive;
  if (text == "batch") return Priority::Batch;
  return std::nullopt;
}

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

std::optional<std::uint64_t> Job::remaining_ms() const {
  if (spec_.deadline_ms == 0) return std::nullopt;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - submitted_at_)
                           .count();
  if (elapsed < 0) return spec_.deadline_ms;
  const auto used = static_cast<std::uint64_t>(elapsed);
  return used >= spec_.deadline_ms ? 0 : spec_.deadline_ms - used;
}

Scheduler::Scheduler(std::size_t queue_depth, std::size_t retain_terminal)
    : queue_depth_(queue_depth == 0 ? 1 : queue_depth),
      retain_terminal_(retain_terminal == 0 ? 1 : retain_terminal) {}

Scheduler::Admission Scheduler::submit(JobSpec spec, SnapshotPtr snapshot) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (draining_) {
    obs::count(obs::Counter::SvcJobsRejected);
    return Admission{nullptr, 503, "server is draining"};
  }
  const std::size_t queued = queues_[0].size() + queues_[1].size();
  if (queued >= queue_depth_) {
    obs::count(obs::Counter::SvcJobsRejected);
    return Admission{nullptr, 429,
                     "queue full (" + std::to_string(queue_depth_) + " jobs pending)"};
  }
  const Priority priority = spec.priority;
  auto job = std::make_shared<Job>(next_id_++, std::move(spec), std::move(snapshot));
  job->submitted_at_ = std::chrono::steady_clock::now();
  jobs_.emplace(job->id(), job);
  queues_[static_cast<std::size_t>(priority)].push_back(job);
  obs::count(obs::Counter::SvcJobsSubmitted);
  work_cv_.notify_one();
  return Admission{std::move(job), 0, {}};
}

JobPtr Scheduler::next() {
  auto batch = next_batch(1);
  return batch.empty() ? nullptr : std::move(batch.front());
}

std::vector<JobPtr> Scheduler::next_batch(std::size_t max) {
  if (max == 0) max = 1;
  // Declared before the lock so the evicted JobPtrs (and any snapshot
  // release hooks their destruction triggers) run after unlocking.
  std::vector<JobPtr> evicted;
  std::vector<JobPtr> batch;
  std::unique_lock<std::mutex> lock{mutex_};
  while (true) {
    work_cv_.wait(lock, [&] {
      return draining_ || !queues_[0].empty() || !queues_[1].empty();
    });
    JobPtr job;
    std::size_t priority = 0;
    for (std::size_t p = 0; p < 2; ++p) {
      if (!queues_[p].empty()) {
        job = std::move(queues_[p].front());
        queues_[p].pop_front();
        priority = p;
        break;
      }
    }
    if (!job) {
      if (draining_) return {};
      continue;
    }
    if (job->cancel_requested()) {
      finish_locked(*job, JobState::Cancelled, {}, evicted);
      continue;
    }
    if (const auto remaining = job->remaining_ms(); remaining && *remaining == 0) {
      JobOutcome outcome;
      outcome.error = "deadline exceeded while queued";
      finish_locked(*job, JobState::Failed, std::move(outcome), evicted);
      continue;
    }
    start_locked(*job);
    const std::uint64_t key = job->spec_.coalesce_key;
    batch.push_back(std::move(job));
    if (key != 0 && max > 1) {
      // Pull every same-key job of the lead's priority class (cancelled and
      // expired candidates are finished inline, exactly as the lead path
      // does); the jobs left behind keep their relative order.
      auto& queue = queues_[priority];
      for (auto it = queue.begin(); it != queue.end() && batch.size() < max;) {
        if ((*it)->spec_.coalesce_key != key) {
          ++it;
          continue;
        }
        JobPtr taken = std::move(*it);
        it = queue.erase(it);
        if (taken->cancel_requested()) {
          finish_locked(*taken, JobState::Cancelled, {}, evicted);
          continue;
        }
        if (const auto remaining = taken->remaining_ms(); remaining && *remaining == 0) {
          JobOutcome outcome;
          outcome.error = "deadline exceeded while queued";
          finish_locked(*taken, JobState::Failed, std::move(outcome), evicted);
          continue;
        }
        start_locked(*taken);
        batch.push_back(std::move(taken));
      }
    }
    return batch;
  }
}

void Scheduler::start_locked(Job& job) {
  job.state_ = JobState::Running;
  job.started_at_ = std::chrono::steady_clock::now();
  ++running_;
  obs::observe(obs::Histogram::SvcQueueWaitMicros,
               static_cast<std::uint64_t>(
                   seconds_between(job.submitted_at_, job.started_at_) * 1e6));
  // Queued -> Running is observable through wait_started; terminal
  // transitions notify via finish_locked.
  done_cv_.notify_all();
}

void Scheduler::finish(const JobPtr& job, JobState state, JobOutcome outcome) {
  std::vector<JobPtr> evicted;  // destroyed after the lock; see finish_locked
  const std::lock_guard<std::mutex> lock{mutex_};
  if (job->state_ == JobState::Running) --running_;
  finish_locked(*job, state, std::move(outcome), evicted);
}

void Scheduler::finish_locked(Job& job, JobState state, JobOutcome outcome,
                              std::vector<JobPtr>& evicted) {
  job.state_ = state;
  job.outcome_ = std::move(outcome);
  job.finished_at_ = std::chrono::steady_clock::now();
  switch (state) {
    case JobState::Done: obs::count(obs::Counter::SvcJobsDone); break;
    case JobState::Failed: obs::count(obs::Counter::SvcJobsFailed); break;
    case JobState::Cancelled: obs::count(obs::Counter::SvcJobsCancelled); break;
    default: break;
  }
  if (job.started_at_ != std::chrono::steady_clock::time_point{}) {
    obs::observe(obs::Histogram::SvcJobRunMicros,
                 static_cast<std::uint64_t>(
                     seconds_between(job.started_at_, job.finished_at_) * 1e6));
  }
  // Bounded retention: forget the oldest-finished jobs past the cap so a
  // long-running server does not accumulate every snapshot pin and report
  // ever produced. Waiters blocked in wait() hold their own JobPtr, so
  // eviction never invalidates an in-flight result read. The evicted
  // pointers are handed to the caller, not destroyed here: dropping the
  // last reference releases the job's snapshot pin, and the store's
  // release hooks (cache eviction, planner retirement) must not run under
  // the scheduler mutex.
  terminal_order_.push_back(job.id_);
  while (terminal_order_.size() > retain_terminal_) {
    const auto it = jobs_.find(terminal_order_.front());
    if (it != jobs_.end()) {
      evicted.push_back(std::move(it->second));
      jobs_.erase(it);
    }
    terminal_order_.pop_front();
  }
  done_cv_.notify_all();
}

bool Scheduler::cancel(std::uint64_t id) {
  std::vector<JobPtr> evicted;  // destroyed after the lock; see finish_locked
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (is_terminal(job.state_)) return false;
  job.request_cancel();
  if (job.state_ == JobState::Queued) {
    // Cancel takes effect immediately: remove from the queue and finish.
    auto& queue = queues_[static_cast<std::size_t>(job.spec_.priority)];
    for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
      if ((*qit)->id() == id) {
        queue.erase(qit);
        break;
      }
    }
    finish_locked(job, JobState::Cancelled, {}, evicted);
  }
  // A running job finishes as Cancelled when the worker observes the flag.
  return true;
}

JobPtr Scheduler::find(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobStatus Scheduler::status_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id_;
  status.state = job.state_;
  status.priority = job.spec_.priority;
  status.snapshot = job.snapshot_->version;
  const auto now = std::chrono::steady_clock::now();
  const bool started = job.started_at_ != std::chrono::steady_clock::time_point{};
  status.queue_seconds = seconds_between(job.submitted_at_, started ? job.started_at_ : now);
  if (started) {
    status.run_seconds =
        seconds_between(job.started_at_, is_terminal(job.state_) ? job.finished_at_ : now);
  }
  if (is_terminal(job.state_)) status.outcome = job.outcome_;
  return status;
}

std::optional<JobStatus> Scheduler::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return status_locked(*it->second);
}

std::optional<JobStatus> Scheduler::wait(std::uint64_t id,
                                         std::optional<std::chrono::milliseconds> timeout) {
  std::unique_lock<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const JobPtr job = it->second;
  const auto terminal = [&] { return is_terminal(job->state_); };
  if (timeout) {
    if (!done_cv_.wait_for(lock, *timeout, terminal)) return std::nullopt;
  } else {
    done_cv_.wait(lock, terminal);
  }
  return status_locked(*job);
}

std::optional<JobStatus> Scheduler::wait_started(
    std::uint64_t id, std::optional<std::chrono::milliseconds> timeout) {
  std::unique_lock<std::mutex> lock{mutex_};
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const JobPtr job = it->second;
  const auto started = [&] { return job->state_ != JobState::Queued; };
  if (timeout) {
    if (!done_cv_.wait_for(lock, *timeout, started)) return std::nullopt;
  } else {
    done_cv_.wait(lock, started);
  }
  return status_locked(*job);
}

void Scheduler::drain() {
  const std::lock_guard<std::mutex> lock{mutex_};
  draining_ = true;
  work_cv_.notify_all();
}

bool Scheduler::draining() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return draining_;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock{mutex_};
  done_cv_.wait(lock, [&] {
    return queues_[0].empty() && queues_[1].empty() && running_ == 0;
  });
}

std::size_t Scheduler::queued_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return queues_[0].size() + queues_[1].size();
}

std::size_t Scheduler::running_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return running_;
}

std::size_t Scheduler::tracked_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return jobs_.size();
}

}  // namespace jinjing::svc
