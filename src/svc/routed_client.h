// Replica-aware routing on top of svc::Client.
//
// One writer, any number of read-only replicas: RoutedClient keeps a
// connection to each and routes per method. Pure-check submissions go to
// the replicas round-robin; anything that mutates — fix/generate work,
// apply — goes to the writer. status/result/cancel follow the job to
// wherever it was submitted.
//
// Read-your-writes: after a successful apply the client remembers the new
// head version and pins subsequent replica checks to it via the explicit
// `snapshot` param. A replica that has not replayed that far answers 404
// (unknown snapshot); the router then waits for the replica to catch up —
// polling its `info` until repl_head reaches the pinned version, bounded
// by catchup_wait_ms — and resubmits. If the replica stays behind, the
// check falls back to the writer, so a stale replica degrades latency but
// never answers against a pre-apply world.
//
// Job ids: every server numbers its own jobs from 1, so a writer job and a
// replica job can share a number. The routed client therefore hands out its
// own session-local ids and translates at the boundary — submit responses
// (and the status objects inside later replies) carry the routed id, and
// job-scoped calls are rewritten to the owning server's id before they are
// forwarded. An id this session did not mint passes through to the writer
// untouched, so writer jobs stay addressable across sessions; replica jobs
// are only addressable within the session that submitted them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/client.h"
#include "svc/json.h"

namespace jinjing::svc {

struct RouteOptions {
  std::string writer;                 // endpoint string, required
  std::vector<std::string> replicas;  // endpoint strings; empty = writer-only
  ClientOptions client;               // token + backoff shared by every link
  /// How long a check waits for a stale replica to replay the pinned
  /// version before falling back to the writer.
  std::uint64_t catchup_wait_ms = 5000;
};

class RoutedClient {
 public:
  /// Connects to the writer and every replica eagerly; throws ClientError
  /// when any endpoint is unreachable.
  explicit RoutedClient(RouteOptions options);

  /// Routes and forwards one call. Same result/RpcError surface as
  /// Client::call.
  Json call(const std::string& method, Json params = Json{Json::Object{}});

  /// Head version of the last successful apply through this client, or 0.
  [[nodiscard]] std::uint64_t last_applied() const { return last_applied_; }

 private:
  /// Where a routed job id actually lives: the link and the id the owning
  /// server knows it by.
  struct JobRoute {
    std::size_t link = 0;
    std::uint64_t server_job = 0;
  };

  /// Link index: 0 is the writer, 1 + i is replicas_[i].
  Client& link(std::size_t index);
  Json submit(Json params);
  /// Polls the replica's info until repl_head >= version or the catch-up
  /// budget lapses. Returns whether the replica caught up.
  bool await_catchup(Client& replica, std::uint64_t version);

  RouteOptions options_;
  std::vector<Client> links_;
  std::size_t next_replica_ = 0;
  std::uint64_t last_applied_ = 0;
  std::uint64_t next_job_ = 1;
  std::unordered_map<std::uint64_t, JobRoute> jobs_;  // routed id -> owner
};

}  // namespace jinjing::svc
