#include "svc/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace jinjing::svc {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  // Containers recurse through parse_value; input arrives from untrusted
  // clients, so the nesting depth is bounded to keep a line of '[['...
  // from overflowing the connection thread's stack.
  static constexpr int kMaxDepth = 128;

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json{parse_string()};
      case 't':
        if (consume_literal("true")) return Json{true};
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json{false};
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json{nullptr};
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    const DepthGuard guard{*this};
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json{std::move(object)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Json{std::move(object)};
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    const DepthGuard guard{*this};
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json{std::move(array)};
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Json{std::move(array)};
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // A high surrogate must be followed by \uDC00-\uDFFF.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') fail("invalid fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') fail("invalid exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return Json{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser{text}.parse_document(); }

std::string Json::dump() const {
  std::string out;
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(double d) const { dump_number(d, out); }
    void operator()(const std::string& s) const { dump_string(s, out); }
    void operator()(const Array& a) const {
      out += '[';
      bool first = true;
      for (const auto& item : a) {
        if (!first) out += ',';
        first = false;
        out += item.dump();
      }
      out += ']';
    }
    void operator()(const Object& o) const {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        out += value.dump();
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, value_);
  return out;
}

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("expected a boolean");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("expected a number");
  return std::get<double>(value_);
}

std::uint64_t Json::as_u64() const {
  const double d = as_number();
  if (d < 0 || d != std::floor(d) || d >= 9.0e15) {
    throw JsonError("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("expected a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw JsonError("expected an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw JsonError("expected an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw JsonError("expected an object");
  return std::get<Object>(value_);
}

const Json* Json::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = get(key);
  if (value == nullptr) throw JsonError("missing field '" + std::string(key) + "'");
  return *value;
}

}  // namespace jinjing::svc
