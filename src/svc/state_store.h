// Versioned, copy-on-write snapshots of the network state (topology + ACL
// bindings + entering traffic).
//
// The serving workflow needs two things at once: in-flight verifications
// must run against a consistent view of the network, and deployable plans
// must advance the live state for subsequent requests. The store resolves
// the tension with immutable snapshots: every job pins the snapshot that
// was head at submission (or an explicitly requested version), and apply
// produces a *new* head version by copying the topology and rebinding the
// updated ACL slots — readers of older versions are never disturbed.
//
// Snapshots are handed out as shared_ptr<const Snapshot>, so a trimmed
// version stays alive for exactly as long as some job still runs against
// it. trim() returns the dropped snapshots so the caller can evict
// per-topology caches (topo::FecCache keys on topology identity).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "config/topology_format.h"
#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::svc {

using Version = std::uint64_t;

struct Snapshot {
  Version version = 0;
  std::shared_ptr<const topo::Topology> topo;
  net::PacketSet traffic;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

class StateStore {
 public:
  /// Loads the initial network as version 1.
  explicit StateStore(config::NetworkFile network);

  [[nodiscard]] SnapshotPtr head() const;
  [[nodiscard]] Version head_version() const;

  /// The snapshot for a version; nullptr when unknown or already trimmed.
  [[nodiscard]] SnapshotPtr snapshot(Version version) const;

  /// Copy-on-write head advance: a new topology with `update`'s slots
  /// rebound on top of the current head. Returns the new head snapshot.
  SnapshotPtr apply_update(const topo::AclUpdate& update);

  /// Drops all but the newest `keep` versions from the index (snapshots
  /// pinned by running jobs stay alive through their shared_ptr). Returns
  /// the dropped snapshots so per-topology caches can be evicted.
  std::vector<SnapshotPtr> trim(std::size_t keep);

  [[nodiscard]] std::size_t version_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<Version, SnapshotPtr> versions_;
  Version head_ = 0;
};

}  // namespace jinjing::svc
