// Versioned, copy-on-write snapshots of the network state (topology + ACL
// bindings + entering traffic).
//
// The serving workflow needs two things at once: in-flight verifications
// must run against a consistent view of the network, and deployable plans
// must advance the live state for subsequent requests. The store resolves
// the tension with immutable snapshots: every job pins the snapshot that
// was head at submission (or an explicitly requested version), and apply
// produces a *new* head version by copying the topology and rebinding the
// updated ACL slots — readers of older versions are never disturbed.
//
// Snapshots are handed out as shared_ptr<const Snapshot>, so a trimmed
// version stays alive for exactly as long as some job still runs against
// it. trim() returns the dropped snapshots so the caller can evict
// per-topology caches (topo::FecCache keys on topology identity).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "config/topology_format.h"
#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::svc {

using Version = std::uint64_t;

struct Snapshot {
  Version version = 0;
  std::shared_ptr<const topo::Topology> topo;
  net::PacketSet traffic;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Called as the last reference to a snapshot is released — i.e. once no
/// version index entry and no job pins it — while its topology is still
/// alive. The hook is where per-topology caches evict their entries: at
/// that point nothing can re-insert under the retired topology, and the
/// allocation has not yet been recycled, so eviction is race-free.
using SnapshotReleaseHook = std::function<void(const Snapshot&)>;

/// Called under the store lock after every successful apply, with the
/// previous head, the new head, and the exact update that produced it —
/// the delta consumers (the incremental planner, FEC-cache sharing) get
/// the diff for free instead of re-deriving it from two topologies. The
/// hook must not call back into the store.
using SnapshotApplyHook = std::function<void(const Snapshot& previous, const Snapshot& next,
                                             const topo::AclUpdate& update)>;

class StateStore {
 public:
  /// Loads the initial network as version 1.
  explicit StateStore(config::NetworkFile network);

  /// Installs the release hook. Must be called before the first apply:
  /// once versions beyond the initial snapshot exist, snapshots are
  /// circulating to other threads and swapping the hook under them would
  /// race with releases — a late install throws std::logic_error. The hook
  /// applies to every snapshot, including the initial one.
  void set_release_hook(SnapshotReleaseHook hook);

  /// Installs the apply hook, under the same install-before-first-apply
  /// rule as set_release_hook.
  void set_apply_hook(SnapshotApplyHook hook);

  [[nodiscard]] SnapshotPtr head() const;
  [[nodiscard]] Version head_version() const;
  /// The oldest version still resolvable from the index — the floor the
  /// replication log must cover so any resolvable version can catch up.
  [[nodiscard]] Version oldest_version() const;

  /// The snapshot for a version; nullptr when unknown or already trimmed.
  [[nodiscard]] SnapshotPtr snapshot(Version version) const;

  /// Copy-on-write head advance: a new topology with `update`'s slots
  /// rebound on top of the current head. Returns the new head snapshot.
  SnapshotPtr apply_update(const topo::AclUpdate& update);

  /// apply_update gated on `expected` still being the head, with the
  /// compare and the advance under one lock acquisition — the conflict
  /// check callers need before deploying a plan verified against
  /// `expected`. Returns nullptr when the head has moved on.
  SnapshotPtr apply_if_head(Version expected, const topo::AclUpdate& update);

  /// Drops all but the newest `keep` versions from the index (snapshots
  /// pinned by running jobs stay alive through their shared_ptr). Versions
  /// held by an unexpired lease are kept resolvable regardless of the
  /// budget — expired leases are swept first, so a lapsed holder never
  /// blocks collection. Returns the dropped snapshots; each one's release
  /// hook fires when its last pin goes away.
  std::vector<SnapshotPtr> trim(std::size_t keep);

  /// Explicit snapshot pins with a deadline. A lease keeps `version`
  /// resolvable (and its snapshot alive) until it is released or its
  /// `lease_ms` window lapses without a renew — at which point the pin
  /// drops and, if it was the last one, the release hook fires (FEC-cache
  /// eviction, planner retirement). Returns nullopt when the version is
  /// unknown or already trimmed.
  std::optional<std::uint64_t> acquire_lease(Version version, std::uint64_t lease_ms);

  /// Refreshes the deadline; when `version` is given, re-pins the lease to
  /// that version in the same operation (the replica's apply-and-advance
  /// path). False when the lease is unknown/expired or the version is.
  bool renew_lease(std::uint64_t lease, std::uint64_t lease_ms,
                   std::optional<Version> version = std::nullopt);

  /// Drops the lease; false when unknown (already expired or released).
  bool release_lease(std::uint64_t lease);

  /// Collects leases past their deadline; returns how many were dropped.
  /// Their snapshot pins are released outside the store lock.
  std::size_t sweep_leases();

  [[nodiscard]] std::size_t lease_count() const;

  /// The smallest version still held by an unexpired lease, if any — the
  /// replication log must keep records above it so the holder can catch up.
  [[nodiscard]] std::optional<Version> min_leased_version() const;

  [[nodiscard]] std::size_t version_count() const;

  /// Snapshots currently alive anywhere — the version index plus every
  /// job/client pin. The soak harness's leak watchdog: after a drain this
  /// must fall back to the index size, or something is holding snapshots
  /// (and their topologies) beyond their lifetime.
  [[nodiscard]] std::size_t live_snapshots() const;

 private:
  struct Lease {
    Version version = 0;
    SnapshotPtr pin;
    std::chrono::steady_clock::time_point expires_at;
  };

  [[nodiscard]] SnapshotPtr wrap(std::unique_ptr<Snapshot> snapshot) const;
  SnapshotPtr apply_locked(const topo::AclUpdate& update);
  /// Moves expired leases' pins into `expired` (destroyed by the caller
  /// after the lock drops, so release hooks never run under the store
  /// mutex). Requires mutex_ held.
  void sweep_leases_locked(std::vector<SnapshotPtr>& expired);

  // Shared with every snapshot's deleter so the hook outlives the store
  // (a pinned snapshot can be released after the store is gone).
  std::shared_ptr<SnapshotReleaseHook> release_hook_ =
      std::make_shared<SnapshotReleaseHook>();
  // Shared with the deleters for the same lifetime reason.
  std::shared_ptr<std::atomic<std::size_t>> live_count_ =
      std::make_shared<std::atomic<std::size_t>>(0);
  SnapshotApplyHook apply_hook_;

  mutable std::mutex mutex_;
  std::map<Version, SnapshotPtr> versions_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_ = 1;
  Version head_ = 0;
  bool applied_ = false;  // an apply happened: hook installation is frozen
};

}  // namespace jinjing::svc
