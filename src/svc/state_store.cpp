#include "svc/state_store.h"

#include <stdexcept>
#include <utility>

namespace jinjing::svc {

StateStore::StateStore(config::NetworkFile network) {
  auto snapshot = std::make_unique<Snapshot>();
  snapshot->version = 1;
  snapshot->topo = std::make_shared<const topo::Topology>(std::move(network.topo));
  snapshot->traffic = std::move(network.traffic);
  head_ = 1;
  versions_.emplace(head_, wrap(std::move(snapshot)));
}

void StateStore::set_release_hook(SnapshotReleaseHook hook) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (applied_) {
    throw std::logic_error(
        "StateStore::set_release_hook: hooks must be installed before the first apply");
  }
  *release_hook_ = std::move(hook);
}

void StateStore::set_apply_hook(SnapshotApplyHook hook) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (applied_) {
    throw std::logic_error(
        "StateStore::set_apply_hook: hooks must be installed before the first apply");
  }
  apply_hook_ = std::move(hook);
}

SnapshotPtr StateStore::wrap(std::unique_ptr<Snapshot> snapshot) const {
  live_count_->fetch_add(1, std::memory_order_relaxed);
  // The deleter reads the hook cell at release time (not capture time), so
  // a hook installed after construction still covers the initial snapshot.
  return SnapshotPtr(snapshot.release(),
                     [hook = release_hook_, live = live_count_](const Snapshot* s) {
                       if (*hook) (*hook)(*s);
                       live->fetch_sub(1, std::memory_order_relaxed);
                       delete s;
                     });
}

SnapshotPtr StateStore::head() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return versions_.at(head_);
}

Version StateStore::head_version() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return head_;
}

SnapshotPtr StateStore::snapshot(Version version) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

SnapshotPtr StateStore::apply_update(const topo::AclUpdate& update) {
  const std::lock_guard<std::mutex> lock{mutex_};
  return apply_locked(update);
}

SnapshotPtr StateStore::apply_if_head(Version expected, const topo::AclUpdate& update) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (head_ != expected) return nullptr;
  return apply_locked(update);
}

SnapshotPtr StateStore::apply_locked(const topo::AclUpdate& update) {
  const SnapshotPtr previous = versions_.at(head_);

  // Copy-on-write: the head topology is copied once per apply; every slot
  // not in the update keeps its binding.
  topo::Topology next = *previous->topo;
  for (const auto& [slot, acl] : update) next.bind_acl(slot, acl);

  auto snapshot = std::make_unique<Snapshot>();
  snapshot->version = head_ + 1;
  snapshot->topo = std::make_shared<const topo::Topology>(std::move(next));
  snapshot->traffic = previous->traffic;
  SnapshotPtr wrapped = wrap(std::move(snapshot));
  head_ = wrapped->version;
  versions_.emplace(head_, wrapped);
  applied_ = true;
  // Under the lock: consumers see every delta exactly once, in version
  // order, before any job can run against the new head.
  if (apply_hook_) apply_hook_(*previous, *wrapped, update);
  return wrapped;
}

std::vector<SnapshotPtr> StateStore::trim(std::size_t keep) {
  if (keep == 0) keep = 1;  // the head is never dropped
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<SnapshotPtr> dropped;
  while (versions_.size() > keep) {
    auto oldest = versions_.begin();
    dropped.push_back(std::move(oldest->second));
    versions_.erase(oldest);
  }
  return dropped;
}

std::size_t StateStore::version_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return versions_.size();
}

std::size_t StateStore::live_snapshots() const {
  return live_count_->load(std::memory_order_relaxed);
}

}  // namespace jinjing::svc
