#include "svc/state_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/stats.h"

namespace jinjing::svc {

StateStore::StateStore(config::NetworkFile network) {
  auto snapshot = std::make_unique<Snapshot>();
  snapshot->version = 1;
  snapshot->topo = std::make_shared<const topo::Topology>(std::move(network.topo));
  snapshot->traffic = std::move(network.traffic);
  head_ = 1;
  versions_.emplace(head_, wrap(std::move(snapshot)));
}

void StateStore::set_release_hook(SnapshotReleaseHook hook) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (applied_) {
    throw std::logic_error(
        "StateStore::set_release_hook: hooks must be installed before the first apply");
  }
  *release_hook_ = std::move(hook);
}

void StateStore::set_apply_hook(SnapshotApplyHook hook) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (applied_) {
    throw std::logic_error(
        "StateStore::set_apply_hook: hooks must be installed before the first apply");
  }
  apply_hook_ = std::move(hook);
}

SnapshotPtr StateStore::wrap(std::unique_ptr<Snapshot> snapshot) const {
  live_count_->fetch_add(1, std::memory_order_relaxed);
  // The deleter reads the hook cell at release time (not capture time), so
  // a hook installed after construction still covers the initial snapshot.
  return SnapshotPtr(snapshot.release(),
                     [hook = release_hook_, live = live_count_](const Snapshot* s) {
                       if (*hook) (*hook)(*s);
                       live->fetch_sub(1, std::memory_order_relaxed);
                       delete s;
                     });
}

SnapshotPtr StateStore::head() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return versions_.at(head_);
}

Version StateStore::head_version() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return head_;
}

Version StateStore::oldest_version() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return versions_.begin()->first;
}

SnapshotPtr StateStore::snapshot(Version version) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

SnapshotPtr StateStore::apply_update(const topo::AclUpdate& update) {
  const std::lock_guard<std::mutex> lock{mutex_};
  return apply_locked(update);
}

SnapshotPtr StateStore::apply_if_head(Version expected, const topo::AclUpdate& update) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (head_ != expected) return nullptr;
  return apply_locked(update);
}

SnapshotPtr StateStore::apply_locked(const topo::AclUpdate& update) {
  const SnapshotPtr previous = versions_.at(head_);

  // Copy-on-write: the head topology is copied once per apply; every slot
  // not in the update keeps its binding.
  topo::Topology next = *previous->topo;
  for (const auto& [slot, acl] : update) next.bind_acl(slot, acl);

  auto snapshot = std::make_unique<Snapshot>();
  snapshot->version = head_ + 1;
  snapshot->topo = std::make_shared<const topo::Topology>(std::move(next));
  snapshot->traffic = previous->traffic;
  SnapshotPtr wrapped = wrap(std::move(snapshot));
  head_ = wrapped->version;
  versions_.emplace(head_, wrapped);
  applied_ = true;
  // Under the lock: consumers see every delta exactly once, in version
  // order, before any job can run against the new head.
  if (apply_hook_) apply_hook_(*previous, *wrapped, update);
  return wrapped;
}

std::vector<SnapshotPtr> StateStore::trim(std::size_t keep) {
  if (keep == 0) keep = 1;  // the head is never dropped
  std::vector<SnapshotPtr> dropped;
  std::vector<SnapshotPtr> expired;  // destroyed after the lock drops
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    // Lapsed leases first, so an abandoned holder never blocks collection.
    sweep_leases_locked(expired);
    if (versions_.size() > keep) {
      // The newest `keep` versions stay by budget; an older one survives
      // only while a live lease still names it.
      auto boundary = versions_.end();
      for (std::size_t i = 0; i < keep; ++i) --boundary;
      const Version boundary_version = boundary->first;
      for (auto it = versions_.begin();
           it != versions_.end() && it->first < boundary_version;) {
        const Version v = it->first;
        const bool leased =
            std::any_of(leases_.begin(), leases_.end(),
                        [v](const auto& kv) { return kv.second.version == v; });
        if (leased) {
          ++it;
          continue;
        }
        dropped.push_back(std::move(it->second));
        it = versions_.erase(it);
      }
    }
  }
  return dropped;
}

void StateStore::sweep_leases_locked(std::vector<SnapshotPtr>& expired) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.expires_at <= now) {
      expired.push_back(std::move(it->second.pin));
      it = leases_.erase(it);
      obs::count(obs::Counter::SvcLeasesExpired);
    } else {
      ++it;
    }
  }
}

std::optional<std::uint64_t> StateStore::acquire_lease(Version version,
                                                       std::uint64_t lease_ms) {
  std::vector<SnapshotPtr> expired;
  std::optional<std::uint64_t> id;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    sweep_leases_locked(expired);
    const auto it = versions_.find(version);
    if (it != versions_.end()) {
      Lease lease;
      lease.version = version;
      lease.pin = it->second;
      lease.expires_at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(lease_ms);
      id = next_lease_++;
      leases_.emplace(*id, std::move(lease));
      obs::count(obs::Counter::SvcLeasesGranted);
    }
  }
  return id;
}

bool StateStore::renew_lease(std::uint64_t lease, std::uint64_t lease_ms,
                             std::optional<Version> version) {
  std::vector<SnapshotPtr> expired;
  std::vector<SnapshotPtr> replaced;  // old pin when re-pinning to a new version
  bool ok = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    sweep_leases_locked(expired);
    const auto it = leases_.find(lease);
    if (it != leases_.end()) {
      if (version && *version != it->second.version) {
        const auto target = versions_.find(*version);
        if (target == versions_.end()) return false;  // nothing mutated yet
        replaced.push_back(std::move(it->second.pin));
        it->second.version = *version;
        it->second.pin = target->second;
      }
      it->second.expires_at =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(lease_ms);
      obs::count(obs::Counter::SvcLeasesRenewed);
      ok = true;
    }
  }
  return ok;
}

bool StateStore::release_lease(std::uint64_t lease) {
  std::vector<SnapshotPtr> expired;
  SnapshotPtr released;
  bool ok = false;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    sweep_leases_locked(expired);
    const auto it = leases_.find(lease);
    if (it != leases_.end()) {
      released = std::move(it->second.pin);
      leases_.erase(it);
      obs::count(obs::Counter::SvcLeasesReleased);
      ok = true;
    }
  }
  return ok;
}

std::size_t StateStore::sweep_leases() {
  std::vector<SnapshotPtr> expired;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    sweep_leases_locked(expired);
  }
  return expired.size();
}

std::size_t StateStore::lease_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::size_t>(
      std::count_if(leases_.begin(), leases_.end(),
                    [&](const auto& kv) { return kv.second.expires_at > now; }));
}

std::optional<Version> StateStore::min_leased_version() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto now = std::chrono::steady_clock::now();
  std::optional<Version> min;
  for (const auto& [id, lease] : leases_) {
    if (lease.expires_at <= now) continue;
    if (!min || lease.version < *min) min = lease.version;
  }
  return min;
}

std::size_t StateStore::version_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return versions_.size();
}

std::size_t StateStore::live_snapshots() const {
  return live_count_->load(std::memory_order_relaxed);
}

}  // namespace jinjing::svc
