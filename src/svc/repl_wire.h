// Canonical wire form of the replication stream.
//
// The writer streams one record per applied version:
//   {"version": V, "hash": "<hex>", "update": [{"slot": "dev.if-in",
//    "acl": "<canonical acl text>"}, ...]}
// Slots are sorted by qualified name and ACL bodies are printed through the
// canonical `config::print_acl` form, so the same update always serializes
// to the same bytes — which makes the hash chain meaningful:
//   hash(V) = fnv1a(hex(hash(V-1)) || V || canonical update json)
// seeded from the base-network fingerprint. A replica re-derives every hash
// before applying; any divergence (bit rot, a writer swap with different
// state, a protocol bug) breaks the chain immediately instead of silently
// forking the replica's state.
#pragma once

#include <cstdint>
#include <string>

#include "config/topology_format.h"
#include "svc/json.h"
#include "topo/topology.h"

namespace jinjing::svc {

class ReplWireError : public std::runtime_error {
 public:
  explicit ReplWireError(const std::string& what) : std::runtime_error(what) {}
};

/// The update as a canonical JSON array (sorted slots, canonical ACL text).
[[nodiscard]] Json encode_update(const topo::Topology& topo,
                                 const topo::AclUpdate& update);

/// Rebinds the encoded slots against `topo`. Throws ReplWireError on an
/// unknown slot name or unparseable ACL body.
[[nodiscard]] topo::AclUpdate decode_update(const topo::Topology& topo,
                                            const Json& encoded);

/// One chain step: mixes the previous hash, the version, and the canonical
/// update serialization.
[[nodiscard]] std::uint64_t chain_hash(std::uint64_t previous, std::uint64_t version,
                                       const Json& update);

/// The chain seed: a fingerprint of the canonical base-network print.
/// Writer and replica must load the same network file or the very first
/// record fails verification.
[[nodiscard]] std::uint64_t network_fingerprint(const config::NetworkFile& network);

[[nodiscard]] std::string hash_hex(std::uint64_t hash);
[[nodiscard]] std::uint64_t parse_hash_hex(const std::string& hex);

}  // namespace jinjing::svc
