#include "svc/endpoint.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace jinjing::svc {

std::string Endpoint::to_string() const {
  if (kind == Kind::Unix) return path;
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text) {
  if (text.empty()) throw EndpointError("empty endpoint");
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos && colon > 0 &&
      text.find('/') == std::string::npos) {
    const std::string suffix = text.substr(colon + 1);
    const bool numeric =
        !suffix.empty() &&
        std::all_of(suffix.begin(), suffix.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; });
    if (numeric) {
      unsigned long port = 0;
      try {
        port = std::stoul(suffix);
      } catch (const std::exception&) {
        throw EndpointError("bad port in endpoint \"" + text + "\"");
      }
      if (port > 65535) {
        throw EndpointError("port out of range in endpoint \"" + text + "\"");
      }
      Endpoint endpoint;
      endpoint.kind = Endpoint::Kind::Tcp;
      endpoint.host = text.substr(0, colon);
      endpoint.port = static_cast<std::uint16_t>(port);
      return endpoint;
    }
  }
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::Unix;
  endpoint.path = text;
  return endpoint;
}

int dial(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::Unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.empty() || endpoint.path.size() >= sizeof(addr.sun_path)) {
      throw EndpointError("socket path must be 1.." +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " characters: \"" + endpoint.path + "\"");
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(), endpoint.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw EndpointError("socket(): " + std::string(std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string what = std::strerror(errno);
      ::close(fd);
      throw EndpointError("connect(" + endpoint.path + "): " + what);
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &found);
  if (rc != 0) {
    throw EndpointError("resolve(" + endpoint.host + "): " + ::gai_strerror(rc));
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket(): ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Request/response lines are small; batching them behind Nagle just
      // adds latency.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(found);
      return fd;
    }
    last_error = std::string("connect(): ") + std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(found);
  throw EndpointError("dial(" + endpoint.to_string() + "): " + last_error);
}

}  // namespace jinjing::svc
