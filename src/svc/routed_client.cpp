#include "svc/routed_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "lai/parser.h"

namespace jinjing::svc {

namespace {

/// Stricter than the server's read-only gate: route to a replica only the
/// programs that can never produce a deployable plan — all commands are
/// `check` and there is no modify clause (a verified modify-check's plan
/// is applied by job id, so the job must live where apply does: on the
/// writer). Unparseable programs go to the writer so its -32602 diagnostic
/// is the one the caller sees.
bool replica_eligible(const std::string& program) {
  try {
    const lai::Program parsed = lai::parse(program);
    return !parsed.commands.empty() && parsed.modifies.empty() &&
           std::all_of(parsed.commands.begin(), parsed.commands.end(),
                       [](lai::Command c) { return c == lai::Command::Check; });
  } catch (const std::exception&) {
    return false;
  }
}

std::uint64_t u64_field(const Json& object, const char* key, std::uint64_t fallback) {
  const Json* value = object.get(key);
  return value != nullptr && value->is_number() ? value->as_u64() : fallback;
}

/// Rewrites the server-assigned job id back to the routed one wherever a
/// reply carries it — the top-level "job" of a submit/status reply and the
/// "status" object nested in a result reply.
void rewrite_job_id(Json& value, std::uint64_t routed) {
  if (!value.is_object()) return;
  Json::Object& obj = value.as_object();
  if (const auto it = obj.find("job"); it != obj.end()) it->second = Json{routed};
  if (const auto it = obj.find("status"); it != obj.end()) rewrite_job_id(it->second, routed);
}

}  // namespace

RoutedClient::RoutedClient(RouteOptions options) : options_(std::move(options)) {
  links_.reserve(1 + options_.replicas.size());
  links_.emplace_back(options_.writer, options_.client);
  for (const std::string& endpoint : options_.replicas) {
    links_.emplace_back(endpoint, options_.client);
  }
}

Client& RoutedClient::link(std::size_t index) { return links_.at(index); }

bool RoutedClient::await_catchup(Client& replica, std::uint64_t version) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(options_.catchup_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      const Json info = replica.call("info");
      if (u64_field(info, "repl_head", 0) >= version) return true;
    } catch (const ClientError&) {
      return false;  // replica unreachable: fall back to the writer now
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

Json RoutedClient::submit(Json params) {
  const Json* program = params.get("program");
  const bool read = links_.size() > 1 && program != nullptr && program->is_string() &&
                    replica_eligible(program->as_string());
  std::size_t target = 0;
  if (read) {
    target = 1 + (next_replica_++ % (links_.size() - 1));
    // Read-your-writes: pin the check to the last version this client
    // applied, unless the caller pinned one explicitly.
    if (last_applied_ > 0 && params.get("snapshot") == nullptr) {
      params.as_object().emplace("snapshot", last_applied_);
    }
  }

  for (;;) {
    try {
      Json result = link(target).call("submit", params);
      const std::uint64_t job = u64_field(result, "job", 0);
      if (job != 0) {
        const std::uint64_t routed = next_job_++;
        jobs_.emplace(routed, JobRoute{target, job});
        rewrite_job_id(result, routed);
      }
      return result;
    } catch (const RpcError& error) {
      if (target == 0) throw;
      if (error.code() == 404 && last_applied_ > 0 &&
          await_catchup(link(target), last_applied_)) {
        continue;  // replica replayed the pinned version; same target again
      }
      // Stale past the budget, misdirected (421), or anything else the
      // replica refuses: the writer is always authoritative.
      target = 0;
    } catch (const ClientError&) {
      if (target == 0) throw;
      target = 0;
    }
  }
}

Json RoutedClient::call(const std::string& method, Json params) {
  if (method == "submit") return submit(std::move(params));

  // Job-scoped methods follow the job to the link that owns it, translated
  // to that server's own id. Unminted ids pass through to the writer.
  if (method == "status" || method == "result" || method == "cancel") {
    std::size_t target = 0;
    const std::uint64_t routed = u64_field(params, "job", 0);
    const auto it = jobs_.find(routed);
    if (it != jobs_.end()) {
      target = it->second.link;
      params.as_object().insert_or_assign("job", Json{it->second.server_job});
    }
    Json result = link(target).call(method, std::move(params));
    if (it != jobs_.end()) rewrite_job_id(result, routed);
    if (method == "cancel") jobs_.erase(routed);
    return result;
  }

  // Everything else — apply, leases, info, metrics, shutdown — is
  // writer-state business.
  if (method == "apply") {
    const std::uint64_t routed = u64_field(params, "job", 0);
    if (const auto it = jobs_.find(routed); it != jobs_.end()) {
      if (it->second.link != 0) {
        // Never forward a replica job's id to the writer: the writer may
        // know a *different* job by that number.
        throw RpcError(421, "job " + std::to_string(routed) +
                                " was served by a replica; only writer jobs have "
                                "deployable plans");
      }
      params.as_object().insert_or_assign("job", Json{it->second.server_job});
    }
  }
  Json result = link(0).call(method, std::move(params));
  if (method == "apply") {
    last_applied_ = u64_field(result, "version", last_applied_);
  }
  return result;
}

}  // namespace jinjing::svc
