#include "svc/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "config/acl_format.h"
#include "core/deploy.h"
#include "lai/parser.h"
#include "obs/trace.h"
#include "smt/context.h"
#include "svc/endpoint.h"
#include "svc/repl_wire.h"

namespace jinjing::svc {

namespace {

/// A dispatch-level failure that maps onto a JSON-RPC error object.
struct RpcFailure {
  int code;
  std::string message;
};

[[noreturn]] void fail(int code, std::string message) {
  throw RpcFailure{code, std::move(message)};
}

constexpr int kParseError = -32700;
constexpr int kMethodNotFound = -32601;
constexpr int kInvalidParams = -32602;
constexpr int kInternalError = -32603;
constexpr int kQueueFull = 429;      // admission control rejected the job
constexpr int kDraining = 503;       // server is shutting down
constexpr int kNotFound = 404;       // unknown job / snapshot version / lease
constexpr int kConflict = 409;       // apply on a job without a plan
constexpr int kTooOld = 410;         // subscriber fell behind the replication log
constexpr int kFingerprintMismatch = 412;  // subscriber loaded a different base network
constexpr int kMisdirected = 421;    // mutating call on a read-only replica

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::uint64_t u64_param(const Json& params, std::string_view key) {
  const Json* value = params.get(key);
  if (value == nullptr || !value->is_number()) {
    fail(kInvalidParams, "missing or non-numeric \"" + std::string(key) + "\" parameter");
  }
  try {
    return value->as_u64();
  } catch (const JsonError& e) {
    fail(kInvalidParams, std::string(key) + ": " + e.what());
  }
}

Json outcome_json(const JobOutcome& outcome) {
  Json::Object obj;
  obj.emplace("success", outcome.success);
  if (!outcome.error.empty()) obj.emplace("error", outcome.error);
  if (!outcome.plan_text.empty()) obj.emplace("plan", outcome.plan_text);
  if (outcome.report) {
    Json::Array commands;
    for (const auto& cmd : outcome.report->outcomes) {
      Json::Object entry;
      entry.emplace("command", lai::to_string(cmd.command));
      entry.emplace("ok", cmd.ok());
      if (cmd.check) entry.emplace("consistent", cmd.check->consistent);
      commands.emplace_back(std::move(entry));
    }
    obj.emplace("commands", std::move(commands));
  }
  return Json{std::move(obj)};
}

/// A program is batch-coalescable (and run_check_only-eligible) when it is
/// pure verification: at least one command, all of them `check`, and no
/// control intents (§6 rewrites need the SMT path).
bool pure_check(const lai::UpdateTask& task) {
  return !task.commands.empty() && task.controls.empty() &&
         std::all_of(task.commands.begin(), task.commands.end(),
                     [](lai::Command c) { return c == lai::Command::Check; });
}

/// The coalesce family fingerprint: snapshot version + sorted scope devices
/// + entering cubes. Jobs sharing it verify against the same immutable
/// planning problem, so one batch algebra serves them all. Guarded by the
/// version/scope/entering equality checks the planner and algebra cache
/// already perform; never 0 (0 means "not coalescable").
std::uint64_t coalesce_key_for(Version version, const topo::Scope& scope,
                               const net::PacketSet& entering) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(version);
  std::vector<topo::DeviceId> devices(scope.devices().begin(), scope.devices().end());
  std::sort(devices.begin(), devices.end());
  mix(devices.size());
  for (const auto d : devices) mix(d);
  mix(entering.cube_count());
  for (const auto& cube : entering.cubes()) {
    for (const net::Field f : net::kAllFields) {
      mix(cube.interval(f).lo);
      mix(cube.interval(f).hi);
    }
  }
  return h == 0 ? 1 : h;
}

Json status_json(const JobStatus& status) {
  Json::Object obj;
  obj.emplace("job", status.id);
  obj.emplace("state", to_string(status.state));
  obj.emplace("priority", to_string(status.priority));
  obj.emplace("snapshot", status.snapshot);
  obj.emplace("queue_seconds", status.queue_seconds);
  obj.emplace("run_seconds", status.run_seconds);
  if (is_terminal(status.state)) obj.emplace("outcome", outcome_json(status.outcome));
  return Json{std::move(obj)};
}

}  // namespace

Server::Server(config::NetworkFile network, ServerOptions options)
    : options_(std::move(options)),
      // Members are declared (and thus initialized) before store_, so the
      // fingerprint can be taken before the network moves into the store.
      repl_hash_(network_fingerprint(network)),
      base_fingerprint_(repl_hash_),
      store_(std::move(network)),
      scheduler_(options_.queue_depth, options_.retain_jobs) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.coalesce == 0) options_.coalesce = 1;
  if (options_.keep_versions == 0) options_.keep_versions = 1;
  fec_cache_ = options_.engine.check.fec_cache;
  if (!fec_cache_) fec_cache_ = std::make_shared<topo::FecCache>();
  if (options_.max_delta_chain > 0) {
    core::IncrementalOptions inc;
    inc.max_delta_chain = options_.max_delta_chain;
    incremental_ = std::make_shared<core::IncrementalPlanner>(inc);
  }
  // FEC cache entries for a retired version are evicted when its *last*
  // pin is released — a job still running against a trimmed snapshot keeps
  // inserting entries keyed by that topology, so trim-time eviction alone
  // would leave dead keys behind (and alias a recycled allocation if the
  // topology were ever freed). The hook captures the cache shared_ptr, so
  // eviction stays safe whenever the release happens. The incremental
  // planner's delta-cache entries for the version die at the same point.
  // `this` is safe to capture: the hooks live and die with store_, a member
  // of this server (and batch_algebra_/batch_mutex_ are declared before
  // store_, so they outlive its teardown).
  store_.set_release_hook([this, cache = fec_cache_,
                           planner = incremental_](const Snapshot& snapshot) {
    cache->evict(snapshot.topo.get());
    if (planner) planner->retire_version(snapshot.version);
    const std::lock_guard<std::mutex> lock{batch_mutex_};
    std::erase_if(batch_algebra_, [&](const auto& kv) {
      return kv.second.version == snapshot.version;
    });
  });
  // Every apply feeds the delta straight to the planner (no re-diffing)
  // and records one lineage link in the FEC cache — an ACL-only apply
  // preserves every forwarding predicate, so the old version's partitions
  // are valid verbatim and the first lookup that misses on the new topology
  // stitches them through (bounded by the delta-chain budget). The same
  // hook appends the canonical replication record: under the store lock the
  // apply stream is totally ordered, which is exactly the single-writer
  // guarantee the hash chain encodes. Because the record is produced by the
  // hook, a replica applying a subscribed stream re-emits identical records
  // — chained (replica-of-replica) subscriptions work unchanged.
  store_.set_apply_hook([this, cache = fec_cache_, planner = incremental_](
                            const Snapshot& previous, const Snapshot& next,
                            const topo::AclUpdate& update) {
    if (planner) {
      cache->record_delta(previous.topo.get(), next.topo.get(), options_.max_delta_chain);
      planner->record_apply(previous.version, next.version, *previous.topo, update);
    }
    const Json encoded = encode_update(*previous.topo, update);
    repl_hash_ = chain_hash(repl_hash_, next.version, encoded);
    Json::Object record;
    record.emplace("version", next.version);
    record.emplace("hash", hash_hex(repl_hash_));
    record.emplace("update", encoded);
    {
      const std::lock_guard<std::mutex> lock{repl_mutex_};
      repl_log_.push_back({next.version, Json{std::move(record)}.dump() + "\n"});
      repl_head_ = next.version;
    }
    repl_cv_.notify_all();
  });
}

Server::~Server() {
  if (started_ && !torn_down_) {
    request_shutdown();
    try {
      wait();
    } catch (...) {
      // Destructor teardown is best-effort.
    }
  }
}

void Server::prewarm() {
  try {
    const SnapshotPtr head = store_.head();
    if (!head) return;
    // The whole-network plan over the head traffic is what the first
    // post-start checks (and the replica's differential oracle) ask for;
    // deriving it here fills the shared FEC cache and seeds the planner so
    // those jobs start warm instead of paying refinement serially.
    const topo::Scope scope = topo::Scope::whole_network(*head->topo);
    smt::SmtContext smt;
    core::Checker checker{smt, *head->topo, scope, job_check_options()};
    auto bundle = checker.share_plan(head->traffic);
    if (incremental_) incremental_->install(head->version, scope, std::move(bundle));
  } catch (const std::exception&) {
    // Best-effort: a failed pre-warm only means the first jobs derive cold.
  }
}

void Server::start() {
  if (started_) throw ServerError("server already started");
  if (options_.socket_path.empty() && options_.listen_address.empty()) {
    throw ServerError("no transport configured: set socket_path or listen_address");
  }

  const auto fail_start = [this](const std::string& what) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(options_.socket_path.c_str());
    }
    if (tcp_listen_fd_ >= 0) {
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
    }
    throw ServerError(what);
  };

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw ServerError("socket path must be 1.." +
                        std::to_string(sizeof(addr.sun_path) - 1) + " characters: \"" +
                        options_.socket_path + "\"");
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail_start("socket(): " + std::string(std::strerror(errno)));
    ::unlink(options_.socket_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      fail_start("bind(" + options_.socket_path + "): " + std::strerror(errno));
    }
    if (::listen(listen_fd_, 64) != 0) {
      fail_start("listen(): " + std::string(std::strerror(errno)));
    }
  }

  if (!options_.listen_address.empty()) {
    // The Unix socket's permission boundary is the filesystem; TCP has
    // none, so a shared token is mandatory, not optional.
    if (options_.auth_token.empty()) {
      fail_start("TCP listener requires an auth token");
    }
    Endpoint ep;
    try {
      ep = parse_endpoint(options_.listen_address);
    } catch (const EndpointError& e) {
      fail_start(std::string("listen address: ") + e.what());
    }
    if (ep.kind != Endpoint::Kind::Tcp) {
      fail_start("listen address must be host:port, got \"" +
                 options_.listen_address + "\"");
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* found = nullptr;
    const std::string port = std::to_string(ep.port);
    const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &found);
    if (rc != 0) {
      fail_start("resolve(" + ep.host + "): " + ::gai_strerror(rc));
    }
    std::string last_error = "no addresses";
    for (addrinfo* ai = found; ai != nullptr && tcp_listen_fd_ < 0; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_error = std::string("socket(): ") + std::strerror(errno);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, 64) != 0) {
        last_error = std::string(std::strerror(errno));
        ::close(fd);
        continue;
      }
      tcp_listen_fd_ = fd;
    }
    ::freeaddrinfo(found);
    if (tcp_listen_fd_ < 0) {
      fail_start("listen(" + options_.listen_address + "): " + last_error);
    }
    // Report the real port — listen addresses like "127.0.0.1:0" ask the
    // kernel for an ephemeral one.
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    std::uint16_t actual_port = ep.port;
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        actual_port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual_port = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    bound_endpoint_ = ep.host + ":" + std::to_string(actual_port);
  }

  installed_.emplace(registry_);
  accepting_.store(true, std::memory_order_release);
  // --workers is the executor pool width; the dispatcher thread pulls
  // dispatch units off the scheduler and participates as pool worker 0, so
  // total execution threads == workers.
  executor_ = std::make_shared<core::Executor>(options_.workers);
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  scheduler_.drain();
  shutdown_cv_.notify_all();
}

void Server::wait() {
  if (!started_) throw ServerError("server not started");
  {
    std::unique_lock<std::mutex> lock{shutdown_mutex_};
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_.load(std::memory_order_acquire); });
  }
  // Drain: the scheduler stops admitting (503) but every admitted job still
  // runs; the dispatcher exits once the backlog is empty.
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Now that every job is terminal, pending `result` waits have been
  // answered; close the door and let connection threads notice the flag.
  accepting_.store(false, std::memory_order_release);
  stop_connections_.store(true, std::memory_order_release);
  accept_thread_.join();
  // The accept loop has exited, so conn_threads_ is stable from here on.
  for (auto& conn : conn_threads_) conn.join();
  conn_threads_.clear();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  installed_.reset();
  torn_down_ = true;
}

Version Server::repl_head() const {
  const std::lock_guard<std::mutex> lock{repl_mutex_};
  return repl_head_;
}

void Server::sweep_tick() {
  // Expired leases drop their pins here (release hooks fire once the last
  // pin goes), and the follow-up trim collects any version only a lapsed
  // lease was holding — without waiting for the next apply.
  if (store_.sweep_leases() > 0) {
    const auto dropped = store_.trim(options_.keep_versions);
    if (!dropped.empty()) trim_repl_log();
  }
}

void Server::trim_repl_log() {
  // Catch-up from any still-resolvable version needs records strictly
  // above the oldest index entry; everything at or below it is dead weight
  // (leased versions are index entries, so subscribers' floors are kept).
  const Version floor = store_.oldest_version();
  const std::lock_guard<std::mutex> lock{repl_mutex_};
  while (!repl_log_.empty() && repl_log_.front().version <= floor) {
    repl_log_.pop_front();
  }
}

void Server::accept_loop() {
  while (accepting_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    nfds_t count = 0;
    if (listen_fd_ >= 0) fds[count++] = pollfd{listen_fd_, POLLIN, 0};
    if (tcp_listen_fd_ >= 0) fds[count++] = pollfd{tcp_listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, count, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    sweep_tick();
    if (ready == 0) continue;
    for (nfds_t i = 0; i < count; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      // Only the network transport needs the token handshake; the Unix
      // socket's boundary is filesystem permissions.
      const bool needs_auth = fds[i].fd == tcp_listen_fd_;
      if (needs_auth) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      const std::lock_guard<std::mutex> lock{conn_mutex_};
      if (!accepting_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      conn_threads_.emplace_back([this, fd, needs_auth] { connection_loop(fd, needs_auth); });
    }
  }
}

void Server::connection_loop(int fd, bool needs_auth) {
  // A bounded receive timeout lets the thread notice stop_connections_
  // even when the client goes quiet without closing.
  timeval timeout{};
  timeout.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  constexpr std::size_t kMaxLine = 64u << 20;  // defensive bound per request
  // Until the handshake completes the peer is untrusted: it gets a few KB
  // for one auth line, not the 64MB a real request may legitimately need.
  constexpr std::size_t kPreAuthMaxLine = 4096;
  bool authed = !needs_auth;
  std::string buffer;
  char chunk[4096];
  while (!stop_connections_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // client closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      if (!authed) {
        // The one request allowed before the handshake. Anything that is
        // not a well-formed auth call with the right token gets a single
        // terse error line (no hint which part failed) and a hangup.
        std::string response;
        try {
          const Json request = Json::parse(line);
          const Json* method = request.get("method");
          const Json* params = request.get("params");
          const Json* token = params != nullptr ? params->get("token") : nullptr;
          if (method != nullptr && method->is_string() &&
              method->as_string() == "auth" && token != nullptr &&
              token->is_string() && token->as_string() == options_.auth_token) {
            authed = true;
            Json::Object ok;
            ok.emplace("ok", true);
            Json::Object resp;
            const Json* id = request.get("id");
            resp.emplace("id", id != nullptr ? *id : Json{});
            resp.emplace("result", Json{std::move(ok)});
            response = Json{std::move(resp)}.dump() + "\n";
          }
        } catch (const std::exception&) {
          // fall through unauthenticated
        }
        if (!authed) {
          (void)send_all(fd, "{\"error\":{\"code\":401,\"message\":\"unauthorized\"}}\n");
          ::close(fd);
          return;
        }
        if (!send_all(fd, response)) {
          ::close(fd);
          return;
        }
        continue;
      }
      SubscribeIntent sub;
      if (!send_all(fd, handle_line(line, &sub))) {
        ::close(fd);
        return;
      }
      if (sub.requested) {
        serve_subscription(fd, sub.from);
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
    // Unframed garbage; drop the client (tiny budget before auth).
    if (buffer.size() > (authed ? kMaxLine : kPreAuthMaxLine)) break;
  }
  ::close(fd);
}

void Server::serve_subscription(int fd, Version from) {
  subscribers_.fetch_add(1, std::memory_order_relaxed);
  Version sent = from;
  bool ok = true;
  while (ok && !stop_connections_.load(std::memory_order_acquire)) {
    std::vector<std::string> pending;
    {
      std::unique_lock<std::mutex> lock{repl_mutex_};
      repl_cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
        return repl_head_ > sent ||
               stop_connections_.load(std::memory_order_acquire);
      });
      if (repl_head_ > sent) {
        if (repl_log_.empty() || repl_log_.front().version > sent + 1) {
          // The log was trimmed past this subscriber mid-stream (it held
          // no lease, or let its lease lapse). One explicit error record,
          // then hang up — the replica resets and resubscribes fresh.
          pending.push_back(
              "{\"error\":{\"code\":410,\"message\":\"replication log trimmed "
              "past subscriber; reload and resubscribe\"}}\n");
          ok = false;
        } else {
          for (const ReplRecord& record : repl_log_) {
            if (record.version > sent) pending.push_back(record.line);
          }
          sent = repl_head_;
        }
      }
    }
    for (const std::string& line : pending) {
      if (!send_all(fd, line)) {
        ok = false;
        break;
      }
      obs::count(obs::Counter::SvcReplRecordsStreamed);
    }
    if (ok && pending.empty()) {
      // Idle: notice a silent disconnect without waiting for a send to
      // fail. Any inbound byte on a one-way stream is protocol misuse and
      // closes the connection too.
      char probe;
      if (::recv(fd, &probe, 1, MSG_DONTWAIT | MSG_PEEK) >= 0) ok = false;
    }
  }
  subscribers_.fetch_sub(1, std::memory_order_relaxed);
}

std::string Server::handle_line(const std::string& line, SubscribeIntent* sub) {
  Json id;  // null until the request parses far enough to have one
  Json::Object response;
  try {
    const Json request = Json::parse(line);
    if (const Json* req_id = request.get("id")) id = *req_id;
    const Json& method = request.at("method");
    const Json* params = request.get("params");
    const Json empty{Json::Object{}};
    Json result = dispatch(method.as_string(), params != nullptr ? *params : empty, sub);
    response.emplace("id", std::move(id));
    response.emplace("result", std::move(result));
  } catch (const RpcFailure& e) {
    Json::Object error;
    error.emplace("code", e.code);
    error.emplace("message", e.message);
    response.emplace("id", std::move(id));
    response.emplace("error", Json{std::move(error)});
  } catch (const JsonError& e) {
    Json::Object error;
    error.emplace("code", kParseError);
    error.emplace("message", std::string(e.what()));
    response.emplace("id", std::move(id));
    response.emplace("error", Json{std::move(error)});
  } catch (const std::exception& e) {
    Json::Object error;
    error.emplace("code", kInternalError);
    error.emplace("message", std::string(e.what()));
    response.emplace("id", std::move(id));
    response.emplace("error", Json{std::move(error)});
  }
  return Json{std::move(response)}.dump() + "\n";
}

Json Server::dispatch(const std::string& method, const Json& params,
                      SubscribeIntent* sub) {
  if (method == "submit") return handle_submit(params);
  if (method == "status") return handle_status(params);
  if (method == "result") return handle_result(params);
  if (method == "cancel") return handle_cancel(params);
  if (method == "apply") return handle_apply(params);
  if (method == "lease") return handle_lease(params);
  if (method == "renew") return handle_renew(params);
  if (method == "release") return handle_release(params);
  if (method == "subscribe") return handle_subscribe(params, sub);
  if (method == "info") return handle_info();
  if (method == "metrics") return handle_metrics();
  if (method == "auth") {
    // TCP connections are intercepted pre-dispatch; reaching here means the
    // transport is already trusted (Unix socket, or a second auth call) —
    // acknowledge so clients can auth unconditionally.
    Json::Object obj;
    obj.emplace("ok", true);
    return Json{std::move(obj)};
  }
  if (method == "shutdown") {
    // Reply-first semantics: the drain starts now, but this connection's
    // response line is still written (connections outlive the drain).
    request_shutdown();
    Json::Object obj;
    obj.emplace("draining", true);
    return Json{std::move(obj)};
  }
  fail(kMethodNotFound, "unknown method \"" + method + "\"");
}

Json Server::handle_submit(const Json& params) {
  JobSpec spec;
  const Json* program = params.get("program");
  if (program == nullptr || !program->is_string()) {
    fail(kInvalidParams, "missing or non-string \"program\" parameter");
  }
  spec.program = program->as_string();

  // Parse now so a syntax error is a crisp submission failure instead of a
  // queued job that dies later — and so the default priority can be read
  // off the program (interactive check vs. batch fix/generate).
  lai::Program parsed;
  try {
    parsed = lai::parse(spec.program);
  } catch (const std::exception& e) {
    fail(kInvalidParams, "program: " + std::string(e.what()));
  }
  const bool batch_work =
      std::any_of(parsed.commands.begin(), parsed.commands.end(),
                  [](lai::Command c) { return c != lai::Command::Check; });
  if (options_.read_only && batch_work) {
    // Replicas only verify. Plans must be produced (and applied) where
    // apply_if_head can win: the writer.
    fail(kMisdirected, "read-only replica: submit fix/generate work to the writer at " +
                           (options_.writer_endpoint.empty() ? std::string("<unknown>")
                                                             : options_.writer_endpoint));
  }
  spec.priority = batch_work ? Priority::Batch : Priority::Interactive;

  // The builtin the CLI `run` path also provides: migration statements say
  // "modify X to permit_all" without shipping an ACL body.
  spec.acls.emplace("permit_all", net::Acl::permit_all());
  if (const Json* acls = params.get("acls")) {
    if (!acls->is_object()) fail(kInvalidParams, "\"acls\" must be an object of name -> body");
    for (const auto& [name, body] : acls->as_object()) {
      if (!body.is_string()) {
        fail(kInvalidParams, "acl \"" + name + "\": body must be a string");
      }
      try {
        spec.acls.insert_or_assign(name, config::parse_acl_auto(body.as_string()));
      } catch (const std::exception& e) {
        fail(kInvalidParams, "acl \"" + name + "\": " + e.what());
      }
    }
  }
  if (const Json* priority = params.get("priority")) {
    const auto parsed_priority = parse_priority(priority->as_string());
    if (!parsed_priority) {
      fail(kInvalidParams, "priority must be \"interactive\" or \"batch\", got \"" +
                               priority->as_string() + "\"");
    }
    spec.priority = *parsed_priority;
  }
  if (params.get("deadline_ms") != nullptr) {
    spec.deadline_ms = u64_param(params, "deadline_ms");
  }

  SnapshotPtr snapshot;
  if (params.get("snapshot") != nullptr) {
    const Version version = u64_param(params, "snapshot");
    snapshot = store_.snapshot(version);
    if (!snapshot) {
      fail(kNotFound, "unknown snapshot version " + std::to_string(version));
    }
  } else {
    snapshot = store_.head();
  }

  // Resolve against the pinned topology up front: unknown device/interface/
  // ACL names are submission errors, not queued-job failures. The resolved
  // task rides along on the job so dispatch never re-parses, and pure-check
  // programs get a coalesce key — next_batch() may run same-key jobs (same
  // snapshot version, same scope family) as one dispatch unit.
  try {
    auto task = std::make_shared<const lai::UpdateTask>(
        lai::resolve(parsed, *snapshot->topo, spec.acls));
    if (pure_check(*task)) {
      spec.coalesce_key =
          coalesce_key_for(snapshot->version, task->scope, snapshot->traffic);
    }
    spec.task = std::move(task);
  } catch (const std::exception& e) {
    fail(kInvalidParams, "program: " + std::string(e.what()));
  }

  const Priority priority = spec.priority;
  Scheduler::Admission admission = scheduler_.submit(std::move(spec), std::move(snapshot));
  if (!admission.job) fail(admission.error_code, std::move(admission.error_message));

  Json::Object obj;
  obj.emplace("job", admission.job->id());
  obj.emplace("snapshot", admission.job->snapshot_version());
  obj.emplace("priority", to_string(priority));
  return Json{std::move(obj)};
}

Json Server::handle_status(const Json& params) {
  const std::uint64_t id = u64_param(params, "job");
  const auto status = scheduler_.status(id);
  if (!status) fail(kNotFound, "unknown job " + std::to_string(id));
  return status_json(*status);
}

Json Server::handle_result(const Json& params) {
  const std::uint64_t id = u64_param(params, "job");
  std::optional<std::chrono::milliseconds> timeout;
  if (params.get("timeout_ms") != nullptr) {
    timeout = std::chrono::milliseconds(u64_param(params, "timeout_ms"));
  }
  auto status = scheduler_.wait(id, timeout);
  if (!status) {
    // Distinguish "no such job" from "still running when the timeout hit".
    status = scheduler_.status(id);
    if (!status) fail(kNotFound, "unknown job " + std::to_string(id));
    Json::Object obj;
    obj.emplace("done", false);
    obj.emplace("status", status_json(*status));
    return Json{std::move(obj)};
  }
  Json::Object obj;
  obj.emplace("done", true);
  obj.emplace("status", status_json(*status));
  return Json{std::move(obj)};
}

Json Server::handle_cancel(const Json& params) {
  const std::uint64_t id = u64_param(params, "job");
  if (scheduler_.find(id) == nullptr) fail(kNotFound, "unknown job " + std::to_string(id));
  Json::Object obj;
  obj.emplace("cancelled", scheduler_.cancel(id));
  return Json{std::move(obj)};
}

Json Server::handle_apply(const Json& params) {
  if (options_.read_only) {
    fail(kMisdirected, "read-only replica: apply through the writer at " +
                           (options_.writer_endpoint.empty() ? std::string("<unknown>")
                                                             : options_.writer_endpoint));
  }
  const std::uint64_t id = u64_param(params, "job");
  const JobPtr job = scheduler_.find(id);
  if (job == nullptr) fail(kNotFound, "unknown job " + std::to_string(id));
  const auto status = scheduler_.status(id);
  if (!is_terminal(status->state)) {
    fail(kConflict, "job " + std::to_string(id) + " is still " +
                        std::string(to_string(status->state)));
  }
  if (status->state != JobState::Done || !status->outcome.success || !status->outcome.report) {
    fail(kConflict, "job " + std::to_string(id) + " did not produce a deployable plan");
  }

  // The stale-plan check and the head advance are one atomic store
  // operation: of two concurrent applies verified against the same head,
  // exactly one wins — the loser sees the advanced version and conflicts
  // (the same gate also rejects a double-apply of one job).
  const SnapshotPtr next =
      store_.apply_if_head(job->snapshot_version(), status->outcome.report->final_update);
  if (!next) {
    fail(kConflict, "job " + std::to_string(id) + " was verified against snapshot " +
                        std::to_string(job->snapshot_version()) + " but head is " +
                        std::to_string(store_.head_version()) +
                        "; re-verify against the current head");
  }
  obs::count(obs::Counter::SvcApplies);

  // Retire old versions. Their FEC cache entries are evicted by the
  // store's release hook once the last job pinning them finishes, so a
  // recycled Topology allocation can never alias a stale cache key. Leased
  // versions survive the trim, so the replication log keeps covering them.
  const auto dropped = store_.trim(options_.keep_versions);
  trim_repl_log();

  Json::Object obj;
  obj.emplace("version", next->version);
  obj.emplace("dropped_versions", dropped.size());
  return Json{std::move(obj)};
}

SnapshotPtr Server::apply_replicated(Version expected_head, const topo::AclUpdate& update) {
  const SnapshotPtr next = store_.apply_if_head(expected_head, update);
  if (!next) return nullptr;
  store_.trim(options_.keep_versions);  // dropped pins release at end of statement
  trim_repl_log();
  return next;
}

Json Server::handle_lease(const Json& params) {
  const Version version = params.get("version") != nullptr
                              ? u64_param(params, "version")
                              : store_.head_version();
  std::uint64_t lease_ms = params.get("lease_ms") != nullptr
                               ? u64_param(params, "lease_ms")
                               : options_.max_lease_ms;
  lease_ms = std::min<std::uint64_t>(std::max<std::uint64_t>(lease_ms, 1),
                                     options_.max_lease_ms);
  const auto lease = store_.acquire_lease(version, lease_ms);
  if (!lease) fail(kNotFound, "unknown snapshot version " + std::to_string(version));
  Json::Object obj;
  obj.emplace("lease", *lease);
  obj.emplace("version", version);
  obj.emplace("lease_ms", lease_ms);
  return Json{std::move(obj)};
}

Json Server::handle_renew(const Json& params) {
  const std::uint64_t lease = u64_param(params, "lease");
  std::uint64_t lease_ms = params.get("lease_ms") != nullptr
                               ? u64_param(params, "lease_ms")
                               : options_.max_lease_ms;
  lease_ms = std::min<std::uint64_t>(std::max<std::uint64_t>(lease_ms, 1),
                                     options_.max_lease_ms);
  std::optional<Version> version;
  if (params.get("version") != nullptr) version = u64_param(params, "version");
  if (!store_.renew_lease(lease, lease_ms, version)) {
    fail(kNotFound, "unknown or expired lease " + std::to_string(lease) +
                        (version ? " (or unknown version " + std::to_string(*version) + ")"
                                 : ""));
  }
  Json::Object obj;
  obj.emplace("renewed", true);
  obj.emplace("lease_ms", lease_ms);
  if (version) obj.emplace("version", *version);
  return Json{std::move(obj)};
}

Json Server::handle_release(const Json& params) {
  const std::uint64_t lease = u64_param(params, "lease");
  Json::Object obj;
  obj.emplace("released", store_.release_lease(lease));
  return Json{std::move(obj)};
}

Json Server::handle_subscribe(const Json& params, SubscribeIntent* sub) {
  if (sub == nullptr) {
    fail(kInvalidParams, "subscribe is only valid on a dedicated connection");
  }
  // `from` is the subscriber's current version; the stream carries records
  // for (from, head]. Omitted means "from the head": live tail only.
  const Version from = params.get("from") != nullptr ? u64_param(params, "from")
                                                     : store_.head_version();
  if (const Json* fp = params.get("fingerprint")) {
    if (!fp->is_string() || fp->as_string() != hash_hex(base_fingerprint_)) {
      fail(kFingerprintMismatch,
           "base network fingerprint mismatch: writer has " +
               hash_hex(base_fingerprint_) +
               "; reload the writer's network file and resubscribe");
    }
  }
  Version head = 0;
  {
    const std::lock_guard<std::mutex> lock{repl_mutex_};
    head = repl_head_;
    if (from > head) {
      fail(kConflict, "subscriber at version " + std::to_string(from) +
                          " is ahead of the writer head " + std::to_string(head) +
                          " (writer restarted?); reload and resubscribe");
    }
    if (from < head && (repl_log_.empty() || repl_log_.front().version > from + 1)) {
      fail(kTooOld, "version " + std::to_string(from) +
                        " predates the replication log; reload the base network "
                        "and resubscribe from scratch");
    }
  }
  sub->requested = true;
  sub->from = from;
  Json::Object obj;
  obj.emplace("head", head);
  obj.emplace("fingerprint", hash_hex(base_fingerprint_));
  obj.emplace("protocol", std::uint64_t{1});
  return Json{std::move(obj)};
}

Json Server::handle_info() {
  Json::Object obj;
  obj.emplace("head_version", store_.head_version());
  obj.emplace("versions", store_.version_count());
  obj.emplace("queued", scheduler_.queued_count());
  obj.emplace("running", scheduler_.running_count());
  obj.emplace("queue_depth", scheduler_.queue_depth());
  obj.emplace("workers", static_cast<std::uint64_t>(options_.workers));
  obj.emplace("coalesce", static_cast<std::uint64_t>(options_.coalesce));
  obj.emplace("draining", scheduler_.draining());
  obj.emplace("read_only", options_.read_only);
  if (!options_.writer_endpoint.empty()) obj.emplace("writer", options_.writer_endpoint);
  if (!bound_endpoint_.empty()) obj.emplace("listen", bound_endpoint_);
  obj.emplace("fingerprint", hash_hex(base_fingerprint_));
  obj.emplace("repl_head", repl_head());
  obj.emplace("subscribers", static_cast<std::uint64_t>(subscriber_count()));
  obj.emplace("leases", static_cast<std::uint64_t>(store_.lease_count()));
  obj.emplace("incremental", incremental_ != nullptr);
  if (incremental_) {
    const core::IncrementalStats stats = incremental_->stats();
    Json::Object inc;
    inc.emplace("max_delta_chain", static_cast<std::uint64_t>(options_.max_delta_chain));
    inc.emplace("hits", stats.hits);
    inc.emplace("misses", stats.misses);
    inc.emplace("invalidations", stats.invalidations);
    inc.emplace("rebases", stats.rebases);
    inc.emplace("fallbacks", stats.fallbacks);
    inc.emplace("cached_plans", static_cast<std::uint64_t>(stats.cached_plans));
    inc.emplace("cached_obligations", static_cast<std::uint64_t>(stats.cached_obligations));
    obj.emplace("delta_cache", Json{std::move(inc)});
  }
  {
    Json::Object fd;
    fd.emplace("splits", registry_.total(obs::Counter::FecDeltaSplits));
    fd.emplace("reused_atoms", registry_.total(obs::Counter::FecDeltaReusedAtoms));
    fd.emplace("rebuilds", registry_.total(obs::Counter::FecDeltaRebuilds));
    fd.emplace("lineage", static_cast<std::uint64_t>(fec_cache_->lineage_entries()));
    obj.emplace("fec_delta", Json{std::move(fd)});
  }
  return Json{std::move(obj)};
}

Json Server::handle_metrics() {
  std::ostringstream out;
  registry_.write_prometheus(out);
  // Live service gauges that only the server knows.
  out << "# TYPE jinjing_svc_queued_jobs gauge\n"
      << "jinjing_svc_queued_jobs " << scheduler_.queued_count() << "\n"
      << "# TYPE jinjing_svc_running_jobs gauge\n"
      << "jinjing_svc_running_jobs " << scheduler_.running_count() << "\n"
      << "# TYPE jinjing_svc_head_version gauge\n"
      << "jinjing_svc_head_version " << store_.head_version() << "\n"
      // The leak watchdogs: tracked jobs are bounded by retention +
      // queue, live snapshots by the version index + job pins, and FEC
      // entries by the live snapshots — a soak diffing two metrics
      // snapshots can catch retention/eviction leaks from these alone.
      << "# TYPE jinjing_svc_versions gauge\n"
      << "jinjing_svc_versions " << store_.version_count() << "\n"
      << "# TYPE jinjing_svc_live_snapshots gauge\n"
      << "jinjing_svc_live_snapshots " << store_.live_snapshots() << "\n"
      << "# TYPE jinjing_svc_tracked_jobs gauge\n"
      << "jinjing_svc_tracked_jobs " << scheduler_.tracked_count() << "\n"
      << "# TYPE jinjing_svc_fec_entries gauge\n"
      << "jinjing_svc_fec_entries " << fec_cache_->live_entries() << "\n"
      << "# TYPE jinjing_svc_fec_lineage gauge\n"
      << "jinjing_svc_fec_lineage " << fec_cache_->lineage_entries() << "\n"
      << "# TYPE jinjing_svc_leases gauge\n"
      << "jinjing_svc_leases " << store_.lease_count() << "\n"
      << "# TYPE jinjing_svc_subscribers gauge\n"
      << "jinjing_svc_subscribers " << subscriber_count() << "\n"
      << "# TYPE jinjing_svc_repl_head gauge\n"
      << "jinjing_svc_repl_head " << repl_head() << "\n";
  if (options_.extra_metrics) options_.extra_metrics(out);
  if (incremental_) {
    const core::IncrementalStats stats = incremental_->stats();
    out << "# TYPE jinjing_svc_cached_plans gauge\n"
        << "jinjing_svc_cached_plans " << stats.cached_plans << "\n"
        << "# TYPE jinjing_svc_cached_obligations_live gauge\n"
        << "jinjing_svc_cached_obligations_live " << stats.cached_obligations << "\n";
  }
  Json::Object obj;
  obj.emplace("prometheus", out.str());
  return Json{std::move(obj)};
}

void Server::dispatch_loop() {
  const std::size_t max = std::max<std::size_t>(options_.coalesce, 1);
  // One overlap slot: a non-coalescable fix/generate job may run on this
  // side thread while the loop keeps draining batch units behind it — a
  // slow repair no longer serializes the interactive queue. The slot is
  // joined before a second non-coalescable job claims it and before the
  // loop exits, so at most two dispatch units are ever in flight. This is
  // safe because a per-job engine is single-threaded (no shared executor),
  // and every structure it touches (FEC cache, incremental planner,
  // scheduler, batch-algebra map) is internally locked.
  std::thread overlap;
  const auto join_overlap = [&overlap] {
    if (overlap.joinable()) overlap.join();
  };
  while (true) {
    std::vector<JobPtr> unit = scheduler_.next_batch(max);
    if (unit.empty()) {
      join_overlap();
      return;
    }
    if (unit.size() > 1 && incremental_ != nullptr) {
      // Fully-clean delta-cache hits bypass the batch: every obligation
      // their update touches is already a proven verdict, so run_check_only
      // answers them without a single query — pulling them into the batch
      // would only re-scan state for answers the cache already holds.
      std::vector<JobPtr> rest;
      rest.reserve(unit.size());
      for (JobPtr& job : unit) {
        const auto& task = job->spec().task;
        if (task != nullptr &&
            incremental_->peek_fully_clean(job->snapshot_version(), task->scope,
                                           job->snapshot()->traffic, task->modify)) {
          execute_job(job);
        } else {
          rest.push_back(std::move(job));
        }
      }
      unit = std::move(rest);
    }
    if (unit.empty()) continue;
    if (unit.size() == 1) {
      if (options_.overlap && unit.front()->spec().coalesce_key == 0) {
        join_overlap();
        obs::count(obs::Counter::SvcOverlapDispatches);
        overlap = std::thread([this, job = unit.front()] { execute_job(job); });
        continue;
      }
      execute_job(unit.front());
    } else {
      execute_batch(unit);
    }
  }
}

core::CheckOptions Server::job_check_options() const {
  core::CheckOptions check = options_.engine.check;
  // The pool is the parallelism; each per-job engine must stay
  // single-threaded (Executor::run is serialized, not reentrant — a nested
  // run from inside a pool task would deadlock).
  check.threads = 1;
  check.executor = nullptr;
  check.fec_cache = fec_cache_;
  return check;
}

core::EngineOptions Server::job_engine_options() const {
  core::EngineOptions engine = options_.engine;
  engine.check = job_check_options();
  engine.fix.check.threads = 1;
  engine.fix.check.executor = nullptr;
  engine.fix.check.fec_cache = fec_cache_;
  engine.generate.executor = nullptr;
  engine.generate.fec_cache = fec_cache_;
  return engine;
}

std::shared_ptr<const core::BatchAlgebra> Server::batch_algebra_for(const JobPtr& job) {
  const std::uint64_t key = job->spec().coalesce_key;
  if (key == 0 || job->spec().task == nullptr) return nullptr;
  const SnapshotPtr& snapshot = job->snapshot();
  {
    const std::lock_guard<std::mutex> lock{batch_mutex_};
    const auto it = batch_algebra_.find(key);
    if (it != batch_algebra_.end() && it->second.version == snapshot->version) {
      return it->second.algebra;
    }
  }
  const lai::UpdateTask& task = *job->spec().task;
  std::shared_ptr<const core::PlanBundle> bundle;
  if (incremental_) {
    bundle = incremental_
                 ->acquire(snapshot->version, task.scope, snapshot->traffic, task.modify)
                 .bundle;
  }
  if (!bundle) {
    smt::SmtContext smt;
    core::Checker checker{smt, *snapshot->topo, task.scope, job_check_options()};
    bundle = checker.share_plan(snapshot->traffic);
    if (incremental_) incremental_->install(snapshot->version, task.scope, bundle);
  }
  auto algebra = std::make_shared<const core::BatchAlgebra>(
      core::build_batch_algebra(*snapshot->topo, std::move(bundle)));
  obs::count(obs::Counter::SvcBatchAlgebraBuilds);
  const std::lock_guard<std::mutex> lock{batch_mutex_};
  VersionedAlgebra& slot = batch_algebra_[key];
  slot.version = snapshot->version;
  slot.algebra = algebra;
  // Entries for released versions are swept by the store's release hook;
  // this bound only guards a pathological many-scope workload on one
  // version.
  if (batch_algebra_.size() > 16) {
    Version oldest = std::numeric_limits<Version>::max();
    for (const auto& [k, v] : batch_algebra_) oldest = std::min(oldest, v.version);
    if (oldest != snapshot->version) {
      std::erase_if(batch_algebra_, [oldest](const auto& kv) {
        return kv.second.version == oldest;
      });
    }
  }
  return algebra;
}

void Server::execute_batch(const std::vector<JobPtr>& batch) {
  const obs::TraceSpan span{obs::Span::SvcBatch};
  std::shared_ptr<const core::BatchAlgebra> algebra;
  try {
    algebra = batch_algebra_for(batch.front());
  } catch (const std::exception&) {
    algebra = nullptr;
  }
  if (!algebra) {
    // No shared algebra (planning failed, or a direct scheduler user
    // without a resolved task): the unit degrades to per-job execution.
    for (const JobPtr& job : batch) execute_job(job);
    return;
  }
  obs::count(obs::Counter::SvcBatchDispatches);
  obs::count(obs::Counter::SvcBatchJobsCoalesced, batch.size());
  obs::observe(obs::Histogram::SvcBatchSize, batch.size());

  const SnapshotPtr& snapshot = batch.front()->snapshot();
  std::vector<core::BatchItem> items;
  items.reserve(batch.size());
  for (const JobPtr& job : batch) {
    core::BatchItem item;
    item.update = &job->spec().task->modify;
    item.cancelled = [raw = job.get()] { return raw->cancel_requested(); };
    item.expired = [raw = job.get()] {
      const auto remaining = raw->remaining_ms();
      return remaining && *remaining == 0;
    };
    items.push_back(std::move(item));
  }
  core::BatchRunOptions run;
  run.stop_at_first = options_.engine.check.stop_at_first;
  run.executor = executor_.get();
  run.max_shards = std::max<std::size_t>(std::size_t{2} * options_.workers, 2);
  const std::vector<core::BatchOutcome> outcomes =
      core::run_check_batch(*snapshot->topo, *algebra, items, run);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobPtr& job = batch[i];
    const core::BatchOutcome& bo = outcomes[i];
    if (bo.cancelled || job->cancel_requested()) {
      scheduler_.finish(job, JobState::Cancelled, {});
      continue;
    }
    if (bo.deadline_expired) {
      // Same diagnostic family as a deadline caught at dispatch: the job
      // died waiting its turn inside shared execution, not on a solver
      // budget — never report this as a solver timeout.
      JobOutcome outcome;
      outcome.error = "deadline exceeded while queued in a coalesced batch";
      scheduler_.finish(job, JobState::Failed, std::move(outcome));
      continue;
    }
    const lai::UpdateTask& task = *job->spec().task;
    core::EngineReport report;
    report.final_update = task.modify;
    for (std::size_t c = 0; c < task.commands.size(); ++c) {
      core::CommandOutcome cmd;
      cmd.command = lai::Command::Check;
      cmd.check = bo.result;
      report.outcomes.push_back(std::move(cmd));
    }
    if (incremental_) {
      // Seed the verdict cache with the obligations this run proved clean,
      // so a re-check of the same pending update takes the query-free path.
      incremental_->install(snapshot->version, task.scope, algebra->bundle);
      incremental_->commit(snapshot->version, task.scope, snapshot->traffic, task.modify,
                           bo.clean);
    }
    JobOutcome outcome;
    outcome.success = report.success();
    outcome.plan_text = core::format_plan(*snapshot->topo, report.final_update);
    outcome.report = std::move(report);
    scheduler_.finish(job, JobState::Done, std::move(outcome));
  }
}

bool Server::run_check_only(const JobPtr& job, const lai::UpdateTask& task,
                            core::EngineReport& report, bool& cancelled) {
  if (!incremental_) return false;
  if (!pure_check(task)) return false;

  const SnapshotPtr& snapshot = job->snapshot();
  core::CheckOptions check = job_check_options();

  // The cached plan for (snapshot version, scope, entering traffic), plus
  // any obligation verdicts already proven for this exact pending update —
  // the apply_if_head conflict / re-verify loop hits those directly.
  core::IncrementalLease lease =
      incremental_->acquire(snapshot->version, task.scope, snapshot->traffic, task.modify);
  check.adopted_plan = lease.bundle;

  smt::SmtContext smt;
  const unsigned default_timeout = check.timeout_ms;
  core::Checker checker{smt, *snapshot->topo, task.scope, check};

  for (std::size_t c = 0; c < task.commands.size(); ++c) {
    if (job->cancel_requested()) {
      cancelled = true;
      return true;
    }
    if (const auto remaining = job->remaining_ms()) {
      if (*remaining == 0) throw smt::SmtTimeout("job deadline exceeded");
      const auto budget = static_cast<unsigned>(
          std::min<std::uint64_t>(*remaining, std::numeric_limits<unsigned>::max()));
      smt.set_timeout_ms(default_timeout == 0 ? budget : std::min(budget, default_timeout));
    }
    core::CommandOutcome outcome;
    outcome.command = lai::Command::Check;
    if (lease.valid()) {
      auto incremental = core::run_incremental_check(checker, lease, task.modify);
      incremental_->commit(snapshot->version, task.scope, snapshot->traffic, task.modify,
                           incremental.clean);
      outcome.check = std::move(incremental.result);
    } else {
      outcome.check = checker.check(task.modify, snapshot->traffic, {});
      incremental_->install(snapshot->version, task.scope,
                            checker.share_plan(snapshot->traffic));
      if (outcome.check->consistent) {
        // A consistent full run proved every obligation — seed the verdict
        // cache so a re-check of the same pending update is query-free.
        incremental_->commit(snapshot->version, task.scope, snapshot->traffic, task.modify,
                             std::vector<bool>(outcome.check->obligation_count, true));
      }
      lease = incremental_->acquire(snapshot->version, task.scope, snapshot->traffic,
                                    task.modify);
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return true;
}

void Server::execute_job(const JobPtr& job) {
  const obs::TraceSpan span{obs::Span::SvcJob};
  const SnapshotPtr& snapshot = job->snapshot();

  JobOutcome outcome;
  JobState state = JobState::Done;
  try {
    // The server resolved the program at submission; a direct scheduler
    // user may hand us a bare spec, so fall back to resolving here.
    std::shared_ptr<const lai::UpdateTask> resolved = job->spec().task;
    if (resolved == nullptr) {
      const lai::Program program = lai::parse(job->spec().program);
      resolved = std::make_shared<const lai::UpdateTask>(
          lai::resolve(program, *snapshot->topo, job->spec().acls));
    }
    const lai::UpdateTask& task = *resolved;

    core::EngineReport report;
    report.final_update = task.modify;
    bool cancelled = false;
    // Check-only jobs without control intents take the delta-scoped path:
    // the verification plan is adopted from the incremental planner (or
    // built once and installed), and only obligations the update can touch
    // are proven. Everything else runs the full engine pipeline.
    if (!run_check_only(job, task, report, cancelled)) {
      // One fresh engine per job, over the server-wide FEC cache. The cache
      // is what makes the service warm — equivalence classes derived for a
      // snapshot by any worker are reused by every later job on that
      // snapshot — while a fresh SMT session per job keeps answers
      // reproducible: the same request gets the same verdict and the same
      // repair plan regardless of what the server ran before (a reused
      // incremental session can steer Z3 to a different, equally valid,
      // model).
      core::EngineOptions engine_options = job_engine_options();
      // Warm path for fix (and mixed check/fix) jobs: adopt the rebased
      // plan bundle for (version, scope, traffic) so the engine's checker
      // and the fixer's candidate loop skip path enumeration and planning.
      // Control intents change the obligation set, so only intent-free
      // tasks may adopt.
      if (incremental_ && task.controls.empty()) {
        const core::IncrementalLease lease = incremental_->acquire(
            snapshot->version, task.scope, snapshot->traffic, task.modify);
        if (lease.bundle) {
          engine_options.check.adopted_plan = lease.bundle;
          engine_options.fix.check.adopted_plan = lease.bundle;
        }
      }
      core::Engine engine{*snapshot->topo, engine_options};
      const unsigned default_timeout = engine.smt().timeout_ms();

      for (const lai::Command command : task.commands) {
        // Cooperative cancellation and the deadline budget are both checked
        // between commands; the remaining budget caps every Z3 query of the
        // next command via the per-query timeout.
        if (job->cancel_requested()) {
          cancelled = true;
          break;
        }
        if (const auto remaining = job->remaining_ms()) {
          if (*remaining == 0) throw smt::SmtTimeout("job deadline exceeded");
          const auto budget = static_cast<unsigned>(
              std::min<std::uint64_t>(*remaining, std::numeric_limits<unsigned>::max()));
          engine.smt().set_timeout_ms(
              default_timeout == 0 ? budget : std::min(budget, default_timeout));
        }
        report.outcomes.push_back(engine.run_command(task, command, report.final_update,
                                                     snapshot->traffic));
      }
    }
    if (cancelled || job->cancel_requested()) {
      state = JobState::Cancelled;
    } else {
      outcome.success = report.success();
      outcome.plan_text = core::format_plan(*snapshot->topo, report.final_update);
      outcome.report = std::move(report);
    }
  } catch (const smt::SmtTimeout& e) {
    state = JobState::Failed;
    // SmtTimeout is thrown both by the per-query --timeout-ms budget and
    // by an exhausted job deadline; only blame the deadline when the job
    // actually has one and it has expired.
    const auto remaining = job->remaining_ms();
    if (remaining && *remaining == 0) {
      outcome.error = "deadline exceeded: " + std::string(e.what());
    } else {
      outcome.error = "solver timeout: " + std::string(e.what());
    }
  } catch (const std::exception& e) {
    state = JobState::Failed;
    outcome.error = e.what();
  }
  scheduler_.finish(job, state, std::move(outcome));
}

}  // namespace jinjing::svc
