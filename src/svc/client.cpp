#include "svc/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace jinjing::svc {

Client::Client(const std::string& endpoint, ClientOptions options)
    : endpoint_(parse_endpoint(endpoint)), options_(std::move(options)) {
  connect();
}

Client::~Client() { disconnect(); }

Client::Client(Client&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      options_(std::move(other.options_)),
      fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      buffer_(std::move(other.buffer_)) {}

void Client::connect() {
  try {
    fd_ = dial(endpoint_);
  } catch (const EndpointError& error) {
    throw ClientError(error.what());  // one exception type for the retry loop
  }
  if (endpoint_.kind == Endpoint::Kind::Tcp) {
    Json::Object params;
    params.emplace("token", options_.token);
    Json::Object request;
    request.emplace("id", next_id_++);
    request.emplace("method", "auth");
    request.emplace("params", Json{std::move(params)});
    try {
      (void)round_trip(Json{std::move(request)}.dump() + "\n");
    } catch (const RpcError&) {
      disconnect();
      throw ClientError("auth rejected by " + endpoint_.to_string() +
                        " (wrong or missing --token?)");
    } catch (const ClientError&) {
      disconnect();
      throw;
    }
  }
}

void Client::disconnect() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();  // a partial response line from the dead connection
}

Json Client::round_trip(const std::string& line) {
  std::string_view out = line;
  while (!out.empty()) {
    const ssize_t n = ::send(fd_, out.data(), out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError("send(): " + std::string(std::strerror(errno)));
    }
    out.remove_prefix(static_cast<std::size_t>(n));
  }

  // Read until the response line is complete. Calls are sequential, so the
  // first full line is the answer to this request.
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw ClientError("server closed the connection mid-call");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError("recv(): " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string response_line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);

  const Json response = Json::parse(response_line);
  if (const Json* error = response.get("error")) {
    const Json* code = error->get("code");
    const Json* message = error->get("message");
    throw RpcError(code != nullptr ? static_cast<int>(code->as_number()) : -1,
                   message != nullptr ? message->as_string() : "unknown error");
  }
  return response.at("result");
}

Json Client::call(const std::string& method, Json params) {
  Json::Object request;
  request.emplace("id", next_id_++);
  request.emplace("method", method);
  request.emplace("params", std::move(params));
  const std::string line = Json{std::move(request)}.dump() + "\n";

  // A failed round trip or redial consumes one attempt, then backs off;
  // RpcError (the server answered) is never retried and passes through.
  std::uint64_t delay = options_.backoff_ms;
  for (unsigned attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) connect();
      return round_trip(line);
    } catch (const ClientError&) {
      disconnect();
      if (attempt >= options_.max_retries) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    delay = std::min(delay * 2, options_.backoff_cap_ms);
  }
}

std::optional<std::string> Client::read_line(std::uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ClientError("poll(): " + std::string(std::strerror(errno)));
    }
    if (ready == 0) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw ClientError("stream closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError("recv(): " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  std::string line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);
  return line;
}

}  // namespace jinjing::svc
