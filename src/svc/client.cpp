#include "svc/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace jinjing::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw ClientError("socket path must be 1.." + std::to_string(sizeof(addr.sun_path) - 1) +
                      " characters: \"" + socket_path + "\"");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw ClientError("socket(): " + std::string(std::strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ClientError("connect(" + socket_path + "): " + what);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      buffer_(std::move(other.buffer_)) {}

Json Client::call(const std::string& method, Json params) {
  Json::Object request;
  const std::uint64_t id = next_id_++;
  request.emplace("id", id);
  request.emplace("method", method);
  request.emplace("params", std::move(params));
  std::string line = Json{std::move(request)}.dump() + "\n";

  std::string_view out = line;
  while (!out.empty()) {
    const ssize_t n = ::send(fd_, out.data(), out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError("send(): " + std::string(std::strerror(errno)));
    }
    out.remove_prefix(static_cast<std::size_t>(n));
  }

  // Read until the response line is complete. Calls are sequential, so the
  // first full line is the answer to this request.
  std::size_t nl;
  while ((nl = buffer_.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) throw ClientError("server closed the connection mid-call");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError("recv(): " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string response_line = buffer_.substr(0, nl);
  buffer_.erase(0, nl + 1);

  const Json response = Json::parse(response_line);
  if (const Json* error = response.get("error")) {
    const Json* code = error->get("code");
    const Json* message = error->get("message");
    throw RpcError(code != nullptr ? static_cast<int>(code->as_number()) : -1,
                   message != nullptr ? message->as_string() : "unknown error");
  }
  return response.at("result");
}

}  // namespace jinjing::svc
