// Transport endpoints for the service: a Unix-domain socket path or a
// TCP host:port, parsed from one string form shared by every CLI flag
// (`--socket`, `--listen`, `--writer`, `--replica`).
//
// Disambiguation rule: a string is TCP when its last ':' is followed by
// nothing but digits and the prefix contains no '/'. Everything else is a
// filesystem path ("/tmp/jinjing.sock", "./x.sock"). "127.0.0.1:0" asks
// the kernel for an ephemeral port; the server reports the bound port via
// Server::listen_endpoint().
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace jinjing::svc {

class EndpointError : public std::runtime_error {
 public:
  explicit EndpointError(const std::string& what) : std::runtime_error(what) {}
};

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  // Unix: socket path
  std::string host;  // Tcp: numeric or resolvable host
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Parses the shared endpoint string form. Throws EndpointError on an
/// empty string or an out-of-range port.
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

/// Connects a blocking SOCK_STREAM socket to the endpoint. Returns the
/// connected fd; throws EndpointError on failure.
[[nodiscard]] int dial(const Endpoint& endpoint);

}  // namespace jinjing::svc
