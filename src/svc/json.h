// A minimal JSON value type for the service wire protocol.
//
// The service speaks newline-delimited JSON-RPC over a Unix domain socket;
// requests arrive from untrusted clients, so parsing must reject malformed
// input with a clear error instead of guessing. Numbers are stored as
// doubles (job ids and versions stay well below 2^53, where doubles are
// exact); dump() emits one compact line with no embedded newlines, which is
// what makes the framing trivial.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace jinjing::svc {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int n) : value_(static_cast<double>(n)) {}
  Json(unsigned n) : value_(static_cast<double>(n)) {}
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : value_(static_cast<double>(n)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  /// Parses exactly one JSON value (trailing garbage is an error). Throws
  /// JsonError with a byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Compact single-line serialization (strings escaped, no newlines).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  // Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;  // rejects negatives and fractions
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member lookup; nullptr when absent (or when not an object).
  [[nodiscard]] const Json* get(std::string_view key) const;
  /// Object member that must exist; throws JsonError naming the key.
  [[nodiscard]] const Json& at(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace jinjing::svc
