#pragma once

#include <cstdint>

#include "obs/stats.h"

namespace jinjing::obs {

// RAII scoped span: captures the installed registry at construction and
// records a complete trace event on destruction. When no registry is
// installed the constructor is a single pointer load and the destructor a
// single branch — no clock reads, no allocation.
class TraceSpan {
 public:
  explicit TraceSpan(Span name)
      : registry_(StatsRegistry::current()),
        name_(name),
        start_us_(registry_ != nullptr ? registry_->now_us() : 0) {}

  ~TraceSpan() {
    if (registry_ != nullptr) {
      registry_->record_span(name_, start_us_, registry_->now_us());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  StatsRegistry* registry_;
  Span name_;
  std::uint64_t start_us_;
};

}  // namespace jinjing::obs
