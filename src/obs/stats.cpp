#include "obs/stats.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <functional>
#include <ostream>
#include <thread>
#include <vector>

namespace jinjing::obs {
namespace detail {

std::atomic<StatsRegistry*> g_registry{nullptr};

}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_next_serial{1};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "smt_queries",          "smt_queries_cached",    "smt_timeouts",
    "smt_frame_reuses",     "smt_sessions_built",    "smt_optimize_queries",
    "plan_builds",          "plan_cache_hits",       "fec_cache_hits",
    "fec_cache_misses",     "bdd_memo_hits",         "bdd_memo_misses",
    "obligations_planned",  "obligations_executed",  "obligations_cancelled",
    "obligations_skipped",  "executor_runs",         "executor_tasks",
    "executor_steals",      "svc_jobs_submitted",    "svc_jobs_rejected",
    "svc_jobs_cancelled",   "svc_jobs_done",         "svc_jobs_failed",
    "svc_applies",          "delta_cache_hits",      "delta_cache_misses",
    "delta_cache_invalidations",                     "delta_cache_rebases",
    "svc_batch_dispatches", "svc_batch_jobs_coalesced",
    "svc_batch_algebra_builds",                      "svc_leases_granted",
    "svc_leases_renewed",   "svc_leases_released",   "svc_leases_expired",
    "svc_repl_records_streamed",                     "svc_overlap_dispatches",
    "fec_delta_splits",     "fec_delta_reused_atoms",
    "fec_delta_rebuilds",
};

constexpr std::array<std::string_view, kGaugeCount> kGaugeNames = {
    "bdd_nodes",
    "svc_cached_obligations",
};

constexpr std::array<std::string_view, kHistogramCount> kHistogramNames = {
    "smt_solve_micros",
    "executor_queue_depth",
    "executor_tasks_per_run",
    "svc_queue_wait_micros",
    "svc_job_run_micros",
    "svc_batch_size",
    "svc_batch_shard_occupancy",
    "fec_delta_chain_len",
};

constexpr std::array<std::string_view, kSpanCount> kSpanNames = {
    "engine.check",    "engine.fix",       "engine.generate",
    "checker.plan",    "checker.compile",  "checker.execute",
    "executor.run",    "fec.derive",       "smt.query",
    "smt.optimize",    "fix.search",       "fix.enlarge",
    "fix.place",       "fix.assemble",     "generate.derive",
    "generate.solve",  "generate.synthesize",
    "svc.job",         "svc.batch",
};

std::size_t bucket_index(std::uint64_t value) {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

// Upper bound of the cumulative count through bucket `index`: all values with
// bit_width <= index, i.e. value <= 2^index - 1.
std::uint64_t bucket_le(std::size_t index) {
  return (std::uint64_t{1} << index) - 1;
}

}  // namespace

std::string_view to_string(Counter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

std::string_view to_string(Gauge gauge) {
  return kGaugeNames[static_cast<std::size_t>(gauge)];
}

std::string_view to_string(Histogram histogram) {
  return kHistogramNames[static_cast<std::size_t>(histogram)];
}

std::string_view to_string(Span span) {
  return kSpanNames[static_cast<std::size_t>(span)];
}

StatsRegistry::StatsRegistry()
    : serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(steady_now_ns()) {}

StatsRegistry::~StatsRegistry() = default;

StatsRegistry::Shard& StatsRegistry::shard_for_thread() {
  thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_[shard];
}

void StatsRegistry::add(Counter counter, std::uint64_t n) {
  shard_for_thread()
      .counters[static_cast<std::size_t>(counter)]
      .fetch_add(n, std::memory_order_relaxed);
}

void StatsRegistry::set_max(Gauge gauge, std::uint64_t value) {
  std::atomic<std::uint64_t>& cell = gauges_[static_cast<std::size_t>(gauge)];
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < value &&
         !cell.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void StatsRegistry::observe(Histogram histogram, std::uint64_t value) {
  HistogramCells& cells = histograms_[static_cast<std::size_t>(histogram)];
  cells.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t StatsRegistry::total(Counter counter) const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.counters[static_cast<std::size_t>(counter)].load(
        std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t StatsRegistry::gauge(Gauge gauge) const {
  return gauges_[static_cast<std::size_t>(gauge)].load(
      std::memory_order_relaxed);
}

HistogramSnapshot StatsRegistry::histogram(Histogram histogram) const {
  const HistogramCells& cells =
      histograms_[static_cast<std::size_t>(histogram)];
  HistogramSnapshot snapshot;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = cells.buckets[i].load(std::memory_order_relaxed);
  }
  snapshot.count = cells.count.load(std::memory_order_relaxed);
  snapshot.sum = cells.sum.load(std::memory_order_relaxed);
  return snapshot;
}

std::uint64_t StatsRegistry::now_us() const {
  return (steady_now_ns() - epoch_ns_) / 1000;
}

std::shared_ptr<StatsRegistry::ThreadTraceBuffer>
StatsRegistry::buffer_for_thread() {
  thread_local std::uint64_t cached_serial = 0;
  thread_local std::shared_ptr<ThreadTraceBuffer> cached;
  if (cached_serial != serial_ || !cached) {
    auto buffer = std::make_shared<ThreadTraceBuffer>();
    {
      std::lock_guard<std::mutex> lock{trace_mutex_};
      buffer->tid = static_cast<std::uint32_t>(buffers_.size());
      buffers_.push_back(buffer);
    }
    cached = std::move(buffer);
    cached_serial = serial_;
  }
  return cached;
}

void StatsRegistry::record_span(Span name, std::uint64_t start_us,
                                std::uint64_t end_us) {
  std::shared_ptr<ThreadTraceBuffer> buffer = buffer_for_thread();
  std::lock_guard<std::mutex> lock{buffer->mutex};
  buffer->events.push_back(TraceEvent{
      name, buffer->tid, start_us, end_us >= start_us ? end_us - start_us : 0});
}

std::vector<TraceEvent> StatsRegistry::trace_events() const {
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock{trace_mutex_};
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock{buffer->mutex};
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  return events;
}

void StatsRegistry::write_prometheus(std::ostream& out) const {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string_view name = kCounterNames[i];
    out << "# TYPE jinjing_" << name << "_total counter\n";
    out << "jinjing_" << name << "_total "
        << total(static_cast<Counter>(i)) << "\n";
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    const std::string_view name = kGaugeNames[i];
    out << "# TYPE jinjing_" << name << " gauge\n";
    out << "jinjing_" << name << " " << gauge(static_cast<Gauge>(i)) << "\n";
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const std::string_view name = kHistogramNames[i];
    const HistogramSnapshot snapshot = histogram(static_cast<Histogram>(i));
    out << "# TYPE jinjing_" << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      cumulative += snapshot.buckets[b];
      out << "jinjing_" << name << "_bucket{le=\"" << bucket_le(b) << "\"} "
          << cumulative << "\n";
    }
    out << "jinjing_" << name << "_bucket{le=\"+Inf\"} " << snapshot.count
        << "\n";
    out << "jinjing_" << name << "_sum " << snapshot.sum << "\n";
    out << "jinjing_" << name << "_count " << snapshot.count << "\n";
  }
}

void StatsRegistry::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const std::vector<TraceEvent> events = trace_events();
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  {\"name\": \"" << to_string(event.name)
        << "\", \"cat\": \"jinjing\", \"ph\": \"X\", \"ts\": "
        << event.start_us << ", \"dur\": " << event.dur_us
        << ", \"pid\": 1, \"tid\": " << event.tid << "}";
  }
  out << "\n]}\n";
}

void StatsRegistry::write_json(std::ostream& out,
                               const std::string& indent) const {
  out << "{\n" << indent << "  \"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out << (i == 0 ? "\n" : ",\n") << indent << "    \"" << kCounterNames[i]
        << "\": " << total(static_cast<Counter>(i));
  }
  out << "\n" << indent << "  },\n" << indent << "  \"gauges\": {";
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    out << (i == 0 ? "\n" : ",\n") << indent << "    \"" << kGaugeNames[i]
        << "\": " << gauge(static_cast<Gauge>(i));
  }
  out << "\n" << indent << "  },\n" << indent << "  \"histograms\": {";
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const HistogramSnapshot snapshot = histogram(static_cast<Histogram>(i));
    out << (i == 0 ? "\n" : ",\n") << indent << "    \"" << kHistogramNames[i]
        << "\": {\"count\": " << snapshot.count << ", \"sum\": "
        << snapshot.sum << "}";
  }
  out << "\n" << indent << "  }\n" << indent << "}";
}

namespace {

// Live registrations, oldest first. The installed sink is always the
// newest entry, so scopes destroyed out of order (a server restarting
// while an older one still runs) can never leave a freed registry behind.
struct RegistryStack {
  std::mutex mutex;
  std::vector<StatsRegistry*> entries;
};

RegistryStack& registry_stack() {
  static RegistryStack stack;
  return stack;
}

}  // namespace

ScopedRegistry::ScopedRegistry(StatsRegistry& registry) : registry_(&registry) {
  RegistryStack& stack = registry_stack();
  const std::lock_guard<std::mutex> lock{stack.mutex};
  stack.entries.push_back(registry_);
  detail::g_registry.store(registry_, std::memory_order_release);
}

ScopedRegistry::~ScopedRegistry() {
  RegistryStack& stack = registry_stack();
  const std::lock_guard<std::mutex> lock{stack.mutex};
  const auto it = std::find(stack.entries.rbegin(), stack.entries.rend(), registry_);
  if (it != stack.entries.rend()) stack.entries.erase(std::next(it).base());
  detail::g_registry.store(stack.entries.empty() ? nullptr : stack.entries.back(),
                           std::memory_order_release);
}

}  // namespace jinjing::obs
