#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace jinjing::obs {

// Monotonic counters. Every name maps 1:1 to a `jinjing_<name>_total` series
// in the Prometheus export and a key in the --report-json counter dump.
enum class Counter : std::size_t {
  SmtQueries,           // solver.check() calls (feasibility + violation search)
  SmtQueriesCached,     // queries answered by an incremental session solver
  SmtTimeouts,          // queries that hit the per-query deadline (z3 unknown)
  SmtFrameReuses,       // CheckSession cache hits (base frame reused as-is)
  SmtSessionsBuilt,     // CheckSession compiles (base frame asserted from scratch)
  SmtOptimizeQueries,   // z3 optimize calls during fixer placement
  PlanBuilds,           // VerifyPlan constructions
  PlanCacheHits,        // Checker::plan() reuses (same entering set)
  FecCacheHits,         // topo::FecCache lookups served from memo
  FecCacheMisses,       // topo::FecCache lookups that derived classes
  BddMemoHits,          // BddManager and/not memo-table hits
  BddMemoMisses,        // BddManager and/not memo-table misses
  ObligationsPlanned,   // obligations materialized into VerifyPlans
  ObligationsExecuted,  // obligations actually solved by the executor
  ObligationsCancelled, // obligations skipped by early-exit cancellation
  ObligationsSkipped,   // obligations skipped by fixer touched-slot replan
  ExecutorRuns,         // Executor::run invocations
  ExecutorTasks,        // tasks submitted across all runs
  ExecutorSteals,       // successful steal operations
  SvcJobsSubmitted,     // jobs admitted by the service scheduler
  SvcJobsRejected,      // submissions refused by admission control / drain
  SvcJobsCancelled,     // jobs that terminated as cancelled
  SvcJobsDone,          // jobs that ran to completion (success or not)
  SvcJobsFailed,        // jobs that terminated with an error (incl. deadline)
  SvcApplies,           // state-store head advances via the apply method
  DeltaCacheHits,       // incremental-planner lookups served from a cached entry
  DeltaCacheMisses,     // incremental-planner lookups that required a full rebuild
  DeltaCacheInvalidations, // cached obligation verdicts cleared by an apply delta
  DeltaCacheRebases,    // cached plan entries carried across a version bump
  SvcBatchDispatches,   // coalesced dispatch units executed by the service
  SvcBatchJobsCoalesced, // jobs that ran inside a coalesced dispatch unit
  SvcBatchAlgebraBuilds, // per-version batch-algebra precomputations
  SvcLeasesGranted,     // snapshot leases acquired (lease verb)
  SvcLeasesRenewed,     // lease renewals (incl. re-pins to a newer version)
  SvcLeasesReleased,    // leases released explicitly by the holder
  SvcLeasesExpired,     // leases collected by the sweeper after expiry
  SvcReplRecordsStreamed, // replication records written to subscribers
  SvcOverlapDispatches, // non-coalescable jobs run on the dispatcher overlap slot
  FecDeltaSplits,       // partition atoms re-split by delta FEC refinement
  FecDeltaReusedAtoms,  // partition atoms carried across a version delta unchanged
  FecDeltaRebuilds,     // delta refinements abandoned for a from-scratch rebuild
};
inline constexpr std::size_t kCounterCount = 41;

// Gauges track a high-water mark (set_max semantics).
enum class Gauge : std::size_t {
  BddNodes,              // peak node count across live BddManagers
  SvcCachedObligations,  // peak obligations held by the incremental planner
};
inline constexpr std::size_t kGaugeCount = 2;

// Histograms use power-of-two buckets: bucket i counts values whose bit
// width is i, i.e. cumulative(le = 2^i - 1) is exact.
enum class Histogram : std::size_t {
  SmtSolveMicros,       // wall time of individual solver.check() calls
  ExecutorQueueDepth,   // remaining victim queue depth observed at each steal
  ExecutorTasksPerRun,  // tasks handed to the executor per run
  SvcQueueWaitMicros,   // job wait time from submission to execution start
  SvcJobRunMicros,      // job execution wall time
  SvcBatchSize,         // jobs per coalesced dispatch unit
  SvcBatchShardOccupancy, // obligations per shard of a batch fan-out
  FecDeltaChainLen,     // lineage hops walked to resolve a partition by delta
};
inline constexpr std::size_t kHistogramCount = 8;
inline constexpr std::size_t kHistogramBuckets = 40;

// Trace span names; every value maps to a "name" in the Chrome trace export.
enum class Span : std::size_t {
  EngineCheck,
  EngineFix,
  EngineGenerate,
  CheckerPlan,
  CheckerCompile,
  CheckerExecute,
  ExecutorRun,
  FecDerive,
  SmtQuery,
  SmtOptimize,
  FixSearch,
  FixEnlarge,
  FixPlace,
  FixAssemble,
  GenDerive,
  GenSolve,
  GenSynth,
  SvcJob,
  SvcBatch,
};
inline constexpr std::size_t kSpanCount = 19;

std::string_view to_string(Counter counter);
std::string_view to_string(Gauge gauge);
std::string_view to_string(Histogram histogram);
std::string_view to_string(Span span);

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};  // per-bucket counts
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

struct TraceEvent {
  Span name;
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

// Thread-safe statistics sink. Counters are sharded across cache-line-aligned
// atomic blocks to keep concurrent increments cheap; trace events go to
// per-thread buffers registered on first use. All methods are safe to call
// from any thread at any time.
class StatsRegistry {
 public:
  StatsRegistry();
  ~StatsRegistry();

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void add(Counter counter, std::uint64_t n = 1);
  void set_max(Gauge gauge, std::uint64_t value);
  void observe(Histogram histogram, std::uint64_t value);

  std::uint64_t total(Counter counter) const;
  std::uint64_t gauge(Gauge gauge) const;
  HistogramSnapshot histogram(Histogram histogram) const;

  // Microseconds since this registry was created (steady clock).
  std::uint64_t now_us() const;
  void record_span(Span name, std::uint64_t start_us, std::uint64_t end_us);
  std::vector<TraceEvent> trace_events() const;

  // Prometheus text exposition format (counters, gauges, histograms).
  void write_prometheus(std::ostream& out) const;
  // Chrome trace-event JSON ("X" complete events), loadable in Perfetto.
  void write_chrome_trace(std::ostream& out) const;
  // JSON object {"counters":{...},"gauges":{...},"histograms":{...}} for
  // embedding into --report-json / BENCH_check.json.
  void write_json(std::ostream& out, const std::string& indent) const;

  // The globally installed registry, or nullptr when observability is off.
  static StatsRegistry* current();

 private:
  friend class ScopedRegistry;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  };
  struct HistogramCells {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  struct ThreadTraceBuffer {
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  static constexpr std::size_t kShards = 8;

  Shard& shard_for_thread();
  std::shared_ptr<ThreadTraceBuffer> buffer_for_thread();

  std::uint64_t serial_ = 0;
  std::uint64_t epoch_ns_ = 0;
  std::array<Shard, kShards> shards_;
  std::array<std::atomic<std::uint64_t>, kGaugeCount> gauges_{};
  std::array<HistogramCells, kHistogramCount> histograms_;
  mutable std::mutex trace_mutex_;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers_;
};

namespace detail {
extern std::atomic<StatsRegistry*> g_registry;
}  // namespace detail

inline StatsRegistry* StatsRegistry::current() {
  return detail::g_registry.load(std::memory_order_acquire);
}

// Installs a registry as the global sink for the lifetime of the scope.
// Scopes may be destroyed in any order (servers restart independently of
// each other): the newest still-live registration is the sink, so tearing
// one down never re-installs a registry that has already been destroyed.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(StatsRegistry& registry);
  ~ScopedRegistry();

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  StatsRegistry* registry_;
};

// Hot-path helpers: a single relaxed pointer load and branch when disabled.
inline void count(Counter counter, std::uint64_t n = 1) {
  if (StatsRegistry* registry = StatsRegistry::current()) {
    registry->add(counter, n);
  }
}

inline void gauge_max(Gauge gauge, std::uint64_t value) {
  if (StatsRegistry* registry = StatsRegistry::current()) {
    registry->set_max(gauge, value);
  }
}

inline void observe(Histogram histogram, std::uint64_t value) {
  if (StatsRegistry* registry = StatsRegistry::current()) {
    registry->observe(histogram, value);
  }
}

}  // namespace jinjing::obs
