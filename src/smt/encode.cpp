#include "smt/encode.h"

namespace jinjing::smt {

namespace {

z3::context& ctx_of(const PacketVars& h) { return h.field(net::Field::SrcIp).ctx(); }

z3::expr bv_val(z3::context& ctx, std::uint64_t v, unsigned bits) {
  return ctx.bv_val(v, bits);
}

}  // namespace

z3::expr in_interval(const PacketVars& h, net::Field f, const net::Interval& iv) {
  z3::context& ctx = ctx_of(h);
  const unsigned bits = net::field_bits(f);
  if (iv == net::Interval::full(bits)) return ctx.bool_val(true);
  const z3::expr& x = h.field(f);
  if (iv.lo == iv.hi) return x == bv_val(ctx, iv.lo, bits);
  z3::expr result = ctx.bool_val(true);
  if (iv.lo > 0) result = result && z3::uge(x, bv_val(ctx, iv.lo, bits));
  result = result && z3::ule(x, bv_val(ctx, iv.hi, bits));
  return result.simplify();
}

z3::expr in_prefix(const PacketVars& h, net::Field f, const net::Prefix& p) {
  z3::context& ctx = ctx_of(h);
  if (p.is_any()) return ctx.bool_val(true);
  const unsigned bits = net::field_bits(f);
  const std::uint32_t mask = p.len == 0 ? 0 : ~std::uint32_t{0} << (32 - p.len);
  return (h.field(f) & bv_val(ctx, mask, bits)) == bv_val(ctx, p.addr.value, bits);
}

z3::expr match_expr(const PacketVars& h, const net::Match& m) {
  z3::context& ctx = ctx_of(h);
  z3::expr result = ctx.bool_val(true);
  if (!m.src.is_any()) result = result && in_prefix(h, net::Field::SrcIp, m.src);
  if (!m.dst.is_any()) result = result && in_prefix(h, net::Field::DstIp, m.dst);
  if (!m.sport.is_any()) result = result && in_interval(h, net::Field::SrcPort, m.sport.interval());
  if (!m.dport.is_any()) result = result && in_interval(h, net::Field::DstPort, m.dport.interval());
  if (!m.proto.is_any()) result = result && in_interval(h, net::Field::Proto, m.proto.interval());
  return result.simplify();
}

z3::expr cube_expr(const PacketVars& h, const net::HyperCube& c) {
  z3::expr result = ctx_of(h).bool_val(true);
  for (const net::Field f : net::kAllFields) {
    result = result && in_interval(h, f, c.interval(f));
  }
  return result.simplify();
}

z3::expr set_expr(const PacketVars& h, const net::PacketSet& s) {
  z3::context& ctx = ctx_of(h);
  z3::expr result = ctx.bool_val(false);
  for (const auto& cube : s.cubes()) {
    result = result || cube_expr(h, cube);
  }
  return result.simplify();
}

z3::expr equals_packet(const PacketVars& h, const net::Packet& p) {
  z3::context& ctx = ctx_of(h);
  z3::expr result = ctx.bool_val(true);
  for (const net::Field f : net::kAllFields) {
    result = result && (h.field(f) == bv_val(ctx, p.field(f), net::field_bits(f)));
  }
  return result;
}

}  // namespace jinjing::smt
