#include "smt/context.h"

#include <chrono>

#include "obs/stats.h"
#include "obs/trace.h"

namespace jinjing::smt {

namespace {

std::array<z3::expr, net::kNumFields> make_fields(z3::context& ctx, const std::string& prefix) {
  return {
      ctx.bv_const((prefix + "_sip").c_str(), net::field_bits(net::Field::SrcIp)),
      ctx.bv_const((prefix + "_dip").c_str(), net::field_bits(net::Field::DstIp)),
      ctx.bv_const((prefix + "_sport").c_str(), net::field_bits(net::Field::SrcPort)),
      ctx.bv_const((prefix + "_dport").c_str(), net::field_bits(net::Field::DstPort)),
      ctx.bv_const((prefix + "_proto").c_str(), net::field_bits(net::Field::Proto)),
  };
}

}  // namespace

PacketVars::PacketVars(z3::context& ctx, const std::string& prefix)
    : fields_(make_fields(ctx, prefix)) {}

z3::solver SmtContext::make_solver() {
  z3::solver solver{ctx_};
  if (timeout_ms_ > 0) {
    z3::params params{ctx_};
    params.set("timeout", timeout_ms_);
    solver.set(params);
  }
  return solver;
}

z3::optimize SmtContext::make_optimize() {
  z3::optimize opt{ctx_};
  if (timeout_ms_ > 0) {
    z3::params params{ctx_};
    params.set("timeout", timeout_ms_);
    opt.set(params);
  }
  return opt;
}

net::Packet SmtContext::extract_packet(const z3::model& model, const PacketVars& vars) {
  net::Packet p;
  for (const net::Field f : net::kAllFields) {
    const z3::expr value = model.eval(vars.field(f), /*model_completion=*/true);
    p.set_field(f, value.get_numeral_uint64());
  }
  return p;
}

std::optional<net::Packet> SmtContext::solve_for_packet(z3::solver& solver,
                                                        const PacketVars& vars) {
  ++query_count_;
  obs::count(obs::Counter::SmtQueries);
  const auto start = std::chrono::steady_clock::now();
  z3::check_result result;
  {
    obs::TraceSpan span{obs::Span::SmtQuery};
    result = solver.check();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  solve_seconds_ += elapsed;
  obs::observe(obs::Histogram::SmtSolveMicros,
               static_cast<std::uint64_t>(elapsed * 1e6));
  accumulate_stats(solver.statistics());
  if (result == z3::unknown) {
    obs::count(obs::Counter::SmtTimeouts);
    throw SmtTimeout("SMT query returned unknown (" + solver.reason_unknown() + ")");
  }
  if (result != z3::sat) return std::nullopt;
  return extract_packet(solver.get_model(), vars);
}

std::optional<z3::model> SmtContext::check_optimize(z3::optimize& opt) {
  ++query_count_;
  obs::count(obs::Counter::SmtQueries);
  obs::count(obs::Counter::SmtOptimizeQueries);
  const auto start = std::chrono::steady_clock::now();
  z3::check_result result;
  {
    obs::TraceSpan span{obs::Span::SmtOptimize};
    result = opt.check();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  solve_seconds_ += elapsed;
  obs::observe(obs::Histogram::SmtSolveMicros,
               static_cast<std::uint64_t>(elapsed * 1e6));
  accumulate_stats(opt.statistics());
  if (result == z3::unknown) {
    obs::count(obs::Counter::SmtTimeouts);
    throw SmtTimeout("SMT optimize query returned unknown (deadline exceeded?)");
  }
  if (result != z3::sat) return std::nullopt;
  return opt.get_model();
}

std::uint64_t SmtContext::statistic(const std::string& key) const {
  const auto it = stat_totals_.find(key);
  return it == stat_totals_.end() ? 0 : it->second;
}

void SmtContext::accumulate_stats(const z3::stats& stats) {
  for (unsigned i = 0; i < stats.size(); ++i) {
    const std::string key = stats.key(i);
    const std::uint64_t value = stats.is_uint(i) ? stats.uint_value(i)
                                                 : static_cast<std::uint64_t>(stats.double_value(i));
    stat_totals_[key] += value;
  }
}

}  // namespace jinjing::smt
