#include "smt/acl_encoder.h"

#include <span>

namespace jinjing::smt {

namespace {

z3::expr action_val(z3::context& ctx, net::Action a) {
  return ctx.bool_val(a == net::Action::Permit);
}

z3::expr sequential_encode(const PacketVars& h, std::span<const net::AclRule> rules,
                           const z3::expr& default_value) {
  // Build the ite chain inside-out so the first rule ends up outermost.
  z3::expr result = default_value;
  for (auto it = rules.rbegin(); it != rules.rend(); ++it) {
    result = z3::ite(match_expr(h, it->match), action_val(result.ctx(), it->action), result);
  }
  return result;
}

struct TreeNode {
  z3::expr matched;   // any rule in this span matches h
  z3::expr decision;  // the span's first-match decision (valid when matched)
};

TreeNode tree_encode(const PacketVars& h, std::span<const net::AclRule> rules) {
  z3::context& ctx = h.field(net::Field::SrcIp).ctx();
  if (rules.size() == 1) {
    return TreeNode{match_expr(h, rules.front().match), action_val(ctx, rules.front().action)};
  }
  const std::size_t mid = rules.size() / 2;
  const TreeNode top = tree_encode(h, rules.subspan(0, mid));
  const TreeNode bottom = tree_encode(h, rules.subspan(mid));
  return TreeNode{
      top.matched || bottom.matched,
      z3::ite(top.matched, top.decision, bottom.decision),
  };
}

}  // namespace

z3::expr acl_permits(const PacketVars& h, const net::Acl& acl, EncoderStrategy strategy) {
  z3::context& ctx = h.field(net::Field::SrcIp).ctx();
  const z3::expr default_value = action_val(ctx, acl.default_action());
  if (acl.rules().empty()) return default_value;

  switch (strategy) {
    case EncoderStrategy::Sequential:
      return sequential_encode(h, acl.rules(), default_value);
    case EncoderStrategy::Tree: {
      const TreeNode root = tree_encode(h, acl.rules());
      return z3::ite(root.matched, root.decision, default_value);
    }
  }
  return default_value;  // unreachable
}

}  // namespace jinjing::smt
