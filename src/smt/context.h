// RAII wrapper around the Z3 C++ API: packet-header variables, solver
// construction, model extraction, and solver statistics.
//
// All SMT reasoning in Jinjing quantifies over one symbolic packet header h
// (the paper's 104-bit boolean vector), represented as five bitvector
// variables of the field widths in net::kFieldBits.
#pragma once

#include <z3++.h>

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/packet.h"

namespace jinjing::smt {

/// Thrown when a solver query comes back `unknown` — with a per-query
/// deadline configured that means the deadline fired. An unknown can never
/// be treated as "no violation" (that would be unsound), so it surfaces as
/// an error the caller must handle.
class SmtTimeout : public std::runtime_error {
 public:
  explicit SmtTimeout(const std::string& what) : std::runtime_error(what) {}
};

/// The five symbolic header fields of one packet variable h.
class PacketVars {
 public:
  PacketVars(z3::context& ctx, const std::string& prefix);

  [[nodiscard]] const z3::expr& field(net::Field f) const {
    return fields_[static_cast<std::size_t>(f)];
  }

 private:
  std::array<z3::expr, net::kNumFields> fields_;
};

/// Owns the z3::context and provides solver helpers. Not thread-safe (Z3
/// contexts are single-threaded); create one per worker.
class SmtContext {
 public:
  SmtContext() = default;
  SmtContext(const SmtContext&) = delete;
  SmtContext& operator=(const SmtContext&) = delete;

  [[nodiscard]] z3::context& ctx() { return ctx_; }

  [[nodiscard]] PacketVars packet_vars(const std::string& prefix = "h") {
    return PacketVars{ctx_, prefix};
  }

  [[nodiscard]] z3::solver make_solver();
  [[nodiscard]] z3::optimize make_optimize();

  /// Per-query deadline applied to every solver/optimizer this context
  /// creates from now on. 0 (the default) = no deadline.
  void set_timeout_ms(unsigned ms) { timeout_ms_ = ms; }
  [[nodiscard]] unsigned timeout_ms() const { return timeout_ms_; }

  [[nodiscard]] z3::expr bool_val(bool b) { return ctx_.bool_val(b); }

  /// Extracts the concrete packet a model assigns to `vars`.
  [[nodiscard]] net::Packet extract_packet(const z3::model& model, const PacketVars& vars);

  /// Cumulative count of solver queries issued through this context's
  /// helpers (a cheap work metric for the benchmarks).
  [[nodiscard]] std::uint64_t query_count() const { return query_count_; }

  /// Wall-clock seconds spent inside solver/optimizer check() calls.
  [[nodiscard]] double solve_seconds() const { return solve_seconds_; }

  /// Checks `solver`; on SAT returns the packet assigned to `vars`.
  [[nodiscard]] std::optional<net::Packet> solve_for_packet(z3::solver& solver,
                                                            const PacketVars& vars);

  /// Checks an optimize instance; on SAT returns its model.
  [[nodiscard]] std::optional<z3::model> check_optimize(z3::optimize& opt);

  /// Sum of the named statistic over all queries issued so far (e.g.
  /// "decisions" — the DPLL recursive-call proxy discussed in §9).
  [[nodiscard]] std::uint64_t statistic(const std::string& key) const;

 private:
  void accumulate_stats(const z3::stats& stats);

  z3::context ctx_;
  unsigned timeout_ms_ = 0;
  std::uint64_t query_count_ = 0;
  double solve_seconds_ = 0;
  std::unordered_map<std::string, std::uint64_t> stat_totals_;
};

}  // namespace jinjing::smt
