// ACL decision-model encoding f_ξ(h) (§3.3) with the two strategies the
// paper compares:
//
//  * Sequential — rules encoded by priority as a nested if-then-else chain;
//    O(n) search depth in the solver.
//  * Tree — the §4.1 "ACL decision model optimization": a tournament-style
//    dependency tree. The rule list is split recursively; a half's decision
//    applies when any of its rules matches, giving O(log n) depth:
//        f(rules) = ite(matched(top half), f(top half), f(bottom half))
//    with matched(·) also combined as a balanced tree.
#pragma once

#include <z3++.h>

#include "net/acl.h"
#include "smt/context.h"
#include "smt/encode.h"

namespace jinjing::smt {

enum class EncoderStrategy { Sequential, Tree };

/// f_ξ(h): TRUE iff the ACL permits the symbolic packet h.
[[nodiscard]] z3::expr acl_permits(const PacketVars& h, const net::Acl& acl,
                                   EncoderStrategy strategy = EncoderStrategy::Tree);

}  // namespace jinjing::smt
