// Encoding of matches, intervals, cubes and packet sets over a symbolic
// packet (the m_k(h) and ψ_[h](h') functions of §4).
#pragma once

#include <z3++.h>

#include "net/acl.h"
#include "net/packet_set.h"
#include "smt/context.h"

namespace jinjing::smt {

/// lo <= h.f <= hi (unsigned bitvector comparison).
[[nodiscard]] z3::expr in_interval(const PacketVars& h, net::Field f, const net::Interval& iv);

/// The prefix constraint (h.f & mask) == addr.
[[nodiscard]] z3::expr in_prefix(const PacketVars& h, net::Field f, const net::Prefix& p);

/// m_k(h): the rule-match predicate for a 5-tuple match.
[[nodiscard]] z3::expr match_expr(const PacketVars& h, const net::Match& m);

/// Membership in one hypercube.
[[nodiscard]] z3::expr cube_expr(const PacketVars& h, const net::HyperCube& c);

/// ψ_S(h): membership in a packet set (disjunction over its cubes).
[[nodiscard]] z3::expr set_expr(const PacketVars& h, const net::PacketSet& s);

/// h == p (pins the symbolic packet to a concrete one).
[[nodiscard]] z3::expr equals_packet(const PacketVars& h, const net::Packet& p);

}  // namespace jinjing::smt
