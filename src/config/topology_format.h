// A textual network description format, so the toolchain runs from files
// (the operator-facing path: topology + configs in, update plan out).
//
//   # comments with '#' or '!'
//   device A
//   interface A:1 external          # border attachment
//   interface A:2
//   link A:2 -> B:1 dst 1.0.0.0/8 | dst 2.0.0.0/8   # forwarding predicate
//   link B:2 -> C:1 all
//   acl A:1-in                      # ACL block, canonical or IOS dialect
//     deny dst 6.0.0.0/8
//     permit all
//   end
//   route B 1.0.0.0/8 -> B:2        # RIB entry; LPM-compiled to edges
//   route B 1.2.0.0/16 -> B:3, B:4  # ECMP
//   traffic dst 1.0.0.0/8           # entering traffic (union over lines)
//
// `route` lines build per-device RIBs; after parsing, each RIB is compiled
// (longest-prefix-match) into intra-device edges from the device''s ingress
// interfaces (its externally attached interfaces and the targets of
// inter-device links, minus the RIB''s own next-hops).
//
// A predicate / traffic spec is a union ('|') of match expressions in the
// canonical ACL match syntax (src/dst prefixes, sport/dport ranges, proto).
#pragma once

#include <string>
#include <string_view>

#include "config/acl_format.h"
#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::config {

struct NetworkFile {
  topo::Topology topo;
  net::PacketSet traffic;
};

/// Parses the format above. Throws net::ParseError with line numbers.
[[nodiscard]] NetworkFile parse_network(std::string_view text);

/// Reads and parses a file from disk. Throws std::runtime_error on I/O
/// failure and net::ParseError on syntax errors.
[[nodiscard]] NetworkFile load_network(const std::string& path);

/// Serializes a network back to the textual format (round-trippable).
[[nodiscard]] std::string print_network(const NetworkFile& network);

/// Parses a union-of-matches packet-set spec ("dst 1.0.0.0/8 | dst
/// 2.0.0.0/8 dport 80", or "all"); the overload resolves "@NAME" group
/// references.
[[nodiscard]] net::PacketSet parse_packet_set(std::string_view spec);
[[nodiscard]] net::PacketSet parse_packet_set(std::string_view spec,
                                              const GroupTable& groups);

/// Prints a packet set as a union-of-matches spec (cubes are decomposed
/// into prefix-shaped matches first).
[[nodiscard]] std::string print_packet_set(const net::PacketSet& set);

}  // namespace jinjing::config
