// The data-quality auditing tool (§7, deployment challenges).
//
// Jinjing's verdicts are only as good as the topology, routing and ACL data
// it consumes; the paper describes an internal tool that continuously
// monitors that data. This module reproduces its checks: structural
// problems (dangling interfaces, empty or dead links, traffic sinks),
// reachability problems (entries that reach no exit, blackholed traffic)
// and configuration problems (fully-shadowed ACL rules, ACLs bound to
// interfaces no path can cross).
#pragma once

#include <string>
#include <vector>

#include "net/packet_set.h"
#include "topo/topology.h"

namespace jinjing::config {

enum class Severity { Warning, Error };

struct AuditIssue {
  Severity severity = Severity::Warning;
  std::string code;     // stable machine-readable id, e.g. "dangling-interface"
  std::string message;  // human-readable description
};

/// Runs all checks against the network and the expected entering traffic.
/// An empty result means the data passes the audit.
[[nodiscard]] std::vector<AuditIssue> audit_network(const topo::Topology& topo,
                                                    const net::PacketSet& traffic);

[[nodiscard]] std::string to_string(const AuditIssue& issue);

/// True when any issue is an error (as opposed to a warning).
[[nodiscard]] bool has_errors(const std::vector<AuditIssue>& issues);

}  // namespace jinjing::config
