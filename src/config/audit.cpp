#include "config/audit.h"

#include <algorithm>

#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::config {

namespace {

void add(std::vector<AuditIssue>& issues, Severity severity, std::string code,
         std::string message) {
  issues.push_back(AuditIssue{severity, std::move(code), std::move(message)});
}

}  // namespace

std::vector<AuditIssue> audit_network(const topo::Topology& topo,
                                      const net::PacketSet& traffic) {
  std::vector<AuditIssue> issues;
  const auto scope = topo::Scope::whole_network(topo);

  // --- structural checks -------------------------------------------------
  std::vector<bool> has_out(topo.interface_count(), false);
  std::vector<bool> has_in(topo.interface_count(), false);
  for (const auto& edge : topo.edges()) {
    has_out[edge.from] = true;
    has_in[edge.to] = true;
    if (edge.predicate.is_empty()) {
      add(issues, Severity::Warning, "empty-link",
          "link " + topo.qualified_name(edge.from) + " -> " + topo.qualified_name(edge.to) +
              " carries no traffic");
    }
  }

  for (topo::DeviceId d = 0; d < topo.device_count(); ++d) {
    if (topo.interfaces_of(d).empty()) {
      add(issues, Severity::Warning, "empty-device",
          "device " + topo.device_name(d) + " has no interfaces");
    }
  }

  for (topo::InterfaceId i = 0; i < topo.interface_count(); ++i) {
    const bool connected = has_out[i] || has_in[i] || topo.is_external(i);
    if (!connected) {
      add(issues, Severity::Warning, "dangling-interface",
          "interface " + topo.qualified_name(i) + " has no links and is not external");
    }
    // A non-external interface that receives traffic but cannot pass it on
    // silently blackholes packets.
    if (has_in[i] && !has_out[i] && !topo.is_external(i)) {
      add(issues, Severity::Error, "traffic-sink",
          "interface " + topo.qualified_name(i) +
              " receives traffic but has no onward link and is not external");
    }
  }

  // --- reachability checks ------------------------------------------------
  const auto entries = topo::entry_interfaces(topo, scope);
  const auto exits = topo::exit_interfaces(topo, scope);
  if (entries.empty()) {
    add(issues, Severity::Error, "no-entry", "no interface can receive external traffic");
  }
  if (exits.empty()) {
    add(issues, Severity::Error, "no-exit", "no interface can send traffic outside");
  }

  std::vector<topo::Path> paths;
  try {
    paths = topo::enumerate_paths(topo, scope);
  } catch (const topo::TopologyError& e) {
    add(issues, Severity::Error, "path-explosion", e.what());
    return issues;
  }

  for (const auto entry : entries) {
    const bool reaches_exit = std::any_of(paths.begin(), paths.end(), [&](const topo::Path& p) {
      return p.entry() == entry && !topo::forwarding_set(topo, p).is_empty();
    });
    if (!reaches_exit) {
      add(issues, Severity::Error, "unreachable-exit",
          "entry " + topo.qualified_name(entry) + " cannot reach any exit");
    }
  }

  // Entering traffic that no path can carry end to end.
  if (!traffic.is_empty()) {
    net::PacketSet carried;
    for (const auto& p : paths) carried = carried | topo::forwarding_set(topo, p);
    const auto blackholed = traffic - carried;
    if (!blackholed.is_empty()) {
      add(issues, Severity::Warning, "blackholed-traffic",
          "part of the declared traffic is carried by no path: " +
              net::to_string(blackholed.cubes().front()));
    }
  }

  // --- configuration checks -----------------------------------------------
  for (const auto slot : topo.bound_slots()) {
    const auto& acl = topo.acl(slot);
    for (std::size_t i = 0; i < acl.size(); ++i) {
      if (net::effective_match_set(acl, i).is_empty()) {
        add(issues, Severity::Warning, "shadowed-rule",
            "rule " + std::to_string(i + 1) + " of " + topo.qualified_name(slot.iface) + "-" +
                std::string(topo::to_string(slot.dir)) + " ('" + net::to_string(acl.rules()[i]) +
                "') is fully shadowed");
      }
    }
    const bool on_some_path = std::any_of(paths.begin(), paths.end(), [&](const topo::Path& p) {
      return p.visits(slot);
    });
    if (!on_some_path) {
      add(issues, Severity::Warning, "acl-off-path",
          "ACL at " + topo.qualified_name(slot.iface) + "-" +
              std::string(topo::to_string(slot.dir)) + " lies on no border-to-border path");
    }
  }
  return issues;
}

std::string to_string(const AuditIssue& issue) {
  return std::string(issue.severity == Severity::Error ? "error" : "warning") + " [" +
         issue.code + "] " + issue.message;
}

bool has_errors(const std::vector<AuditIssue>& issues) {
  return std::any_of(issues.begin(), issues.end(),
                     [](const AuditIssue& i) { return i.severity == Severity::Error; });
}

}  // namespace jinjing::config
