// Vendor configuration formats for ACLs.
//
// §7 (deployment challenges): "routers in our WAN are provided by different
// vendors [with] different configuration formats". This module parses the
// two dialects the toolchain ingests and prints the canonical one:
//
//  * Canonical (the format used throughout this repo):
//        deny dst 1.0.0.0/8
//        permit src 10.0.0.0/24 dst 1.2.0.0/16 dport 80 proto tcp
//
//  * IOS-like numbered extended ACLs:
//        access-list 101 deny ip any 1.0.0.0 0.255.255.255
//        access-list 101 permit tcp 10.0.0.0 0.0.0.255 1.2.0.0 0.0.255.255 eq 80
//        access-list 101 permit ip any any
//    (wildcard masks; "host A.B.C.D" and "any" address forms; protocol
//    keywords ip/tcp/udp/icmp or a number; optional "eq P" / "range A B"
//    port qualifiers after each address.)
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/acl.h"

namespace jinjing::config {

enum class AclDialect { Canonical, Ios };

/// Named match groups (vendor object-groups / prefix-lists): a rule
/// "deny @WEB" expands to one rule per member match, in order. Groups are
/// declared with `group NAME = <match> | <match> ...` lines — standalone at
/// the top of an ACL file, or anywhere in a network file before use.
using GroupTable = std::map<std::string, std::vector<net::Match>, std::less<>>;

/// Parses one "group NAME = spec" line into `groups`. Returns false when
/// the line is not a group declaration. Throws net::ParseError on a
/// malformed declaration.
bool parse_group_line(std::string_view line, GroupTable& groups);

/// Parses a union-of-matches spec into its member matches ("dst 1.0.0.0/8 |
/// src 10.0.0.0/8 dport 80"; "@NAME" splices a previously declared group).
[[nodiscard]] std::vector<net::Match> parse_match_union(std::string_view spec,
                                                        const GroupTable& groups = {});

/// Auto-detects the dialect of an ACL body (IOS lines start with
/// "access-list").
[[nodiscard]] AclDialect detect_dialect(std::string_view text);

/// Parses a whole ACL body (one rule per line; '!' and '#' comments and
/// blank lines ignored; canonical bodies may open with `group` lines and
/// reference groups as "permit @NAME"). Throws net::ParseError with a line
/// number.
[[nodiscard]] net::Acl parse_acl(std::string_view text,
                                 AclDialect dialect = AclDialect::Canonical,
                                 const GroupTable& groups = {});

/// Parses with auto-detection.
[[nodiscard]] net::Acl parse_acl_auto(std::string_view text, const GroupTable& groups = {});

/// Parses one IOS-style rule line (without the "access-list N" prefix the
/// body parser strips). Exposed for tests.
[[nodiscard]] net::AclRule parse_ios_rule(std::string_view line);

/// Prints an ACL in the canonical dialect, one rule per line.
[[nodiscard]] std::string print_acl(const net::Acl& acl);

/// Prints an ACL as IOS-like "access-list <number> ..." lines.
[[nodiscard]] std::string print_acl_ios(const net::Acl& acl, unsigned number);

}  // namespace jinjing::config
