#include "config/acl_format.h"

#include <bit>
#include <sstream>

namespace jinjing::config {

namespace {

using net::ParseError;

/// Pulls the next whitespace-separated token, or empty when exhausted.
class TokenStream {
 public:
  explicit TokenStream(std::string_view line) : in_(std::string(line)) {}

  [[nodiscard]] std::string next() {
    std::string tok;
    in_ >> tok;
    return tok;
  }

  [[nodiscard]] std::string peek() {
    const auto pos = in_.tellg();
    std::string tok;
    in_ >> tok;
    in_.clear();
    in_.seekg(pos);
    return tok;
  }

  [[nodiscard]] bool done() { return peek().empty(); }

 private:
  std::istringstream in_;
};

/// Converts an (address, wildcard-mask) pair to a prefix. IOS wildcards set
/// the *don't care* bits; only contiguous low-bit wildcards form prefixes.
net::Prefix wildcard_to_prefix(net::Ipv4 addr, net::Ipv4 wildcard) {
  const std::uint32_t mask = ~wildcard.value;
  if (std::countl_one(mask) + std::countr_zero(mask) != 32 && mask != 0) {
    throw ParseError("non-contiguous wildcard mask " + net::to_string(wildcard));
  }
  const auto len = static_cast<std::uint8_t>(std::popcount(mask));
  return net::Prefix{addr, len};
}

/// Parses an IOS address spec (any | host A | A W) from the stream.
net::Prefix parse_ios_address(TokenStream& toks) {
  const std::string first = toks.next();
  if (first.empty()) throw ParseError("missing address in IOS rule");
  if (first == "any") return net::Prefix::any();
  if (first == "host") {
    const std::string addr = toks.next();
    if (addr.empty()) throw ParseError("missing address after 'host'");
    return net::Prefix::host(net::parse_ipv4(addr));
  }
  const net::Ipv4 addr = net::parse_ipv4(first);
  const std::string wildcard = toks.next();
  if (wildcard.empty()) throw ParseError("missing wildcard mask after " + first);
  return wildcard_to_prefix(addr, net::parse_ipv4(wildcard));
}

/// Parses an optional port qualifier (eq/range/gt/lt) from the stream.
net::PortRange parse_ios_ports(TokenStream& toks) {
  const std::string qual = toks.peek();
  if (qual == "eq") {
    (void)toks.next();
    return net::PortRange::single(
        static_cast<std::uint16_t>(std::stoul(toks.next())));
  }
  if (qual == "range") {
    (void)toks.next();
    const auto lo = static_cast<std::uint16_t>(std::stoul(toks.next()));
    const auto hi = static_cast<std::uint16_t>(std::stoul(toks.next()));
    return net::PortRange{lo, hi};
  }
  if (qual == "gt") {
    (void)toks.next();
    const auto lo = static_cast<std::uint16_t>(std::stoul(toks.next()));
    if (lo == 0xFFFF) throw ParseError("gt 65535 matches nothing");
    return net::PortRange{static_cast<std::uint16_t>(lo + 1), 0xFFFF};
  }
  if (qual == "lt") {
    (void)toks.next();
    const auto hi = static_cast<std::uint16_t>(std::stoul(toks.next()));
    if (hi == 0) throw ParseError("lt 0 matches nothing");
    return net::PortRange{0, static_cast<std::uint16_t>(hi - 1)};
  }
  return net::PortRange::any();
}

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

/// Strips comments; returns true when the remaining line is blank.
bool is_blank(std::string_view line) {
  for (const char c : line) {
    if (c == '!' || c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::vector<net::Match> parse_match_union(std::string_view spec, const GroupTable& groups) {
  std::vector<net::Match> out;
  const std::string text{spec};
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t bar = text.find('|', start);
    const auto part = trim_view(std::string_view(text).substr(
        start, bar == std::string::npos ? text.size() - start : bar - start));
    if (!part.empty()) {
      if (part.front() == '@') {
        const auto it = groups.find(part.substr(1));
        if (it == groups.end()) {
          throw ParseError("unknown group '" + std::string(part.substr(1)) + "'");
        }
        out.insert(out.end(), it->second.begin(), it->second.end());
      } else {
        // Reuse the rule parser by prefixing an action keyword.
        out.push_back(net::parse_rule("permit " + std::string(part)).match);
      }
    }
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return out;
}

bool parse_group_line(std::string_view line, GroupTable& groups) {
  const auto trimmed = trim_view(line);
  if (!trimmed.starts_with("group ")) return false;
  const auto rest = trimmed.substr(6);
  const auto eq = rest.find('=');
  if (eq == std::string_view::npos) throw ParseError("group syntax: group NAME = <matches>");
  const auto name = trim_view(rest.substr(0, eq));
  if (name.empty()) throw ParseError("group needs a name");
  const auto members = parse_match_union(rest.substr(eq + 1), groups);
  if (members.empty()) throw ParseError("group '" + std::string(name) + "' has no members");
  groups.insert_or_assign(std::string(name), members);
  return true;
}

net::AclRule parse_ios_rule(std::string_view line) {
  TokenStream toks{line};

  std::string word = toks.next();
  if (word == "access-list") {
    (void)toks.next();  // the list number
    word = toks.next();
  }

  net::AclRule rule;
  if (word == "permit") {
    rule.action = net::Action::Permit;
  } else if (word == "deny") {
    rule.action = net::Action::Deny;
  } else {
    throw ParseError("expected permit/deny, got '" + word + "'");
  }

  const std::string proto = toks.next();
  if (proto.empty()) throw ParseError("missing protocol in IOS rule");
  rule.match.proto = proto == "ip" ? net::ProtoMatch::any() : net::parse_proto(proto);

  rule.match.src = parse_ios_address(toks);
  rule.match.sport = parse_ios_ports(toks);
  rule.match.dst = parse_ios_address(toks);
  rule.match.dport = parse_ios_ports(toks);

  if (!toks.done()) throw ParseError("trailing tokens in IOS rule: '" + toks.peek() + "'");
  return rule;
}

AclDialect detect_dialect(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (is_blank(line)) continue;
    std::istringstream first{line};
    std::string word;
    first >> word;
    return word == "access-list" ? AclDialect::Ios : AclDialect::Canonical;
  }
  return AclDialect::Canonical;
}

net::Acl parse_acl(std::string_view text, AclDialect dialect, const GroupTable& groups) {
  GroupTable local = groups;  // file-local declarations extend the caller's
  std::vector<net::AclRule> rules;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (is_blank(line)) continue;
    try {
      if (dialect == AclDialect::Ios) {
        rules.push_back(parse_ios_rule(line));
        continue;
      }
      if (parse_group_line(line, local)) continue;
      // "<action> @NAME" expands the group into one rule per member.
      const auto trimmed = trim_view(line);
      const auto space = trimmed.find(' ');
      if (space != std::string_view::npos) {
        const auto target = trim_view(trimmed.substr(space + 1));
        if (!target.empty() && target.front() == '@') {
          const auto action_word = trimmed.substr(0, space);
          net::Action action;
          if (action_word == "permit") {
            action = net::Action::Permit;
          } else if (action_word == "deny") {
            action = net::Action::Deny;
          } else {
            throw ParseError("expected permit/deny before group reference");
          }
          for (const auto& match : parse_match_union(target, local)) {
            rules.push_back(net::AclRule{action, match});
          }
          continue;
        }
      }
      rules.push_back(net::parse_rule(line));
    } catch (const ParseError& e) {
      throw ParseError("line " + std::to_string(line_number) + ": " + e.what());
    } catch (const std::exception& e) {
      throw ParseError("line " + std::to_string(line_number) + ": " + e.what());
    }
  }
  return net::Acl{std::move(rules)};
}

net::Acl parse_acl_auto(std::string_view text, const GroupTable& groups) {
  return parse_acl(text, detect_dialect(text), groups);
}

std::string print_acl(const net::Acl& acl) {
  std::string out;
  for (const auto& rule : acl.rules()) {
    out += net::to_string(rule);
    out += "\n";
  }
  return out;
}

namespace {

std::string ios_address(const net::Prefix& p) {
  if (p.is_any()) return "any";
  if (p.len == 32) return "host " + net::to_string(p.addr);
  const std::uint32_t mask = p.len == 0 ? 0 : ~std::uint32_t{0} << (32 - p.len);
  return net::to_string(p.addr) + " " + net::to_string(net::Ipv4{~mask});
}

std::string ios_ports(const net::PortRange& r) {
  if (r.is_any()) return {};
  if (r.lo == r.hi) return " eq " + std::to_string(r.lo);
  return " range " + std::to_string(r.lo) + " " + std::to_string(r.hi);
}

}  // namespace

std::string print_acl_ios(const net::Acl& acl, unsigned number) {
  std::string out;
  for (const auto& rule : acl.rules()) {
    out += "access-list " + std::to_string(number) + " " +
           std::string(net::to_string(rule.action)) + " " +
           (rule.match.proto.is_any() ? "ip" : net::to_string(rule.match.proto)) + " " +
           ios_address(rule.match.src) + ios_ports(rule.match.sport) + " " +
           ios_address(rule.match.dst) + ios_ports(rule.match.dport) + "\n";
  }
  return out;
}

}  // namespace jinjing::config
