#include "config/topology_format.h"

#include <fstream>
#include <sstream>

#include <algorithm>
#include <map>

#include "config/acl_format.h"
#include "net/acl_algebra.h"
#include "topo/rib.h"

namespace jinjing::config {

namespace {

using net::ParseError;

bool is_blank(std::string_view line) {
  for (const char c : line) {
    if (c == '#' || c == '!') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

/// "A:1-in" / "A:1-out" -> (interface name, dir); bare "A:1" defaults to in.
std::pair<std::string, topo::Dir> split_slot(std::string_view text) {
  if (text.ends_with("-in")) return {std::string(text.substr(0, text.size() - 3)), topo::Dir::In};
  if (text.ends_with("-out")) {
    return {std::string(text.substr(0, text.size() - 4)), topo::Dir::Out};
  }
  return {std::string(text), topo::Dir::In};
}

topo::InterfaceId resolve_iface(const topo::Topology& topo, std::string_view qualified,
                                std::size_t line) {
  const auto iface = topo.find_interface(qualified);
  if (!iface) {
    throw ParseError("line " + std::to_string(line) + ": unknown interface '" +
                     std::string(qualified) + "'");
  }
  return *iface;
}

}  // namespace

net::PacketSet parse_packet_set(std::string_view spec) { return parse_packet_set(spec, {}); }

net::PacketSet parse_packet_set(std::string_view spec, const GroupTable& groups) {
  spec = trim(spec);
  if (spec == "all" || spec.empty()) return net::PacketSet::all();
  net::PacketSet out;
  for (const auto& match : parse_match_union(spec, groups)) {
    out = out | net::PacketSet{match.cube()};
  }
  return out;
}

std::string print_packet_set(const net::PacketSet& set) {
  if (set.equals(net::PacketSet::all())) return "all";
  std::string out;
  for (const auto& cube : set.cubes()) {
    for (const auto& match : net::matches_for_cube(cube)) {
      if (!out.empty()) out += " | ";
      const auto text = net::to_string(match);
      out += text == "all" ? "all" : text;
    }
  }
  return out;
}

NetworkFile parse_network(std::string_view text) {
  NetworkFile network;
  GroupTable groups;
  std::map<topo::DeviceId, topo::Rib> ribs;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_number = 0;

  const auto fail = [&line_number](const std::string& message) -> void {
    throw ParseError("line " + std::to_string(line_number) + ": " + message);
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (is_blank(line)) continue;
    std::istringstream words{line};
    std::string keyword;
    words >> keyword;

    if (keyword == "group") {
      try {
        if (!parse_group_line(line, groups)) fail("group syntax: group NAME = <matches>");
      } catch (const ParseError& e) {
        fail(e.what());
      }
    } else if (keyword == "device") {
      std::string name;
      if (!(words >> name)) fail("device needs a name");
      (void)network.topo.add_device(std::move(name));
    } else if (keyword == "interface") {
      std::string qualified;
      if (!(words >> qualified)) fail("interface needs a Device:name");
      const auto colon = qualified.find(':');
      if (colon == std::string::npos) fail("interface must be Device:name");
      const auto device = network.topo.find_device(qualified.substr(0, colon));
      if (!device) fail("unknown device '" + qualified.substr(0, colon) + "'");
      const auto iface = network.topo.add_interface(*device, qualified.substr(colon + 1));
      std::string flag;
      if (words >> flag) {
        if (flag != "external") fail("unknown interface flag '" + flag + "'");
        network.topo.mark_external(iface);
      }
    } else if (keyword == "link") {
      std::string from;
      std::string arrow;
      std::string to;
      if (!(words >> from >> arrow >> to) || arrow != "->") {
        fail("link syntax: link A:1 -> B:2 <predicate>");
      }
      std::string rest;
      std::getline(words, rest);
      network.topo.add_edge(resolve_iface(network.topo, from, line_number),
                            resolve_iface(network.topo, to, line_number),
                            parse_packet_set(rest, groups));
    } else if (keyword == "acl") {
      std::string slot_text;
      if (!(words >> slot_text)) fail("acl needs an interface slot");
      const auto [iface_name, dir] = split_slot(slot_text);
      const auto iface = resolve_iface(network.topo, iface_name, line_number);

      std::string body;
      bool closed = false;
      while (std::getline(in, line)) {
        ++line_number;
        if (trim(line) == "end") {
          closed = true;
          break;
        }
        body += line;
        body += "\n";
      }
      if (!closed) fail("unterminated acl block (missing 'end')");
      try {
        network.topo.bind_acl(iface, dir, parse_acl_auto(body, groups));
      } catch (const ParseError& e) {
        fail(e.what());
      }
    } else if (keyword == "route") {
      std::string device_name;
      std::string prefix_text;
      std::string arrow;
      if (!(words >> device_name >> prefix_text >> arrow) || arrow != "->") {
        fail("route syntax: route DEVICE PREFIX -> IFACE[, IFACE...]");
      }
      const auto device = network.topo.find_device(device_name);
      if (!device) fail("unknown device '" + device_name + "'");
      net::Prefix prefix;
      try {
        prefix = net::parse_prefix(prefix_text);
      } catch (const ParseError& e) {
        fail(e.what());
      }
      std::vector<topo::InterfaceId> hops;
      std::string rest;
      std::getline(words, rest);
      std::istringstream hop_words{rest};
      std::string hop;
      while (std::getline(hop_words, hop, ',')) {
        const auto trimmed = trim(hop);
        if (trimmed.empty()) continue;
        const auto iface = resolve_iface(network.topo, trimmed, line_number);
        if (network.topo.device_of(iface) != *device) {
          fail("next hop " + std::string(trimmed) + " is not on device " + device_name);
        }
        hops.push_back(iface);
      }
      if (hops.empty()) fail("route needs at least one next hop");
      ribs[*device].add(prefix, std::move(hops));
    } else if (keyword == "traffic") {
      std::string rest;
      std::getline(words, rest);
      network.traffic = network.traffic | parse_packet_set(rest, groups);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }

  // Compile RIBs into intra-device edges. Ingress interfaces: externally
  // attached ones and targets of inter-device links, minus the RIB's own
  // next-hops.
  for (const auto& [device, rib] : ribs) {
    std::vector<topo::InterfaceId> next_hops;
    for (const auto& entry : rib.entries()) {
      next_hops.insert(next_hops.end(), entry.next_hops.begin(), entry.next_hops.end());
    }
    std::vector<topo::InterfaceId> ingress;
    for (const auto iface : network.topo.interfaces_of(device)) {
      if (std::find(next_hops.begin(), next_hops.end(), iface) != next_hops.end()) continue;
      bool receives = network.topo.is_external(iface);
      for (const auto& edge : network.topo.edges()) {
        if (edge.to == iface && network.topo.device_of(edge.from) != device) receives = true;
      }
      if (receives) ingress.push_back(iface);
    }
    topo::install_rib(network.topo, ingress, rib);
  }
  return network;
}

NetworkFile load_network(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open network file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_network(buffer.str());
}

std::string print_network(const NetworkFile& network) {
  const auto& topo = network.topo;
  std::string out;
  for (topo::DeviceId d = 0; d < topo.device_count(); ++d) {
    out += "device " + topo.device_name(d) + "\n";
  }
  for (topo::InterfaceId i = 0; i < topo.interface_count(); ++i) {
    out += "interface " + topo.qualified_name(i);
    if (topo.is_external(i)) out += " external";
    out += "\n";
  }
  for (const auto& edge : topo.edges()) {
    out += "link " + topo.qualified_name(edge.from) + " -> " + topo.qualified_name(edge.to) +
           " " + print_packet_set(edge.predicate) + "\n";
  }
  for (const auto slot : topo.bound_slots()) {
    out += "acl " + topo.qualified_name(slot.iface) +
           (slot.dir == topo::Dir::In ? "-in" : "-out") + "\n";
    for (const auto& rule : topo.acl(slot).rules()) {
      out += "  " + net::to_string(rule) + "\n";
    }
    out += "end\n";
  }
  if (!network.traffic.is_empty()) {
    out += "traffic " + print_packet_set(network.traffic) + "\n";
  }
  return out;
}

}  // namespace jinjing::config
