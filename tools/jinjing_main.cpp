// Thin entry point for the `jinjing` command-line tool (logic in src/cli).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return jinjing::cli::run(std::vector<std::string>(argv + 1, argv + argc), std::cout,
                           std::cerr);
}
