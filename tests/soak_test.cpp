// The continuous-churn soak harness, at ctest scale.
//
// The 60-second CI soak lives in the workflow; these tests keep the same
// machinery honest in minutes: the stream generator's determinism contract,
// end-to-end coverage of the adversarial event kinds (malformed intents
// bounced at submission, conflicting control lines resolved to definite
// verdicts that match the oracle), and one mini soak run through the full
// harness — sessions, applies, oracle, retention flush, leak watchdogs.
#include "soak/soak.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "config/acl_format.h"
#include "config/topology_format.h"
#include "core/deploy.h"
#include "core/engine.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "svc/client.h"
#include "svc/server.h"

namespace jinjing {
namespace {

using svc::Json;

std::string temp_socket(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("jinjing_soak_test_" + tag + "_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

std::unique_ptr<svc::Server> start_server(const gen::Wan& wan, const std::string& tag,
                                          svc::ServerOptions options = {}) {
  config::NetworkFile network;
  network.topo = wan.topo;
  network.traffic = wan.traffic;
  options.socket_path = temp_socket(tag);
  auto server = std::make_unique<svc::Server>(std::move(network), std::move(options));
  server->start();
  return server;
}

Json submit_event(svc::Client& client, const gen::ChurnEvent& event) {
  Json::Object params;
  params.emplace("program", event.program);
  if (!event.acls.empty()) {
    Json::Object acls;
    for (const auto& [name, acl] : event.acls) acls.emplace(name, config::print_acl(acl));
    params.emplace("acls", Json{std::move(acls)});
  }
  return client.call("submit", Json{std::move(params)});
}

TEST(ChurnStreamTest, SameSeedSameStream) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  gen::ChurnStreamParams params;
  params.events = 200;
  params.seed = 17;
  const auto a = gen::churn_stream(wan, params);
  const auto b = gen::churn_stream(wan, params);
  ASSERT_EQ(a.size(), 200u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(gen::describe(a[i]), gen::describe(b[i])) << "event " << i;
    EXPECT_EQ(a[i].program, b[i].program) << "event " << i;
  }
}

TEST(ChurnStreamTest, DifferentSeedsDiverge) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  gen::ChurnStreamParams params;
  params.events = 50;
  params.seed = 1;
  const auto a = gen::churn_stream(wan, params);
  params.seed = 2;
  const auto b = gen::churn_stream(wan, params);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = gen::describe(a[i]) != gen::describe(b[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChurnStreamTest, MixWeightsSelectKinds) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  gen::ChurnStreamParams params;
  params.events = 40;
  params.seed = 3;
  params.mix = {};  // start from the defaults, then zero all but one kind
  params.mix.pure_check = 1.0;
  params.mix.pending_check = 0;
  params.mix.check_fix = 0;
  params.mix.apply = 0;
  params.mix.control_open = 0;
  params.mix.migration = 0;
  params.mix.cancel = 0;
  params.mix.malformed = 0;
  params.mix.conflicting = 0;
  for (const auto& event : gen::churn_stream(wan, params)) {
    EXPECT_EQ(event.kind, gen::ChurnEventKind::PureCheck) << gen::describe(event);
    EXPECT_FALSE(event.expect_submit_error);
  }
}

/// Every malformed variant is rejected at submission with the invalid-params
/// code and a diagnostic — and the server keeps answering normal work.
TEST(SoakEndToEndTest, MalformedIntentsBounceAtSubmission) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  gen::ChurnStreamParams params;
  params.events = 8;  // cycles through all malformed variants
  params.seed = 11;
  params.mix = {};
  params.mix.pure_check = 0;
  params.mix.pending_check = 0;
  params.mix.check_fix = 0;
  params.mix.apply = 0;
  params.mix.control_open = 0;
  params.mix.migration = 0;
  params.mix.cancel = 0;
  params.mix.malformed = 1.0;
  params.mix.conflicting = 0;
  const auto stream = gen::churn_stream(wan, params);

  auto server = start_server(wan, "malformed");
  svc::Client client{server->socket_path()};
  for (const auto& event : stream) {
    ASSERT_TRUE(event.expect_submit_error) << gen::describe(event);
    try {
      (void)submit_event(client, event);
      FAIL() << "malformed event accepted: " << gen::describe(event) << "\n"
             << event.program;
    } catch (const svc::RpcError& e) {
      EXPECT_EQ(e.code(), -32602) << e.what();
      EXPECT_STRNE(e.what(), "") << gen::describe(event);
    }
  }

  // The same connection still serves well-formed work afterwards.
  Json::Object params_ok;
  params_ok.emplace("program", "scope " + wan.topo.device_name(wan.cores[0]) + "\ncheck\n");
  const Json submitted = client.call("submit", Json{std::move(params_ok)});
  Json::Object wait;
  wait.emplace("job", submitted.at("job").as_u64());
  const Json result = client.call("result", Json{std::move(wait)});
  EXPECT_EQ(result.at("status").at("state").as_string(), "done") << result.dump();

  server->request_shutdown();
  server->wait();
  std::filesystem::remove(server->socket_path());
}

/// Conflicting open+isolate control pairs are legal LAI: first-match
/// specification order resolves them, the job reaches a definite verdict,
/// and that verdict (and plan) matches a fresh sequential engine.
TEST(SoakEndToEndTest, ConflictingControlsResolveAndMatchOracle) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  gen::ChurnStreamParams params;
  params.events = 6;
  params.seed = 23;
  params.mix = {};
  params.mix.pure_check = 0;
  params.mix.pending_check = 0;
  params.mix.check_fix = 0;
  params.mix.apply = 0;
  params.mix.control_open = 0;
  params.mix.migration = 0;
  params.mix.cancel = 0;
  params.mix.malformed = 0;
  params.mix.conflicting = 1.0;
  const auto stream = gen::churn_stream(wan, params);

  auto server = start_server(wan, "conflicting");
  svc::Client client{server->socket_path()};
  for (const auto& event : stream) {
    ASSERT_FALSE(event.expect_submit_error);
    const Json submitted = submit_event(client, event);
    const std::uint64_t id = submitted.at("job").as_u64();
    const svc::JobPtr job = server->scheduler().find(id);
    ASSERT_NE(job, nullptr);
    const svc::SnapshotPtr snapshot = job->snapshot();

    Json::Object wait;
    wait.emplace("job", id);
    const Json result = client.call("result", Json{std::move(wait)});
    const Json& status = result.at("status");
    ASSERT_EQ(status.at("state").as_string(), "done")
        << gen::describe(event) << "\n"
        << result.dump();

    core::Engine oracle{*snapshot->topo};
    lai::AclLibrary library;
    library.emplace("permit_all", net::Acl::permit_all());
    for (const auto& [name, acl] : event.acls) {
      library.insert_or_assign(name, config::parse_acl_auto(config::print_acl(acl)));
    }
    const core::EngineReport oracle_report =
        oracle.run_program(event.program, library, snapshot->traffic);
    EXPECT_EQ(oracle_report.success(), status.at("outcome").at("success").as_bool())
        << gen::describe(event);
    EXPECT_EQ(core::format_plan(*snapshot->topo, oracle_report.final_update),
              status.at("outcome").at("plan").as_string())
        << gen::describe(event);
  }

  server->request_shutdown();
  server->wait();
  std::filesystem::remove(server->socket_path());
}

/// One full harness run at ctest scale: concurrent sessions, applies
/// interleaved with checks, coalescing and the delta cache on, the
/// differential oracle over every completed job, the retention flush and
/// every leak invariant. The event mix trims the slowest kinds so the run
/// stays TSan-friendly.
TEST(SoakEndToEndTest, MiniSoakRunsCleanUnderChurn) {
  soak::SoakOptions options;
  options.wan = gen::small_wan();
  options.stream.events = 120;
  options.stream.seed = 5;
  options.stream.mix.check_fix = 0.03;
  options.stream.mix.control_open = 0.02;
  options.stream.mix.migration = 0.01;
  options.sessions = 3;
  options.server.socket_path = temp_socket("mini");
  options.server.workers = 4;
  options.server.coalesce = 16;
  options.server.keep_versions = 8;
  options.server.retain_jobs = 48;

  const soak::SoakReport report = soak::run_soak(options);
  for (const auto& failure : report.failures) ADD_FAILURE() << failure;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.passes, 1u);
  EXPECT_GT(report.oracle_checked, 0u);
  EXPECT_EQ(report.oracle_mismatches, 0u);
  EXPECT_GE(report.applies, 1u);
  EXPECT_GE(report.expected_submit_errors, 1u);
  EXPECT_GE(report.flushed, options.server.retain_jobs);
  EXPECT_GE(report.samples.size(), 3u);
  EXPECT_NE(report.stream_fingerprint, 0u);
  // The final sample is what the watchdogs bounded: nothing in flight,
  // retention at its cap, caches proportional to live state.
  const soak::MetricSample& final_sample = report.samples.back();
  EXPECT_EQ(final_sample.queued, 0u);
  EXPECT_EQ(final_sample.running, 0u);
  EXPECT_LE(final_sample.tracked_jobs, options.server.retain_jobs);
  EXPECT_LE(final_sample.versions, options.server.keep_versions);
}

}  // namespace
}  // namespace jinjing
