#include "net/ip.h"

#include <gtest/gtest.h>

namespace jinjing::net {
namespace {

TEST(Ipv4, ParseAndFormatRoundTrip) {
  for (const char* text : {"0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1"}) {
    EXPECT_EQ(to_string(parse_ipv4(text)), text);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  for (const char* text : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"}) {
    EXPECT_THROW((void)parse_ipv4(text), ParseError) << text;
  }
}

TEST(Ipv4, OctetConstructor) {
  EXPECT_EQ((Ipv4{1, 2, 3, 4}).value, 0x01020304u);
  EXPECT_EQ(to_string(Ipv4{10, 20, 30, 40}), "10.20.30.40");
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p{Ipv4{1, 2, 3, 4}, 8};
  EXPECT_EQ(p.addr, (Ipv4{1, 0, 0, 0}));
  EXPECT_EQ(to_string(p), "1.0.0.0/8");
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = parse_prefix("10.1.0.0/16");
  EXPECT_TRUE(p.contains(parse_ipv4("10.1.2.3")));
  EXPECT_FALSE(p.contains(parse_ipv4("10.2.0.0")));
}

TEST(Prefix, ContainsNarrowerPrefix) {
  const Prefix wide = parse_prefix("10.0.0.0/8");
  const Prefix narrow = parse_prefix("10.1.0.0/16");
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
}

TEST(Prefix, DisjointPrefixesDoNotOverlap) {
  EXPECT_FALSE(parse_prefix("10.0.0.0/8").overlaps(parse_prefix("11.0.0.0/8")));
}

TEST(Prefix, AnyMatchesEverything) {
  EXPECT_TRUE(Prefix::any().contains(parse_ipv4("255.255.255.255")));
  EXPECT_TRUE(Prefix::any().is_any());
  EXPECT_EQ(Prefix::any().interval(), Interval::full(32));
}

TEST(Prefix, IntervalBounds) {
  const Prefix p = parse_prefix("1.0.0.0/8");
  EXPECT_EQ(p.interval().lo, 0x01000000u);
  EXPECT_EQ(p.interval().hi, 0x01FFFFFFu);
}

TEST(Prefix, BareAddressParsesAsHost) {
  const Prefix p = parse_prefix("1.2.3.4");
  EXPECT_EQ(p.len, 32);
  EXPECT_EQ(p.interval().size(), 1u);
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_THROW((void)parse_prefix("1.0.0.0/33"), ParseError);
  EXPECT_THROW((void)parse_prefix("1.0.0.0/"), ParseError);
  EXPECT_THROW((void)parse_prefix("1.0.0.0/-1"), ParseError);
}

TEST(PortRange, SingleAndRange) {
  EXPECT_EQ(parse_port_range("80"), PortRange::single(80));
  EXPECT_EQ(parse_port_range("1024-2048"), PortRange(1024, 2048));
  EXPECT_THROW((void)parse_port_range("2048-1024"), ParseError);
  EXPECT_THROW((void)parse_port_range("65536"), ParseError);
}

TEST(PortRange, AnyByDefault) {
  EXPECT_TRUE(PortRange::any().is_any());
  EXPECT_TRUE(PortRange::any().contains(0));
  EXPECT_TRUE(PortRange::any().contains(65535));
}

TEST(ProtoMatch, NamedProtocols) {
  EXPECT_EQ(parse_proto("tcp"), ProtoMatch::tcp());
  EXPECT_EQ(parse_proto("udp"), ProtoMatch::udp());
  EXPECT_EQ(parse_proto("any"), ProtoMatch::any());
  EXPECT_EQ(parse_proto("47"), ProtoMatch{47});
  EXPECT_THROW((void)parse_proto("256"), ParseError);
}

TEST(ProtoMatch, ContainsSemantics) {
  EXPECT_TRUE(ProtoMatch::any().contains(6));
  EXPECT_TRUE(ProtoMatch::tcp().contains(6));
  EXPECT_FALSE(ProtoMatch::tcp().contains(17));
}

// Prefix interval size is 2^(32-len) — swept over all lengths.
class PrefixIntervalProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrefixIntervalProperty, SizeMatchesLength) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const Prefix p{Ipv4{172, 16, 99, 201}, len};
  EXPECT_EQ(p.interval().size(), std::uint64_t{1} << (32 - len));
  EXPECT_TRUE(p.contains(p.addr));
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixIntervalProperty, ::testing::Range(0, 33));

}  // namespace
}  // namespace jinjing::net
