// Deterministic fuzz: the parsers must reject malformed input with their
// typed errors — never crash, hang, or accept garbage silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>

#include "config/acl_format.h"
#include "config/topology_format.h"
#include "lai/parser.h"
#include "lai/printer.h"

namespace jinjing {
namespace {

/// Random printable garbage with structure-ish characters overrepresented.
std::string random_text(std::mt19937& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .:/-|,*#!\n\t;'\"()";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back(kAlphabet[pick(rng)]);
  return out;
}

/// Truncations and single-character corruptions of a valid input.
std::vector<std::string> mutations(const std::string& valid, std::mt19937& rng) {
  std::vector<std::string> out;
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  for (int i = 0; i < 10; ++i) out.push_back(valid.substr(0, pos(rng)));
  for (int i = 0; i < 10; ++i) {
    std::string m = valid;
    m[pos(rng)] = static_cast<char>('!' + static_cast<int>(pos(rng)) % 90);
    out.push_back(m);
  }
  return out;
}

template <typename Parse>
void expect_no_crash(const std::string& input, Parse&& parse) {
  try {
    parse(input);
  } catch (const net::ParseError&) {
  } catch (const lai::LaiError&) {
  }
  // Any other exception type (or a crash) fails the test via gtest/ctest.
}

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, LaiParserNeverCrashes) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 120),
                    [](const std::string& s) { (void)lai::parse(s); });
  }
  const std::string valid =
      "scope A:*, B:*\nallow A:*-in\nmodify A:1-in to x\n"
      "control A:1 -> B:2 isolate dst 1.0.0.0/8\ncheck\nfix\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)lai::parse(s); });
  }
}

TEST_P(ParserFuzz, AclParsersNeverCrash) {
  std::mt19937 rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const auto text = random_text(rng, 1 + i % 100);
    expect_no_crash(text, [](const std::string& s) { (void)config::parse_acl_auto(s); });
    expect_no_crash(text, [](const std::string& s) {
      (void)config::parse_acl(s, config::AclDialect::Ios);
    });
  }
  const std::string valid =
      "deny dst 1.0.0.0/8\npermit src 10.0.0.0/24 dport 80 proto tcp\npermit all\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_acl_auto(s); });
  }
  const std::string ios =
      "access-list 101 deny ip any 1.0.0.0 0.255.255.255\n"
      "access-list 101 permit tcp any any eq 80\n";
  for (const auto& m : mutations(ios, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_acl_auto(s); });
  }
}

TEST_P(ParserFuzz, NetworkParserNeverCrashes) {
  std::mt19937 rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 200),
                    [](const std::string& s) { (void)config::parse_network(s); });
  }
  const std::string valid =
      "device A\ndevice B\ninterface A:1 external\ninterface A:2\ninterface B:1\n"
      "link A:1 -> A:2 dst 1.0.0.0/8\nlink A:2 -> B:1 all\n"
      "route B 1.0.0.0/8 -> B:1\nacl A:1-in\n  deny dst 1.0.0.0/8\nend\n"
      "traffic dst 1.0.0.0/8\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_network(s); });
  }
}

TEST_P(ParserFuzz, PacketSpecNeverCrashes) {
  std::mt19937 rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 60),
                    [](const std::string& s) { (void)config::parse_packet_set(s); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 6u));

/// A random well-formed LAI program in the canonical shape the printer
/// emits: scope non-empty, commands non-empty, All-headers carry the
/// default prefix, and prefixes have their host bits cleared.
lai::Program random_program(std::mt19937& rng) {
  const auto pick = [&rng](std::size_t lo, std::size_t hi) {
    return std::uniform_int_distribution<std::size_t>(lo, hi)(rng);
  };
  const auto iface_ref = [&] {
    lai::IfaceRef ref;
    ref.device = "R" + std::to_string(pick(1, 9));
    if (pick(0, 2) != 0) ref.iface = std::to_string(pick(1, 4));
    switch (pick(0, 2)) {
      case 0: ref.dir = topo::Dir::In; break;
      case 1: ref.dir = topo::Dir::Out; break;
      default: break;
    }
    return ref;
  };
  const auto iface_list = [&](std::size_t lo, std::size_t hi) {
    std::vector<lai::IfaceRef> refs;
    const std::size_t n = pick(lo, hi);
    for (std::size_t i = 0; i < n; ++i) refs.push_back(iface_ref());
    return refs;
  };

  lai::Program prog;
  prog.scope = iface_list(1, 3);
  prog.allow = iface_list(0, 3);
  const std::size_t modifies = pick(0, 3);
  for (std::size_t i = 0; i < modifies; ++i) {
    prog.modifies.push_back(
        lai::ModifyStmt{iface_ref(), "acl_" + std::to_string(pick(0, 20))});
  }
  const std::size_t controls = pick(0, 2);
  for (std::size_t i = 0; i < controls; ++i) {
    lai::ControlStmt c;
    c.from = iface_list(0, 2);  // empty prints as "nil"
    c.to = iface_list(0, 2);
    c.verb = static_cast<lai::ControlVerb>(pick(0, 2));
    switch (pick(0, 2)) {
      case 0: c.header.kind = lai::HeaderSpec::Kind::Src; break;
      case 1: c.header.kind = lai::HeaderSpec::Kind::Dst; break;
      default: c.header.kind = lai::HeaderSpec::Kind::All; break;
    }
    if (c.header.kind != lai::HeaderSpec::Kind::All) {
      c.header.prefix = net::Prefix::containing(
          net::Ipv4{static_cast<std::uint32_t>(rng())},
          static_cast<std::uint8_t>(pick(0, 32)));
    }
    prog.controls.push_back(std::move(c));
  }
  const std::size_t commands = pick(1, 3);
  for (std::size_t i = 0; i < commands; ++i) {
    prog.commands.push_back(static_cast<lai::Command>(pick(0, 2)));
  }
  return prog;
}

// print/parse round trip: for random programs, parse(print(p)) == p, and
// the printed form is a fixed point (printing the re-parsed AST gives the
// same text).
class LaiRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(LaiRoundTrip, ParsePrintParseIsIdentity) {
  std::mt19937 rng(GetParam() + 4000);
  for (int i = 0; i < 100; ++i) {
    const auto prog = random_program(rng);
    const std::string source = lai::print(prog);
    const auto reparsed = lai::parse(source);
    EXPECT_EQ(reparsed, prog) << source;
    EXPECT_EQ(lai::print(reparsed), source);
    EXPECT_EQ(lai::line_count(prog),
              static_cast<std::size_t>(std::count(source.begin(), source.end(), '\n')));
  }
}

TEST_P(LaiRoundTrip, MutatedInputsThatParseAlsoRoundTrip) {
  // The printer must handle *anything* the parser accepts: mutate valid
  // programs, and wherever the parse still succeeds, print and re-parse.
  std::mt19937 rng(GetParam() + 5000);
  const std::string valid = lai::print(random_program(rng));
  for (const auto& m : mutations(valid, rng)) {
    std::optional<lai::Program> prog;
    try {
      prog = lai::parse(m);
    } catch (const lai::LaiError&) {
      continue;
    } catch (const net::ParseError&) {
      continue;
    }
    const std::string printed = lai::print(*prog);
    EXPECT_EQ(lai::parse(printed), *prog) << "mutant:\n" << m;
  }
}

TEST(LaiRoundTrip, NilListsSurviveTheTrip) {
  const auto prog = lai::parse("scope A:*\ncontrol nil -> nil isolate\ncheck\n");
  ASSERT_EQ(prog.controls.size(), 1u);
  EXPECT_TRUE(prog.controls[0].from.empty());
  EXPECT_TRUE(prog.controls[0].to.empty());
  EXPECT_EQ(prog.controls[0].header.kind, lai::HeaderSpec::Kind::All);
  EXPECT_EQ(lai::parse(lai::print(prog)), prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaiRoundTrip, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace jinjing
