// Deterministic fuzz: the parsers must reject malformed input with their
// typed errors — never crash, hang, or accept garbage silently.
#include <gtest/gtest.h>

#include <random>

#include "config/acl_format.h"
#include "config/topology_format.h"
#include "lai/parser.h"

namespace jinjing {
namespace {

/// Random printable garbage with structure-ish characters overrepresented.
std::string random_text(std::mt19937& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .:/-|,*#!\n\t;'\"()";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back(kAlphabet[pick(rng)]);
  return out;
}

/// Truncations and single-character corruptions of a valid input.
std::vector<std::string> mutations(const std::string& valid, std::mt19937& rng) {
  std::vector<std::string> out;
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  for (int i = 0; i < 10; ++i) out.push_back(valid.substr(0, pos(rng)));
  for (int i = 0; i < 10; ++i) {
    std::string m = valid;
    m[pos(rng)] = static_cast<char>('!' + static_cast<int>(pos(rng)) % 90);
    out.push_back(m);
  }
  return out;
}

template <typename Parse>
void expect_no_crash(const std::string& input, Parse&& parse) {
  try {
    parse(input);
  } catch (const net::ParseError&) {
  } catch (const lai::LaiError&) {
  }
  // Any other exception type (or a crash) fails the test via gtest/ctest.
}

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, LaiParserNeverCrashes) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 120),
                    [](const std::string& s) { (void)lai::parse(s); });
  }
  const std::string valid =
      "scope A:*, B:*\nallow A:*-in\nmodify A:1-in to x\n"
      "control A:1 -> B:2 isolate dst 1.0.0.0/8\ncheck\nfix\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)lai::parse(s); });
  }
}

TEST_P(ParserFuzz, AclParsersNeverCrash) {
  std::mt19937 rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const auto text = random_text(rng, 1 + i % 100);
    expect_no_crash(text, [](const std::string& s) { (void)config::parse_acl_auto(s); });
    expect_no_crash(text, [](const std::string& s) {
      (void)config::parse_acl(s, config::AclDialect::Ios);
    });
  }
  const std::string valid =
      "deny dst 1.0.0.0/8\npermit src 10.0.0.0/24 dport 80 proto tcp\npermit all\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_acl_auto(s); });
  }
  const std::string ios =
      "access-list 101 deny ip any 1.0.0.0 0.255.255.255\n"
      "access-list 101 permit tcp any any eq 80\n";
  for (const auto& m : mutations(ios, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_acl_auto(s); });
  }
}

TEST_P(ParserFuzz, NetworkParserNeverCrashes) {
  std::mt19937 rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 200),
                    [](const std::string& s) { (void)config::parse_network(s); });
  }
  const std::string valid =
      "device A\ndevice B\ninterface A:1 external\ninterface A:2\ninterface B:1\n"
      "link A:1 -> A:2 dst 1.0.0.0/8\nlink A:2 -> B:1 all\n"
      "route B 1.0.0.0/8 -> B:1\nacl A:1-in\n  deny dst 1.0.0.0/8\nend\n"
      "traffic dst 1.0.0.0/8\n";
  for (const auto& m : mutations(valid, rng)) {
    expect_no_crash(m, [](const std::string& s) { (void)config::parse_network(s); });
  }
}

TEST_P(ParserFuzz, PacketSpecNeverCrashes) {
  std::mt19937 rng(GetParam() + 3000);
  for (int i = 0; i < 200; ++i) {
    expect_no_crash(random_text(rng, 1 + i % 60),
                    [](const std::string& s) { (void)config::parse_packet_set(s); });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1u, 6u));

}  // namespace
}  // namespace jinjing
