#include "net/interval.h"

#include <gtest/gtest.h>

namespace jinjing::net {
namespace {

TEST(Interval, FullDomainBounds) {
  EXPECT_EQ(Interval::full(8), Interval(0, 255));
  EXPECT_EQ(Interval::full(16), Interval(0, 65535));
  EXPECT_EQ(Interval::full(32), Interval(0, 0xFFFFFFFFull));
  EXPECT_EQ(Interval::full(64).hi, ~std::uint64_t{0});
}

TEST(Interval, PointContainsOnlyItself) {
  const auto p = Interval::point(42);
  EXPECT_TRUE(p.contains(42));
  EXPECT_FALSE(p.contains(41));
  EXPECT_FALSE(p.contains(43));
  EXPECT_EQ(p.size(), 1u);
}

TEST(Interval, ContainsInterval) {
  const Interval big{10, 20};
  EXPECT_TRUE(big.contains(Interval(10, 20)));
  EXPECT_TRUE(big.contains(Interval(12, 18)));
  EXPECT_FALSE(big.contains(Interval(9, 20)));
  EXPECT_FALSE(big.contains(Interval(10, 21)));
}

TEST(Interval, OverlapsSymmetric) {
  const Interval a{0, 10};
  const Interval b{10, 20};
  const Interval c{11, 20};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(Interval, IntersectDisjointIsNull) {
  EXPECT_FALSE(intersect(Interval(0, 4), Interval(5, 9)).has_value());
}

TEST(Interval, IntersectOverlapping) {
  const auto iv = intersect(Interval(0, 10), Interval(5, 20));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(*iv, Interval(5, 10));
}

TEST(Interval, SubtractMiddleSplits) {
  const auto diff = subtract(Interval(0, 10), Interval(3, 7));
  ASSERT_TRUE(diff.below.has_value());
  ASSERT_TRUE(diff.above.has_value());
  EXPECT_EQ(*diff.below, Interval(0, 2));
  EXPECT_EQ(*diff.above, Interval(8, 10));
}

TEST(Interval, SubtractDisjointKeepsAll) {
  const auto diff = subtract(Interval(0, 10), Interval(20, 30));
  ASSERT_TRUE(diff.below.has_value());
  EXPECT_EQ(*diff.below, Interval(0, 10));
  EXPECT_FALSE(diff.above.has_value());
}

TEST(Interval, SubtractCoveringLeavesNothing) {
  const auto diff = subtract(Interval(3, 7), Interval(0, 10));
  EXPECT_FALSE(diff.below.has_value());
  EXPECT_FALSE(diff.above.has_value());
}

TEST(Interval, SubtractEdges) {
  const auto left = subtract(Interval(0, 10), Interval(0, 4));
  EXPECT_FALSE(left.below.has_value());
  ASSERT_TRUE(left.above.has_value());
  EXPECT_EQ(*left.above, Interval(5, 10));

  const auto right = subtract(Interval(0, 10), Interval(6, 10));
  ASSERT_TRUE(right.below.has_value());
  EXPECT_EQ(*right.below, Interval(0, 5));
  EXPECT_FALSE(right.above.has_value());
}

// Property sweep: subtraction pieces are disjoint from the subtrahend and
// together with the intersection exactly tile the original interval.
class IntervalSubtractProperty : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(IntervalSubtractProperty, PiecesTileOriginal) {
  const auto [alo, ahi, blo, bhi] = GetParam();
  if (alo > ahi || blo > bhi) GTEST_SKIP();
  const Interval a(alo, ahi);
  const Interval b(blo, bhi);
  const auto diff = subtract(a, b);
  std::uint64_t covered = 0;
  for (const auto& piece : {diff.below, diff.above}) {
    if (!piece) continue;
    EXPECT_TRUE(a.contains(*piece));
    EXPECT_FALSE(piece->overlaps(b));
    covered += piece->size();
  }
  const auto inter = intersect(a, b);
  covered += inter ? inter->size() : 0;
  EXPECT_EQ(covered, a.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalSubtractProperty,
                         ::testing::Combine(::testing::Values(0, 3, 7), ::testing::Values(5, 9, 15),
                                            ::testing::Values(0, 4, 8, 12),
                                            ::testing::Values(2, 6, 10, 20)));

}  // namespace
}  // namespace jinjing::net
