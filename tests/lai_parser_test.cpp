#include "lai/parser.h"

#include <gtest/gtest.h>

#include "lai/printer.h"

namespace jinjing::lai {
namespace {

// The §3.2 running example (Figure 3).
constexpr const char* kRunningExample = R"(
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1p, A:3-out to A3p, C:1-in to C1p, D:2-in to D2p
check
fix
)";

// §7 Scenario 1: isolating a service area.
constexpr const char* kScenario1 = R"(
scope R1:*, R2:*, R3:*
allow R1:*-in, R2:*-in, R3:*-in
control R1:*, R2:* -> R3:*-out isolate from 1.2.0.0/16
control R3:*-in -> R1:*, R2:* isolate to 1.2.0.0/16
generate
)";

TEST(LaiParser, RunningExampleStructure) {
  const auto prog = parse(kRunningExample);
  ASSERT_EQ(prog.scope.size(), 4u);
  EXPECT_EQ(prog.scope[0], (IfaceRef{"A", std::nullopt, std::nullopt}));
  ASSERT_EQ(prog.allow.size(), 2u);
  ASSERT_EQ(prog.modifies.size(), 4u);
  EXPECT_EQ(prog.modifies[0].slot, (IfaceRef{"A", "1", topo::Dir::In}));
  EXPECT_EQ(prog.modifies[0].acl_name, "A1p");
  EXPECT_EQ(prog.modifies[1].slot, (IfaceRef{"A", "3", topo::Dir::Out}));
  EXPECT_TRUE(prog.controls.empty());
  EXPECT_EQ(prog.commands, (std::vector<Command>{Command::Check, Command::Fix}));
}

TEST(LaiParser, Scenario1Controls) {
  const auto prog = parse(kScenario1);
  ASSERT_EQ(prog.controls.size(), 2u);
  const auto& c0 = prog.controls[0];
  EXPECT_EQ(c0.from.size(), 2u);
  EXPECT_EQ(c0.to.size(), 1u);
  EXPECT_EQ(c0.to[0], (IfaceRef{"R3", std::nullopt, topo::Dir::Out}));
  EXPECT_EQ(c0.verb, ControlVerb::Isolate);
  EXPECT_EQ(c0.header.kind, HeaderSpec::Kind::Src);
  EXPECT_EQ(c0.header.prefix, net::parse_prefix("1.2.0.0/16"));
  EXPECT_EQ(prog.controls[1].header.kind, HeaderSpec::Kind::Dst);
  EXPECT_EQ(prog.commands, (std::vector<Command>{Command::Generate}));
}

TEST(LaiParser, MaintainThenIsolatePriorityOrderPreserved) {
  const auto prog = parse(R"(
scope A:*
allow A:*
control A:1 -> C:3 maintain dst 7.0.0.0/8
control A:1 -> C:3 isolate dst all
generate
)");
  ASSERT_EQ(prog.controls.size(), 2u);
  EXPECT_EQ(prog.controls[0].verb, ControlVerb::Maintain);
  EXPECT_EQ(prog.controls[1].verb, ControlVerb::Isolate);
  // "dst all" resolves to the any-prefix.
  EXPECT_EQ(prog.controls[1].header.prefix, net::Prefix::any());
}

TEST(LaiParser, SemicolonsSeparateStatements) {
  const auto prog = parse("scope A:*; allow A:*; check");
  EXPECT_EQ(prog.commands, (std::vector<Command>{Command::Check}));
}

TEST(LaiParser, BareDeviceNameIsWildcard) {
  const auto prog = parse("scope A, B\ncheck");
  ASSERT_EQ(prog.scope.size(), 2u);
  EXPECT_EQ(prog.scope[0], (IfaceRef{"A", std::nullopt, std::nullopt}));
}

TEST(LaiParser, NilList) {
  const auto prog = parse("scope A:*\nallow nil\ncheck");
  EXPECT_TRUE(prog.allow.empty());
}

TEST(LaiParser, AndKeywordAsSeparator) {
  const auto prog = parse("scope A:1 and B:2\ncheck");
  ASSERT_EQ(prog.scope.size(), 2u);
  EXPECT_EQ(prog.scope[1], (IfaceRef{"B", "2", std::nullopt}));
}

TEST(LaiParser, ErrorsOnMissingScope) {
  EXPECT_THROW((void)parse("check"), LaiError);
}

TEST(LaiParser, ErrorsOnMissingCommand) {
  EXPECT_THROW((void)parse("scope A:*"), LaiError);
}

TEST(LaiParser, ErrorsOnBadControl) {
  EXPECT_THROW((void)parse("scope A:*\ncontrol A:1 C:3 isolate\ncheck"), LaiError);
  EXPECT_THROW((void)parse("scope A:*\ncontrol A:1 -> C:3 destroy\ncheck"), LaiError);
  EXPECT_THROW((void)parse("scope A:*\ncontrol A:1 -> C:3 isolate dst 1.0.0.0/99\ncheck"),
               LaiError);
}

TEST(LaiParser, ErrorsOnGarbageStatement) {
  EXPECT_THROW((void)parse("scope A:*\nfrobnicate\ncheck"), LaiError);
}

// Round-trip property: parse(print(parse(src))) == parse(src).
class LaiRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(LaiRoundTrip, PrintParseFixpoint) {
  const auto prog = parse(GetParam());
  const auto printed = print(prog);
  const auto reparsed = parse(printed);
  EXPECT_EQ(prog, reparsed) << printed;
  EXPECT_EQ(print(reparsed), printed);
}

INSTANTIATE_TEST_SUITE_P(Programs, LaiRoundTrip,
                         ::testing::Values(kRunningExample, kScenario1,
                                           "scope A:*\nallow nil\ncheck",
                                           "scope X\ncontrol X:1 -> X:2 open dst 9.0.0.0/8\n"
                                           "control X:1 -> X:2 maintain all\ngenerate"));

TEST(LaiPrinter, LineCountMatchesStatements) {
  EXPECT_EQ(line_count(parse(kRunningExample)), 8u);  // scope+allow+4 modify+check+fix
  EXPECT_EQ(line_count(parse(kScenario1)), 5u);
}

}  // namespace
}  // namespace jinjing::lai
