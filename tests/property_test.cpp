// Randomized end-to-end properties cross-validating the SMT pipeline
// against the exact header-space engine on generated WANs.
#include <gtest/gtest.h>

#include <random>

#include "core/checker.h"
#include "core/fixer.h"
#include "core/generator.h"
#include "gen/scenario.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing {
namespace {

gen::WanParams tiny_wan(unsigned seed) {
  gen::WanParams p;
  p.cores = 2;
  p.aggs = 2;
  p.cells = 2;
  p.gateways_per_cell = 2;
  p.prefixes_per_gateway = 2;
  p.rules_per_acl = 10;
  p.seed = seed;
  return p;
}

/// Oracle: exact per-path consistency verdict via the header-space engine.
bool oracle_consistent(const gen::Wan& wan, const topo::AclUpdate& update) {
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    if (!(topo::path_permitted_set(before, path) & carried)
             .equals(topo::path_permitted_set(after, path) & carried)) {
      return false;
    }
  }
  return true;
}

// The checker's verdict must equal the exact set-based oracle, in every
// mode, across random WANs and random perturbations.
struct CheckOracleCase {
  unsigned seed;
  bool differential;
  bool per_entry;
};

class CheckMatchesOracle : public ::testing::TestWithParam<CheckOracleCase> {};

TEST_P(CheckMatchesOracle, VerdictsAgree) {
  const auto wan = gen::make_wan(tiny_wan(100 + GetParam().seed));
  const auto update = gen::perturb_rules(wan, 0.04, GetParam().seed);

  smt::SmtContext smt;
  core::CheckOptions options;
  options.use_differential = GetParam().differential;
  options.per_entry_fec = GetParam().per_entry;
  core::Checker checker{smt, wan.topo, wan.scope, options};
  const auto result = checker.check(update, wan.traffic);

  EXPECT_EQ(result.consistent, oracle_consistent(wan, update)) << "seed " << GetParam().seed;

  // Witnesses must be genuine violations.
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &update};
  for (const auto& v : result.violations) {
    const auto& path = checker.paths()[v.path_index];
    EXPECT_EQ(topo::path_permits(before, path, v.witness), v.decision_before);
    EXPECT_EQ(topo::path_permits(after, path, v.witness), v.decision_after);
    EXPECT_NE(v.decision_before, v.decision_after);
    EXPECT_TRUE(topo::forwarding_set(wan.topo, path).contains(v.witness))
        << "witness not routable on the violated path";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CheckMatchesOracle,
    ::testing::Values(CheckOracleCase{1, true, true}, CheckOracleCase{1, false, false},
                      CheckOracleCase{2, true, false}, CheckOracleCase{2, false, true},
                      CheckOracleCase{3, true, true}, CheckOracleCase{4, false, false},
                      CheckOracleCase{5, true, true}, CheckOracleCase{6, true, false},
                      CheckOracleCase{7, false, true}, CheckOracleCase{8, true, true}),
    [](const auto& info) {
      return "Seed" + std::to_string(info.param.seed) + (info.param.differential ? "Diff" : "Basic") +
             (info.param.per_entry ? "PerEntry" : "Global");
    });

// fix must terminate with a plan that the oracle accepts.
class FixRepairsToOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(FixRepairsToOracle, FixedUpdateIsExactlyConsistent) {
  const auto wan = gen::make_wan(tiny_wan(200 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.06, GetParam());

  smt::SmtContext smt;
  core::Fixer fixer{smt, wan.topo, wan.scope};
  const auto fix = fixer.fix(update, wan.traffic, wan.topo.bound_slots());
  ASSERT_TRUE(fix.success);
  EXPECT_TRUE(oracle_consistent(wan, fix.fixed_update));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixRepairsToOracle, ::testing::Range(1u, 9u));

// generate must produce plans the oracle accepts, for random migrations.
class GenerateSatisfiesOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(GenerateSatisfiesOracle, MigrationPreservesReachability) {
  const auto wan = gen::make_wan(tiny_wan(300 + GetParam()));

  smt::SmtContext smt;
  core::GenerateOptions options;
  options.universe = wan.traffic;
  core::Generator generator{smt, wan.topo, wan.scope, options};
  const auto result = generator.generate(gen::migration_spec(wan));
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(oracle_consistent(wan, result.update));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerateSatisfiesOracle, ::testing::Range(1u, 7u));

// control-open: the opened prefixes are reachable afterwards, everything
// else is untouched — verified exactly.
class ControlOpenOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(ControlOpenOracle, OpenedTrafficFlowsOthersUnchanged) {
  const auto wan = gen::make_wan(tiny_wan(400 + GetParam()));
  const auto sc = gen::control_open(wan, 1, GetParam());

  smt::SmtContext smt;
  core::GenerateOptions options;
  options.universe = wan.traffic;
  core::Generator generator{smt, wan.topo, wan.scope, options};
  const auto result = generator.generate(sc.spec, sc.intents);
  ASSERT_TRUE(result.success);

  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &result.update};
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    const auto before_permitted = topo::path_permitted_set(before, path) & carried;
    const auto after_permitted = topo::path_permitted_set(after, path) & carried;

    // Desired set per path: original, plus the opened headers on spanned
    // paths.
    auto desired = before_permitted;
    for (const auto& intent : sc.intents) {
      const bool spans =
          std::find(intent.from.begin(), intent.from.end(), path.entry()) != intent.from.end() &&
          std::find(intent.to.begin(), intent.to.end(), path.exit()) != intent.to.end();
      if (spans) desired = desired | (intent.header & carried);
    }
    EXPECT_TRUE(after_permitted.equals(desired)) << to_string(wan.topo, path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlOpenOracle, ::testing::Range(1u, 6u));


// Parallel checking returns the same verdict as sequential.
class ParallelCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelCheck, MatchesSequentialVerdict) {
  const auto wan = gen::make_wan(tiny_wan(500 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.04, GetParam());

  smt::SmtContext smt_seq;
  core::CheckOptions seq;
  seq.stop_at_first = false;
  core::Checker sequential{smt_seq, wan.topo, wan.scope, seq};
  const auto a = sequential.check(update, wan.traffic);

  smt::SmtContext smt_par;
  core::CheckOptions par;
  par.stop_at_first = false;
  par.threads = 4;
  core::Checker parallel{smt_par, wan.topo, wan.scope, par};
  const auto b = parallel.check(update, wan.traffic);

  EXPECT_EQ(a.consistent, b.consistent);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.fec_count, b.fec_count);

  // stop_at_first parallel: consistent verdicts also agree.
  smt::SmtContext smt_stop;
  core::CheckOptions stop;
  stop.threads = 4;
  core::Checker stopping{smt_stop, wan.topo, wan.scope, stop};
  EXPECT_EQ(stopping.check(update, wan.traffic).consistent, a.consistent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCheck, ::testing::Range(1u, 6u));


// §6 x Theorem 4.1 interaction: with control intents present, the
// differential reduction must keep the rules the intents can flip — the
// verdict must match basic mode exactly.
class ControlDifferentialAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(ControlDifferentialAgreement, VerdictsMatchAcrossModes) {
  const auto wan = gen::make_wan(tiny_wan(600 + GetParam()));
  const auto update = gen::perturb_rules(wan, 0.03, GetParam());
  const auto sc = gen::control_open(wan, 1, GetParam());

  std::optional<bool> previous;
  for (const bool differential : {false, true}) {
    for (const bool per_entry : {false, true}) {
      smt::SmtContext smt;
      core::CheckOptions options;
      options.use_differential = differential;
      options.per_entry_fec = per_entry;
      options.stop_at_first = false;
      core::Checker checker{smt, wan.topo, wan.scope, options};
      const bool verdict = checker.check(update, wan.traffic, sc.intents).consistent;
      if (previous) {
        EXPECT_EQ(*previous, verdict)
            << "diff=" << differential << " per_entry=" << per_entry;
      }
      previous = verdict;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlDifferentialAgreement, ::testing::Range(1u, 7u));


// Topology-shape sweep: the oracle agreement must hold across structural
// variants (full bipartite fabric, wider cells, single aggregation).
struct WanVariant {
  unsigned seed;
  std::size_t aggs;
  std::size_t gateways_per_cell;
  std::size_t asymmetry;
};

class WanShapeOracle : public ::testing::TestWithParam<WanVariant> {};

TEST_P(WanShapeOracle, CheckAndFixAgreeWithOracle) {
  gen::WanParams params = tiny_wan(700 + GetParam().seed);
  params.aggs = GetParam().aggs;
  params.gateways_per_cell = GetParam().gateways_per_cell;
  params.asymmetry = GetParam().asymmetry;
  const auto wan = gen::make_wan(params);
  const auto update = gen::perturb_rules(wan, 0.05, GetParam().seed);

  smt::SmtContext smt;
  core::Checker checker{smt, wan.topo, wan.scope};
  EXPECT_EQ(checker.check(update, wan.traffic).consistent, oracle_consistent(wan, update));

  smt::SmtContext smt2;
  core::Fixer fixer{smt2, wan.topo, wan.scope};
  const auto fix = fixer.fix(update, wan.traffic, wan.topo.bound_slots());
  ASSERT_TRUE(fix.success);
  EXPECT_TRUE(oracle_consistent(wan, fix.fixed_update));
}

INSTANTIATE_TEST_SUITE_P(Shapes, WanShapeOracle,
                         ::testing::Values(WanVariant{1, 2, 2, 0},   // full bipartite
                                           WanVariant{2, 1, 2, 0},   // single aggregation
                                           WanVariant{3, 3, 3, 4},   // wider, asymmetric
                                           WanVariant{4, 2, 1, 3},   // one gateway per cell
                                           WanVariant{5, 3, 2, 2}),  // heavy pruning
                         [](const auto& info) {
                           return "Seed" + std::to_string(info.param.seed) + "Aggs" +
                                  std::to_string(info.param.aggs) + "Gpc" +
                                  std::to_string(info.param.gateways_per_cell) + "Asym" +
                                  std::to_string(info.param.asymmetry);
                         });

}  // namespace
}  // namespace jinjing
