// Property suite for delta FEC refinement: refine_delta must reproduce
// from-scratch sequential refinement bit-for-bit (same classes, same
// order, same cube representation) across backends and chain depths,
// including the empty-delta, full-rewrite and chain-budget-fallback cases;
// the FecCache lineage must stitch partitions across versions and survive
// eviction; the planner's stale-verdict sub-atom path must agree with a
// cold full check.
#include "topo/fec_delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/aec.h"
#include "core/checker.h"
#include "core/incremental.h"
#include "gen/fixtures.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "net/acl_algebra.h"
#include "topo/fec_cache.h"

namespace jinjing {
namespace {

topo::FecOptions with(topo::SetBackend backend, unsigned threads = 1) {
  topo::FecOptions o;
  o.backend = backend;
  o.threads = threads;
  return o;
}

/// Bit-identity: same atom count, and atom i has exactly the same cubes in
/// the same order on both sides. Strictly stronger than partition equality.
void expect_identical(const std::vector<net::PacketSet>& got,
                      const std::vector<net::PacketSet>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].cubes(), want[i].cubes()) << label << " atom " << i;
  }
}

bool same_partition(const std::vector<net::PacketSet>& a, const std::vector<net::PacketSet>& b) {
  if (a.size() != b.size()) return false;
  return std::all_of(a.begin(), a.end(), [&](const net::PacketSet& cls) {
    return std::any_of(b.begin(), b.end(),
                       [&](const net::PacketSet& other) { return cls.equals(other); });
  });
}

/// Random ACL-shaped predicate generator (prefix + optional port range),
/// the same family the refinement property tests use.
class PredicateGen {
 public:
  explicit PredicateGen(unsigned seed) : rng_(seed) {}

  net::PacketSet next() {
    std::uniform_int_distribution<int> octet(0, 255);
    std::uniform_int_distribution<int> len_choice(0, 2);
    std::uniform_int_distribution<int> action(0, 1);
    std::uniform_int_distribution<int> n_rules(1, 4);
    std::vector<net::AclRule> rules;
    const int n = n_rules(rng_);
    for (int i = 0; i < n; ++i) {
      net::Match m;
      const std::uint8_t lens[] = {8, 16, 24};
      m.dst = net::Prefix{net::Ipv4{10, static_cast<std::uint8_t>(octet(rng_)),
                                    static_cast<std::uint8_t>(octet(rng_)), 0},
                          lens[len_choice(rng_)]};
      if (octet(rng_) < 80) m.dport = net::PortRange{100, 9000};
      rules.push_back({action(rng_) ? net::Action::Permit : net::Action::Deny, m});
    }
    return net::permitted_set(net::Acl{rules, net::Action::Deny});
  }

  std::vector<net::PacketSet> batch(std::size_t lo, std::size_t hi) {
    std::uniform_int_distribution<std::size_t> count(lo, hi);
    std::vector<net::PacketSet> out;
    const std::size_t n = count(rng_);
    for (std::size_t i = 0; i < n; ++i) out.push_back(next());
    return out;
  }

 private:
  std::mt19937 rng_;
};

gen::WanParams randomized_params(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> small(1, 2);
  std::uniform_int_distribution<std::size_t> rules(4, 10);
  gen::WanParams params;
  params.cores = small(rng) + 1;
  params.aggs = small(rng) + 1;
  params.cells = small(rng);
  params.gateways_per_cell = small(rng);
  params.prefixes_per_gateway = small(rng);
  params.rules_per_acl = rules(rng);
  params.seed = seed;
  return params;
}

/// The in-scope forwarding predicates of a WAN — the real refinement input
/// the serving stack carries across versions.
std::vector<net::PacketSet> scope_predicates(const gen::Wan& wan) {
  std::vector<net::PacketSet> preds;
  for (const auto& edge : wan.topo.edges()) {
    if (wan.scope.contains_interface(wan.topo, edge.from) &&
        wan.scope.contains_interface(wan.topo, edge.to)) {
      preds.push_back(edge.predicate);
    }
  }
  return preds;
}

class FecDeltaProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FecDeltaProperty, DeltaIsBitIdenticalToFromScratch) {
  PredicateGen gen{GetParam()};
  const auto universe = net::PacketSet::all();
  for (int trial = 0; trial < 4; ++trial) {
    const auto base_preds = gen.batch(1, 5);
    const auto changed = gen.batch(1, 3);
    auto combined = base_preds;
    combined.insert(combined.end(), changed.begin(), changed.end());
    for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
      const auto base = topo::refine_into_atoms(universe, base_preds, with(backend));
      const auto scratch = topo::refine_into_atoms(universe, combined, with(backend));
      const auto delta = topo::refine_delta(base, changed, backend);
      expect_identical(delta.atoms, scratch, to_string(backend).data());
      EXPECT_EQ(delta.reused + delta.split, base.size());
      // touched[i] iff the atom lies inside some changed predicate (atoms
      // are uniform w.r.t. every predicate, so intersects == contains).
      ASSERT_EQ(delta.touched.size(), delta.atoms.size());
      for (std::size_t i = 0; i < delta.atoms.size(); ++i) {
        const bool meets = std::any_of(changed.begin(), changed.end(), [&](const auto& d) {
          return d.intersects(delta.atoms[i]);
        });
        EXPECT_EQ(delta.touched[i], meets) << "atom " << i;
      }
    }
  }
}

TEST_P(FecDeltaProperty, DeltaOnWanPredicatesMatchesFromScratch) {
  const auto wan = gen::make_wan(randomized_params(GetParam()));
  const auto preds = scope_predicates(wan);
  if (preds.size() < 2) GTEST_SKIP() << "degenerate wan";
  // Split the real predicate list: refine the first part from scratch,
  // carry the rest across as the delta — the versioned-churn shape.
  const std::size_t cut = preds.size() - std::min<std::size_t>(3, preds.size() - 1);
  const std::vector<net::PacketSet> base_preds(preds.begin(), preds.begin() + cut);
  const std::vector<net::PacketSet> changed(preds.begin() + cut, preds.end());
  for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
    const auto base = topo::refine_into_atoms(wan.traffic, base_preds, with(backend));
    const auto scratch = topo::refine_into_atoms(wan.traffic, preds, with(backend));
    const auto delta = topo::refine_delta(base, changed, backend);
    expect_identical(delta.atoms, scratch, to_string(backend).data());
  }
}

TEST_P(FecDeltaProperty, ChainedDeltasMatchFromScratchAtEveryDepth) {
  PredicateGen gen{GetParam() + 100};
  const auto universe = net::PacketSet::all();
  const auto base_preds = gen.batch(2, 4);
  for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
    auto atoms = topo::refine_into_atoms(universe, base_preds, with(backend));
    auto combined = base_preds;
    // Chain depth 8: each hop applies a small delta to the previous hop's
    // output, exactly how successive applies chain partitions forward.
    for (int depth = 1; depth <= 8; ++depth) {
      const auto changed = gen.batch(1, 2);
      combined.insert(combined.end(), changed.begin(), changed.end());
      atoms = topo::refine_delta(atoms, changed, backend).atoms;
      const auto scratch = topo::refine_into_atoms(universe, combined, with(backend));
      expect_identical(atoms, scratch, to_string(backend).data());
    }
  }
}

TEST_P(FecDeltaProperty, ThreadedBaseYieldsSamePartition) {
  // A multi-threaded base is a valid partition in a different order: the
  // delta then reproduces the combined partition exactly, inheriting the
  // base's order.
  PredicateGen gen{GetParam() + 200};
  const auto universe = net::PacketSet::all();
  const auto base_preds = gen.batch(2, 5);
  const auto changed = gen.batch(1, 3);
  auto combined = base_preds;
  combined.insert(combined.end(), changed.begin(), changed.end());
  for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
    const auto base = topo::refine_into_atoms(universe, base_preds, with(backend, 3));
    const auto scratch = topo::refine_into_atoms(universe, combined, with(backend, 1));
    const auto delta = topo::refine_delta(base, changed, backend);
    EXPECT_TRUE(same_partition(delta.atoms, scratch)) << to_string(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FecDeltaProperty, ::testing::Range(1u, 7u));

TEST(FecDelta, EmptyDeltaIsIdentity) {
  PredicateGen gen{42};
  const auto universe = net::PacketSet::all();
  const auto preds = gen.batch(2, 4);
  for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
    const auto base = topo::refine_into_atoms(universe, preds, with(backend));
    const auto delta = topo::refine_delta(base, {}, backend);
    expect_identical(delta.atoms, base, "empty delta");
    EXPECT_EQ(delta.reused, base.size());
    EXPECT_EQ(delta.split, 0u);
    EXPECT_TRUE(std::none_of(delta.touched.begin(), delta.touched.end(),
                             [](bool touched) { return touched; }));
  }
}

TEST(FecDelta, FullRewriteTouchesEveryAtom) {
  PredicateGen gen{43};
  const auto universe = net::PacketSet::all();
  const auto preds = gen.batch(2, 4);
  // A delta predicate covering the whole universe meets every atom: nothing
  // passes through, and the result still matches from-scratch refinement.
  const std::vector<net::PacketSet> changed{universe};
  auto combined = preds;
  combined.push_back(universe);
  for (const auto backend : {topo::SetBackend::Hypercube, topo::SetBackend::Bdd}) {
    const auto base = topo::refine_into_atoms(universe, preds, with(backend));
    const auto scratch = topo::refine_into_atoms(universe, combined, with(backend));
    const auto delta = topo::refine_delta(base, changed, backend);
    expect_identical(delta.atoms, scratch, "full rewrite");
    EXPECT_EQ(delta.split, base.size());
    EXPECT_EQ(delta.reused, 0u);
    EXPECT_TRUE(std::all_of(delta.touched.begin(), delta.touched.end(),
                            [](bool touched) { return touched; }));
  }
}

TEST(FecCacheLineage, StitchesPartitionsAcrossVersions) {
  // Two topologies with identical structure at different addresses — the
  // shape of an ACL-only apply. The lineage stitches the old partition
  // through without re-deriving.
  const auto params = gen::small_wan();
  const auto v1 = gen::make_wan(params);
  const auto v2 = gen::make_wan(params);
  topo::FecCache cache;
  const auto options = with(topo::SetBackend::Hypercube);
  const auto cold = cache.entry_classes(v1.topo, v1.scope, v1.traffic, options);
  EXPECT_EQ(cache.misses(), 1u);
  cache.record_delta(&v1.topo, &v2.topo, 8);
  EXPECT_EQ(cache.lineage_entries(), 1u);
  const auto warm = cache.entry_classes(v2.topo, v2.scope, v2.traffic, options);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cold.get(), warm.get());  // the stitched slot shares the payload
  // The stitch materialized a slot under v2: the next lookup hits directly.
  const auto again = cache.entry_classes(v2.topo, v2.scope, v2.traffic, options);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(again.get(), cold.get());
}

TEST(FecCacheLineage, ChainBudgetFallsBackToRebuild) {
  const auto params = gen::small_wan();
  const auto v1 = gen::make_wan(params);
  const auto v2 = gen::make_wan(params);
  const auto v3 = gen::make_wan(params);
  topo::FecCache cache;
  const auto options = with(topo::SetBackend::Hypercube);
  const auto cold = cache.global_classes(v1.topo, v1.scope, v1.traffic, options);
  // Budget of one hop: v3 -> v2 (no slot) exhausts the walk before v1.
  cache.record_delta(&v1.topo, &v2.topo, 1);
  cache.record_delta(&v2.topo, &v3.topo, 1);
  const auto rebuilt = cache.global_classes(v3.topo, v3.scope, v3.traffic, options);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  // The fallback derivation is still exactly the same partition.
  expect_identical(*rebuilt, *cold, "budget fallback");
}

TEST(FecCacheLineage, EvictionCompressesLineagePastRetiredVersions) {
  const auto params = gen::small_wan();
  const auto v1 = gen::make_wan(params);
  const auto v2 = gen::make_wan(params);
  const auto v3 = gen::make_wan(params);
  topo::FecCache cache;
  const auto options = with(topo::SetBackend::Hypercube);
  const auto cold = cache.global_classes(v1.topo, v1.scope, v1.traffic, options);
  cache.record_delta(&v1.topo, &v2.topo, 8);
  cache.record_delta(&v2.topo, &v3.topo, 8);
  // v2 retires before v3 ever looked anything up: the lineage compresses
  // v3 -> v1 and the stitch still lands in one walk.
  cache.evict(&v2.topo);
  EXPECT_EQ(cache.lineage_entries(), 1u);
  const auto warm = cache.global_classes(v3.topo, v3.scope, v3.traffic, options);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(warm.get(), cold.get());
  // Evicting the root drops the remaining link and the slots; a fresh
  // lookup re-derives rather than touching dead pointers.
  cache.evict(&v1.topo);
  cache.evict(&v3.topo);
  EXPECT_EQ(cache.lineage_entries(), 0u);
  EXPECT_EQ(cache.live_entries(), 0u);
}

TEST(AecOverlayCache, MemoizedOverlayIsBitIdentical) {
  const auto wan = gen::make_wan(gen::small_wan());
  const topo::ConfigView view{wan.topo};
  std::vector<topo::AclSlot> slots;
  for (const auto slot : wan.topo.bound_slots()) {
    if (wan.scope.contains_interface(wan.topo, slot.iface)) slots.push_back(slot);
  }
  ASSERT_FALSE(slots.empty());
  topo::FecCache cache;
  const auto cold = core::acl_equivalence_classes(view, slots, wan.traffic, {}, {}, &cache);
  const auto uncached = core::acl_equivalence_classes(view, slots, wan.traffic);
  expect_identical(cold, uncached, "overlay cold");
  const std::uint64_t misses = cache.misses();
  const auto warm = core::acl_equivalence_classes(view, slots, wan.traffic, {}, {}, &cache);
  EXPECT_EQ(cache.misses(), misses);  // exact-match hit, no re-derivation
  EXPECT_GE(cache.hits(), 1u);
  expect_identical(warm, cold, "overlay warm");
}

TEST(IncrementalDelta, StaleVerdictSubAtomPathAgreesWithColdCheck) {
  // The full loop: prove a pending update at version 1, absorb an apply of
  // the same update (invalidating the verdicts its diff touches), then
  // re-check at version 2 — the stale verdicts take the delta-refined
  // sub-atom path and the outcome must equal a cold full check.
  const auto wan = gen::make_wan(gen::small_wan());
  const topo::AclUpdate update = gen::ingress_to_egress_update(wan);

  core::CheckOptions options;
  options.stop_at_first = false;
  options.fec_cache = std::make_shared<topo::FecCache>();
  core::IncrementalPlanner planner;

  smt::SmtContext smt1;
  core::Checker checker1{smt1, wan.topo, wan.scope, options};
  planner.install(1, wan.scope, checker1.share_plan(wan.traffic));
  core::IncrementalLease lease1 = planner.acquire(1, wan.scope, wan.traffic, update);
  ASSERT_TRUE(lease1.valid());
  const auto outcome1 = core::run_incremental_check(checker1, lease1, update);
  planner.commit(1, wan.scope, wan.traffic, update, outcome1.clean);

  // Apply the update: version 2 differs exactly by its differential.
  planner.record_apply(1, 2, wan.topo, update);
  topo::Topology applied = wan.topo;
  for (const auto& [slot, acl] : update) applied.bind_acl(slot, acl);

  core::IncrementalLease lease2 = planner.acquire(2, wan.scope, wan.traffic, update);
  ASSERT_TRUE(lease2.valid());
  core::CheckOptions adopted = options;
  adopted.adopted_plan = lease2.bundle;
  smt::SmtContext smt2;
  core::Checker checker2{smt2, applied, wan.scope, adopted};
  const auto outcome2 = core::run_incremental_check(checker2, lease2, update);

  smt::SmtContext smt3;
  core::Checker cold{smt3, applied, wan.scope, options};
  const auto full = cold.check(update, wan.traffic, {});
  EXPECT_EQ(outcome2.result.consistent, full.consistent);
  EXPECT_EQ(outcome2.result.violations.size(), full.violations.size());
  // At least part of the work was served without queries: every obligation
  // is either untouched, reused, delta-refined, or fully executed.
  EXPECT_EQ(outcome2.skipped + outcome2.reused + outcome2.result.obligations_executed,
            lease2.bundle->plan.size());
}

}  // namespace
}  // namespace jinjing
