// Set-algebra batch execution: every coalesced outcome must be identical
// to a fresh single-job Checker::check of the same update — verdict,
// minimal violated obligation, canonical witness — regardless of executor
// width, and cancellation/expiry of one job must never perturb batchmates.
#include "core/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/fixtures.h"
#include "gen/scenario.h"
#include "gen/wan.h"
#include "topo/paths.h"

namespace jinjing::core {
namespace {

struct Fixture {
  gen::Figure1 f = gen::make_figure1();
  smt::SmtContext smt;
  CheckOptions options;
  Checker checker{smt, f.topo, f.scope, options};
  BatchAlgebra algebra = build_batch_algebra(f.topo, checker.share_plan(f.traffic));
};

topo::AclUpdate subprefix_perturbation(const gen::Figure1& f) {
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                 net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/9", "permit all"}));
  return update;
}

topo::AclUpdate equivalent_rewrite(const gen::Figure1& f) {
  topo::AclUpdate update;
  update.emplace(topo::AclSlot{f.D2, topo::Dir::In},
                 net::Acl::parse({"deny dst 1.0.0.0/9", "deny dst 1.128.0.0/9",
                                  "deny dst 2.0.0.0/8", "permit all"}));
  return update;
}

std::vector<BatchItem> items_for(const std::vector<topo::AclUpdate>& updates) {
  std::vector<BatchItem> items;
  for (const auto& update : updates) items.push_back(BatchItem{&update, {}, {}});
  return items;
}

/// The solo oracle: a fresh checker over the same planning problem.
CheckResult solo_check(Fixture& fx, const topo::AclUpdate& update,
                       bool stop_at_first = true) {
  CheckOptions options;
  options.stop_at_first = stop_at_first;
  smt::SmtContext smt;
  Checker checker{smt, fx.f.topo, fx.f.scope, options};
  return checker.check(update, fx.f.traffic);
}

void expect_same_verdict(const CheckResult& batch, const CheckResult& solo,
                         const std::string& tag) {
  EXPECT_EQ(batch.consistent, solo.consistent) << tag;
  ASSERT_EQ(batch.violations.size(), solo.violations.size()) << tag;
  for (std::size_t i = 0; i < batch.violations.size(); ++i) {
    const Violation& b = batch.violations[i];
    const Violation& s = solo.violations[i];
    // The SMT path may pick any witness packet of the changed region, so
    // packets are not compared bit-for-bit; the *location* of the minimal
    // violation (path, decision flip, blamed slot) must agree exactly.
    EXPECT_EQ(b.path_index, s.path_index) << tag;
    EXPECT_EQ(b.decision_before, s.decision_before) << tag;
    EXPECT_EQ(b.decision_after, s.decision_after) << tag;
    EXPECT_EQ(b.changed_slot.has_value(), s.changed_slot.has_value()) << tag;
  }
}

TEST(BatchAlgebraTest, BeforeSetsMatchUnclippedPathSemantics) {
  Fixture fx;
  const topo::ConfigView base{fx.f.topo};
  const auto& obligations = fx.algebra.bundle->plan.obligations();
  ASSERT_FALSE(obligations.empty());
  for (const Obligation& o : obligations) {
    ASSERT_EQ(fx.algebra.before[o.index].size(), o.paths.size());
    for (std::size_t k = 0; k < o.paths.size(); ++k) {
      const net::PacketSet full =
          topo::path_permitted_set(base, fx.algebra.bundle->paths[o.paths[k]]) & *o.fec;
      EXPECT_TRUE(fx.algebra.before[o.index][k].equals(full))
          << "obligation " << o.index << " path " << k;
    }
  }
}

TEST(BatchRunTest, MatchesFreshCheckerAcrossUpdateShapes) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {
      {},                                   // no-op: consistent
      fx.f.running_example_update(),        // the paper's inconsistency
      equivalent_rewrite(fx.f),             // rule split, same model
      subprefix_perturbation(fx.f),         // violation inside one class
  };
  const auto items = items_for(updates);
  const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items);
  ASSERT_EQ(outcomes.size(), updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    EXPECT_FALSE(outcomes[i].cancelled);
    EXPECT_FALSE(outcomes[i].deadline_expired);
    expect_same_verdict(outcomes[i].result, solo_check(fx, updates[i]),
                        "update " + std::to_string(i));
  }
}

TEST(BatchRunTest, AllViolationsModeMatchesCheckerWithoutEarlyStop) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {fx.f.running_example_update()};
  const auto items = items_for(updates);
  BatchRunOptions options;
  options.stop_at_first = false;
  const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items, options);
  const CheckResult solo = solo_check(fx, updates[0], /*stop_at_first=*/false);
  EXPECT_FALSE(outcomes[0].result.consistent);
  EXPECT_EQ(outcomes[0].result.violations.size(), solo.violations.size());
}

TEST(BatchRunTest, DeterministicAcrossExecutorWidths) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {
      fx.f.running_example_update(),
      {},
      subprefix_perturbation(fx.f),
  };
  const auto items = items_for(updates);

  const auto reference = run_check_batch(fx.f.topo, fx.algebra, items);
  for (const unsigned threads : {2u, 4u}) {
    for (const std::size_t max_shards : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
      Executor executor{threads};
      BatchRunOptions options;
      options.executor = &executor;
      options.max_shards = max_shards;
      const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items, options);
      ASSERT_EQ(outcomes.size(), reference.size());
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const std::string tag = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(max_shards) +
                                " job=" + std::to_string(i);
        EXPECT_EQ(outcomes[i].result.consistent, reference[i].result.consistent) << tag;
        ASSERT_EQ(outcomes[i].result.violations.size(),
                  reference[i].result.violations.size())
            << tag;
        for (std::size_t v = 0; v < outcomes[i].result.violations.size(); ++v) {
          // Witnesses are re-derived sequentially after the fan-out, so
          // they must agree bit-for-bit, not just in location.
          EXPECT_EQ(to_string(outcomes[i].result.violations[v].witness),
                    to_string(reference[i].result.violations[v].witness))
              << tag;
          EXPECT_EQ(outcomes[i].result.violations[v].path_index,
                    reference[i].result.violations[v].path_index)
              << tag;
        }
        EXPECT_EQ(outcomes[i].clean, reference[i].clean) << tag;
      }
    }
  }
}

/// The multi-core scaling sweep the soak harness leans on: one coalesced
/// unit over the layered WAN (whose obligations span many entry points, so
/// sharding actually splits work across cores), swept over executor widths
/// {2, 4, 8} crossed with shard counts. Every (width, shards) cell must
/// reproduce the single-threaded reference bit for bit — verdicts, the
/// full violation list, witness packets, and the per-obligation clean
/// vector. Any divergence here would surface in the soak as an oracle
/// mismatch that depends on the machine's core count.
TEST(BatchRunTest, WanSweepStableAcrossWidthsAndShardCounts) {
  const gen::Wan wan = gen::make_wan(gen::small_wan());
  smt::SmtContext smt;
  CheckOptions check_options;
  Checker checker{smt, wan.topo, wan.scope, check_options};
  const BatchAlgebra algebra = build_batch_algebra(wan.topo, checker.share_plan(wan.traffic));

  // A mixed unit: no-op, two distinct seeded perturbations, and one
  // perturbation repeated (coalesced duplicates must not share outcomes by
  // accident).
  const std::vector<topo::AclUpdate> updates = {
      {},
      gen::perturb_rules(wan, 0.10, 71),
      gen::perturb_rules(wan, 0.25, 72),
      gen::perturb_rules(wan, 0.10, 71),
  };
  const auto items = items_for(updates);

  BatchRunOptions reference_options;
  reference_options.stop_at_first = false;  // full violation lists, not prefixes
  const auto reference = run_check_batch(wan.topo, algebra, items, reference_options);
  ASSERT_EQ(reference.size(), updates.size());
  // Identical updates produce identical outcomes even in the reference.
  ASSERT_EQ(reference[1].result.violations.size(), reference[3].result.violations.size());

  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::size_t max_shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}, std::size_t{64}}) {
      Executor executor{threads};
      BatchRunOptions options;
      options.executor = &executor;
      options.max_shards = max_shards;
      options.stop_at_first = false;
      const auto outcomes = run_check_batch(wan.topo, algebra, items, options);
      ASSERT_EQ(outcomes.size(), reference.size());
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const std::string tag = "threads=" + std::to_string(threads) +
                                " shards=" + std::to_string(max_shards) +
                                " job=" + std::to_string(i);
        EXPECT_EQ(outcomes[i].result.consistent, reference[i].result.consistent) << tag;
        EXPECT_EQ(outcomes[i].clean, reference[i].clean) << tag;
        ASSERT_EQ(outcomes[i].result.violations.size(),
                  reference[i].result.violations.size())
            << tag;
        for (std::size_t v = 0; v < outcomes[i].result.violations.size(); ++v) {
          const Violation& got = outcomes[i].result.violations[v];
          const Violation& want = reference[i].result.violations[v];
          EXPECT_EQ(got.path_index, want.path_index) << tag;
          EXPECT_EQ(got.decision_before, want.decision_before) << tag;
          EXPECT_EQ(got.decision_after, want.decision_after) << tag;
          // Bit-for-bit witness stability across every width × shard cell.
          EXPECT_EQ(to_string(got.witness), to_string(want.witness)) << tag;
        }
      }
    }
  }
}

TEST(BatchRunTest, CancellationDropsOneJobWithoutPoisoningBatchmates) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {
      {},
      fx.f.running_example_update(),  // cancelled mid-batch
      subprefix_perturbation(fx.f),
  };
  std::vector<BatchItem> items = items_for(updates);
  items[1].cancelled = [] { return true; };
  const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items);

  EXPECT_TRUE(outcomes[1].cancelled);
  EXPECT_TRUE(outcomes[1].result.violations.empty());

  EXPECT_FALSE(outcomes[0].cancelled);
  expect_same_verdict(outcomes[0].result, solo_check(fx, updates[0]), "noop");
  EXPECT_FALSE(outcomes[2].cancelled);
  expect_same_verdict(outcomes[2].result, solo_check(fx, updates[2]), "subprefix");
}

TEST(BatchRunTest, DeadlineExpiryIsPerJobAndFlagged) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {fx.f.running_example_update(), {}};
  std::vector<BatchItem> items = items_for(updates);
  items[0].expired = [] { return true; };
  Executor executor{2};
  BatchRunOptions options;
  options.executor = &executor;
  const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items, options);

  EXPECT_TRUE(outcomes[0].deadline_expired);
  EXPECT_FALSE(outcomes[0].cancelled);
  EXPECT_TRUE(outcomes[0].result.violations.empty());

  EXPECT_FALSE(outcomes[1].deadline_expired);
  expect_same_verdict(outcomes[1].result, solo_check(fx, updates[1]), "noop");
}

TEST(BatchRunTest, CleanVectorSeparatesProvenFromViolatedObligations) {
  Fixture fx;
  const std::vector<topo::AclUpdate> updates = {{}, fx.f.running_example_update()};
  const auto items = items_for(updates);
  BatchRunOptions options;
  options.stop_at_first = false;  // scan everything so clean[] is complete
  const auto outcomes = run_check_batch(fx.f.topo, fx.algebra, items, options);

  // A no-op touches nothing: every obligation is trivially proven.
  const std::size_t count = fx.algebra.bundle->plan.obligations().size();
  ASSERT_EQ(outcomes[0].clean.size(), count);
  for (std::size_t i = 0; i < count; ++i) EXPECT_TRUE(outcomes[0].clean[i]) << i;

  // The breaking update leaves its violated obligations dirty — exactly as
  // many as it reports violations.
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < count; ++i) dirty += outcomes[1].clean[i] ? 0 : 1;
  EXPECT_EQ(dirty, outcomes[1].result.violations.size());
  EXPECT_GE(dirty, 1u);
}

}  // namespace
}  // namespace jinjing::core
