#include "topo/rib.h"

#include <gtest/gtest.h>

#include "config/topology_format.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::topo {
namespace {

TEST(Rib, LongestPrefixMatchWins) {
  Rib rib;
  rib.add(net::parse_prefix("0.0.0.0/0"), 1);
  rib.add(net::parse_prefix("1.0.0.0/8"), 2);
  rib.add(net::parse_prefix("1.2.0.0/16"), 3);

  EXPECT_EQ(rib.lookup(net::parse_ipv4("9.9.9.9")), std::vector<InterfaceId>{1});
  EXPECT_EQ(rib.lookup(net::parse_ipv4("1.1.1.1")), std::vector<InterfaceId>{2});
  EXPECT_EQ(rib.lookup(net::parse_ipv4("1.2.3.4")), std::vector<InterfaceId>{3});
}

TEST(Rib, NoRouteMeansDrop) {
  Rib rib;
  rib.add(net::parse_prefix("1.0.0.0/8"), 1);
  EXPECT_TRUE(rib.lookup(net::parse_ipv4("2.0.0.1")).empty());
}

TEST(Rib, EcmpReturnsAllNextHops) {
  Rib rib;
  rib.add(net::parse_prefix("1.0.0.0/8"), {1, 2});
  rib.add(net::parse_prefix("1.0.0.0/8"), 3);  // accretes
  EXPECT_EQ(rib.lookup(net::parse_ipv4("1.1.1.1")), (std::vector<InterfaceId>{1, 2, 3}));
}

TEST(Rib, ForwardedToCarvesLongerPrefixes) {
  Rib rib;
  rib.add(net::parse_prefix("1.0.0.0/8"), 1);
  rib.add(net::parse_prefix("1.2.0.0/16"), 2);

  const auto to_1 = rib.forwarded_to(1);
  EXPECT_TRUE(to_1.contains(net::packet_to("1.1.0.1")));
  EXPECT_FALSE(to_1.contains(net::packet_to("1.2.0.1")));  // stolen by the /16
  const auto to_2 = rib.forwarded_to(2);
  EXPECT_TRUE(to_2.contains(net::packet_to("1.2.0.1")));
  EXPECT_FALSE(to_2.contains(net::packet_to("1.1.0.1")));

  // The two predicates partition the routable space.
  EXPECT_TRUE((to_1 | to_2).equals(rib.routable()));
  EXPECT_FALSE(to_1.intersects(to_2));
}

TEST(Rib, ForwardedToAgreesWithLookupPointwise) {
  Rib rib;
  rib.add(net::parse_prefix("0.0.0.0/0"), 1);
  rib.add(net::parse_prefix("10.0.0.0/8"), 2);
  rib.add(net::parse_prefix("10.1.0.0/16"), 3);
  rib.add(net::parse_prefix("10.1.2.0/24"), {2, 3});

  for (const char* probe : {"9.9.9.9", "10.0.0.1", "10.1.0.1", "10.1.2.1", "10.2.0.1"}) {
    const auto dst = net::parse_ipv4(probe);
    const auto hops = rib.lookup(dst);
    for (const InterfaceId iface : {1u, 2u, 3u}) {
      const bool in_set = rib.forwarded_to(iface).contains(net::packet_to(dst));
      const bool in_lookup = std::find(hops.begin(), hops.end(), iface) != hops.end();
      EXPECT_EQ(in_set, in_lookup) << probe << " iface " << iface;
    }
  }
}

TEST(Rib, InstallAddsEdgesFromIngress) {
  Topology t;
  const auto b = t.add_device("B");
  const auto b1 = t.add_interface(b, "1");
  const auto b2 = t.add_interface(b, "2");
  const auto b3 = t.add_interface(b, "3");
  t.mark_external(b1);

  Rib rib;
  rib.add(net::parse_prefix("1.0.0.0/8"), b2);
  rib.add(net::parse_prefix("2.0.0.0/8"), b3);
  install_rib(t, {b1}, rib);

  ASSERT_EQ(t.edges().size(), 2u);
  for (const auto& edge : t.edges()) {
    EXPECT_EQ(edge.from, b1);
    if (edge.to == b2) {
      EXPECT_TRUE(edge.predicate.contains(net::packet_to("1.1.1.1")));
    } else {
      EXPECT_EQ(edge.to, b3);
      EXPECT_TRUE(edge.predicate.contains(net::packet_to("2.1.1.1")));
    }
  }
}

TEST(RibFormat, RouteLinesCompileToPaths) {
  // A three-device chain where B's forwarding comes from a RIB instead of
  // explicit intra-device links.
  const auto network = config::parse_network(R"(
device A
device B
device C
interface A:1 external
interface A:2
interface B:1
interface B:2
interface B:3
interface C:1
interface C:2 external
interface C:3 external
link A:1 -> A:2 dst 1.0.0.0/8 | dst 2.0.0.0/8
link A:2 -> B:1 dst 1.0.0.0/8 | dst 2.0.0.0/8
route B 1.0.0.0/8 -> B:2
route B 2.0.0.0/8 -> B:3
link B:2 -> C:1 dst 1.0.0.0/8
route C 1.0.0.0/8 -> C:2
interface B:4 external
traffic dst 1.0.0.0/8 | dst 2.0.0.0/8
)");
  // B:3 has no onward link; mark B:4... (B:3 stays a stub here, fine for
  // path enumeration: it is not external, so no path ends there.)
  const auto scope = Scope::whole_network(network.topo);
  const auto paths = enumerate_paths(network.topo, scope);
  bool found = false;
  for (const auto& p : paths) {
    if (to_string(network.topo, p) == "<A:1, A:2, B:1, B:2, C:1, C:2>") {
      found = true;
      EXPECT_TRUE(forwarding_set(network.topo, p).contains(net::packet_to("1.9.9.9")));
      EXPECT_FALSE(forwarding_set(network.topo, p).contains(net::packet_to("2.9.9.9")));
    }
  }
  EXPECT_TRUE(found) << "RIB-compiled path missing";
}

TEST(RibFormat, RejectsForeignNextHopAndBadSyntax) {
  EXPECT_THROW((void)config::parse_network("device A\ndevice B\ninterface A:1\n"
                                           "route B 1.0.0.0/8 -> A:1"),
               net::ParseError);
  EXPECT_THROW((void)config::parse_network("device B\ninterface B:1\nroute B 1.0.0.0/8 B:1"),
               net::ParseError);
  EXPECT_THROW((void)config::parse_network("device B\ninterface B:1\nroute B 1.0.0.0/99 -> B:1"),
               net::ParseError);
  EXPECT_THROW((void)config::parse_network("device B\ninterface B:1\nroute B 1.0.0.0/8 ->"),
               net::ParseError);
}

}  // namespace
}  // namespace jinjing::topo
