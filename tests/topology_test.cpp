#include "topo/topology.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"

namespace jinjing::topo {
namespace {

TEST(Topology, DeviceAndInterfaceNaming) {
  Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  EXPECT_EQ(t.device_name(a), "A");
  EXPECT_EQ(t.interface_name(a1), "1");
  EXPECT_EQ(t.qualified_name(a1), "A:1");
  EXPECT_EQ(t.device_of(a1), a);
  EXPECT_EQ(t.find_device("A"), a);
  EXPECT_EQ(t.find_device("Z"), std::nullopt);
  EXPECT_EQ(t.find_interface("A:1"), a1);
  EXPECT_EQ(t.find_interface("A:2"), std::nullopt);
  EXPECT_EQ(t.find_interface("nodots"), std::nullopt);
}

TEST(Topology, DuplicateDeviceNameRejected) {
  Topology t;
  (void)t.add_device("A");
  EXPECT_THROW((void)t.add_device("A"), TopologyError);
}

TEST(Topology, UnknownIdsRejected) {
  Topology t;
  EXPECT_THROW((void)t.add_interface(5, "x"), TopologyError);
  EXPECT_THROW(t.mark_external(3), TopologyError);
  EXPECT_THROW((void)t.device_of(3), TopologyError);
}

TEST(Topology, UnboundSlotPermitsAll) {
  Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  const AclSlot slot{a1, Dir::In};
  EXPECT_FALSE(t.has_acl(slot));
  EXPECT_TRUE(t.acl(slot).permits(net::packet_to("1.2.3.4")));
}

TEST(Topology, BindAclPerDirection) {
  Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  t.bind_acl(a1, Dir::In, net::Acl::parse({"deny dst 1.0.0.0/8"}));
  EXPECT_FALSE(t.acl(a1, Dir::In).permits(net::packet_to("1.2.3.4")));
  EXPECT_TRUE(t.acl(a1, Dir::Out).permits(net::packet_to("1.2.3.4")));
  EXPECT_EQ(t.bound_slots().size(), 1u);
}

TEST(ConfigView, OverlayShadowsOriginal) {
  Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  t.bind_acl(a1, Dir::In, net::Acl::parse({"deny dst 1.0.0.0/8"}));

  AclUpdate update;
  update.emplace(AclSlot{a1, Dir::In}, net::Acl::permit_all());
  update.emplace(AclSlot{a1, Dir::Out}, net::Acl::parse({"deny dst 2.0.0.0/8"}));

  const ConfigView original{t};
  const ConfigView updated{t, &update};
  EXPECT_FALSE(original.acl({a1, Dir::In}).permits(net::packet_to("1.1.1.1")));
  EXPECT_TRUE(updated.acl({a1, Dir::In}).permits(net::packet_to("1.1.1.1")));
  EXPECT_FALSE(updated.acl({a1, Dir::Out}).permits(net::packet_to("2.1.1.1")));
  EXPECT_EQ(original.bound_slots().size(), 1u);
  EXPECT_EQ(updated.bound_slots().size(), 2u);
}

TEST(Scope, WholeNetworkAndBorders) {
  const auto f = gen::make_figure1();
  EXPECT_EQ(f.scope.size(), 4u);

  const auto borders = border_interfaces(f.topo, f.scope);
  EXPECT_EQ(borders, (std::vector<InterfaceId>{f.A1, f.C3, f.D3}));
  EXPECT_EQ(entry_interfaces(f.topo, f.scope), (std::vector<InterfaceId>{f.A1}));
  EXPECT_EQ(exit_interfaces(f.topo, f.scope), (std::vector<InterfaceId>{f.C3, f.D3}));
}

TEST(Scope, SubScopeBordersAtCrossEdges) {
  const auto f = gen::make_figure1();
  // Scope of just {A, B}: traffic crosses out at A3, A4, B2 and in at A1.
  Scope ab;
  ab.add(f.A);
  ab.add(f.B);
  const auto entries = entry_interfaces(f.topo, ab);
  EXPECT_EQ(entries, (std::vector<InterfaceId>{f.A1}));
  const auto exits = exit_interfaces(f.topo, ab);
  EXPECT_EQ(exits, (std::vector<InterfaceId>{f.A3, f.A4, f.B2}));
}

}  // namespace
}  // namespace jinjing::topo
