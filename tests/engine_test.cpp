// Integration tests: full LAI programs through the engine — the three
// Table 1 task rows, end to end.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::core {
namespace {

using gen::Figure1;

lai::AclLibrary running_example_library() {
  lai::AclLibrary lib;
  lib.emplace("A1p", net::Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8",
                                      "deny dst 6.0.0.0/8", "permit all"}));
  lib.emplace("A3p", net::Acl::parse({"deny dst 7.0.0.0/8", "permit all"}));
  lib.emplace("permit_all", net::Acl::permit_all());
  return lib;
}

// Table 1 row 1: ACL update plan checking and fixing (the §3.2 example).
constexpr const char* kCheckFixProgram = R"(
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1p, A:3-out to A3p, C:1-in to permit_all, D:2-in to permit_all
check
fix
)";

TEST(Engine, RunningExampleCheckThenFix) {
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  const auto report = engine.run_program(kCheckFixProgram, running_example_library(), f.traffic);

  ASSERT_EQ(report.outcomes.size(), 2u);
  // check: "the system outputs inconsistent".
  ASSERT_TRUE(report.outcomes[0].check.has_value());
  EXPECT_FALSE(report.outcomes[0].check->consistent);
  // fix: produces a plan.
  ASSERT_TRUE(report.outcomes[1].fix.has_value());
  EXPECT_TRUE(report.outcomes[1].fix->success);

  // The final plan re-checks clean.
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};
  EXPECT_TRUE(checker.check(report.final_update, f.traffic).consistent);
}

// Table 1 row 2: ACL migration via generate.
constexpr const char* kMigrationProgram = R"(
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1-in to permit_all, D:2-in to permit_all
generate
)";

TEST(Engine, MigrationProgramGeneratesValidPlan) {
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  lai::AclLibrary lib;
  lib.emplace("permit_all", net::Acl::permit_all());
  const auto report = engine.run_program(kMigrationProgram, lib, f.traffic);

  ASSERT_EQ(report.outcomes.size(), 1u);
  ASSERT_TRUE(report.outcomes[0].generate.has_value());
  EXPECT_TRUE(report.outcomes[0].generate->success);

  // Exact validity: all path decisions on entering traffic preserved.
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &report.final_update};
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    const auto carried = topo::forwarding_set(f.topo, path) & f.traffic;
    if (carried.is_empty()) continue;
    EXPECT_TRUE((topo::path_permitted_set(before, path) & carried)
                    .equals(topo::path_permitted_set(after, path) & carried))
        << to_string(f.topo, path);
  }
}

// Table 1 row 3: opening/isolating traffic for a service via control.
constexpr const char* kIsolateProgram = R"(
scope A:*, B:*, C:*, D:*
allow A:2-out, A:3-out, A:4-out
control A:1 -> D:3 isolate dst 4.0.0.0/8
generate
)";

TEST(Engine, IsolateProgramBlocksTraffic) {
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  const auto report = engine.run_program(kIsolateProgram, {}, f.traffic);
  ASSERT_TRUE(report.success());

  // After the update traffic 4 cannot reach D3 on any path, while other
  // decisions (e.g. 5 to C3, 3 to D3) are untouched.
  const topo::ConfigView after{f.topo, &report.final_update};
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    const auto carried = topo::forwarding_set(f.topo, path);
    if (!carried.intersects(Figure1::traffic_class(4))) continue;
    if (path.exit() != f.D3) continue;
    EXPECT_FALSE(topo::path_permits(after, path, Figure1::traffic_packet(4)))
        << to_string(f.topo, path);
  }
  EXPECT_TRUE(topo::path_permits(after,
                                 topo::enumerate_paths(f.topo, f.scope).front(),
                                 Figure1::traffic_packet(3)));

  // And the new plan checks out against the same intent.
  smt::SmtContext smt;
  Checker checker{smt, f.topo, f.scope};
  lai::ControlIntent isolate4;
  isolate4.from = {f.A1};
  isolate4.to = {f.D3};
  isolate4.verb = lai::ControlVerb::Isolate;
  isolate4.header = Figure1::traffic_class(4);
  EXPECT_TRUE(checker.check(report.final_update, f.traffic, {isolate4}).consistent);
}

TEST(Engine, GenerateWithArbitraryReplacement) {
  // Equation 8 extended beyond permit-all sources: replace D2's ACL with a
  // tighter one (only the 2/8 deny survives) and regenerate the targets so
  // overall reachability is preserved.
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  lai::AclLibrary lib;
  lib.emplace("D2_tight", net::Acl::parse({"deny dst 2.0.0.0/8", "permit all"}));
  const auto report = engine.run_program(R"(
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify D:2-in to D2_tight
generate
)",
                                         lib, f.traffic);
  ASSERT_TRUE(report.success());

  // The plan keeps the replacement at D2 verbatim...
  const auto d2 = report.final_update.at({f.D2, topo::Dir::In});
  EXPECT_TRUE(net::equivalent(d2, lib.at("D2_tight")));

  // ...and the whole update preserves the original reachability exactly.
  const topo::ConfigView before{f.topo};
  const topo::ConfigView after{f.topo, &report.final_update};
  for (const auto& path : topo::enumerate_paths(f.topo, f.scope)) {
    const auto carried = topo::forwarding_set(f.topo, path) & f.traffic;
    if (carried.is_empty()) continue;
    EXPECT_TRUE((topo::path_permitted_set(before, path) & carried)
                    .equals(topo::path_permitted_set(after, path) & carried))
        << to_string(f.topo, path);
  }
}

TEST(Engine, TrailingCheckValidatesTheRepairedPlan) {
  // "check fix check": the second check runs against the *fixed* plan and
  // comes back consistent.
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  const auto report = engine.run_program(R"(
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify A:1-in to A1p, A:3-out to A3p, C:1-in to permit_all, D:2-in to permit_all
check
fix
check
)",
                                         running_example_library(), f.traffic);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_FALSE(report.outcomes[0].check->consistent);
  EXPECT_TRUE(report.outcomes[1].fix->success);
  EXPECT_TRUE(report.outcomes[2].check->consistent);
  EXPECT_TRUE(report.success());
}

TEST(Engine, ConsistentCheckReportsSuccess) {
  const auto f = gen::make_figure1();
  Engine engine{f.topo};
  const auto report = engine.run_program("scope A:*, B:*, C:*, D:*\ncheck", {}, f.traffic);
  EXPECT_TRUE(report.success());
  EXPECT_TRUE(report.final_update.empty());
}

}  // namespace
}  // namespace jinjing::core
