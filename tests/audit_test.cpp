#include "config/audit.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "gen/wan.h"

namespace jinjing::config {
namespace {

bool has_issue(const std::vector<AuditIssue>& issues, std::string_view code) {
  return std::any_of(issues.begin(), issues.end(),
                     [code](const AuditIssue& i) { return i.code == code; });
}

TEST(Audit, Figure1IsClean) {
  const auto f = gen::make_figure1();
  const auto issues = audit_network(f.topo, f.traffic);
  EXPECT_TRUE(issues.empty()) << to_string(issues.front());
}

TEST(Audit, GeneratedWansAreClean) {
  for (const auto& params : {gen::small_wan(), gen::medium_wan()}) {
    const auto wan = gen::make_wan(params);
    const auto issues = audit_network(wan.topo, wan.traffic);
    for (const auto& issue : issues) {
      // Sparse random gateway padding rules may be shadowed; anything else
      // is a generator bug.
      EXPECT_EQ(issue.code, "shadowed-rule") << to_string(issue);
    }
    EXPECT_FALSE(has_errors(issues));
  }
}

TEST(Audit, DanglingInterfaceFlagged) {
  topo::Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  t.mark_external(a1);
  (void)t.add_interface(a, "2");  // never linked
  const auto issues = audit_network(t, net::PacketSet::empty());
  EXPECT_TRUE(has_issue(issues, "dangling-interface"));
}

TEST(Audit, TrafficSinkIsAnError) {
  topo::Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  const auto a2 = t.add_interface(a, "2");
  t.mark_external(a1);
  t.add_edge(a1, a2, net::PacketSet::all());  // a2 swallows everything
  const auto issues = audit_network(t, net::PacketSet::all());
  EXPECT_TRUE(has_issue(issues, "traffic-sink"));
  EXPECT_TRUE(has_errors(issues));
}

TEST(Audit, EmptyLinkFlagged) {
  topo::Topology t;
  const auto a = t.add_device("A");
  const auto a1 = t.add_interface(a, "1");
  const auto a2 = t.add_interface(a, "2");
  t.mark_external(a1);
  t.mark_external(a2);
  t.add_edge(a1, a2, net::PacketSet::empty());
  EXPECT_TRUE(has_issue(audit_network(t, net::PacketSet::empty()), "empty-link"));
}

TEST(Audit, NoEntryNoExitErrors) {
  topo::Topology t;
  const auto a = t.add_device("A");
  (void)t.add_interface(a, "1");
  const auto issues = audit_network(t, net::PacketSet::empty());
  EXPECT_TRUE(has_issue(issues, "no-entry"));
  EXPECT_TRUE(has_issue(issues, "no-exit"));
}

TEST(Audit, BlackholedTrafficFlagged) {
  auto f = gen::make_figure1();
  // Declare traffic to 99/8 which no edge carries.
  const auto extra = gen::Figure1::traffic_class(99);
  const auto issues = audit_network(f.topo, f.traffic | extra);
  EXPECT_TRUE(has_issue(issues, "blackholed-traffic"));
}

TEST(Audit, ShadowedRuleFlagged) {
  auto f = gen::make_figure1();
  f.topo.bind_acl(f.A1, topo::Dir::In,
                  net::Acl::parse({"deny dst 6.0.0.0/8", "permit dst 6.1.0.0/16", "permit all"}));
  const auto issues = audit_network(f.topo, f.traffic);
  EXPECT_TRUE(has_issue(issues, "shadowed-rule"));
}

TEST(Audit, OffPathAclFlagged) {
  auto f = gen::make_figure1();
  // An ACL on A:1's egress side — traffic never leaves through A:1.
  f.topo.bind_acl(f.A1, topo::Dir::Out, net::Acl::parse({"deny dst 1.0.0.0/8"}));
  const auto issues = audit_network(f.topo, f.traffic);
  EXPECT_TRUE(has_issue(issues, "acl-off-path"));
}

TEST(Audit, SeverityFormatting) {
  const AuditIssue warning{Severity::Warning, "some-code", "message"};
  EXPECT_EQ(to_string(warning), "warning [some-code] message");
  const AuditIssue error{Severity::Error, "x", "y"};
  EXPECT_EQ(to_string(error), "error [x] y");
  EXPECT_FALSE(has_errors({warning}));
  EXPECT_TRUE(has_errors({warning, error}));
}

}  // namespace
}  // namespace jinjing::config
