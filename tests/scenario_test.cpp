#include "gen/scenario.h"

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/fixer.h"
#include "core/generator.h"
#include "lai/parser.h"
#include "lai/printer.h"
#include "net/acl_algebra.h"
#include "topo/paths.h"

namespace jinjing::gen {
namespace {

TEST(Perturb, TouchesRequestedFraction) {
  const auto wan = make_wan(small_wan());
  const auto update = perturb_rules(wan, 0.05, 7);
  EXPECT_FALSE(update.empty());
  for (const auto& [slot, acl] : update) {
    const auto& original = wan.topo.acl(slot);
    EXPECT_EQ(acl.size(), original.size());  // mutations never drop rules
    std::size_t changed = 0;
    for (std::size_t i = 0; i < acl.size(); ++i) {
      if (acl.rules()[i] != original.rules()[i]) ++changed;
    }
    EXPECT_GE(changed, 1u);
    // Trailing permit-all preserved.
    EXPECT_EQ(acl.rules().back(), net::AclRule::permit_all());
  }
}

TEST(Perturb, HigherFractionChangesMoreRules) {
  const auto wan = make_wan(medium_wan());
  const auto count_changes = [&](double f) {
    std::size_t changed = 0;
    for (const auto& [slot, acl] : perturb_rules(wan, f, 5)) {
      const auto& original = wan.topo.acl(slot);
      for (std::size_t i = 0; i < acl.size(); ++i) {
        if (acl.rules()[i] != original.rules()[i]) ++changed;
      }
    }
    return changed;
  };
  EXPECT_LT(count_changes(0.01), count_changes(0.05));
}

TEST(Perturb, DeterministicPerSeed) {
  const auto wan = make_wan(small_wan());
  const auto a = perturb_rules(wan, 0.03, 42);
  const auto b = perturb_rules(wan, 0.03, 42);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [slot, acl] : a) EXPECT_EQ(acl, b.at(slot));
}

TEST(Scenario, PerturbationCheckAndFixEndToEnd) {
  // Figure 4a/4b semantics on the small WAN: check the perturbed update,
  // fix it, and verify the fix re-checks clean.
  const auto wan = make_wan(small_wan());
  const auto update = perturb_rules(wan, 0.05, 3);

  smt::SmtContext smt;
  core::CheckOptions check_options;
  check_options.stop_at_first = false;
  core::Checker checker{smt, wan.topo, wan.scope, check_options};
  const auto check = checker.check(update, wan.traffic);

  if (!check.consistent) {
    smt::SmtContext smt2;
    core::Fixer fixer{smt2, wan.topo, wan.scope};
    std::vector<topo::AclSlot> allowed = wan.topo.bound_slots();
    const auto fix = fixer.fix(update, wan.traffic, allowed);
    ASSERT_TRUE(fix.success);

    smt::SmtContext smt3;
    core::Checker recheck{smt3, wan.topo, wan.scope};
    EXPECT_TRUE(recheck.check(fix.fixed_update, wan.traffic).consistent);
  }
}

TEST(Scenario, MigrationSpecMovesMiddleToLower) {
  const auto wan = make_wan(small_wan());
  const auto spec = migration_spec(wan);
  EXPECT_EQ(spec.sources, wan.agg_slots);
  EXPECT_EQ(spec.targets, wan.gateway_slots);
}

TEST(Scenario, MigrationGenerateIsValidOnSmallWan) {
  const auto wan = make_wan(small_wan());
  smt::SmtContext smt;
  core::GenerateOptions options;
  options.universe = wan.traffic;
  core::Generator generator{smt, wan.topo, wan.scope, options};
  const auto result = generator.generate(migration_spec(wan));
  ASSERT_TRUE(result.success);

  // Exact reachability preservation on every routed path.
  const topo::ConfigView before{wan.topo};
  const topo::ConfigView after{wan.topo, &result.update};
  for (const auto& path : topo::enumerate_paths(wan.topo, wan.scope)) {
    const auto carried = topo::forwarding_set(wan.topo, path) & wan.traffic;
    if (carried.is_empty()) continue;
    EXPECT_TRUE((topo::path_permitted_set(before, path) & carried)
                    .equals(topo::path_permitted_set(after, path) & carried))
        << to_string(wan.topo, path);
  }
}

TEST(Scenario, ControlOpenIntentsCountAndClamp) {
  const auto wan = make_wan(small_wan());
  const auto sc1 = control_open(wan, 1, 9);
  EXPECT_EQ(sc1.opened, wan.gateways.size());
  const auto huge = control_open(wan, 1000, 9);
  EXPECT_EQ(huge.opened, wan.gateways.size() * wan.params.prefixes_per_gateway * 4);
}

TEST(Scenario, ControlOpenGenerateSatisfiesIntents) {
  const auto wan = make_wan(small_wan());
  const auto sc = control_open(wan, 2, 13);

  smt::SmtContext smt;
  core::GenerateOptions options;
  options.universe = wan.traffic;
  core::Generator generator{smt, wan.topo, wan.scope, options};
  const auto result = generator.generate(sc.spec, sc.intents);
  ASSERT_TRUE(result.success);

  smt::SmtContext smt2;
  core::Checker checker{smt2, wan.topo, wan.scope};
  EXPECT_TRUE(checker.check(result.update, wan.traffic, sc.intents).consistent);
}

TEST(Scenario, IngressToEgressRelocationBreaksPeerTraffic) {
  // §7 Scenario 2: the relocation looks innocuous but blocks intra-cell
  // traffic to gateway-protected subnets; check must catch it.
  const auto wan = make_wan(small_wan());
  const auto update = ingress_to_egress_update(wan);

  smt::SmtContext smt;
  core::Checker checker{smt, wan.topo, wan.scope};
  const auto result = checker.check(update, wan.traffic);
  ASSERT_FALSE(result.consistent);

  // And fix repairs it within the gateway layer.
  smt::SmtContext smt2;
  core::Fixer fixer{smt2, wan.topo, wan.scope};
  const auto fix = fixer.fix(update, wan.traffic, gateway_layer_allow(wan));
  ASSERT_TRUE(fix.success);
  smt::SmtContext smt3;
  core::Checker recheck{smt3, wan.topo, wan.scope};
  EXPECT_TRUE(recheck.check(fix.fixed_update, wan.traffic).consistent);
}

TEST(Scenario, LaiProgramsParseAndCount) {
  const auto wan = make_wan(small_wan());

  const auto check_fix = check_fix_program(wan, perturb_rules(wan, 0.03, 3));
  const auto migration = migration_program(wan);
  const auto open_prog = control_open_program(wan, control_open(wan, 1, 9));

  for (const auto* text : {&check_fix, &migration, &open_prog}) {
    EXPECT_NO_THROW((void)lai::parse(*text)) << *text;
  }
  // Table 5 flavor: program size grows with the number of opened prefixes.
  const auto open_many = control_open_program(wan, control_open(wan, 4, 9));
  EXPECT_GT(lai::line_count(lai::parse(open_many)), lai::line_count(lai::parse(open_prog)));
}

}  // namespace
}  // namespace jinjing::gen
