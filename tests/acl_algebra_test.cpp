#include "net/acl_algebra.h"

#include <gtest/gtest.h>

#include <random>

namespace jinjing::net {
namespace {

PacketSet dst_prefix_set(const char* prefix) {
  HyperCube c;
  c.set_interval(Field::DstIp, parse_prefix(prefix).interval());
  return PacketSet{c};
}

TEST(AclAlgebra, PermittedSetOfPermitAll) {
  EXPECT_TRUE(permitted_set(Acl::permit_all()).equals(PacketSet::all()));
}

TEST(AclAlgebra, PermittedSetRespectsShadowing) {
  // The permit 1.2/16 is shadowed by the deny 1/8 above it.
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "permit all"});
  const auto permitted = permitted_set(acl);
  EXPECT_TRUE(permitted.equals(PacketSet::all() - dst_prefix_set("1.0.0.0/8")));
}

TEST(AclAlgebra, PermittedSetDefaultDeny) {
  const Acl acl{{parse_rule("permit dst 1.0.0.0/8")}, Action::Deny};
  EXPECT_TRUE(permitted_set(acl).equals(dst_prefix_set("1.0.0.0/8")));
}

TEST(AclAlgebra, EffectiveMatchSetExcludesShadowed) {
  const auto acl = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.0.0.0/7", "permit all"});
  // Rule 1 (1.0.0.0/7 = 1/8 u 0/8... actually 0.0.0.0-1.255.255.255) minus the /8 deny.
  const auto effective = effective_match_set(acl, 1);
  const auto expected = dst_prefix_set("0.0.0.0/7") - dst_prefix_set("1.0.0.0/8");
  EXPECT_TRUE(effective.equals(expected));
  // Index past the end = what the default rule sees.
  const auto rest = effective_match_set(acl, 3);
  EXPECT_TRUE(rest.is_empty());  // "permit all" at index 2 swallows everything
}

TEST(AclAlgebra, PermittedWithinEqualsClippedPermittedSet) {
  // The clip-as-you-go walk must agree with the naive compose-then-clip
  // form on every shape: shadowing, default deny, and a clip that excludes
  // whole rules.
  const Acl acls[] = {
      Acl::permit_all(),
      Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "permit all"}),
      Acl{{parse_rule("permit dst 1.0.0.0/8")}, Action::Deny},
      Acl::parse({"deny dst 2.0.0.0/8", "deny dst 3.0.0.0/8", "permit all"}),
  };
  const PacketSet clips[] = {
      PacketSet::all(),
      dst_prefix_set("1.0.0.0/8"),
      dst_prefix_set("2.0.0.0/7") | dst_prefix_set("4.0.0.0/8"),
      PacketSet{},
  };
  for (const Acl& acl : acls) {
    for (const PacketSet& clip : clips) {
      EXPECT_TRUE(permitted_within(acl, clip).equals(permitted_set(acl) & clip))
          << to_string(acl);
    }
  }
}

TEST(AclAlgebra, PermittedWithinNeverEscapesTheClip) {
  const auto acl = Acl::parse({"permit dst 1.0.0.0/8", "deny all"});
  const auto clip = dst_prefix_set("1.128.0.0/9");
  const auto result = permitted_within(acl, clip);
  EXPECT_TRUE((result - clip).is_empty());
  EXPECT_TRUE(result.equals(clip));  // the whole clip is inside the permit
}

TEST(AclAlgebra, EquivalenceDetectsReorderSafety) {
  // Disjoint rules may be reordered.
  const auto a = Acl::parse({"deny dst 1.0.0.0/8", "deny dst 2.0.0.0/8", "permit all"});
  const auto b = Acl::parse({"deny dst 2.0.0.0/8", "deny dst 1.0.0.0/8", "permit all"});
  EXPECT_TRUE(equivalent(a, b));
  // Overlapping rules may not.
  const auto c = Acl::parse({"deny dst 1.0.0.0/8", "permit dst 1.2.0.0/16", "permit all"});
  const auto d = Acl::parse({"permit dst 1.2.0.0/16", "deny dst 1.0.0.0/8", "permit all"});
  EXPECT_FALSE(equivalent(c, d));
}

TEST(AclAlgebra, EquivalentOnRestrictsUniverse) {
  const auto a = Acl::parse({"deny dst 1.0.0.0/8", "permit all"});
  const auto b = Acl::parse({"permit all"});
  EXPECT_FALSE(equivalent(a, b));
  EXPECT_TRUE(equivalent_on(a, b, dst_prefix_set("2.0.0.0/8")));
  EXPECT_FALSE(equivalent_on(a, b, dst_prefix_set("1.0.0.0/8")));
}

TEST(AclAlgebra, RulesForSetRoundTrip) {
  const auto set = dst_prefix_set("1.0.0.0/8") | dst_prefix_set("3.0.0.0/8");
  const auto rules = rules_for_set(set, Action::Deny);
  Acl acl{rules};  // deny the set, permit the rest
  EXPECT_TRUE(permitted_set(acl).equals(set.complement()));
}

TEST(AclAlgebra, MatchesForCubeCoverNonPrefixInterval) {
  // [1, 6] is not a single prefix: needs 1/32? no — 1,2-3,4-5,6 => multiple.
  HyperCube c;
  c.set_interval(Field::DstIp, Interval(1, 6));
  const auto matches = matches_for_cube(c);
  PacketSet covered;
  for (const auto& m : matches) covered = covered | PacketSet{m.cube()};
  EXPECT_TRUE(covered.equals(PacketSet{c}));
  EXPECT_GT(matches.size(), 1u);
}

TEST(AclAlgebra, MatchesForCubeHandlesProtoPoints) {
  HyperCube c;
  c.set_interval(Field::Proto, Interval(6, 7));
  const auto matches = matches_for_cube(c);
  PacketSet covered;
  for (const auto& m : matches) covered = covered | PacketSet{m.cube()};
  EXPECT_TRUE(covered.equals(PacketSet{c}));
}

// Property: evaluate() agrees with permitted_set() membership on random
// packets for random ACLs — the two semantics implementations must match.
class AclSemanticsAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(AclSemanticsAgreement, PointwiseAgreesWithSetCompilation) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> action(0, 1);
  std::uniform_int_distribution<int> octet(0, 7);
  std::uniform_int_distribution<int> len_choice(0, 2);
  std::uniform_int_distribution<int> n_rules(0, 6);

  std::vector<AclRule> rules;
  const int n = n_rules(rng);
  for (int i = 0; i < n; ++i) {
    Match m;
    const std::uint8_t lens[] = {8, 16, 0};
    m.dst = Prefix{Ipv4{static_cast<std::uint8_t>(octet(rng)), 0, 0, 0},
                   lens[len_choice(rng)]};
    rules.push_back({action(rng) ? Action::Permit : Action::Deny, m});
  }
  const Acl acl{rules, action(rng) ? Action::Permit : Action::Deny};
  const auto permitted = permitted_set(acl);

  for (int i = 0; i < 50; ++i) {
    Packet p = packet_to(Ipv4{static_cast<std::uint8_t>(octet(rng)),
                              static_cast<std::uint8_t>(octet(rng)), 0, 1});
    EXPECT_EQ(acl.permits(p), permitted.contains(p)) << to_string(p) << "\n" << to_string(acl);
  }
  // Volume conservation: permitted + denied = everything.
  EXPECT_EQ(permitted.volume() + permitted.complement().volume(), PacketSet::all().volume());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AclSemanticsAgreement, ::testing::Range(1u, 26u));

}  // namespace
}  // namespace jinjing::net
